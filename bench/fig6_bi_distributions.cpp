// E5 — Figure 6 (a)-(d): distribution of the computed per-round B_i for
// the four stake distributions of §V-B — U(1,200), N(100,20), N(100,10)
// at ~50M total Algos, and N(2000,25) (the paper's "current network" with
// >1B Algos).
//
// Expected shape: U(1,200) needs by far the largest rewards (many tiny
// stakes drive s*_k down); the normal distributions need progressively
// less as their minimum stake rises; per-Algo-of-stake the N(2000,25)
// economy is the cheapest to secure.
//
// Panel layout, seeds and config construction live in
// bench/bench_drivers.hpp (make_fig6_driver) — shared with the
// orchestrate coordinator/worker pair.
//
// Sharding / checkpointing (DESIGN.md §6): --run-begin/--run-end +
// --partial-out write a mergeable RewardPartial per panel instead of the
// figure; --checkpoint-every / --partial-in / --stop-after give the
// shard crash-resume semantics; --series-out writes the deterministic
// snapshot CI diffs against a merge_partials run.
#include <cstdio>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/reward_experiment.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const bench::Fig6Driver d = bench::make_fig6_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Figure 6", "distribution of computed B_i per round");
  std::printf("nodes=%zu runs=%zu rounds/run=%zu threads=%zu "
              "inner-threads=%zu agg=%s tx-churn=1000x U(-4,4) "
              "(paper: 500k nodes; scale with --nodes; shard with "
              "--run-begin/--run-end + --partial-out, resume with "
              "--checkpoint-every + --partial-in)\n",
              d.nodes, d.runs, d.rounds, d.threads, d.inner_threads,
              sim::to_string(d.agg));

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::RewardPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(d.nodes)},
      {"runs", static_cast<double>(d.runs)},
      {"rounds", static_cast<double>(d.rounds)},
      {"threads", static_cast<double>(d.threads)},
      {"inner_threads", static_cast<double>(d.inner_threads)},
      {"agg", sim::to_string(d.agg)}};
  std::size_t accumulator_bytes = 0;
  util::json::Value series_panels = util::json::Value::array();

  for (std::size_t i = 0; i < d.panels.panel_count; ++i) {
    const sim::RewardExperimentResult result = exec.partials[i].finalize();
    json_fields.emplace_back(
        "mean_bi_" + std::string(1, bench::fig6::kPanels[i]), result.mean_bi);
    accumulator_bytes += result.accumulator_bytes;
    util::json::Value panel = d.panels.panel_meta(i);
    panel.set("series", bench::reward_series_json(result));
    series_panels.push_back(std::move(panel));

    std::printf("\n--- Fig 6(%c): stakes %s ---\n", bench::fig6::kPanels[i],
                bench::fig6::specs()[i].name().c_str());
    std::printf("mean S_N = %.1fM Algos | infeasible = %zu\n",
                result.mean_total_stake / 1e6, result.infeasible_rounds);
    std::printf("mean split: alpha=%.4f beta=%.4f gamma=%.4f\n",
                result.mean_alpha, result.mean_beta,
                1.0 - result.mean_alpha - result.mean_beta);
    if (d.agg == sim::AggBackend::Streaming) {
      // Streaming backend: the raw sample list is deliberately not
      // materialized — report the per-round means it does keep.
      std::printf("B_i Algos mean=%.2f (streaming backend: raw samples not "
                  "materialized, accumulator holds %.1f KiB)\n",
                  result.mean_bi,
                  static_cast<double>(result.accumulator_bytes) / 1024.0);
      continue;
    }
    if (result.bi_algos.empty()) {
      std::printf("B_i Algos: no feasible rounds — nothing to plot\n");
      continue;
    }
    const util::Summary summary = util::summarize(result.bi_algos);
    std::printf("B_i Algos (%zu feasible rounds): mean=%.2f sd=%.2f "
                "min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f\n",
                result.bi_algos.size(), summary.mean, summary.stddev,
                summary.min, summary.p25, summary.median, summary.p75,
                summary.max);
    util::Histogram hist(summary.min * 0.95, summary.max * 1.05 + 1e-9, 12);
    hist.add_all(result.bi_algos);
    std::printf("%s", hist.render(40).c_str());
  }

  if (!series_out.empty()) {
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  json_fields.emplace_back("accumulator_bytes",
                           static_cast<double>(accumulator_bytes));
  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("fig6_bi_distributions", json_fields);

  std::printf("\nShape check: mean B_i must be largest for U(1,200) and\n"
              "shrink for tighter distributions; N(2000,25) cheapest per\n"
              "unit of stake (paper: ~50 / ~5 / ~1.2 Algos at 500k nodes).\n");
  return 0;
}
