// Reusable reduction hooks for the experiment runner.
//
// Every figure in the paper is a Monte-Carlo aggregate over independent
// runs: per-round series reduced by the 20%-trimmed mean (§III-C) or by
// percentiles. PerRoundSamples is the shared sample matrix behind
// OutcomeMetrics and the bench tables; it keeps samples in insertion
// order, so merging per-run partials in run-index order reproduces a
// serial execution bit for bit.
#pragma once

#include <cstddef>
#include <vector>

namespace roleshare::sim {

class PerRoundSamples {
 public:
  explicit PerRoundSamples(std::size_t rounds);

  std::size_t rounds() const { return samples_.size(); }
  std::size_t count(std::size_t round_index) const;
  const std::vector<double>& samples(std::size_t round_index) const;

  void record(std::size_t round_index, double value);

  /// Appends every sample of `other` (same round count required) in round
  /// order — the run-index-ordered reduction step.
  void merge(const PerRoundSamples& other);

  /// Per-round trimmed mean (the paper's §III-C reduction).
  std::vector<double> trimmed_mean_series(double trim_fraction) const;

  /// Per-round arithmetic mean.
  std::vector<double> mean_series() const;

  /// Per-round linear-interpolated percentile, p in [0, 100].
  std::vector<double> percentile_series(double p) const;

 private:
  std::vector<std::vector<double>> samples_;
};

}  // namespace roleshare::sim
