#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace roleshare::util {
namespace {

TEST(Hex, EncodeBasic) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(bytes), "000fa5ff");
}

TEST(Hex, EncodeEmpty) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
}

TEST(Hex, DecodeBasic) {
  EXPECT_EQ(from_hex("000fa5ff"),
            (std::vector<std::uint8_t>{0x00, 0x0f, 0xa5, 0xff}));
}

TEST(Hex, DecodeUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"),
            (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RoundTripAllByteValues) {
  std::vector<std::uint8_t> all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
  EXPECT_THROW(from_hex("  "), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::util
