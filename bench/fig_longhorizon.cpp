// Long-horizon economy runs (DESIGN.md §10): wealth concentration under
// compounding role-based rewards at population scale.
//
// One panel = one defection rate; each run drives a CommitteeModel::
// Sampled network through the sparse O(committee · log N) round path for
// thousands of rounds, crediting the fixed-split role payouts back into
// stake every round. The reported series are the streaming concentration
// metrics: Gini, top-k stake share, defector–wealth correlation, plus the
// Fig-3 final% consensus-health line.
//
// Expected shape: Gini and top-share drift upward as seats compound into
// stake (rich-get-richer) while final% stays flat — the economy drifts,
// consensus does not. The defector correlation tracks whether compounding
// favors the defecting cohort (defectors hide their roles, so their
// leader seats pay as Other: nothing).
//
// Sharding / checkpointing (DESIGN.md §6): --run-begin/--run-end +
// --partial-out produce a mergeable shard; --checkpoint-every +
// --partial-in resume; --format={json,bin} picks the partial encoding;
// --store=DIR serves finished windows from the content-addressed cache.
// merge_partials folds shard files byte-identically (exact backend).
#include <cstdio>

#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/longhorizon.hpp"

using namespace roleshare;

namespace {

constexpr double kDefectionRates[] = {0.0, 0.10, 0.30};
constexpr std::size_t kPanels = 3;

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 100'000));
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 4));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 2000));
  const std::size_t threads = bench::arg_threads(argc, argv);
  const std::size_t inner_threads = bench::arg_inner_threads(argc, argv);
  const sim::AggBackend agg = bench::arg_agg(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");
  const double alpha = bench::arg_real(argc, argv, "alpha", 0.30);
  const double beta = bench::arg_real(argc, argv, "beta", 0.30);
  const double top_fraction =
      bench::arg_real(argc, argv, "top-fraction", 0.01);

  bench::print_header("Long horizon",
                      "population-scale compounding economy (sparse path)");
  std::printf("nodes=%zu runs=%zu rounds/run=%zu threads=%zu "
              "inner-threads=%zu agg=%s alpha=%.2f beta=%.2f top=%.3f "
              "(shard with --run-begin/--run-end + --partial-out, resume "
              "with --checkpoint-every + --partial-in)\n",
              nodes, runs, rounds, threads, inner_threads,
              sim::to_string(agg), alpha, beta, top_fraction);

  const auto make_config = [&](std::size_t panel, sim::RunShard sub) {
    sim::LongHorizonConfig config;
    config.node_count = nodes;
    config.seed = 4000 + panel;
    config.defection_rate = kDefectionRates[panel];
    config.runs = runs;
    config.rounds_per_run = rounds;
    config.threads = threads;
    config.inner_threads = inner_threads;
    config.alpha = alpha;
    config.beta = beta;
    config.top_fraction = top_fraction;
    config.agg = agg;
    config.shard = sub;
    return config;
  };

  const util::json::Value header = bench::shard_document_header(
      std::string(sim::LongHorizonPayload::kKind), "fig_longhorizon",
      {{"nodes", nodes},
       {"runs", runs},
       {"rounds", rounds},
       {"agg", sim::to_string(agg)}});
  const auto panel_meta = [](std::size_t panel) {
    util::json::Value v = util::json::Value::object();
    v.set("defection_rate", kDefectionRates[panel]);
    v.set("seed", 4000 + panel);
    return v;
  };
  const auto run_panel = [&](std::size_t panel, sim::RunShard sub) {
    return sim::run_longhorizon_partial(make_config(panel, sub));
  };

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::LongHorizonPartial>(
      knobs, kPanels, header, panel_meta, run_panel);
  if (bench::shard_worker_done(exec, knobs, header, timer.elapsed_ms()))
    return 0;

  std::vector<sim::LongHorizonResult> results;
  for (std::size_t panel = 0; panel < kPanels; ++panel)
    results.push_back(exec.partials[panel].finalize());

  std::printf("\n--- wealth concentration at the horizon (round %zu) ---\n",
              rounds);
  std::printf("%10s %10s %12s %14s %10s\n", "defect", "end gini",
              "end top-1%", "defector-corr", "final%");
  for (std::size_t panel = 0; panel < kPanels; ++panel) {
    const sim::LongHorizonResult& r = results[panel];
    std::printf("%10.2f %10.4f %12.4f %14.4f %10.1f\n",
                kDefectionRates[panel], r.mean_end_gini,
                r.mean_end_top_share, r.mean_end_defector_corr,
                r.final_pct_per_round.empty()
                    ? 0.0
                    : r.final_pct_per_round.back());
  }

  std::printf("\n--- Gini drift (every rounds/8) ---\n");
  std::printf("%8s", "round");
  for (const double d : kDefectionRates) std::printf(" %11.2f", d);
  std::printf("\n");
  const std::size_t stride = rounds < 8 ? 1 : rounds / 8;
  for (std::size_t r = stride - 1; r < rounds; r += stride) {
    std::printf("%8zu", r + 1);
    for (std::size_t panel = 0; panel < kPanels; ++panel)
      std::printf(" %11.5f", results[panel].gini_per_round[r]);
    std::printf("\n");
  }

  if (!series_out.empty()) {
    util::json::Value series_panels = util::json::Value::array();
    for (std::size_t panel = 0; panel < kPanels; ++panel) {
      util::json::Value v = panel_meta(panel);
      v.set("series", bench::longhorizon_series_json(results[panel]));
      series_panels.push_back(std::move(v));
    }
    bench::write_series_document(series_out, header, exec.window_begin,
                                 exec.cursor, std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  std::size_t accumulator_bytes = 0;
  for (const auto& result : results)
    accumulator_bytes += result.accumulator_bytes;
  bench::emit_json(
      "fig_longhorizon",
      {{"nodes", static_cast<double>(nodes)},
       {"runs", static_cast<double>(runs)},
       {"rounds", static_cast<double>(rounds)},
       {"threads", static_cast<double>(threads)},
       {"inner_threads", static_cast<double>(inner_threads)},
       {"agg", sim::to_string(agg)},
       {"accumulator_bytes", static_cast<double>(accumulator_bytes)},
       {"end_gini_d0", results[0].mean_end_gini},
       {"end_gini_d30", results[2].mean_end_gini},
       {"end_top_share_d0", results[0].mean_end_top_share},
       {"defector_corr_d30", results[2].mean_end_defector_corr},
       {"mean_paid_algos_d0", results[0].mean_paid_algos},
       {"peak_rss_mb", bench::peak_rss_bytes() / (1024.0 * 1024.0)},
       {"wall_ms", timer.elapsed_ms()}});

  std::printf("\nShape check: Gini/top-share drift upward with the horizon\n"
              "while final%% stays flat — compounding moves wealth, not\n"
              "consensus.\n");
  return 0;
}
