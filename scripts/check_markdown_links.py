#!/usr/bin/env python3
"""Markdown link/anchor checker for the repo docs (stdlib only).

Validates, for each given markdown file (default: README.md DESIGN.md
ROADMAP.md):
  * relative file links point at files that exist;
  * intra-document anchors (#section) match a heading in the target file,
    using GitHub's anchor slug rules (lowercase, punctuation stripped,
    spaces to hyphens, duplicate slugs suffixed -1, -2, ...).

External links (http/https/mailto) are not fetched — CI must not depend
on the network. Exit code 0 = all links valid, 1 = at least one broken.

Usage: scripts/check_markdown_links.py [file.md ...]
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_FILES = ["README.md", "DESIGN.md", "ROADMAP.md"]
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's heading -> anchor transformation."""
    # Drop inline code/emphasis markers (underscores stay: GitHub keeps
    # them), then strip everything that is not a word character, space or
    # hyphen.
    text = re.sub(r"[`*]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> set[str]:
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def links_of(path: Path) -> list[str]:
    links: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(m.group(1) for m in LINK_RE.finditer(line))
    return links


def check_file(md: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    own_anchors: set[str] | None = None
    for target in links_of(md):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # pure intra-document anchor
            if own_anchors is None:
                own_anchors = anchors_of(md)
            if anchor not in own_anchors:
                errors.append(f"{md}: broken anchor '#{anchor}'")
            continue
        linked = (md.parent / path_part).resolve()
        if not linked.exists():
            errors.append(f"{md}: missing file '{path_part}'")
            continue
        if anchor and linked.suffix == ".md":
            if anchor not in anchors_of(linked):
                errors.append(
                    f"{md}: anchor '#{anchor}' not found in '{path_part}'")
    _ = repo_root
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    names = argv[1:] or DEFAULT_FILES
    errors: list[str] = []
    for name in names:
        md = Path(name) if Path(name).is_absolute() else repo_root / name
        if not md.exists():
            errors.append(f"{md}: file not found")
            continue
        errors.extend(check_file(md, repo_root))
    if errors:
        print("markdown link check FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"markdown link check OK ({', '.join(names)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
