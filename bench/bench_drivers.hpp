// Per-bench shard drivers (DESIGN.md §11): the single source of truth
// for each figure bench's panel layout — constants, seeds, config
// construction, document header, panel metadata and series snapshot.
//
// Both halves of an orchestrated job parse the SAME argv through the
// same factory here: the bench main (figure mode) and the orchestrate
// coordinator/worker pair. That is what makes an orchestrated run
// byte-identical to a single-process one by construction — there is no
// second copy of any seed, rate table or header field to drift. The
// wire protocol's HELLO config echo (orch/wire.hpp) re-checks the
// invariant at runtime across process boundaries.
//
// Layers:
//   PanelDriver<PartialT>   the generic shard surface of one bench:
//                           header + panel_meta + run_panel as
//                           run_sharded_panels consumes them, plus
//                           series_json (finalize one merged partial
//                           into the deterministic series snapshot).
//   make_<bench>_driver     per-bench factory; also returns the parsed
//                           knob values the bench main prints.
//   ShardableBench          type-erased driver for the orchestrator:
//                           run_window (worker side, wraps
//                           run_sharded_panels) + fold/write_series
//                           (coordinator side, the merge_partials fold
//                           discipline: in-window-order typed merges,
//                           then write_series_document over [0, runs)).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "orch/worker.hpp"
#include "shard_util.hpp"

namespace roleshare::bench {

/// The shard surface of one figure bench, exactly as
/// run_sharded_panels consumes it. All callbacks capture their knobs by
/// value — a driver outlives the argv it was parsed from.
template <typename PartialT>
struct PanelDriver {
  std::string bench_name;
  std::size_t runs = 0;
  std::size_t panel_count = 0;
  util::json::Value header;
  std::function<util::json::Value(std::size_t)> panel_meta;
  std::function<PartialT(std::size_t, sim::RunShard)> run_panel;
  /// Finalizes one fully-merged panel partial into the panel's
  /// deterministic "series" object of the series document.
  std::function<util::json::Value(const PartialT&)> series_json;
};

// ---------------------------------------------------------------- fig3

namespace fig3 {
inline constexpr double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
inline constexpr char kPanels[] = {'a', 'b', 'c', 'd', 'e', 'f'};
inline constexpr double kTrim = 0.2;
}  // namespace fig3

struct Fig3Driver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  PanelDriver<sim::DefectionPartial> panels;
};

inline Fig3Driver make_fig3_driver(int argc, char** argv) {
  Fig3Driver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 400));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 8));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 30));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);

  d.panels.bench_name = "fig3_defection";
  d.panels.runs = d.runs;
  d.panels.panel_count = std::size(fig3::kRates);
  d.panels.header = shard_document_header(
      std::string(sim::DefectionPayload::kKind), "fig3_defection",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"agg", sim::to_string(d.agg)},
       {"trim", fig3::kTrim}});
  d.panels.panel_meta = [](std::size_t i) {
    util::json::Value panel = util::json::Value::object();
    panel.set("rate_pct", fig3::kRates[i] * 100.0);
    return panel;
  };
  const auto knobs = d;  // knob values only; panels not yet fully built
  d.panels.run_panel = [knobs](std::size_t i, sim::RunShard sub) {
    sim::DefectionExperimentConfig config;
    config.network.node_count = knobs.nodes;
    config.network.seed = 42 + i;
    config.network.defection_rate = fig3::kRates[i];
    // Mild weak-synchrony churn so the tentative-then-recover pattern
    // the paper highlights (Fig 3-c, rounds 17-20) can emerge;
    // degradation deepens with defection as in the paper's narrative.
    config.network.synchrony.degrade_probability =
        0.05 + fig3::kRates[i] / 2.0;
    config.network.synchrony.degraded_delay_factor = 25.0;
    config.network.synchrony.max_degraded_rounds = 2;
    config.runs = knobs.runs;
    config.rounds = knobs.rounds;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.trim_fraction = fig3::kTrim;
    config.agg = knobs.agg;
    config.shard = sub;
    return sim::run_defection_partial(config);
  };
  d.panels.series_json = [](const sim::DefectionPartial& partial) {
    return defection_series_json(partial.finalize(fig3::kTrim));
  };
  return d;
}

// ---------------------------------------------------------------- fig6

namespace fig6 {
inline const std::array<sim::StakeSpec, 4>& specs() {
  static const std::array<sim::StakeSpec, 4> kSpecs = {
      sim::StakeSpec::uniform(1, 200), sim::StakeSpec::normal(100, 20),
      sim::StakeSpec::normal(100, 10), sim::StakeSpec::normal(2000, 25)};
  return kSpecs;
}
inline constexpr char kPanels[] = {'a', 'b', 'c', 'd'};
}  // namespace fig6

struct Fig6Driver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  PanelDriver<sim::RewardPartial> panels;
};

inline Fig6Driver make_fig6_driver(int argc, char** argv) {
  Fig6Driver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 100'000));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 40));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 10));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);

  d.panels.bench_name = "fig6_bi_distributions";
  d.panels.runs = d.runs;
  d.panels.panel_count = std::size(fig6::kPanels);
  d.panels.header = shard_document_header(
      std::string(sim::RewardPayload::kKind), "fig6_bi_distributions",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"agg", sim::to_string(d.agg)}});
  d.panels.panel_meta = [](std::size_t i) {
    util::json::Value panel = util::json::Value::object();
    panel.set("panel", std::string(1, fig6::kPanels[i]));
    panel.set("stakes", fig6::specs()[i].name());
    return panel;
  };
  const auto knobs = d;
  d.panels.run_panel = [knobs](std::size_t i, sim::RunShard sub) {
    sim::RewardExperimentConfig config;
    config.node_count = knobs.nodes;
    config.seed = 1000 + i;
    config.stakes = fig6::specs()[i];
    config.runs = knobs.runs;
    config.rounds_per_run = knobs.rounds;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.agg = knobs.agg;
    config.shard = sub;
    return sim::run_reward_partial(config);
  };
  d.panels.series_json = [](const sim::RewardPartial& partial) {
    return reward_series_json(partial.finalize());
  };
  return d;
}

// ---------------------------------------------------------------- fig7

namespace fig7 {
inline const std::array<sim::StakeSpec, 3>& specs() {
  static const std::array<sim::StakeSpec, 3> kSpecs = {
      sim::StakeSpec::uniform(1, 200), sim::StakeSpec::normal(100, 20),
      sim::StakeSpec::normal(100, 10)};
  return kSpecs;
}
inline constexpr std::int64_t kFilters[] = {3, 5, 7};

/// Panels 0-2: the Fig-7(a/b) stake distributions (seeds 2000+i).
/// Panels 3-5: the Fig-7(c) U_w(1,200) filters (seeds 3000+i).
struct PanelSpec {
  sim::StakeSpec stakes;
  std::optional<std::int64_t> min_stake;
  std::uint64_t seed;
};

inline PanelSpec panel_spec(std::size_t panel) {
  if (panel < 3) return {specs()[panel], std::nullopt, 2000 + panel};
  return {specs()[0], kFilters[panel - 3], 3000 + (panel - 3)};
}
}  // namespace fig7

struct Fig7Driver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  PanelDriver<sim::RewardPartial> panels;
};

inline Fig7Driver make_fig7_driver(int argc, char** argv) {
  Fig7Driver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 100'000));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 30));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 10));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);

  d.panels.bench_name = "fig7_reward_comparison";
  d.panels.runs = d.runs;
  d.panels.panel_count = 6;
  d.panels.header = shard_document_header(
      std::string(sim::RewardPayload::kKind), "fig7_reward_comparison",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"agg", sim::to_string(d.agg)}});
  d.panels.panel_meta = [](std::size_t panel) {
    const fig7::PanelSpec spec = fig7::panel_spec(panel);
    util::json::Value v = util::json::Value::object();
    v.set("stakes", spec.stakes.name());
    v.set("min_other_stake", spec.min_stake
                                 ? util::json::Value(*spec.min_stake)
                                 : util::json::Value());
    v.set("seed", spec.seed);
    return v;
  };
  const auto knobs = d;
  d.panels.run_panel = [knobs](std::size_t panel, sim::RunShard sub) {
    const fig7::PanelSpec spec = fig7::panel_spec(panel);
    sim::RewardExperimentConfig config;
    config.node_count = knobs.nodes;
    config.seed = spec.seed;
    config.stakes = spec.stakes;
    config.runs = knobs.runs;
    config.rounds_per_run = knobs.rounds;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.agg = knobs.agg;
    config.shard = sub;
    config.min_other_stake = spec.min_stake;
    return sim::run_reward_partial(config);
  };
  d.panels.series_json = [](const sim::RewardPartial& partial) {
    return reward_series_json(partial.finalize());
  };
  return d;
}

// ------------------------------------------------------ scenario_sweep

namespace scenario {
inline constexpr double kLevels[] = {0.05, 0.15, 0.30};
inline constexpr std::size_t kCheckedLevel = 1;  // middle level, re-run
// The §III-C trim; must equal DefectionExperimentConfig::trim_fraction
// (the serial self-check finalizes through run_defection_experiment,
// which uses the config's value).
inline constexpr double kTrim = 0.2;

struct PolicyCase {
  const char* name;
  sim::PolicyKind kind;
  bool churn;
};

inline constexpr PolicyCase kPolicies[] = {
    {"scripted", sim::PolicyKind::Scripted, false},
    {"adaptive", sim::PolicyKind::AdaptiveDefect, false},
    {"stake", sim::PolicyKind::StakeCorrelatedDefect, false},
    {"churn", sim::PolicyKind::Scripted, true},
};
inline constexpr std::size_t kPanelCount =
    std::size(kPolicies) * std::size(kLevels);

/// Panel p = policy p / |levels|, level p % |levels|.
inline const PolicyCase& panel_policy(std::size_t panel) {
  return kPolicies[panel / std::size(kLevels)];
}
inline std::size_t panel_level(std::size_t panel) {
  return panel % std::size(kLevels);
}
}  // namespace scenario

struct ScenarioDriver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  /// The full per-panel config — exposed (not just run_panel) because
  /// the sweep's serial self-check re-runs it with threads forced to 1.
  std::function<sim::DefectionExperimentConfig(std::size_t, sim::RunShard)>
      panel_config;
  PanelDriver<sim::DefectionPartial> panels;
};

inline ScenarioDriver make_scenario_driver(int argc, char** argv) {
  ScenarioDriver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 120));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 6));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 8));
  d.seed = static_cast<std::uint64_t>(arg_int(argc, argv, "seed", 99));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);

  struct Knobs {
    std::size_t nodes, runs, rounds, threads, inner_threads;
    std::uint64_t seed;
    sim::AggBackend agg;
  };
  const Knobs knobs{d.nodes, d.runs,  d.rounds, d.threads,
                    d.inner_threads, d.seed,  d.agg};
  d.panel_config = [knobs](std::size_t panel, sim::RunShard sub) {
    const scenario::PolicyCase& policy = scenario::panel_policy(panel);
    const std::size_t level_idx = scenario::panel_level(panel);
    const double level = scenario::kLevels[level_idx];
    sim::DefectionExperimentConfig config;
    config.network.node_count = knobs.nodes;
    config.network.seed = knobs.seed + level_idx;
    config.runs = knobs.runs;
    config.rounds = knobs.rounds;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.agg = knobs.agg;
    config.policy.kind = policy.kind;
    switch (policy.kind) {
      case sim::PolicyKind::Scripted:
      case sim::PolicyKind::AdaptiveDefect:
        config.network.defection_rate = level;
        break;
      case sim::PolicyKind::StakeCorrelatedDefect:
        // Linear percentile curve whose population mean equals `level`.
        config.policy.defect_at_bottom = std::min(1.0, 2.0 * level);
        config.policy.defect_at_top = 0.0;
        break;
    }
    if (policy.churn) {
      config.policy.churn.leave_probability = 0.06;
      config.policy.churn.join_probability = 0.12;
      config.policy.churn.min_live =
          std::max<std::size_t>(4, knobs.nodes / 4);
    }
    config.trim_fraction = scenario::kTrim;
    config.shard = sub;
    return config;
  };

  d.panels.bench_name = "scenario_sweep";
  d.panels.runs = d.runs;
  d.panels.panel_count = scenario::kPanelCount;
  d.panels.header = shard_document_header(
      std::string(sim::DefectionPayload::kKind), "scenario_sweep",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"seed", d.seed},
       {"agg", sim::to_string(d.agg)},
       {"trim", scenario::kTrim}});
  d.panels.panel_meta = [](std::size_t panel) {
    util::json::Value v = util::json::Value::object();
    v.set("policy", std::string(scenario::panel_policy(panel).name));
    v.set("level_pct",
          scenario::kLevels[scenario::panel_level(panel)] * 100.0);
    return v;
  };
  const auto panel_config = d.panel_config;
  d.panels.run_panel = [panel_config](std::size_t panel, sim::RunShard sub) {
    return sim::run_defection_partial(panel_config(panel, sub));
  };
  d.panels.series_json = [](const sim::DefectionPartial& partial) {
    return defection_series_json(partial.finalize(scenario::kTrim));
  };
  return d;
}

// -------------------------------------------------- strategic_ensemble

namespace strategic {
inline constexpr sim::SchemeChoice kSchemes[] = {
    sim::SchemeChoice::FoundationStakeProportional,
    sim::SchemeChoice::RoleBasedAdaptive};
inline constexpr const char* kSchemeNames[] = {"foundation", "role-based"};
}  // namespace strategic

struct StrategicDriver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  PanelDriver<sim::StrategicPartial> panels;
};

inline StrategicDriver make_strategic_driver(int argc, char** argv) {
  StrategicDriver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 150));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 6));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 10));
  d.seed = static_cast<std::uint64_t>(arg_int(argc, argv, "seed", 99));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);

  d.panels.bench_name = "strategic_ensemble";
  d.panels.runs = d.runs;
  d.panels.panel_count = std::size(strategic::kSchemes);
  d.panels.header = shard_document_header(
      std::string(sim::StrategicPayload::kKind), "strategic_ensemble",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"seed", d.seed},
       {"agg", sim::to_string(d.agg)}});
  d.panels.panel_meta = [](std::size_t panel) {
    util::json::Value v = util::json::Value::object();
    v.set("scheme", std::string(strategic::kSchemeNames[panel]));
    return v;
  };
  const auto knobs = d;
  d.panels.run_panel = [knobs](std::size_t panel, sim::RunShard sub) {
    sim::StrategicEnsembleConfig config;
    config.base.network.node_count = knobs.nodes;
    config.base.network.seed = knobs.seed;
    config.base.rounds = knobs.rounds;
    config.base.scheme = strategic::kSchemes[panel];
    config.runs = knobs.runs;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.agg = knobs.agg;
    config.shard = sub;
    return sim::run_strategic_partial(config);
  };
  d.panels.series_json = [](const sim::StrategicPartial& partial) {
    return strategic_series_json(partial.finalize());
  };
  return d;
}

// ------------------------------------------------------ fig_longhorizon

namespace longhorizon {
inline constexpr double kDefectionRates[] = {0.0, 0.10, 0.30};
inline constexpr std::size_t kPanels = 3;
}  // namespace longhorizon

struct LongHorizonDriver {
  std::size_t nodes = 0;
  std::size_t runs = 0;
  std::size_t rounds = 0;
  std::size_t threads = 0;
  std::size_t inner_threads = 0;
  sim::AggBackend agg = sim::AggBackend::Exact;
  double alpha = 0.0;
  double beta = 0.0;
  double top_fraction = 0.0;
  PanelDriver<sim::LongHorizonPartial> panels;
};

inline LongHorizonDriver make_longhorizon_driver(int argc, char** argv) {
  LongHorizonDriver d;
  d.nodes = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 100'000));
  d.runs = static_cast<std::size_t>(arg_int(argc, argv, "runs", 4));
  d.rounds = static_cast<std::size_t>(arg_int(argc, argv, "rounds", 2000));
  d.threads = arg_threads(argc, argv);
  d.inner_threads = arg_inner_threads(argc, argv);
  d.agg = arg_agg(argc, argv);
  d.alpha = arg_real(argc, argv, "alpha", 0.30);
  d.beta = arg_real(argc, argv, "beta", 0.30);
  d.top_fraction = arg_real(argc, argv, "top-fraction", 0.01);

  d.panels.bench_name = "fig_longhorizon";
  d.panels.runs = d.runs;
  d.panels.panel_count = longhorizon::kPanels;
  d.panels.header = shard_document_header(
      std::string(sim::LongHorizonPayload::kKind), "fig_longhorizon",
      {{"nodes", d.nodes},
       {"runs", d.runs},
       {"rounds", d.rounds},
       {"agg", sim::to_string(d.agg)}});
  d.panels.panel_meta = [](std::size_t panel) {
    util::json::Value v = util::json::Value::object();
    v.set("defection_rate", longhorizon::kDefectionRates[panel]);
    v.set("seed", 4000 + panel);
    return v;
  };
  const auto knobs = d;
  d.panels.run_panel = [knobs](std::size_t panel, sim::RunShard sub) {
    sim::LongHorizonConfig config;
    config.node_count = knobs.nodes;
    config.seed = 4000 + panel;
    config.defection_rate = longhorizon::kDefectionRates[panel];
    config.runs = knobs.runs;
    config.rounds_per_run = knobs.rounds;
    config.threads = knobs.threads;
    config.inner_threads = knobs.inner_threads;
    config.alpha = knobs.alpha;
    config.beta = knobs.beta;
    config.top_fraction = knobs.top_fraction;
    config.agg = knobs.agg;
    config.shard = sub;
    return sim::run_longhorizon_partial(config);
  };
  d.panels.series_json = [](const sim::LongHorizonPartial& partial) {
    return longhorizon_series_json(partial.finalize());
  };
  return d;
}

// --------------------------------------------- type-erased orchestration

/// A bench the orchestrator can drive without knowing its partial type.
/// The worker side calls run_window (run_sharded_panels under the
/// coordinator-supplied knobs); the coordinator side folds each finished
/// window's partial-document bytes IN WINDOW ORDER and finally writes
/// the series document — the exact merge_partials discipline, which is
/// why the output is byte-identical to a single-process --series-out.
struct ShardableBench {
  std::string bench_name;
  std::size_t runs = 0;
  std::size_t panel_count = 0;
  /// The shard-document header dump — the HELLO config echo.
  std::string config_echo;
  std::function<orch::WindowOutcome(const ShardKnobs&)> run_window;
  std::function<void(const std::string& bytes, std::size_t run_begin,
                     std::size_t run_end, const std::string& origin)>
      fold;
  /// Writes the final series document; callable once every window in
  /// [0, runs) has been folded.
  std::function<void(const std::string& series_out)> write_series;
};

template <typename PartialT>
ShardableBench make_shardable_bench(PanelDriver<PartialT> driver) {
  struct FoldState {
    std::vector<PartialT> partials;
    std::size_t begin = 0;
    std::size_t end = 0;
    bool any = false;
  };
  auto state = std::make_shared<FoldState>();

  ShardableBench bench;
  bench.bench_name = driver.bench_name;
  bench.runs = driver.runs;
  bench.panel_count = driver.panel_count;
  bench.config_echo = driver.header.dump();
  bench.run_window = [driver](const ShardKnobs& knobs) {
    const ShardExecution<PartialT> exec = run_sharded_panels<PartialT>(
        knobs, driver.panel_count, driver.header, driver.panel_meta,
        driver.run_panel);
    orch::WindowOutcome outcome;
    outcome.cursor = exec.cursor;
    outcome.executed = exec.executed;
    outcome.complete = exec.complete();
    outcome.store_hit = exec.store_hit;
    outcome.partial_bytes = exec.partial_bytes;
    return outcome;
  };
  bench.fold = [driver, state](const std::string& bytes,
                               std::size_t run_begin, std::size_t run_end,
                               const std::string& origin) {
    const util::json::Value doc = sim::decode_partial_document(bytes, origin);
    ShardExecution<PartialT> exec;
    load_partial_document(doc, origin, driver.header, driver.panel_count,
                          exec);
    if (!exec.complete() || exec.window_begin != run_begin ||
        exec.window_end != run_end) {
      throw std::runtime_error(
          origin + " covers runs [" + std::to_string(exec.window_begin) +
          ", " + std::to_string(exec.cursor) + ") of window [" +
          std::to_string(exec.window_begin) + ", " +
          std::to_string(exec.window_end) + ") — expected finished window [" +
          std::to_string(run_begin) + ", " + std::to_string(run_end) + ")");
    }
    if (!state->any) {
      state->partials = std::move(exec.partials);
      state->begin = run_begin;
      state->end = run_end;
      state->any = true;
      return;
    }
    if (run_begin != state->end) {
      throw std::runtime_error(
          origin + " begins at run " + std::to_string(run_begin) +
          " but the fold frontier is at " + std::to_string(state->end) +
          " — windows must fold in order");
    }
    // The envelope merge re-checks spec hash, backend and contiguity.
    for (std::size_t i = 0; i < state->partials.size(); ++i)
      state->partials[i].merge(exec.partials[i]);
    state->end = run_end;
  };
  bench.write_series = [driver, state](const std::string& series_out) {
    if (!state->any || state->begin != 0 || state->end != driver.runs) {
      throw std::runtime_error(
          "orchestrate: series requested but only runs [" +
          std::to_string(state->begin) + ", " + std::to_string(state->end) +
          ") of [0, " + std::to_string(driver.runs) + ") are folded");
    }
    util::json::Value panels = util::json::Value::array();
    for (std::size_t i = 0; i < driver.panel_count; ++i) {
      util::json::Value v = driver.panel_meta(i);
      v.set("series", driver.series_json(state->partials[i]));
      panels.push_back(std::move(v));
    }
    write_series_document(series_out, driver.header, 0, driver.runs,
                          std::move(panels));
  };
  return bench;
}

inline constexpr const char* kShardableBenchNames =
    "fig3_defection, fig6_bi_distributions, fig7_reward_comparison, "
    "scenario_sweep, strategic_ensemble, fig_longhorizon";

/// Name-dispatched registry over every shard-capable bench. Coordinator
/// and workers both call this with the SAME argv — the single source of
/// config truth behind the HELLO echo check.
inline ShardableBench make_shardable_bench(const std::string& bench,
                                           int argc, char** argv) {
  if (bench == "fig3_defection")
    return make_shardable_bench(make_fig3_driver(argc, argv).panels);
  if (bench == "fig6_bi_distributions")
    return make_shardable_bench(make_fig6_driver(argc, argv).panels);
  if (bench == "fig7_reward_comparison")
    return make_shardable_bench(make_fig7_driver(argc, argv).panels);
  if (bench == "scenario_sweep")
    return make_shardable_bench(make_scenario_driver(argc, argv).panels);
  if (bench == "strategic_ensemble")
    return make_shardable_bench(make_strategic_driver(argc, argv).panels);
  if (bench == "fig_longhorizon")
    return make_shardable_bench(make_longhorizon_driver(argc, argv).panels);
  throw std::invalid_argument("--bench=" + bench +
                              " is not shard-capable — pick one of: " +
                              kShardableBenchNames);
}

}  // namespace roleshare::bench
