#include "consensus/reduction.hpp"

#include <gtest/gtest.h>

namespace roleshare::consensus {
namespace {

// Reduction decision rules are pure; fabricate votes without sortition by
// constructing committee-verified voters once.
struct Fixture {
  crypto::Hash256 empty = crypto::HashBuilder("empty").build();
  crypto::Hash256 block_a = crypto::HashBuilder("block-a").build();
  crypto::Hash256 block_b = crypto::HashBuilder("block-b").build();
  std::vector<crypto::KeyPair> keys;
  crypto::SortitionParams params{3'000, 10'000};
  crypto::Hash256 seed = crypto::HashBuilder("rseed").build();

  Fixture() {
    std::uint64_t id = 0;
    while (keys.size() < 6) {
      const auto key = crypto::KeyPair::derive(777, id++);
      const crypto::VrfInput input{1, 1, seed};
      if (crypto::sortition(key, input, 100, params).selected())
        keys.push_back(key);
    }
  }

  Vote vote(std::size_t idx, const crypto::Hash256& value) const {
    const crypto::VrfInput input{1, 1, seed};
    const auto res = crypto::sortition(keys[idx], input, 100, params);
    return make_vote(static_cast<ledger::NodeId>(idx),
                     keys[idx].public_key(), 1, 1, value, res);
  }
};

TEST(Reduction, Step1VotesForBestProposal) {
  const Fixture f;
  EXPECT_EQ(reduction_step1_value(f.block_a, f.empty), f.block_a);
}

TEST(Reduction, Step1FallsBackToEmpty) {
  const Fixture f;
  EXPECT_EQ(reduction_step1_value(std::nullopt, f.empty), f.empty);
}

TEST(Reduction, Step2PassesQuorumWinner) {
  const Fixture f;
  std::vector<Vote> votes;
  for (std::size_t i = 0; i < 4; ++i) votes.push_back(f.vote(i, f.block_a));
  EXPECT_EQ(reduction_step2_value(votes, 1.0, f.empty), f.block_a);
}

TEST(Reduction, Step2EmptyWithoutQuorum) {
  const Fixture f;
  std::vector<Vote> votes = {f.vote(0, f.block_a)};
  EXPECT_EQ(reduction_step2_value(votes, 1e9, f.empty), f.empty);
}

TEST(Reduction, Step2EmptyOnNoVotes) {
  const Fixture f;
  EXPECT_EQ(reduction_step2_value({}, 1.0, f.empty), f.empty);
}

TEST(Reduction, SplitVotesBelowQuorumYieldEmpty) {
  const Fixture f;
  std::vector<Vote> votes;
  std::uint64_t half = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const Vote v = f.vote(i, i % 2 == 0 ? f.block_a : f.block_b);
    if (i % 2 == 0) half += v.weight;
    votes.push_back(v);
  }
  // Quorum above either side's weight: nobody wins.
  EXPECT_EQ(reduction_step2_value(votes, 1e9, f.empty), f.empty);
}

TEST(Reduction, OutputMirrorsStep2Semantics) {
  const Fixture f;
  std::vector<Vote> votes;
  for (std::size_t i = 0; i < 5; ++i) votes.push_back(f.vote(i, f.block_b));
  EXPECT_EQ(reduction_output(votes, 1.0, f.empty), f.block_b);
  EXPECT_EQ(reduction_output({}, 1.0, f.empty), f.empty);
}

TEST(Reduction, OutputIsOneOfProposedOrEmpty) {
  // The reduction guarantee: at most one non-empty hash can emerge.
  const Fixture f;
  std::vector<Vote> votes;
  for (std::size_t i = 0; i < 6; ++i)
    votes.push_back(f.vote(i, i < 4 ? f.block_a : f.block_b));
  const crypto::Hash256 out = reduction_output(votes, 1.0, f.empty);
  EXPECT_TRUE(out == f.block_a || out == f.empty);
}

}  // namespace
}  // namespace roleshare::consensus
