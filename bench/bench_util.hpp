// Shared helpers for the table/figure reproduction binaries: consistent
// headers, simple argument parsing (--key=value overrides so the same
// binary can be run at paper scale or smoke-test scale), wall-clock
// timing, and machine-readable BENCH_*.json result files for the perf
// trajectory.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace roleshare::bench {

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("Fooladgar et al., \"On Incentive Compatible Role-Based Reward\n"
              "Distribution in Algorand\" (DSN 2020) — RoleShare reproduction\n");
  std::printf("================================================================\n");
}

/// Parses "--name=value" from argv; returns fallback when absent.
inline long long arg_int(int argc, char** argv, const std::string& name,
                         long long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return std::atoll(arg.substr(prefix.size()).c_str());
  }
  return fallback;
}

/// The unified `--threads=N` knob every runner-backed binary exposes
/// (0 = all hardware threads; default 1 keeps output comparable with the
/// serial baselines).
inline std::size_t arg_threads(int argc, char** argv) {
  return static_cast<std::size_t>(arg_int(argc, argv, "threads", 1));
}

/// Wall-clock stopwatch for the BENCH_*.json timing fields.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes BENCH_<name>.json next to the binary's working directory:
/// a flat object of numeric fields (timings, config, headline results) so
/// the perf trajectory can be tracked without scraping stdout.
inline void emit_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\"", name.c_str());
  for (const auto& [key, value] : fields)
    std::fprintf(out, ",\n  \"%s\": %.17g", key.c_str(), value);
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("\n[bench] wrote %s\n", path.c_str());
}

}  // namespace roleshare::bench
