// sim::PartialCodec — the serialization seam between the partial layer
// and its bytes on disk. The contract under test: the binary framed
// columnar format and the JSON text format are interchangeable down to
// the dump() byte level (decode(encode(D)).dump() == parse(D.dump())
// .dump() for every document), format detection picks the right codec
// from leading bytes alone, and malformed binary input is rejected with
// errors naming the origin — never decoded into a wrong document.
#include "sim/partial_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "sim/defection_experiment.hpp"
#include "util/framed_io.hpp"
#include "util/json.hpp"

namespace roleshare::sim {
namespace {

using util::json::Value;

/// A document shaped like the real shard partials: header echo fields,
/// nested panels, large all-finite sample arrays (the columnar case),
/// plus the awkward corners — empty arrays, mixed arrays, non-finite
/// numbers, embedded NULs.
Value representative_document() {
  Value doc = Value::object();
  doc.set("kind", "defection");
  doc.set("bench", "fig3_defection");
  doc.set("runs", 50);
  doc.set("agg", "exact");
  doc.set("run_begin", 0);
  doc.set("run_end", 25);
  doc.set("window_end", 50);
  Value panels = Value::array();
  for (int p = 0; p < 3; ++p) {
    Value panel = Value::object();
    panel.set("rate_pct", 20.0 * p);
    Value samples = Value::array();
    for (int i = 0; i < 200; ++i)
      samples.push_back(0.1 * i + 1e-9 * p - 3.5);
    panel.set("samples", std::move(samples));
    Value mixed = Value::array();
    mixed.push_back(1.0);
    mixed.push_back("not a number");
    mixed.push_back(Value());
    mixed.push_back(true);
    panel.set("mixed", std::move(mixed));
    panel.set("empty", Value::array());
    Value non_finite = Value::array();
    non_finite.push_back(std::nan(""));
    non_finite.push_back(std::numeric_limits<double>::infinity());
    non_finite.push_back(2.5);
    panel.set("non_finite", std::move(non_finite));
    panel.set("nul_key", std::string("a\0b", 3));
    panels.push_back(std::move(panel));
  }
  doc.set("panels", std::move(panels));
  return doc;
}

/// The canonical form every consumer sees: what parsing the JSON text
/// yields (non-finite numbers normalized to null, etc.).
std::string canonical_dump(const Value& doc) {
  return util::json::parse(doc.dump()).dump();
}

TEST(PartialCodec, FormatNamesRoundTrip) {
  EXPECT_STREQ(to_string(PartialFormat::Json), "json");
  EXPECT_STREQ(to_string(PartialFormat::Binary), "bin");
  EXPECT_EQ(parse_partial_format("json"), PartialFormat::Json);
  EXPECT_EQ(parse_partial_format("bin"), PartialFormat::Binary);
  EXPECT_EQ(parse_partial_format("binary"), PartialFormat::Binary);
  EXPECT_THROW(parse_partial_format("yaml"), std::invalid_argument);
}

TEST(PartialCodec, BothFormatsDecodeToTheCanonicalDocument) {
  const Value doc = representative_document();
  const std::string want = canonical_dump(doc);
  for (const PartialFormat format :
       {PartialFormat::Json, PartialFormat::Binary}) {
    const PartialCodec& codec = partial_codec(format);
    EXPECT_EQ(codec.format(), format);
    const std::string bytes = codec.encode(doc);
    const Value back = codec.decode(bytes, "round trip");
    EXPECT_EQ(back.dump(), want)
        << "format " << to_string(format)
        << " is distinguishable from the JSON path";
  }
}

TEST(PartialCodec, EncodeIsDeterministic) {
  const Value doc = representative_document();
  for (const PartialFormat format :
       {PartialFormat::Json, PartialFormat::Binary}) {
    const PartialCodec& codec = partial_codec(format);
    EXPECT_EQ(codec.encode(doc), codec.encode(doc));
    // encode ∘ decode is a fixpoint: re-encoding the decoded document
    // reproduces the bytes (the store-hit re-encode determinism).
    const std::string bytes = codec.encode(doc);
    EXPECT_EQ(codec.encode(codec.decode(bytes, "fixpoint")), bytes);
  }
}

TEST(PartialCodec, DetectionPicksTheCodecFromLeadingBytes) {
  const Value doc = representative_document();
  const std::string json =
      partial_codec(PartialFormat::Json).encode(doc);
  const std::string bin =
      partial_codec(PartialFormat::Binary).encode(doc);
  EXPECT_EQ(detect_partial_format(json, "x"), PartialFormat::Json);
  EXPECT_EQ(detect_partial_format(bin, "x"), PartialFormat::Binary);
  EXPECT_EQ(detect_partial_format("  \n\t{\"a\": 1}", "x"),
            PartialFormat::Json);
  // The universal read path hides the format entirely.
  EXPECT_EQ(decode_partial_document(json, "x").dump(),
            decode_partial_document(bin, "x").dump());
}

TEST(PartialCodec, DetectionNamesOriginOnGarbage) {
  for (const std::string garbage :
       {std::string("not a document"), std::string(""),
        std::string("RSRS....")}) {
    try {
      detect_partial_format(garbage, "mystery.file");
      FAIL() << "garbage accepted: " << garbage;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("mystery.file"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(PartialCodec, JsonDecodeErrorsNameTheOrigin) {
  try {
    partial_codec(PartialFormat::Json).decode("{broken", "bad.json");
    FAIL() << "malformed JSON accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad.json"), std::string::npos)
        << e.what();
  }
}

TEST(PartialCodec, BinaryTruncationAndTrailingBytesRejected) {
  const std::string bytes =
      partial_codec(PartialFormat::Binary).encode(representative_document());
  const PartialCodec& codec = partial_codec(PartialFormat::Binary);
  // Exhaustive over the frame scaffolding, sampled over the long payload.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 || len + 64 > bytes.size()) ? 1 : 37) {
    EXPECT_THROW(codec.decode(bytes.substr(0, len), "truncated"),
                 util::framed::Error)
        << "prefix of length " << len << " accepted";
  }
  EXPECT_THROW(codec.decode(bytes + "\n", "trailing"), util::framed::Error);
}

TEST(PartialCodec, RealPartialSurvivesEitherFormat) {
  DefectionExperimentConfig config;
  config.network.node_count = 50;
  config.network.seed = 4242;
  config.network.defection_rate = 0.15;
  config.runs = 4;
  config.rounds = 3;
  config.agg = AggBackend::Exact;
  const DefectionPartial partial = run_defection_partial(config);
  const std::string want = canonical_dump(partial.to_json());
  for (const PartialFormat format :
       {PartialFormat::Json, PartialFormat::Binary}) {
    const std::string bytes = encode_partial(partial, format);
    const DefectionPartial back =
        decode_partial<DefectionPartial>(bytes, "round trip");
    EXPECT_EQ(canonical_dump(back.to_json()), want)
        << "format " << to_string(format);
  }
}

TEST(PartialCodec, ColumnarEncodingWinsOnSampleHeavyDocuments) {
  // The size claim the binary format exists for: full-precision doubles
  // print as ~20 text bytes but travel as 8 binary ones, so documents
  // dominated by sample columns (10k-run exact shards) must shrink. (On
  // tiny documents the per-key framing overhead can make binary larger —
  // that's fine; nobody shards a 4-run experiment for size.)
  Value doc = Value::object();
  doc.set("kind", "reward");
  Value samples = Value::array();
  for (int i = 0; i < 4096; ++i) samples.push_back(std::sqrt(2.0) * i);
  doc.set("samples", std::move(samples));
  const std::size_t bin =
      partial_codec(PartialFormat::Binary).encode(doc).size();
  const std::size_t json =
      partial_codec(PartialFormat::Json).encode(doc).size();
  EXPECT_LT(bin, json / 2) << "binary " << bin << " vs json " << json;
}

}  // namespace
}  // namespace roleshare::sim
