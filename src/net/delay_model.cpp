#include "net/delay_model.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::net {

UniformDelay::UniformDelay(TimeMs lo, TimeMs hi) : lo_(lo), hi_(hi) {
  RS_REQUIRE(lo >= 0.0 && lo <= hi, "uniform delay range");
}

TimeMs UniformDelay::sample(util::Rng& rng, ledger::NodeId,
                            ledger::NodeId) const {
  if (lo_ == hi_) return lo_;
  return rng.uniform_real(lo_, hi_);
}

std::string UniformDelay::name() const {
  return "UniformDelay[" + std::to_string(lo_) + "," + std::to_string(hi_) +
         "]ms";
}

ExponentialDelay::ExponentialDelay(TimeMs base, TimeMs mean_extra)
    : base_(base), mean_extra_(mean_extra) {
  RS_REQUIRE(base >= 0.0, "exponential delay base");
  RS_REQUIRE(mean_extra > 0.0, "exponential delay mean");
}

TimeMs ExponentialDelay::sample(util::Rng& rng, ledger::NodeId,
                                ledger::NodeId) const {
  double u;
  do {
    u = rng.uniform01();
  } while (u <= 0.0);
  return base_ - mean_extra_ * std::log(u);
}

std::string ExponentialDelay::name() const {
  return "ExpDelay[base=" + std::to_string(base_) +
         ",mean=" + std::to_string(mean_extra_) + "]ms";
}

ConstantDelay::ConstantDelay(TimeMs value) : value_(value) {
  RS_REQUIRE(value >= 0.0, "constant delay");
}

TimeMs ConstantDelay::sample(util::Rng&, ledger::NodeId,
                             ledger::NodeId) const {
  return value_;
}

std::string ConstantDelay::name() const {
  return "ConstDelay[" + std::to_string(value_) + "]ms";
}

std::unique_ptr<DelayModel> make_uniform_delay(TimeMs lo, TimeMs hi) {
  return std::make_unique<UniformDelay>(lo, hi);
}

std::unique_ptr<DelayModel> make_exponential_delay(TimeMs base,
                                                   TimeMs mean_extra) {
  return std::make_unique<ExponentialDelay>(base, mean_extra);
}

std::unique_ptr<DelayModel> make_constant_delay(TimeMs value) {
  return std::make_unique<ConstantDelay>(value);
}

}  // namespace roleshare::net
