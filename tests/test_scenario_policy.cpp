// Scenario-policy layer: adaptive / stake-correlated defection and churn.
// Covers behaviour re-labelling, stake-percentile monotonicity, churn
// determinism + floor, live-node indexing in the round engine, and
// bit-identity of policy-driven experiments across outer thread counts
// (inner thread counts are covered in test_inner_parallel.cpp).
#include "sim/scenario_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/defection_experiment.hpp"
#include "sim/round_engine.hpp"
#include "sim/strategic_loop.hpp"

namespace roleshare::sim {
namespace {

using game::Strategy;

NetworkConfig small_network(std::uint64_t seed) {
  NetworkConfig config;
  config.node_count = 80;
  config.seed = seed;
  return config;
}

TEST(ScenarioPolicy, AdaptiveConvertsTheScriptedCohort) {
  NetworkConfig net_config = small_network(3);
  net_config.defection_rate = 0.2;
  Network net(net_config);
  std::size_t scripted = 0;
  for (std::size_t v = 0; v < net.node_count(); ++v)
    if (net.behavior(v) == BehaviorType::ScriptedDefect) ++scripted;
  ASSERT_GT(scripted, 0u);

  ScenarioPolicyConfig config;
  config.kind = PolicyKind::AdaptiveDefect;
  ScenarioPolicy policy(config, net);
  std::size_t adaptive = 0;
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    EXPECT_NE(net.behavior(v), BehaviorType::ScriptedDefect);
    if (net.behavior(v) == BehaviorType::AdaptiveDefect) ++adaptive;
  }
  EXPECT_EQ(adaptive, scripted);

  // Before any observed round, adaptive candidates cooperate.
  policy.begin_round(0, nullptr, util::InnerExecutor{});
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    if (net.behavior(v) == BehaviorType::AdaptiveDefect)
      EXPECT_EQ(net.strategies()[v], Strategy::Cooperate);
  }
}

TEST(ScenarioPolicy, StakeCorrelatedDefectionFallsWithStake) {
  Network net(small_network(5));
  ScenarioPolicyConfig config;
  config.kind = PolicyKind::StakeCorrelatedDefect;
  config.defect_at_bottom = 0.8;
  config.defect_at_top = 0.0;
  ScenarioPolicy policy(config, net);

  // Identify the bottom and top stake quartiles.
  std::vector<std::size_t> order(net.node_count());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = v;
  const auto stakes = net.accounts().stakes();
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return stakes[a] < stakes[b];
                   });

  // Count defections per node over many policy rounds.
  std::vector<std::size_t> defections(net.node_count(), 0);
  for (std::size_t r = 0; r < 50; ++r) {
    policy.begin_round(r, nullptr, util::InnerExecutor{});
    for (std::size_t v = 0; v < net.node_count(); ++v)
      if (net.strategies()[v] == Strategy::Defect) ++defections[v];
  }
  const std::size_t quartile = net.node_count() / 4;
  std::size_t bottom = 0, top = 0;
  for (std::size_t i = 0; i < quartile; ++i) {
    bottom += defections[order[i]];
    top += defections[order[order.size() - 1 - i]];
  }
  // Bottom-stake nodes defect with p ~0.7+, top-stake with p ~0.1-.
  EXPECT_GT(bottom, 2 * top);
}

TEST(ScenarioPolicy, ChurnIsDeterministicAndRespectsTheFloor) {
  ChurnSchedule schedule;
  schedule.leave_probability = 0.3;
  schedule.join_probability = 0.1;
  schedule.min_live = 60;

  auto run_masks = [&]() {
    Network net(small_network(11));
    const util::Rng root = scenario_policy_root(net.config().seed);
    std::vector<std::vector<std::uint8_t>> masks;
    for (std::size_t r = 0; r < 10; ++r) {
      const std::size_t live = apply_churn(net, schedule, root, r);
      EXPECT_GE(live, schedule.min_live);
      EXPECT_EQ(live, net.live_count());
      masks.push_back(net.live_mask());
    }
    return masks;
  };
  const auto a = run_masks();
  const auto b = run_masks();
  EXPECT_EQ(a, b);  // same seed -> same join/leave pattern, always

  // The live set actually changes round over round.
  bool varied = false;
  for (std::size_t r = 1; r < a.size(); ++r)
    varied = varied || a[r] != a[r - 1];
  EXPECT_TRUE(varied);
}

TEST(ScenarioPolicy, ChurnFloorValidation) {
  Network net(small_network(13));
  ChurnSchedule schedule;
  schedule.leave_probability = 0.5;
  schedule.min_live = 0;
  const util::Rng root = scenario_policy_root(net.config().seed);
  EXPECT_THROW(apply_churn(net, schedule, root, 0), std::invalid_argument);
}

TEST(RoundEngine, DepartedNodesAreExcludedFromTheRound) {
  NetworkConfig config = small_network(17);
  Network net(config);
  // Remove a third of the population before the round.
  const std::size_t n = net.node_count();
  for (std::size_t v = 0; v < n; v += 3) net.set_live(v, false);
  const std::size_t live = net.live_count();
  ASSERT_LT(live, n);

  RoundEngine engine(net,
                     consensus::ConsensusParams::scaled_for(
                         net.accounts().total_stake()),
                     nullptr);
  const RoundResult result = engine.run_round();
  EXPECT_EQ(result.live_count, live);
  // Departed nodes never extract a block, earn a role, or carry reward
  // stake.
  for (std::size_t v = 0; v < n; v += 3) {
    EXPECT_EQ(result.outcomes[v], NodeOutcome::NoBlock);
    EXPECT_EQ(result.roles->role(v), consensus::Role::Other);
    EXPECT_EQ(result.roles->stake(v), 0);
    EXPECT_EQ(result.roles_true->role(v), consensus::Role::Other);
  }
  // Fractions are normalized over the live population.
  std::size_t finals = 0;
  for (const NodeOutcome o : result.outcomes)
    if (o == NodeOutcome::Final) ++finals;
  EXPECT_DOUBLE_EQ(result.final_fraction,
                   static_cast<double>(finals) / static_cast<double>(live));
}

DefectionExperimentConfig policy_experiment(PolicyKind kind, bool churn,
                                            std::size_t threads) {
  DefectionExperimentConfig config;
  config.network = small_network(29);
  config.runs = 4;
  config.rounds = 5;
  config.threads = threads;
  config.policy.kind = kind;
  switch (kind) {
    case PolicyKind::Scripted:
    case PolicyKind::AdaptiveDefect:
      config.network.defection_rate = 0.15;
      break;
    case PolicyKind::StakeCorrelatedDefect:
      config.policy.defect_at_bottom = 0.4;
      config.policy.defect_at_top = 0.0;
      break;
  }
  if (churn) {
    config.policy.churn.leave_probability = 0.1;
    config.policy.churn.join_probability = 0.2;
    config.policy.churn.min_live = 20;
  }
  return config;
}

void expect_series_equal(const DefectionSeries& a, const DefectionSeries& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].final_pct, b.rounds[r].final_pct) << "round " << r;
    EXPECT_EQ(a.rounds[r].tentative_pct, b.rounds[r].tentative_pct);
    EXPECT_EQ(a.rounds[r].none_pct, b.rounds[r].none_pct);
  }
  EXPECT_EQ(a.live_series, b.live_series);
  EXPECT_EQ(a.cooperation_series, b.cooperation_series);
  EXPECT_EQ(a.runs_with_progress, b.runs_with_progress);
  EXPECT_EQ(a.min_live, b.min_live);
  EXPECT_EQ(a.max_live, b.max_live);
}

TEST(ScenarioPolicy, PoliciesBitIdenticalAcrossOuterThreads) {
  for (const PolicyKind kind :
       {PolicyKind::AdaptiveDefect, PolicyKind::StakeCorrelatedDefect}) {
    for (const bool churn : {false, true}) {
      const DefectionSeries serial =
          run_defection_experiment(policy_experiment(kind, churn, 1));
      const DefectionSeries parallel =
          run_defection_experiment(policy_experiment(kind, churn, 4));
      expect_series_equal(serial, parallel);
    }
  }
}

TEST(ScenarioPolicy, ChurnProducesRoundVaryingLiveCounts) {
  const DefectionSeries series = run_defection_experiment(
      policy_experiment(PolicyKind::Scripted, /*churn=*/true, 1));
  EXPECT_LT(series.min_live, series.max_live);
  EXPECT_GE(series.min_live, 20u);  // the floor
  // Without churn the live series is flat at node_count.
  const DefectionSeries flat = run_defection_experiment(
      policy_experiment(PolicyKind::Scripted, /*churn=*/false, 1));
  EXPECT_EQ(flat.min_live, flat.max_live);
  EXPECT_EQ(flat.max_live, 80u);
}

TEST(ScenarioPolicy, DisabledPolicyMatchesLegacyExperiment) {
  // A default (scripted, churn-free) policy must leave the experiment
  // bit-identical to the pre-policy code path: same seeds, same streams.
  DefectionExperimentConfig config = policy_experiment(
      PolicyKind::Scripted, /*churn=*/false, 1);
  ASSERT_FALSE(config.policy.enabled());
  const DefectionSeries a = run_defection_experiment(config);
  const DefectionSeries b = run_defection_experiment(config);
  expect_series_equal(a, b);
}

TEST(StrategicLoop, ChurnKeepsTheLoopDeterministic) {
  StrategicLoopConfig config;
  config.network = small_network(31);
  config.network.node_count = 60;
  config.rounds = 4;
  // Foundation scheme: its Table-III budget stays well-defined however
  // churn reshapes the live role sets (the role-based optimizer requires
  // a non-empty Others set, which a shrunken committee-heavy population
  // cannot guarantee).
  config.scheme = SchemeChoice::FoundationStakeProportional;
  config.churn.leave_probability = 0.1;
  config.churn.join_probability = 0.2;
  config.churn.min_live = 30;

  const StrategicLoopResult a = run_strategic_loop(config);
  const StrategicLoopResult b = run_strategic_loop(config);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  bool live_varied = false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].cooperation_fraction,
              b.rounds[r].cooperation_fraction);
    EXPECT_EQ(a.rounds[r].final_fraction, b.rounds[r].final_fraction);
    EXPECT_EQ(a.rounds[r].live, b.rounds[r].live);
    EXPECT_GE(a.rounds[r].live, 30u);
    live_varied = live_varied || a.rounds[r].live != 60u;
  }
  EXPECT_TRUE(live_varied);
  EXPECT_EQ(a.final_cooperation, b.final_cooperation);
}

TEST(Behavior, PolicyDrivenTypesHaveExhaustiveNames) {
  EXPECT_EQ(to_string(BehaviorType::AdaptiveDefect), "adaptive-defect");
  EXPECT_EQ(to_string(BehaviorType::StakeCorrelatedDefect),
            "stake-correlated-defect");
  EXPECT_EQ(to_string(PolicyKind::Scripted), "scripted");
  EXPECT_EQ(to_string(PolicyKind::AdaptiveDefect), "adaptive");
  EXPECT_EQ(to_string(PolicyKind::StakeCorrelatedDefect),
            "stake-correlated");
  // Out-of-range values fail loudly instead of labelling bench JSON "?".
  EXPECT_THROW(to_string(static_cast<BehaviorType>(250)),
               std::invalid_argument);
  EXPECT_THROW(to_string(static_cast<PolicyKind>(250)),
               std::invalid_argument);
}

TEST(Behavior, StakeCorrelatedUsesTheContextProbability) {
  util::Rng rng(7);
  SelfishContext always;
  always.defect_probability = 1.0;
  EXPECT_EQ(choose_strategy(BehaviorType::StakeCorrelatedDefect,
                            econ::CostModel{}, always, rng),
            Strategy::Defect);
  SelfishContext never;
  never.defect_probability = 0.0;
  EXPECT_EQ(choose_strategy(BehaviorType::StakeCorrelatedDefect,
                            econ::CostModel{}, never, rng),
            Strategy::Cooperate);
  SelfishContext invalid;
  invalid.defect_probability = 1.5;
  EXPECT_THROW(choose_strategy(BehaviorType::StakeCorrelatedDefect,
                               econ::CostModel{}, invalid, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::sim
