#include "sim/sampled_round.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <type_traits>

#include "consensus/binary_ba.hpp"
#include "consensus/reduction.hpp"
#include "crypto/hash.hpp"
#include "ledger/block.hpp"
#include "net/sim_time.hpp"
#include "sim/network.hpp"
#include "sim/round_engine.hpp"
#include "sim/round_workspace.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

using consensus::Role;
using crypto::Hash256;
using game::Strategy;
using ledger::NodeId;

/// Synthesized sortition output for a sampled seat winner — the stand-in
/// for the VRF output the per-node model would carry on its votes. Feeds
/// the common-coin hash exactly where vrf.output would.
Hash256 sampled_vrf_output(const Hash256& prev_seed, ledger::Round round,
                           std::uint32_t step, NodeId node) {
  return crypto::HashBuilder("roleshare.sampled.vrf")
      .add(prev_seed)
      .add_u64(round)
      .add_u64(step)
      .add_u64(node)
      .build();
}

/// Synthesized proposer priority (the PerNodeVrf model's best sub-user
/// priority hash). Highest wins, ties toward the lower block hash.
std::uint64_t sampled_priority(const Hash256& prev_seed, ledger::Round round,
                               NodeId node) {
  return crypto::HashBuilder("roleshare.sampled.priority")
      .add(prev_seed)
      .add_u64(round)
      .add_u64(node)
      .build()
      .prefix_u64();
}

/// One mean-field population arrival: `hops` per-hop delays from the
/// origin's private stream, scaled by the round's synchrony factor.
/// hops == 0 means no relay path exists.
net::TimeMs mean_field_arrival(util::Rng& origin_rng, const Network& net,
                               NodeId origin, std::uint32_t hops,
                               double delay_factor) {
  if (hops == 0) return net::kNever;
  net::TimeMs arrival = 0.0;
  for (std::uint32_t h = 0; h < hops; ++h)
    arrival += net.delays().sample(origin_rng, origin, origin) * delay_factor;
  return arrival;
}

/// Adds node v to the round's touched set (first-touch order) and returns
/// its slot. reward_stake is captured at first touch: stake in Algos, 0
/// when offline — the dense path's reward-snapshot rule.
std::size_t touch(SparseRoundWorkspace& ws, SparseRoundResult& out,
                  const SparseRoundContext& ctx, NodeId v) {
  if (ws.touched_epoch[v] == ws.round_epoch) return ws.touched_slot[v];
  ws.touched_epoch[v] = ws.round_epoch;
  ws.touched_slot[v] = static_cast<std::uint32_t>(out.touched.size());
  SparseNodeRole entry;
  entry.node = v;
  entry.reward_stake = ctx.online(v) ? ctx.index().stake_of(v) : 0;
  out.touched.push_back(entry);
  return ws.touched_slot[v];
}

/// Draws `tau` seats with replacement from the stake index on `stream`,
/// collecting the distinct winners in first-draw order with their seat
/// counts. O(tau · log N).
void elect_into(const SparseRoundContext& ctx, util::Rng stream,
                std::uint64_t tau, SparseRoundWorkspace& ws) {
  ++ws.elect_epoch;
  ws.members.clear();
  ws.weights.clear();
  for (std::uint64_t seat = 0; seat < tau; ++seat) {
    const std::size_t v = ctx.index().sample(stream);
    if (ws.seat_epoch[v] != ws.elect_epoch) {
      ws.seat_epoch[v] = ws.elect_epoch;
      ws.seat_slot[v] = static_cast<std::uint32_t>(ws.members.size());
      ws.members.push_back(static_cast<NodeId>(v));
      ws.weights.push_back(0);
    }
    ++ws.weights[ws.seat_slot[v]];
  }
}

struct RepresentativeStep {
  std::optional<Hash256> winner;
  bool coin = false;
};

}  // namespace

std::uint32_t mean_field_hops(std::size_t online, std::size_t relays,
                              std::size_t fan_out) {
  if (relays == 0 || online == 0) return 0;
  if (online <= 1) return 1;
  // Branching factor of the relay flood: each hop multiplies coverage by
  // 1 + fan_out * (relay fraction). ceil(log_b(online)) hops blanket the
  // online population; the cap keeps a vanishing relay fraction from
  // turning into thousands of per-message delay draws.
  const double rho = static_cast<double>(relays) / static_cast<double>(online);
  const double b = 1.0 + static_cast<double>(fan_out) * rho;
  const double hops =
      std::ceil(std::log(static_cast<double>(online)) / std::log(b));
  if (!(hops >= 1.0)) return 1;
  return static_cast<std::uint32_t>(std::min(hops, 64.0));
}

void SparseRoundContext::init_from(const Network& net) {
  const std::size_t n = net.node_count();
  online_.assign(n, 0);
  relay_.assign(n, 0);
  online_count_ = 0;
  relay_count_ = 0;
  online_stake_ = 0;
  const std::vector<Strategy>& strategies = net.strategies();
  std::vector<std::int64_t> stakes(n, 0);
  net.accounts().stakes_into(stakes);
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<NodeId>(v);
    if (!net.live(id)) {
      stakes[v] = 0;
      continue;
    }
    if (strategies[v] != Strategy::Offline) {
      online_[v] = 1;
      ++online_count_;
      online_stake_ += stakes[v];
    }
    if (strategies[v] == Strategy::Cooperate) {
      relay_[v] = 1;
      ++relay_count_;
    }
  }
  index_.rebuild(stakes);
}

void SparseRoundContext::refresh_node(const Network& net, NodeId v) {
  RS_REQUIRE(static_cast<std::size_t>(v) < index_.size(),
             "sparse context: node out of range");
  const bool live = net.live(v);
  const Strategy strategy = net.strategies()[v];
  const std::int64_t stake = live ? net.accounts().stake(v) : 0;
  const bool online = live && strategy != Strategy::Offline;
  const bool relay = live && strategy == Strategy::Cooperate;

  const std::int64_t old_stake = index_.stake_of(v);
  const bool was_online = online_[v] != 0;
  if (was_online) online_stake_ -= old_stake;
  if (online) online_stake_ += stake;
  online_count_ += (online ? 1 : 0) - (was_online ? 1 : 0);
  relay_count_ += (relay ? 1 : 0) - (relay_[v] != 0 ? 1 : 0);
  online_[v] = online ? 1 : 0;
  relay_[v] = relay ? 1 : 0;
  index_.update(v, stake);
}

std::size_t SparseRoundWorkspace::capacity_bytes() const {
  auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return bytes(touched_epoch) + bytes(touched_slot) + bytes(seat_epoch) +
         bytes(seat_slot) + bytes(members) + bytes(weights) +
         bytes(origin_labels) + bytes(origin_seeds) + bytes(proposer_ids) +
         bytes(proposer_priorities) + bytes(proposal_arrivals) +
         bytes(proposal_hashes) + bytes(proposal_blocks);
}

void run_sampled_round_into(Network& net,
                            const consensus::ConsensusParams& params,
                            SparseRoundResult& out,
                            const SparseRoundContext& ctx,
                            SparseRoundWorkspace& ws) {
  RS_REQUIRE(params.committee_model == consensus::CommitteeModel::Sampled,
             "sparse round path requires CommitteeModel::Sampled");
  const std::size_t n = net.node_count();
  RS_REQUIRE(ctx.size() == n, "sparse context population mismatch");
  const std::int64_t total_stake = ctx.index().total();
  RS_REQUIRE(total_stake > 0,
             "network has no live stake — churn floor left no live nodes");

  const ledger::Round round = net.chain().next_round();
  util::Rng rng = net.round_rng(round);
  // Same stream tree as the dense engine: `rng` feeds the synchrony draw,
  // gossip delays hang off split("gossip") per (step, origin), and seat
  // draws off split("election") per step (DESIGN.md §4, §10).
  const util::Rng gossip_root = rng.split("gossip");
  const util::Rng election_root = rng.split("election");

  if (ws.touched_epoch.size() != n) {
    ws.touched_epoch.assign(n, 0);
    ws.touched_slot.assign(n, 0);
    ws.seat_epoch.assign(n, 0);
    ws.seat_slot.assign(n, 0);
    ws.round_epoch = 0;
    ws.elect_epoch = 0;
  }
  ++ws.round_epoch;
  out.touched.clear();

  out.round = round;
  out.live_count = net.live_count();
  out.online_count = ctx.online_count();
  out.online_stake = ctx.online_stake();
  out.synchrony = net.synchrony().advance_round(rng);
  out.non_empty_block = false;
  out.online_outcome = NodeOutcome::NoBlock;

  const double delay_factor = net.synchrony().delay_factor();
  const std::uint32_t hops = mean_field_hops(
      ctx.online_count(), ctx.relay_count(), net.config().fan_out);

  const Hash256 prev_seed = net.chain().current_seed();
  const Hash256 next_seed = net.chain().next_seed();
  const Hash256 tip_hash = net.chain().tip().hash();
  const ledger::Block empty_block =
      ledger::Block::empty(round, tip_hash, next_seed);
  const Hash256 empty_hash = empty_block.hash();

  const std::vector<Strategy>& strategies = net.strategies();

  // ---- Block proposal phase -------------------------------------------
  elect_into(ctx, election_root.split(consensus::kProposerStep),
             params.expected_proposer_stake, ws);

  // Cooperating winners broadcast; the best-priority proposal whose
  // mean-field arrival beats the proposal timeout becomes the shared
  // view. The broadcasts live as parallel workspace arrays so the round
  // allocates nothing here beyond each block's transaction list.
  ws.proposer_ids.clear();
  ws.proposer_priorities.clear();
  ws.proposal_arrivals.clear();
  ws.proposal_hashes.clear();
  ws.proposal_blocks.clear();

  const util::Rng proposer_stream =
      gossip_root.split(consensus::kProposerStep);
  ws.origin_labels.clear();
  for (std::size_t i = 0; i < ws.members.size(); ++i) {
    const NodeId v = ws.members[i];
    const std::size_t slot = touch(ws, out, ctx, v);
    out.touched[slot].role_true = Role::Leader;
    if (strategies[v] != Strategy::Cooperate) continue;
    out.touched[slot].role_observed = Role::Leader;
    ws.proposer_ids.push_back(v);
    ws.origin_labels.push_back(v);
  }
  const std::size_t np = ws.proposer_ids.size();
  ws.origin_seeds.resize(np);
  proposer_stream.derive_seeds(ws.origin_labels, ws.origin_seeds);
  for (std::size_t p = 0; p < np; ++p) {
    const NodeId v = ws.proposer_ids[p];
    util::Rng prng(ws.origin_seeds[p]);
    ws.proposer_priorities.push_back(sampled_priority(prev_seed, round, v));
    ws.proposal_arrivals.push_back(
        mean_field_arrival(prng, net, v, hops, delay_factor));
    ws.proposal_blocks.push_back(
        ledger::Block::make(round, tip_hash, next_seed,
                            net.keys()[v].public_key(), net.txpool().peek(64)));
    ws.proposal_hashes.push_back(ws.proposal_blocks.back().hash());
  }
  out.proposals = np;

  // The shared view: best timely proposal by (priority, lower hash).
  int best = -1;
  for (std::size_t p = 0; p < np; ++p) {
    if (ws.proposal_arrivals[p] > params.proposal_timeout_ms) continue;
    const auto b = static_cast<std::size_t>(best);
    if (best < 0 || ws.proposer_priorities[p] > ws.proposer_priorities[b] ||
        (ws.proposer_priorities[p] == ws.proposer_priorities[b] &&
         ws.proposal_hashes[p] < ws.proposal_hashes[b])) {
      best = static_cast<int>(p);
    }
  }

  // ---- Representative vote steps ---------------------------------------
  // Every online node shares the same view, so one tally serves the whole
  // population. Rules mirror run_vote_step: weights of timely votes,
  // winner iff strictly above quorum, coin from the lsb of the minimum
  // coin hash among timely votes.
  const auto vote_step = [&](std::uint32_t step, std::uint64_t tau,
                             double quorum,
                             const std::optional<Hash256>& value)
      -> RepresentativeStep {
    RepresentativeStep result;
    elect_into(ctx, election_root.split(step), tau, ws);
    const util::Rng step_stream = gossip_root.split(step);
    ws.origin_labels.clear();
    for (std::size_t i = 0; i < ws.members.size(); ++i) {
      const NodeId v = ws.members[i];
      const std::size_t slot = touch(ws, out, ctx, v);
      if (out.touched[slot].role_true == Role::Other)
        out.touched[slot].role_true = Role::Committee;
      if (strategies[v] != Strategy::Cooperate) continue;
      if (!value.has_value()) continue;
      if (out.touched[slot].role_observed == Role::Other)
        out.touched[slot].role_observed = Role::Committee;
      ws.origin_labels.push_back(i);  // index into members/weights
    }
    if (!value.has_value() || ws.origin_labels.empty()) return result;

    // One arrival per vote, on the voter's (step, origin) stream.
    const std::size_t nv = ws.origin_labels.size();
    ws.origin_seeds.resize(nv);
    for (std::size_t j = 0; j < nv; ++j)
      ws.origin_labels[j] = ws.members[ws.origin_labels[j]];
    // origin_labels now holds voter ids; re-derive the member slots from
    // seat bookkeeping for the weights.
    step_stream.derive_seeds(ws.origin_labels, ws.origin_seeds);

    std::uint64_t tally = 0;
    bool any = false;
    Hash256 min_coin_hash;
    for (std::size_t j = 0; j < nv; ++j) {
      const NodeId voter = static_cast<NodeId>(ws.origin_labels[j]);
      util::Rng vrng(ws.origin_seeds[j]);
      const net::TimeMs arrival =
          mean_field_arrival(vrng, net, voter, hops, delay_factor);
      if (arrival > params.step_timeout_ms) continue;
      tally += ws.weights[ws.seat_slot[voter]];
      const Hash256 vrf = sampled_vrf_output(prev_seed, round, step, voter);
      const Hash256 coin_hash =
          crypto::HashBuilder("roleshare.coin").add(vrf).build();
      if (!any || coin_hash < min_coin_hash) {
        min_coin_hash = coin_hash;
        any = true;
      }
    }
    if (static_cast<double>(tally) > quorum) result.winner = value;
    result.coin = any && (min_coin_hash.bytes().back() & 1) != 0;
    return result;
  };

  const double step_quorum = params.step_quorum();
  const std::optional<Hash256> best_proposal =
      best >= 0 ? std::optional<Hash256>(
                      ws.proposal_hashes[static_cast<std::size_t>(best)])
                : std::nullopt;

  const RepresentativeStep step1 = vote_step(
      consensus::kReductionStep1, params.expected_step_stake, step_quorum,
      consensus::reduction_step1_value(best_proposal, empty_hash));
  const RepresentativeStep step2 =
      vote_step(consensus::kReductionStep2, params.expected_step_stake,
                step_quorum, step1.winner.value_or(empty_hash));

  consensus::BinaryBaState ba(step2.winner.value_or(empty_hash), empty_hash,
                              params.max_binary_iterations);
  const std::uint32_t last_step =
      consensus::kFirstBinaryStep + 3 * params.max_binary_iterations;
  for (std::uint32_t step = consensus::kFirstBinaryStep;
       step < last_step && out.online_count > 0 && ba.running(); ++step) {
    const std::optional<Hash256> value =
        ba.step_number() == step ? std::optional<Hash256>(ba.vote_value())
                                 : std::nullopt;
    const RepresentativeStep s =
        vote_step(step, params.expected_step_stake, step_quorum, value);
    if (ba.step_number() == step) ba.advance(s.winner, s.coin);
  }

  const RepresentativeStep final_step = vote_step(
      consensus::kFinalStep, params.expected_final_stake,
      params.final_quorum(),
      ba.concluded_in_first_iteration() && ba.result() != empty_hash
          ? std::optional<Hash256>(ba.result())
          : std::nullopt);

  // ---- Outcome ---------------------------------------------------------
  const auto body_received = [&](const Hash256& h) {
    if (h == empty_hash) return true;  // derived locally
    for (std::size_t p = 0; p < np; ++p)
      if (ws.proposal_hashes[p] == h)
        return ws.proposal_arrivals[p] < net::kNever;
    return false;
  };

  if (out.online_count > 0) {
    if (final_step.winner.has_value()) {
      out.online_outcome = body_received(*final_step.winner)
                               ? NodeOutcome::Final
                               : NodeOutcome::NoBlock;
    } else if (ba.status() == consensus::BaStatus::ConcludedBlock ||
               ba.status() == consensus::BaStatus::ConcludedEmpty) {
      out.online_outcome = body_received(ba.result())
                               ? NodeOutcome::Tentative
                               : NodeOutcome::NoBlock;
    }
  }

  const auto live_n = static_cast<double>(out.live_count);
  const double online_share =
      live_n > 0.0 ? static_cast<double>(out.online_count) / live_n : 0.0;
  out.final_fraction =
      out.online_outcome == NodeOutcome::Final ? online_share : 0.0;
  out.tentative_fraction =
      out.online_outcome == NodeOutcome::Tentative ? online_share : 0.0;
  out.none_fraction = 1.0 - out.final_fraction - out.tentative_fraction;

  // ---- Canonical chain append -----------------------------------------
  // The dense rule is the plurality over online nodes' conclusions; with a
  // shared view there is exactly one conclusion (or none when nobody is
  // online).
  int agreed = -1;
  if (out.online_count > 0 &&
      ba.status() == consensus::BaStatus::ConcludedBlock) {
    for (std::size_t p = 0; p < np; ++p) {
      if (ws.proposal_hashes[p] != ba.result()) continue;
      agreed = static_cast<int>(p);
      break;
    }
  }
  if (agreed >= 0) {
    ledger::Block block = ws.proposal_blocks[static_cast<std::size_t>(agreed)];
    net.txpool().mark_included(block.transactions());
    const bool ok = net.chain().append(std::move(block));
    RS_ENSURE(ok, "agreed block must extend the chain");
    out.non_empty_block = !net.chain().tip().is_empty();
  } else {
    const bool ok = net.chain().append(empty_block);
    RS_ENSURE(ok, "empty block must extend the chain");
  }
}

void expand_sparse_into(const Network& net, const SparseRoundResult& sparse,
                        RoundResult& result, RoundWorkspace& ws) {
  const std::size_t n = net.node_count();
  result.round = sparse.round;
  result.live_count = sparse.live_count;
  result.final_fraction = sparse.final_fraction;
  result.tentative_fraction = sparse.tentative_fraction;
  result.none_fraction = sparse.none_fraction;
  result.non_empty_block = sparse.non_empty_block;
  result.proposals = sparse.proposals;
  result.synchrony = sparse.synchrony;

  const std::vector<Strategy>& strategies = net.strategies();
  result.outcomes.assign(n, NodeOutcome::NoBlock);
  ws.observed_roles.assign(n, Role::Other);
  ws.true_roles.assign(n, Role::Other);
  net.accounts().stakes_into(ws.reward_stakes);
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<NodeId>(v);
    const bool online =
        net.live(id) && strategies[v] != Strategy::Offline;
    if (online) result.outcomes[v] = sparse.online_outcome;
    if (!online) ws.reward_stakes[v] = 0;
  }
  for (const SparseNodeRole& t : sparse.touched) {
    ws.true_roles[t.node] = t.role_true;
    ws.observed_roles[t.node] = t.role_observed;
  }
  ws.reward_stakes_true.assign(ws.reward_stakes.begin(),
                               ws.reward_stakes.end());
  if (!result.roles_true.has_value())
    result.roles_true.emplace(std::vector<Role>{},
                              std::vector<std::int64_t>{});
  result.roles_true->reset(ws.true_roles, ws.reward_stakes_true);
  if (!result.roles.has_value())
    result.roles.emplace(std::vector<Role>{}, std::vector<std::int64_t>{});
  result.roles->reset(ws.observed_roles, ws.reward_stakes);
}

}  // namespace roleshare::sim
