#include "sim/defection_experiment.hpp"

#include <algorithm>
#include <optional>

#include "sim/aggregators.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/round_engine.hpp"

namespace roleshare::sim {

namespace {

/// What one run contributes to the aggregate: per-round outcome
/// percentages plus the liveness flag. Small and trivially movable so the
/// thread-pool fan-out stays cheap.
struct DefectionRun {
  struct RoundFractions {
    double final_pct = 0.0;
    double tentative_pct = 0.0;
    double none_pct = 0.0;
    double live = 0.0;      // live-node count this round
    double coop_pct = 0.0;  // % of live nodes playing Cooperate
  };
  std::vector<RoundFractions> rounds;
  bool progress = false;
};

DefectionRun execute_run(const DefectionExperimentConfig& config,
                         std::uint64_t run_seed,
                         util::ThreadPool* inner_pool) {
  NetworkConfig net_config = config.network;
  net_config.seed = run_seed;
  Network network(net_config);

  consensus::ConsensusParams params = config.params;
  if (config.scale_params_to_stake) {
    params = consensus::ConsensusParams::scaled_for(
        network.accounts().total_stake());
    params.step_threshold = config.params.step_threshold;
    params.final_threshold = config.params.final_threshold;
    params.max_binary_iterations = config.params.max_binary_iterations;
    params.proposal_timeout_ms = config.params.proposal_timeout_ms;
    params.step_timeout_ms = config.params.step_timeout_ms;
  }

  RoundEngine engine(network, params, inner_pool);
  // The policy layer only engages when it changes anything; a disabled
  // policy keeps the run bit-identical to the pre-policy experiment.
  std::optional<ScenarioPolicy> policy;
  if (config.policy.enabled()) {
    ScenarioPolicyConfig policy_config = config.policy;
    // Adaptive candidates must best-respond in the game this run's
    // consensus actually plays.
    policy_config.committee_threshold = params.step_threshold;
    policy.emplace(policy_config, network);
  }

  DefectionRun run;
  run.rounds.reserve(config.rounds);
  RoundResult last;
  for (std::size_t r = 0; r < config.rounds; ++r) {
    if (policy)
      policy->begin_round(r, r > 0 ? &last : nullptr, engine.executor());
    RoundResult result = engine.run_round();
    std::size_t coop = 0;
    const auto& strategies = network.strategies();
    for (std::size_t v = 0; v < strategies.size(); ++v) {
      if (network.live(static_cast<ledger::NodeId>(v)) &&
          strategies[v] == game::Strategy::Cooperate)
        ++coop;
    }
    run.rounds.push_back({result.final_fraction * 100.0,
                          result.tentative_fraction * 100.0,
                          result.none_fraction * 100.0,
                          static_cast<double>(result.live_count),
                          100.0 * static_cast<double>(coop) /
                              static_cast<double>(result.live_count)});
    run.progress = run.progress || result.non_empty_block;
    last = std::move(result);
  }
  return run;
}

}  // namespace

DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config) {
  const ExperimentSpec spec{config.runs, config.rounds, config.network.seed,
                            config.threads, config.inner_threads};
  OutcomeMetrics metrics(config.rounds);
  PerRoundSamples live_samples(config.rounds);
  PerRoundSamples coop_samples(config.rounds);
  std::size_t runs_with_progress = 0;
  std::size_t min_live = 0, max_live = 0;
  bool any_live = false;

  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        // The network rebuilds its stream from a scalar seed, so hand it
        // this run's seed material (== root.split(run)).
        return execute_run(config, rng.seed_material(), ctx.inner_pool);
      },
      [&](std::size_t, DefectionRun run) {
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          metrics.record(r, run.rounds[r].final_pct,
                         run.rounds[r].tentative_pct, run.rounds[r].none_pct);
          live_samples.record(r, run.rounds[r].live);
          coop_samples.record(r, run.rounds[r].coop_pct);
          const auto live = static_cast<std::size_t>(run.rounds[r].live);
          min_live = any_live ? std::min(min_live, live) : live;
          max_live = any_live ? std::max(max_live, live) : live;
          any_live = true;
        }
        if (run.progress) ++runs_with_progress;
      });

  DefectionSeries series;
  series.rounds = metrics.aggregate(config.trim_fraction);
  series.runs_with_progress = static_cast<double>(runs_with_progress) /
                              static_cast<double>(config.runs);
  series.live_series = live_samples.mean_series();
  series.cooperation_series = coop_samples.mean_series();
  series.min_live = min_live;
  series.max_live = max_live;
  return series;
}

}  // namespace roleshare::sim
