// Hash-based Verifiable Random Function.
//
// Real Algorand uses the Micali–Rabin–Vadhan VRF; our simulation substitute
// (see DESIGN.md) derives output = H(pk, input) and a proof that verifiers
// recompute. The crucial property for sortition — the output ratio is
// uniform in [0,1) and fixed per (key, round, step, seed) — is preserved.
#pragma once

#include <cstdint>

#include "crypto/hash.hpp"
#include "crypto/keypair.hpp"

namespace roleshare::crypto {

/// VRF evaluation result: the pseudorandom output and a proof of correct
/// evaluation (in the simulation, the proof doubles as the output).
struct VrfOutput {
  Hash256 output;
  Signature proof;

  /// Uniform value in [0, 1) derived from the output.
  double ratio() const { return output.ratio(); }
};

/// The VRF input for Algorand sortition: sig_i(round, step, Q_{r-1}).
struct VrfInput {
  std::uint64_t round = 0;
  std::uint64_t step = 0;  // 0 = block-proposal sortition
  Hash256 prev_seed;       // Q_{r-1}

  Hash256 message() const;
};

/// Evaluates the VRF under the given key pair.
VrfOutput vrf_evaluate(const KeyPair& key, const VrfInput& input);

/// Verifies that `out` is the correct VRF evaluation for (pk, input).
bool vrf_verify(const PublicKey& pk, const VrfInput& input,
                const VrfOutput& out);

}  // namespace roleshare::crypto
