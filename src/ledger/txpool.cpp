#include "ledger/txpool.hpp"

#include <algorithm>

namespace roleshare::ledger {

bool TxPool::submit(Transaction txn) {
  const crypto::Hash256 id = txn.id();
  if (ids_.contains(id)) return false;
  ids_.insert(id);
  pending_.push_back(std::move(txn));
  return true;
}

bool TxPool::contains(const crypto::Hash256& id) const {
  return ids_.contains(id);
}

std::vector<Transaction> TxPool::peek(std::size_t max_count) const {
  std::vector<Transaction> out;
  const std::size_t n = std::min(max_count, pending_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(pending_[i]);
  return out;
}

void TxPool::mark_included(const std::vector<Transaction>& txns) {
  std::unordered_set<crypto::Hash256, crypto::Hash256Hasher> included;
  for (const Transaction& t : txns) included.insert(t.id());
  std::deque<Transaction> remaining;
  for (Transaction& t : pending_) {
    const crypto::Hash256 id = t.id();
    if (included.contains(id)) {
      ids_.erase(id);
    } else {
      remaining.push_back(std::move(t));
    }
  }
  pending_ = std::move(remaining);
}

void TxPool::clear() {
  pending_.clear();
  ids_.clear();
}

}  // namespace roleshare::ledger
