// Hex encoding/decoding for hashes, keys and proofs in logs and tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace roleshare::util {

/// Lower-case hex string of the given bytes.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parses a hex string (even length, [0-9a-fA-F]) into bytes.
/// Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace roleshare::util
