#include "sim/metrics.hpp"

namespace roleshare::sim {

OutcomeMetrics::OutcomeMetrics(std::size_t rounds, AggBackend backend,
                               const StreamingAggConfig& streaming)
    : final_(make_accumulator(backend, rounds, streaming)),
      tentative_(make_accumulator(backend, rounds, streaming)),
      none_(make_accumulator(backend, rounds, streaming)) {}

void OutcomeMetrics::record(std::size_t round_index,
                            const RoundResult& result) {
  record(round_index, result.final_fraction * 100.0,
         result.tentative_fraction * 100.0, result.none_fraction * 100.0);
}

void OutcomeMetrics::record(std::size_t round_index, double final_pct,
                            double tentative_pct, double none_pct) {
  final_->record(round_index, final_pct);
  tentative_->record(round_index, tentative_pct);
  none_->record(round_index, none_pct);
}

void OutcomeMetrics::merge(const OutcomeMetrics& other) {
  final_->merge(*other.final_);
  tentative_->merge(*other.tentative_);
  none_->merge(*other.none_);
}

std::size_t OutcomeMetrics::runs_recorded(std::size_t round_index) const {
  return final_->count(round_index);
}

std::vector<RoundAggregate> OutcomeMetrics::aggregate(
    double trim_fraction) const {
  const std::vector<double> final_series =
      final_->trimmed_mean_series(trim_fraction);
  const std::vector<double> tentative_series =
      tentative_->trimmed_mean_series(trim_fraction);
  const std::vector<double> none_series =
      none_->trimmed_mean_series(trim_fraction);
  std::vector<RoundAggregate> out(final_series.size());
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r].final_pct = final_series[r];
    out[r].tentative_pct = tentative_series[r];
    out[r].none_pct = none_series[r];
  }
  return out;
}

std::size_t OutcomeMetrics::memory_bytes() const {
  return final_->memory_bytes() + tentative_->memory_bytes() +
         none_->memory_bytes();
}

util::json::Value OutcomeMetrics::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("final", final_->to_json());
  v.set("tentative", tentative_->to_json());
  v.set("none", none_->to_json());
  return v;
}

OutcomeMetrics OutcomeMetrics::from_json(const util::json::Value& value) {
  OutcomeMetrics m;
  m.final_ = accumulator_from_json(value.at("final"));
  m.tentative_ = accumulator_from_json(value.at("tentative"));
  m.none_ = accumulator_from_json(value.at("none"));
  return m;
}

}  // namespace roleshare::sim
