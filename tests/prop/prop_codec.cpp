// Property suite: wire-format invariants for the ledger and consensus
// codecs under randomized messages (seeding contract in DESIGN.md §8).
//
// Two families of properties per message type:
//   - Lossless determinism: decode(encode(x)) re-encodes to the exact
//     same bytes. (Byte equality is stronger than field equality and
//     needs no per-type operator==.)
//   - Strictness: every strict prefix of a valid encoding and every
//     encoding with trailing bytes raises DecodeError — a malformed or
//     truncated message from a peer can never crash or half-decode.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/msg_codec.hpp"
#include "gen/domain_gen.hpp"
#include "ledger/codec.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::ledger::DecodeError;
using roleshare::util::proptest::Verdict;

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

// decode(encode(x)) must re-encode byte-identically, every strict prefix
// of the encoding must raise DecodeError, and one trailing junk byte
// must raise DecodeError. Shared across all five message types.
template <typename T, typename Encode, typename Decode>
Verdict codec_invariants(const T& msg, Encode encode, Decode decode) {
  const std::vector<std::uint8_t> bytes = encode(msg);
  if (bytes.empty()) return Verdict{false, "encoded to zero bytes"};

  const T back = decode(bytes);
  const std::vector<std::uint8_t> again = encode(back);
  if (again != bytes)
    return Verdict{false, "re-encode mismatch: " + hex(bytes) + " vs " +
                              hex(again)};

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    try {
      (void)decode(prefix);
      return Verdict{false, "prefix of length " + std::to_string(cut) +
                                " of " + std::to_string(bytes.size()) +
                                " bytes decoded without error"};
    } catch (const DecodeError&) {
      // expected
    }
  }

  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0x00);
  try {
    (void)decode(padded);
    return Verdict{false, "trailing byte accepted"};
  } catch (const DecodeError&) {
  }
  return Verdict{};
}

template <typename T, typename Encode>
auto hex_printer(Encode encode) {
  return [encode](const T& msg) { return "encoded: " + hex(encode(msg)); };
}

}  // namespace

PROP_TEST_WITH_PARAMS(PropCodec, TransactionRoundTripAndStrictness, 300) {
  using roleshare::ledger::Transaction;
  const auto enc = [](const Transaction& t) {
    return roleshare::ledger::encode_transaction(t);
  };
  const auto dec = [](std::span<const std::uint8_t> b) {
    return roleshare::ledger::decode_transaction(b);
  };
  prop.check(
      roleshare::testgen::transaction(),
      [&](const Transaction& t) { return codec_invariants(t, enc, dec); },
      hex_printer<Transaction>(enc));
}

PROP_TEST_WITH_PARAMS(PropCodec, BlockRoundTripAndStrictness, 150) {
  using roleshare::ledger::Block;
  const auto enc = [](const Block& b) {
    return roleshare::ledger::encode_block(b);
  };
  const auto dec = [](std::span<const std::uint8_t> b) {
    return roleshare::ledger::decode_block(b);
  };
  prop.check(
      roleshare::testgen::block(),
      [&](const Block& b) {
        Verdict v = codec_invariants(b, enc, dec);
        if (!v.ok) return v;
        // The block hash is defined over the encoding, so a round-trip
        // must preserve it too.
        const Block back = dec(enc(b));
        if (!(back.hash() == b.hash()))
          return Verdict{false, "hash changed across round-trip"};
        return Verdict{};
      },
      hex_printer<Block>(enc));
}

PROP_TEST_WITH_PARAMS(PropCodec, VoteRoundTripAndStrictness, 300) {
  using roleshare::consensus::Vote;
  const auto enc = [](const Vote& v) {
    return roleshare::consensus::encode_vote(v);
  };
  const auto dec = [](std::span<const std::uint8_t> b) {
    return roleshare::consensus::decode_vote(b);
  };
  prop.check(
      roleshare::testgen::vote(),
      [&](const Vote& v) { return codec_invariants(v, enc, dec); },
      hex_printer<Vote>(enc));
}

PROP_TEST_WITH_PARAMS(PropCodec, ProposalRoundTripAndStrictness, 150) {
  using roleshare::consensus::BlockProposal;
  const auto enc = [](const BlockProposal& p) {
    return roleshare::consensus::encode_proposal(p);
  };
  const auto dec = [](std::span<const std::uint8_t> b) {
    return roleshare::consensus::decode_proposal(b);
  };
  prop.check(
      roleshare::testgen::block_proposal(),
      [&](const BlockProposal& p) { return codec_invariants(p, enc, dec); },
      hex_printer<BlockProposal>(enc));
}

PROP_TEST_WITH_PARAMS(PropCodec, CredentialRoundTripAndStrictness, 300) {
  using roleshare::consensus::Credential;
  const auto enc = [](const Credential& c) {
    return roleshare::consensus::encode_credential(c);
  };
  const auto dec = [](std::span<const std::uint8_t> b) {
    return roleshare::consensus::decode_credential(b);
  };
  prop.check(
      roleshare::testgen::credential(),
      [&](const Credential& c) { return codec_invariants(c, enc, dec); },
      hex_printer<Credential>(enc));
}
