// merge_partials — folds the per-shard partials of a sharded figure sweep
// back into the figure (the reduce step of the run-range sharding
// workflow; see DESIGN.md "Accumulators & sharding").
//
//   $ ./fig3_defection --runs=8 --run-begin=0 --run-end=4 --partial-out=s0.json
//   $ ./fig3_defection --runs=8 --run-begin=4 --run-end=8 --partial-out=s1.json
//   $ ./merge_partials --series-out=merged.json s0.json s1.json
//
// Shards may be listed in any order; they are sorted by run_begin and
// must tile the full run range [0, runs) contiguously — the contract
// that makes an exact-backend merge bit-identical to a single-process
// execution (the CI smoke job diffs merged.json against an unsharded
// --series-out byte for byte). Streaming-backend partials merge within
// the documented reservoir error bound instead.
//
// Exit codes: 0 on success, 1 on malformed/incompatible/missing shards.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/defection_experiment.hpp"
#include "util/json.hpp"

using namespace roleshare;

namespace {

struct ShardFile {
  std::string path;
  util::json::Value doc;
};

/// Panel-indexed partials of one shard file, plus the config echo used
/// for cross-shard compatibility checks.
struct LoadedShard {
  std::string path;
  std::size_t run_begin = 0;
  std::vector<double> rate_pcts;
  std::vector<sim::DefectionPartial> panels;
};

LoadedShard load_shard(const ShardFile& file,
                       const util::json::Value& reference_header) {
  const util::json::Value& doc = file.doc;
  for (const char* key : {"bench", "nodes", "runs", "rounds", "agg", "trim"}) {
    const std::string a = doc.at(key).dump();
    const std::string b = reference_header.at(key).dump();
    if (a != b) {
      throw std::invalid_argument(std::string("shard ") + file.path +
                                  " disagrees on \"" + key + "\": " + a +
                                  " vs " + b);
    }
  }
  LoadedShard shard;
  shard.path = file.path;
  shard.run_begin = doc.at("run_begin").as_size();
  for (const util::json::Value& panel : doc.at("panels").as_array()) {
    shard.rate_pcts.push_back(panel.at("rate_pct").as_number());
    shard.panels.push_back(
        sim::DefectionPartial::from_json(panel.at("partial")));
  }
  if (shard.panels.empty())
    throw std::invalid_argument("shard " + file.path + " has no panels");
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "MERGED_series.json");
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) paths.push_back(arg);
  }

  bench::print_header("merge_partials", "fold shard partials into a figure");
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "usage: merge_partials [--series-out=FILE] "
                 "shard0.json shard1.json ...\n"
                 "(need at least two shard partial files)\n");
    return 1;
  }

  try {
    std::vector<ShardFile> files;
    for (const std::string& path : paths)
      files.push_back({path, util::json::parse(bench::read_text_file(path))});

    std::sort(files.begin(), files.end(),
              [](const ShardFile& a, const ShardFile& b) {
                return a.doc.at("run_begin").as_size() <
                       b.doc.at("run_begin").as_size();
              });
    const util::json::Value& header = files.front().doc;

    std::optional<LoadedShard> merged;
    for (const ShardFile& file : files) {
      LoadedShard shard = load_shard(file, header);
      if (!merged) {
        merged = std::move(shard);
        continue;
      }
      if (shard.panels.size() != merged->panels.size() ||
          shard.rate_pcts != merged->rate_pcts) {
        throw std::invalid_argument("shard " + shard.path +
                                    " has a different panel layout");
      }
      // DefectionPartial::merge enforces window contiguity and names
      // both windows when shards are missing or overlap.
      for (std::size_t i = 0; i < merged->panels.size(); ++i)
        merged->panels[i].merge(shard.panels[i]);
    }

    const std::size_t runs_total = merged->panels.front().runs_total();
    if (merged->panels.front().run_begin() != 0 ||
        merged->panels.front().run_end() != runs_total) {
      throw std::invalid_argument(
          "merged shards cover runs [" +
          std::to_string(merged->panels.front().run_begin()) + ", " +
          std::to_string(merged->panels.front().run_end()) + ") of " +
          std::to_string(runs_total) + " — the shard set is incomplete");
    }

    const double trim = header.at("trim").as_number();
    const sim::AggBackend agg =
        sim::parse_agg_backend(header.at("agg").as_string());
    std::printf("merged %zu shards x %zu panels, runs [0, %zu), agg=%s\n",
                files.size(), merged->panels.size(), runs_total,
                sim::to_string(agg));

    util::json::Value series_panels = util::json::Value::array();
    for (std::size_t i = 0; i < merged->panels.size(); ++i) {
      const sim::DefectionSeries series = merged->panels[i].finalize(trim);
      std::printf("\n--- panel %zu: defection rate %.0f%% ---\n", i + 1,
                  merged->rate_pcts[i]);
      bench::print_defection_table(series);
      std::printf("mean final%% = %.1f | runs with chain progress = %.0f%%\n",
                  bench::mean_final_pct(series),
                  series.runs_with_progress * 100);
      util::json::Value panel = util::json::Value::object();
      panel.set("rate_pct", merged->rate_pcts[i]);
      panel.set("series", bench::defection_series_json(series));
      series_panels.push_back(std::move(panel));
    }

    util::json::Value doc = bench::shard_document_header(
        header.at("bench").as_string(), header.at("nodes").as_size(),
        header.at("runs").as_size(), header.at("rounds").as_size(), agg,
        trim, 0, runs_total);
    doc.set("panels", std::move(series_panels));
    bench::write_text_file(series_out, doc.dump() + "\n");
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ERROR: %s\n", e.what());
    return 1;
  }
  return 0;
}
