#include "crypto/sortition.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace roleshare::crypto {
namespace {

TEST(BinomialInversion, ZeroStakeNeverSelected) {
  EXPECT_EQ(binomial_inversion(0.5, 0, 0.1), 0u);
}

TEST(BinomialInversion, ZeroProbabilityNeverSelected) {
  EXPECT_EQ(binomial_inversion(0.99, 100, 0.0), 0u);
}

TEST(BinomialInversion, FullProbabilitySelectsAll) {
  EXPECT_EQ(binomial_inversion(0.3, 17, 1.0), 17u);
}

TEST(BinomialInversion, MonotoneInRatio) {
  std::uint64_t prev = 0;
  for (double r = 0.0; r < 1.0; r += 0.01) {
    const std::uint64_t j = binomial_inversion(r, 50, 0.1);
    EXPECT_GE(j, prev);
    prev = j;
  }
}

TEST(BinomialInversion, NeverExceedsStake) {
  for (double r : {0.0, 0.5, 0.999999}) {
    EXPECT_LE(binomial_inversion(r, 5, 0.9), 5u);
  }
}

TEST(BinomialInversion, MatchesBinomialExpectation) {
  // Inverting the CDF at uniform ratios reproduces the binomial mean w*p.
  util::Rng rng(1);
  const std::int64_t stake = 40;
  const double p = 0.05;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(
        binomial_inversion(rng.uniform01(), stake, p));
  EXPECT_NEAR(sum / n, static_cast<double>(stake) * p, 0.05);
}

TEST(BinomialInversion, RejectsBadArguments) {
  EXPECT_THROW(binomial_inversion(1.0, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_inversion(-0.1, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_inversion(0.5, -1, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_inversion(0.5, 5, 1.5), std::invalid_argument);
}

TEST(Sortition, ProofVerifies) {
  const KeyPair key = KeyPair::derive(3, 0);
  const VrfInput input{5, 1, HashBuilder("s").add_u64(1).build()};
  const SortitionParams params{100, 1000};
  const SortitionResult res = sortition(key, input, 500, params);
  EXPECT_EQ(verify_sortition(key.public_key(), input, res.vrf, 500, params),
            res.sub_users);
}

TEST(Sortition, ForgedProofYieldsZero) {
  const KeyPair key = KeyPair::derive(3, 0);
  const KeyPair other = KeyPair::derive(3, 1);
  const VrfInput input{5, 1, HashBuilder("s").add_u64(1).build()};
  const SortitionParams params{100, 1000};
  const SortitionResult res = sortition(key, input, 500, params);
  EXPECT_EQ(verify_sortition(other.public_key(), input, res.vrf, 500, params),
            0u);
}

TEST(Sortition, ExpectedSelectedStakeMatchesTau) {
  // Across many nodes, the sum of selected sub-users concentrates on tau.
  const std::int64_t node_stake = 20;
  const std::size_t nodes = 500;
  const std::int64_t total = node_stake * static_cast<std::int64_t>(nodes);
  const std::uint64_t tau = 1000;
  const SortitionParams params{tau, total};

  double grand_total = 0;
  const int rounds = 40;
  for (int r = 0; r < rounds; ++r) {
    const VrfInput input{static_cast<std::uint64_t>(r), 1,
                         HashBuilder("seed").add_u64(r).build()};
    std::uint64_t selected = 0;
    for (std::size_t v = 0; v < nodes; ++v) {
      const KeyPair key = KeyPair::derive(9, v);
      selected += sortition(key, input, node_stake, params).sub_users;
    }
    grand_total += static_cast<double>(selected);
  }
  const double mean_selected = grand_total / rounds;
  EXPECT_NEAR(mean_selected, static_cast<double>(tau), 40.0);
}

TEST(Sortition, ZeroStakeNodeNeverSelected) {
  const KeyPair key = KeyPair::derive(3, 0);
  const VrfInput input{5, 1, Hash256::zero()};
  const SortitionParams params{100, 1000};
  EXPECT_EQ(sortition(key, input, 0, params).sub_users, 0u);
}

TEST(Sortition, SelectionMonotoneInStake) {
  // For a fixed VRF ratio, more stake can only mean more sub-users.
  // Verified via the inversion function directly.
  for (const double ratio : {0.1, 0.4, 0.7, 0.95}) {
    std::uint64_t prev = 0;
    for (std::int64_t stake = 1; stake <= 256; stake *= 2) {
      const std::uint64_t j = binomial_inversion(ratio, stake, 0.02);
      EXPECT_GE(j, prev) << "ratio=" << ratio << " stake=" << stake;
      prev = j;
    }
  }
}

TEST(Sortition, PriorityZeroWhenNotSelected) {
  SortitionResult res;
  res.sub_users = 0;
  EXPECT_EQ(res.priority(), 0u);
}

TEST(Sortition, PriorityNondecreasingInSubUsers) {
  // Priority is a max over per-sub-user hashes, so more sub-users can only
  // raise it.
  const KeyPair key = KeyPair::derive(4, 0);
  const VrfInput input{1, 0, Hash256::zero()};
  const VrfOutput vrf = vrf_evaluate(key, input);
  std::uint64_t prev = 0;
  for (std::uint64_t j = 1; j <= 8; ++j) {
    SortitionResult res{j, vrf};
    EXPECT_GE(res.priority(), prev);
    prev = res.priority();
  }
}

TEST(Sortition, RejectsBadParams) {
  const KeyPair key = KeyPair::derive(3, 0);
  const VrfInput input{5, 1, Hash256::zero()};
  EXPECT_THROW(sortition(key, input, 10, SortitionParams{0, 100}),
               std::invalid_argument);
  EXPECT_THROW(sortition(key, input, 10, SortitionParams{10, 0}),
               std::invalid_argument);
  EXPECT_THROW(sortition(key, input, 200, SortitionParams{10, 100}),
               std::invalid_argument);
}

// Parameterized: selection frequency tracks stake share across stake sizes.
class SortitionStakeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SortitionStakeSweep, SelectionRateTracksStake) {
  const std::int64_t stake = GetParam();
  const std::int64_t total = 10'000;
  const std::uint64_t tau = 500;
  const SortitionParams params{tau, total};
  const KeyPair key = KeyPair::derive(11, 0);

  double selected = 0;
  const int rounds = 3000;
  for (int r = 0; r < rounds; ++r) {
    const VrfInput input{static_cast<std::uint64_t>(r), 2,
                         HashBuilder("x").add_u64(r).build()};
    selected +=
        static_cast<double>(sortition(key, input, stake, params).sub_users);
  }
  const double expected = static_cast<double>(stake) *
                          static_cast<double>(tau) /
                          static_cast<double>(total);
  EXPECT_NEAR(selected / rounds, expected, expected * 0.25 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Stakes, SortitionStakeSweep,
                         ::testing::Values(1, 5, 20, 100, 400));

}  // namespace
}  // namespace roleshare::crypto
