// Gossip propagation engine.
//
// Computes, for a message originated at one node, the earliest arrival time
// at every node, given that only `relaying` nodes forward messages
// (defectors and faulty nodes receive but do not relay — the behavioural
// root of the Fig-3 collapse). Arrival times are shortest paths through the
// relay subgraph with independently sampled hop delays (Dijkstra).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ledger/types.hpp"
#include "net/delay_model.hpp"
#include "net/sim_time.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace roleshare::net {

/// Node flags consumed by the gossip engine for one round. Byte masks, not
/// vector<bool>: the hot path indexes them per hop, and byte loads avoid
/// the bit-extraction dance (and allow writing flags from parallel chunks).
struct RelaySet {
  /// relays[v] != 0 — v forwards messages it receives (cooperative
  /// behaviour).
  std::vector<std::uint8_t> relays;
  /// online[v] != 0 — v receives messages at all (0 for faulty nodes).
  std::vector<std::uint8_t> online;

  static RelaySet all_cooperative(std::size_t n);
};

/// Reusable working memory for one propagate_into call. Owned by the
/// caller (one per worker thread) so steady-state propagation performs no
/// heap allocation once the heap vector has reached its high-water mark.
struct GossipScratch {
  std::vector<std::pair<TimeMs, ledger::NodeId>> frontier;
};

class GossipEngine {
 public:
  /// `delay_factor` scales every sampled hop delay (synchrony
  /// degradation); `loss_probability` drops each hop's copy of a message
  /// independently (lossy links / congestion). Gossip redundancy masks
  /// moderate loss; combined with defection it compounds.
  GossipEngine(const Topology& topology, const DelayModel& delays,
               double delay_factor = 1.0, double loss_probability = 0.0);

  /// Earliest arrival time (origin transmits at `start`) at every node, or
  /// kNever if unreachable. The origin itself receives at `start`.
  /// Offline nodes never receive; non-relaying nodes receive but do not
  /// forward.
  std::vector<TimeMs> propagate(ledger::NodeId origin, TimeMs start,
                                const RelaySet& relay_set,
                                util::Rng& rng) const;

  /// Allocation-free form: writes arrival times into `arrival` (resized to
  /// node_count) and runs Dijkstra on `scratch`'s reused binary heap.
  /// Bit-identical to propagate() — same visit order, same samples drawn
  /// from `rng`.
  void propagate_into(ledger::NodeId origin, TimeMs start,
                      const RelaySet& relay_set, util::Rng& rng,
                      std::vector<TimeMs>& arrival,
                      GossipScratch& scratch) const;

  /// Fraction of online nodes whose arrival time is <= deadline.
  static double reach_fraction(const std::vector<TimeMs>& arrivals,
                               const RelaySet& relay_set, TimeMs deadline);

 private:
  const Topology& topology_;
  const DelayModel& delays_;
  double delay_factor_;
  double loss_probability_;
};

}  // namespace roleshare::net
