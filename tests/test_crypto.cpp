#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "crypto/keypair.hpp"
#include "crypto/vrf.hpp"
#include "util/hex.hpp"

namespace roleshare::crypto {
namespace {

TEST(Hash256, ZeroHash) {
  EXPECT_TRUE(Hash256::zero().is_zero());
  EXPECT_FALSE(HashBuilder("t").add_u64(1).build().is_zero());
}

TEST(Hash256, RatioInUnitInterval) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Hash256 h = HashBuilder("ratio").add_u64(i).build();
    EXPECT_GE(h.ratio(), 0.0);
    EXPECT_LT(h.ratio(), 1.0);
  }
}

TEST(Hash256, RatioRoughlyUniform) {
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += HashBuilder("u").add_u64(i).build().ratio();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Hash256, HexRoundTrip) {
  const Hash256 h = HashBuilder("hex").add_u64(99).build();
  EXPECT_EQ(h.to_hex().size(), 64u);
  EXPECT_EQ(h.short_hex(), h.to_hex().substr(0, 8));
  const auto bytes = util::from_hex(h.to_hex());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), h.bytes().begin()));
}

TEST(Hash256, OrderingIsTotal) {
  const Hash256 a = HashBuilder("o").add_u64(1).build();
  const Hash256 b = HashBuilder("o").add_u64(2).build();
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

TEST(HashBuilder, DomainSeparation) {
  const Hash256 a = HashBuilder("domain-a").add_u64(7).build();
  const Hash256 b = HashBuilder("domain-b").add_u64(7).build();
  EXPECT_NE(a, b);
}

TEST(HashBuilder, LengthPrefixPreventsAmbiguity) {
  // ("ab", "c") must differ from ("a", "bc").
  const Hash256 a = HashBuilder("t").add("ab").add("c").build();
  const Hash256 b = HashBuilder("t").add("a").add("bc").build();
  EXPECT_NE(a, b);
}

TEST(HashBuilder, Deterministic) {
  const Hash256 a = HashBuilder("t").add_u64(1).add("x").build();
  const Hash256 b = HashBuilder("t").add_u64(1).add("x").build();
  EXPECT_EQ(a, b);
}

TEST(FixedHasher, SlotThenConstantMatchesHashBuilder) {
  // The VRF sign layout: H(tag || slot || constant-msg).
  const Hash256 msg = HashBuilder("msg").build();
  FixedHasher layout("roleshare.sig");
  const std::size_t slot = layout.add_hash_slot();
  layout.add(msg);
  Sha256Fixed fixed = layout.build_template();
  for (std::uint64_t i = 0; i < 32; ++i) {
    const Hash256 probe = HashBuilder("probe").add_u64(i).build();
    write_hash_slot(fixed, slot, probe);
    EXPECT_EQ(Hash256(fixed.digest()),
              HashBuilder("roleshare.sig").add(probe).add(msg).build());
  }
}

TEST(FixedHasher, ConstantsAndSlotInterleaved) {
  // Constant u64 and hash parts around the variable slot, in layout
  // order — matches HashBuilder streaming the same sequence.
  const Hash256 fixed_part = HashBuilder("const").build();
  FixedHasher layout("tag");
  layout.add_u64(99);
  const std::size_t slot = layout.add_hash_slot();
  layout.add(fixed_part);
  Sha256Fixed fixed = layout.build_template();
  const Hash256 probe = HashBuilder("p").build();
  write_hash_slot(fixed, slot, probe);
  EXPECT_EQ(
      Hash256(fixed.digest()),
      HashBuilder("tag").add_u64(99).add(probe).add(fixed_part).build());
}

TEST(FixedHasher, UnwrittenSlotHashesAsZeroes) {
  // A slot left unwritten contributes 32 zero bytes — the same message
  // HashBuilder produces for Hash256::zero().
  FixedHasher layout("z");
  (void)layout.add_hash_slot();
  const Sha256Fixed fixed = layout.build_template();
  EXPECT_EQ(Hash256(fixed.digest()),
            HashBuilder("z").add(Hash256::zero()).build());
}

TEST(KeyPair, DerivationIsDeterministic) {
  const KeyPair a = KeyPair::derive(42, 7);
  const KeyPair b = KeyPair::derive(42, 7);
  EXPECT_EQ(a.public_key(), b.public_key());
}

TEST(KeyPair, DistinctNodesDistinctKeys) {
  EXPECT_NE(KeyPair::derive(42, 1).public_key(),
            KeyPair::derive(42, 2).public_key());
  EXPECT_NE(KeyPair::derive(1, 7).public_key(),
            KeyPair::derive(2, 7).public_key());
}

TEST(Signature, SignVerifyRoundTrip) {
  const KeyPair key = KeyPair::derive(1, 1);
  const Hash256 msg = HashBuilder("msg").add("hello").build();
  const Signature sig = key.sign(msg);
  EXPECT_TRUE(verify(key.public_key(), msg, sig));
}

TEST(Signature, WrongMessageFails) {
  const KeyPair key = KeyPair::derive(1, 1);
  const Hash256 msg = HashBuilder("msg").add("hello").build();
  const Hash256 other = HashBuilder("msg").add("world").build();
  EXPECT_FALSE(verify(key.public_key(), other, key.sign(msg)));
}

TEST(Signature, WrongKeyFails) {
  const KeyPair a = KeyPair::derive(1, 1);
  const KeyPair b = KeyPair::derive(1, 2);
  const Hash256 msg = HashBuilder("msg").add("hello").build();
  EXPECT_FALSE(verify(b.public_key(), msg, a.sign(msg)));
}

TEST(Vrf, EvaluateVerifyRoundTrip) {
  const KeyPair key = KeyPair::derive(5, 3);
  const VrfInput input{10, 2, HashBuilder("seed").add_u64(9).build()};
  const VrfOutput out = vrf_evaluate(key, input);
  EXPECT_TRUE(vrf_verify(key.public_key(), input, out));
}

TEST(Vrf, VerifyRejectsWrongKey) {
  const KeyPair a = KeyPair::derive(5, 3);
  const KeyPair b = KeyPair::derive(5, 4);
  const VrfInput input{10, 2, HashBuilder("seed").add_u64(9).build()};
  EXPECT_FALSE(vrf_verify(b.public_key(), input, vrf_evaluate(a, input)));
}

TEST(Vrf, VerifyRejectsTamperedOutput) {
  const KeyPair key = KeyPair::derive(5, 3);
  const VrfInput input{10, 2, HashBuilder("seed").add_u64(9).build()};
  VrfOutput out = vrf_evaluate(key, input);
  out.output = HashBuilder("tamper").build();
  EXPECT_FALSE(vrf_verify(key.public_key(), input, out));
}

TEST(Vrf, DifferentInputsDifferentOutputs) {
  const KeyPair key = KeyPair::derive(5, 3);
  const Hash256 seed = HashBuilder("seed").add_u64(9).build();
  const VrfOutput a = vrf_evaluate(key, VrfInput{10, 1, seed});
  const VrfOutput b = vrf_evaluate(key, VrfInput{10, 2, seed});
  const VrfOutput c = vrf_evaluate(key, VrfInput{11, 1, seed});
  EXPECT_NE(a.output, b.output);
  EXPECT_NE(a.output, c.output);
}

TEST(Vrf, RatioIsDeterministicPerKeyAndInput) {
  const KeyPair key = KeyPair::derive(5, 3);
  const VrfInput input{1, 1, Hash256::zero()};
  EXPECT_DOUBLE_EQ(vrf_evaluate(key, input).ratio(),
                   vrf_evaluate(key, input).ratio());
}

}  // namespace
}  // namespace roleshare::crypto
