// BinaryBA* (Fig 1-d) — per-node state machine, faithful to Gilad et al.
// (SOSP'17, Alg. 8): iterations of three voting sub-steps
//   A: vote current value; a block-hash quorum concludes with that block
//      (concluding in the very first iteration additionally casts a FINAL
//      vote — the path to final, not tentative, consensus),
//   B: a quorum for the empty hash concludes with the empty block,
//   C: on no quorum, flip the common coin to pick the next value.
//
// The machine is network-agnostic: the driver feeds each step's counted
// outcome (quorum winner or timeout + coin bit) into `advance`.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hash.hpp"

namespace roleshare::consensus {

enum class BaStatus : std::uint8_t {
  Running,
  ConcludedBlock,  // agreed on the non-empty block
  ConcludedEmpty,  // agreed on the empty block
  Exhausted,       // hit max iterations without agreement ("no block")
};

class BinaryBaState {
 public:
  /// `initial` is this node's reduction output; `empty_hash` the round's
  /// empty-block hash; `max_iterations` the paper's 11.
  BinaryBaState(crypto::Hash256 initial, crypto::Hash256 empty_hash,
                std::uint32_t max_iterations);

  BaStatus status() const { return status_; }
  bool running() const { return status_ == BaStatus::Running; }

  /// The value this node votes in the current sub-step.
  const crypto::Hash256& vote_value() const { return current_; }

  /// Global step number of the current sub-step (for committee sortition):
  /// kFirstBinaryStep + 3*iteration + sub_step.
  std::uint32_t step_number() const;

  /// 1-based iteration count (the paper's k).
  std::uint32_t iteration() const { return iteration_ + 1; }

  /// Feeds the counted result of the current sub-step. `counted` is the
  /// quorum winner (nullopt = timeout / no quorum); `coin` is the common
  /// coin observed in sub-step C (ignored elsewhere; defaults used when the
  /// node saw no votes at all).
  void advance(std::optional<crypto::Hash256> counted, bool coin = false);

  /// The agreed value; only meaningful when concluded.
  const crypto::Hash256& result() const { return result_; }

  /// True when the node concluded on the block in iteration 1 — it then
  /// participates in the FINAL vote for final (vs tentative) consensus.
  bool concluded_in_first_iteration() const {
    return status_ == BaStatus::ConcludedBlock && concluding_iteration_ == 1;
  }

 private:
  crypto::Hash256 initial_;
  crypto::Hash256 empty_hash_;
  crypto::Hash256 current_;
  crypto::Hash256 result_;
  std::uint32_t max_iterations_;
  std::uint32_t iteration_ = 0;  // 0-based
  std::uint32_t sub_step_ = 0;   // 0 = A, 1 = B, 2 = C
  std::uint32_t concluding_iteration_ = 0;
  BaStatus status_ = BaStatus::Running;
};

}  // namespace roleshare::consensus
