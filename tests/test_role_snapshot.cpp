#include "econ/role_snapshot.hpp"

#include <gtest/gtest.h>

namespace roleshare::econ {
namespace {

using consensus::Role;

RoleSnapshot sample_snapshot() {
  // 2 leaders (stakes 5, 9), 3 committee (2, 4, 8), 3 others (1, 10, 3).
  return RoleSnapshot(
      {Role::Leader, Role::Committee, Role::Other, Role::Leader,
       Role::Committee, Role::Other, Role::Committee, Role::Other},
      {5, 2, 1, 9, 4, 10, 8, 3});
}

TEST(RoleSnapshot, CountsPerRole) {
  const RoleSnapshot s = sample_snapshot();
  EXPECT_EQ(s.node_count(), 8u);
  EXPECT_EQ(s.count(Role::Leader), 2u);
  EXPECT_EQ(s.count(Role::Committee), 3u);
  EXPECT_EQ(s.count(Role::Other), 3u);
}

TEST(RoleSnapshot, StakeAggregates) {
  const RoleSnapshot s = sample_snapshot();
  EXPECT_EQ(s.stake_of(Role::Leader), 14);     // S_L
  EXPECT_EQ(s.stake_of(Role::Committee), 14);  // S_M
  EXPECT_EQ(s.stake_of(Role::Other), 14);      // S_K
  EXPECT_EQ(s.total_stake(), 42);              // S_N
}

TEST(RoleSnapshot, MinStakes) {
  const RoleSnapshot s = sample_snapshot();
  EXPECT_EQ(s.min_stake_of(Role::Leader), 5);     // s*_l
  EXPECT_EQ(s.min_stake_of(Role::Committee), 2);  // s*_m
  EXPECT_EQ(s.min_stake_of(Role::Other), 1);      // s*_k
}

TEST(RoleSnapshot, EmptyRoleMinIsZero) {
  const RoleSnapshot s({Role::Leader}, {5});
  EXPECT_EQ(s.min_stake_of(Role::Committee), 0);
  EXPECT_EQ(s.count(Role::Other), 0u);
}

TEST(RoleSnapshot, PerNodeAccessors) {
  const RoleSnapshot s = sample_snapshot();
  EXPECT_EQ(s.role(0), Role::Leader);
  EXPECT_EQ(s.stake(0), 5);
  EXPECT_EQ(s.role(5), Role::Other);
  EXPECT_EQ(s.stake(5), 10);
}

TEST(RoleSnapshot, FilteredOthersDropsSmallStakes) {
  // Fig-7(c): U_w filter removes Others with stake < w; roles keep.
  const RoleSnapshot s = sample_snapshot();
  const RoleSnapshot f = s.filtered_others(3);
  EXPECT_EQ(f.node_count(), 7u);  // Other with stake 1 dropped
  EXPECT_EQ(f.count(Role::Other), 2u);
  EXPECT_EQ(f.min_stake_of(Role::Other), 3);
  EXPECT_EQ(f.stake_of(Role::Other), 13);
  // Leaders/committee never dropped, even with small stakes.
  EXPECT_EQ(f.count(Role::Committee), 3u);
  EXPECT_EQ(f.min_stake_of(Role::Committee), 2);
}

TEST(RoleSnapshot, FilteredOthersZeroThresholdIsIdentity) {
  const RoleSnapshot s = sample_snapshot();
  const RoleSnapshot f = s.filtered_others(0);
  EXPECT_EQ(f.node_count(), s.node_count());
  EXPECT_EQ(f.total_stake(), s.total_stake());
}

TEST(RoleSnapshot, RejectsMismatchedSizes) {
  EXPECT_THROW(RoleSnapshot({Role::Leader}, {1, 2}), std::invalid_argument);
}

TEST(RoleSnapshot, RejectsNegativeStake) {
  EXPECT_THROW(RoleSnapshot({Role::Leader}, {-1}), std::invalid_argument);
}

TEST(RoleSnapshot, ZeroStakeNodesAllowed) {
  // Offline nodes are carried with stake 0 (they receive nothing).
  const RoleSnapshot s({Role::Other, Role::Other}, {0, 5});
  EXPECT_EQ(s.stake_of(Role::Other), 5);
  EXPECT_EQ(s.min_stake_of(Role::Other), 0);
}

}  // namespace
}  // namespace roleshare::econ
