// Gossip overlay topology.
//
// The paper's simulator sends each message to 5 randomly selected peers
// (§III-C). We model this as a static random k-out digraph sampled once per
// run: node v relays to out_neighbors(v). Connectivity of the underlying
// graph is what the synchrony of the round hinges on once defectors stop
// relaying.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ledger/types.hpp"
#include "util/rng.hpp"

namespace roleshare::net {

class Topology {
 public:
  /// Samples a random k-out digraph on `n` nodes (no self-loops, no
  /// duplicate edges). Requires k < n.
  static Topology random_k_out(std::size_t n, std::size_t k,
                               util::Rng& rng);

  /// Builds a topology from explicit adjacency (used by tests).
  static Topology from_adjacency(
      std::vector<std::vector<ledger::NodeId>> adjacency);

  std::size_t node_count() const { return out_.size(); }
  std::size_t fan_out() const { return fan_out_; }

  std::span<const ledger::NodeId> out_neighbors(ledger::NodeId v) const;

  /// Nodes that relay *to* v (precomputed reverse adjacency).
  std::span<const ledger::NodeId> in_neighbors(ledger::NodeId v) const;

 private:
  Topology() = default;
  void build_reverse();

  std::vector<std::vector<ledger::NodeId>> out_;
  std::vector<std::vector<ledger::NodeId>> in_;
  std::size_t fan_out_ = 0;
};

}  // namespace roleshare::net
