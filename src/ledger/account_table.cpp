#include "ledger/account_table.hpp"

#include "util/require.hpp"

namespace roleshare::ledger {

NodeId AccountTable::add_account(const crypto::PublicKey& key,
                                 MicroAlgos balance) {
  RS_REQUIRE(balance >= 0, "starting balance must be non-negative");
  RS_REQUIRE(by_key_.find(key.value) == by_key_.end(),
             "duplicate account key");
  const auto id = static_cast<NodeId>(accounts_.size());
  accounts_.push_back(Account{id, key, balance});
  by_key_.emplace(key.value, id);
  return id;
}

const Account& AccountTable::account(NodeId id) const {
  RS_REQUIRE(id < accounts_.size(), "unknown account id");
  return accounts_[id];
}

std::optional<NodeId> AccountTable::find(const crypto::PublicKey& key) const {
  const auto it = by_key_.find(key.value);
  if (it == by_key_.end()) return std::nullopt;
  return it->second;
}

std::int64_t AccountTable::total_stake() const {
  std::int64_t total = 0;
  for (const Account& a : accounts_) total += a.stake_algos();
  return total;
}

std::vector<std::int64_t> AccountTable::stakes() const {
  std::vector<std::int64_t> out;
  stakes_into(out);
  return out;
}

void AccountTable::stakes_into(std::vector<std::int64_t>& out) const {
  out.clear();
  out.reserve(accounts_.size());
  for (const Account& a : accounts_) out.push_back(a.stake_algos());
}

void AccountTable::credit(NodeId id, MicroAlgos amount) {
  RS_REQUIRE(amount >= 0, "credit must be non-negative");
  RS_REQUIRE(id < accounts_.size(), "unknown account id");
  accounts_[id].balance += amount;
}

bool AccountTable::validate(const Transaction& txn) const {
  if (!txn.verify_signature()) return false;
  const auto from = find(txn.sender());
  const auto to = find(txn.receiver());
  if (!from || !to) return false;
  if (*from == *to) return false;
  return accounts_[*from].balance >= txn.amount() + txn.fee();
}

bool AccountTable::apply(const Transaction& txn) {
  if (!validate(txn)) return false;
  const NodeId from = *find(txn.sender());
  const NodeId to = *find(txn.receiver());
  accounts_[from].balance -= txn.amount() + txn.fee();
  accounts_[to].balance += txn.amount();
  return true;
}

}  // namespace roleshare::ledger
