// S1 — scenario-diversity sweep: the behaviour-policy layer
// (sim/scenario_policy.hpp) driven across its three reactive policies ×
// defection levels, on the shared ExperimentRunner engine.
//
//   scripted  — the Fig-3 baseline: a fixed fraction defects by script.
//   adaptive  — the same cohort re-decides every round via
//               game::best_response against the observed Foundation
//               reward (§III-C unraveling from actual payoffs).
//   stake     — defection probability falls linearly with stake
//               percentile (tests the claim that large stakeholders stay
//               honest); level L maps to P(defect)=2L at the bottom, 0 at
//               the top, so the population mean matches the scripted rate.
//   churn     — scripted defection plus a join/leave schedule; the live
//               population varies per round and all consensus loops index
//               live nodes only.
//
// Policy table, seeds and config construction live in
// bench/bench_drivers.hpp (make_scenario_driver) — shared with the
// orchestrate coordinator/worker pair.
//
// The binary self-checks the engine contract on every figure-mode
// invocation: each policy is re-run serially (--threads=1) at the middle
// level and must reproduce the sweep's aggregates bit for bit, and churn
// cells must show round-varying live-node counts. Exit 1 on either
// failure.
//
// The 12 (policy × level) cells are panels of the checkpointed shard
// driver, so the sweep shards and resumes exactly like fig3
// (--run-begin/--run-end + --partial-out, --checkpoint-every +
// --partial-in; DESIGN.md §6). Self-checks are skipped in shard-worker
// mode — a window is not the full sweep.
//
//   $ ./scenario_sweep --nodes=120 --runs=6 --rounds=8 --threads=0
#include <cstdio>
#include <string>
#include <vector>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/defection_experiment.hpp"

using namespace roleshare;

namespace {

double series_mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double mean_final_pct(const sim::DefectionSeries& series) {
  double sum = 0.0;
  for (const sim::RoundAggregate& agg : series.rounds) sum += agg.final_pct;
  return series.rounds.empty()
             ? 0.0
             : sum / static_cast<double>(series.rounds.size());
}

bool bit_identical(const sim::DefectionSeries& a,
                   const sim::DefectionSeries& b) {
  if (a.rounds.size() != b.rounds.size()) return false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    if (a.rounds[r].final_pct != b.rounds[r].final_pct ||
        a.rounds[r].tentative_pct != b.rounds[r].tentative_pct ||
        a.rounds[r].none_pct != b.rounds[r].none_pct)
      return false;
  }
  return a.runs_with_progress == b.runs_with_progress &&
         a.live_series == b.live_series &&
         a.cooperation_series == b.cooperation_series &&
         a.min_live == b.min_live && a.max_live == b.max_live;
}

std::string join_series(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", xs[i]);
    out += buf;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ScenarioDriver d = bench::make_scenario_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Scenario sweep",
                      "behaviour policies x defection levels");
  std::printf("nodes=%zu runs=%zu rounds=%zu threads=%zu inner-threads=%zu "
              "agg=%s (override with --nodes/--runs/--rounds/--threads/"
              "--inner-threads/--agg; shard with --run-begin/--run-end + "
              "--partial-out)\n\n",
              d.nodes, d.runs, d.rounds, d.threads, d.inner_threads,
              sim::to_string(d.agg));

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::DefectionPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  std::printf("%10s %7s %8s %7s %13s %10s\n", "policy", "level", "final%",
              "coop%", "live min..max", "progress");

  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(d.nodes)},
      {"runs", static_cast<double>(d.runs)},
      {"rounds", static_cast<double>(d.rounds)},
      {"threads", static_cast<double>(d.threads)},
      {"inner_threads", static_cast<double>(d.inner_threads)},
      {"agg", sim::to_string(d.agg)}};

  bool all_identical = true;
  bool churn_varies = true;
  std::size_t accumulator_bytes = 0;
  util::json::Value series_panels = util::json::Value::array();
  for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel) {
    const bench::scenario::PolicyCase& policy =
        bench::scenario::panel_policy(panel);
    const std::size_t i = bench::scenario::panel_level(panel);
    const double level = bench::scenario::kLevels[i];
    const sim::DefectionSeries series =
        exec.partials[panel].finalize(bench::scenario::kTrim);
    {
      util::json::Value v = d.panels.panel_meta(panel);
      v.set("series", bench::defection_series_json(series));
      series_panels.push_back(std::move(v));
    }

    accumulator_bytes += series.accumulator_bytes;
    const double final_pct = mean_final_pct(series);
    const double coop_pct = series_mean(series.cooperation_series);
    std::printf("%10s %6.0f%% %8.1f %7.1f %6zu..%-6zu %9.0f%%\n",
                policy.name, level * 100, final_pct, coop_pct,
                series.min_live, series.max_live,
                series.runs_with_progress * 100);

    const std::string tag = std::string(policy.name) + "_" +
                            std::to_string(static_cast<int>(level * 100));
    json_fields.emplace_back("mean_final_pct_" + tag, final_pct);
    json_fields.emplace_back("mean_coop_pct_" + tag, coop_pct);
    if (policy.churn) {
      json_fields.emplace_back("live_min_" + tag,
                               static_cast<double>(series.min_live));
      json_fields.emplace_back("live_max_" + tag,
                               static_cast<double>(series.max_live));
      json_fields.emplace_back("live_series_" + tag,
                               join_series(series.live_series));
      // The whole point of churn: the live population must actually
      // vary across (runs, rounds).
      churn_varies = churn_varies && series.min_live < series.max_live;
    }

    // Engine contract self-check: the middle level of every policy is
    // re-run fully serial and must match the sweep bit for bit.
    if (i == bench::scenario::kCheckedLevel) {
      sim::DefectionExperimentConfig serial =
          d.panel_config(panel, knobs.shard);
      serial.threads = 1;
      serial.inner_threads = 1;
      all_identical = all_identical &&
                      bit_identical(series,
                                    sim::run_defection_experiment(serial));
    }
  }

  if (!series_out.empty()) {
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  std::printf("\nbit-identical to serial: %s | churn live counts vary: %s\n",
              all_identical ? "yes" : "NO — BUG",
              churn_varies ? "yes" : "NO — BUG");
  std::printf("accumulator memory (%s backend, all cells): %.1f KiB\n",
              sim::to_string(d.agg),
              static_cast<double>(accumulator_bytes) / 1024.0);
  json_fields.emplace_back("bit_identical", all_identical ? "yes" : "no");
  json_fields.emplace_back("churn_live_varies", churn_varies ? "yes" : "no");
  json_fields.emplace_back("accumulator_bytes",
                           static_cast<double>(accumulator_bytes));
  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("scenario_sweep", json_fields);

  if (!all_identical || !churn_varies) {
    std::fprintf(stderr, "ERROR: scenario engine self-check failed "
                         "(bit_identical=%d churn_varies=%d)\n",
                 all_identical ? 1 : 0, churn_varies ? 1 : 0);
    return 1;
  }
  std::printf("\nShape check: adaptive final%% should fall below scripted at\n"
              "the same level once candidates learn defection pays; stake-\n"
              "correlated keeps whales honest, softening the collapse; churn\n"
              "shrinks and regrows the live population without breaking\n"
              "determinism.\n");
  return 0;
}
