// Drives one full round of Algorand over the simulated network:
// sortition → block proposals → gossip → Reduction → BinaryBA* → FINAL
// vote — then reports, per node, whether it extracted a final block, a
// tentative block, or no block at all (the Fig-3 metric), plus the role
// snapshot the reward schemes consume.
//
// The engine advances the protocol in lock-step steps: per step it elects
// the committee, lets cooperative members emit votes, propagates each vote
// through the relay subgraph (defectors receive but do not forward), and
// feeds each node's delay-filtered view into that node's BA state machine.
//
// Within-run parallelism: every per-node loop (sortition draws, vote
// verification, per-node tallies, gossip fan-out, BA advancement) runs
// through a util::InnerExecutor over the pool handed to the constructor.
// Randomness that those loops consume comes from per-origin streams
// round_rng.split("gossip").split(step).split(origin) — one independent
// stream per (step, origin) — so the engine's output is bit-identical for
// every inner worker count, including fully serial (DESIGN.md §4).
#pragma once

#include <optional>
#include <vector>

#include "consensus/params.hpp"
#include "econ/role_snapshot.hpp"
#include "net/gossip.hpp"
#include "sim/network.hpp"
#include "sim/round_workspace.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {

/// Per-node outcome of one round (the Fig-3 categories).
enum class NodeOutcome : std::uint8_t { Final, Tentative, NoBlock };

struct RoundResult {
  ledger::Round round = 0;
  /// Outcome per node, indexed by node id over the FULL population
  /// (offline and departed nodes count as NoBlock).
  std::vector<NodeOutcome> outcomes;
  /// Nodes present (live) this round — round-varying under churn; the
  /// denominator of the outcome fractions below. Equals outcomes.size()
  /// on churn-free networks.
  std::size_t live_count = 0;
  /// Fractions over the live population.
  double final_fraction = 0.0;
  double tentative_fraction = 0.0;
  double none_fraction = 0.0;
  /// Whether the canonical chain advanced with a non-empty block.
  bool non_empty_block = false;
  /// Role snapshot of *observed* roles, aligned with node ids (defectors
  /// hide their roles and appear as Others; offline nodes carry stake 0 so
  /// schemes pay them nothing).
  std::optional<econ::RoleSnapshot> roles;
  /// Snapshot of *true* sortition roles including hidden (defecting)
  /// leaders and committee members — what each node privately knows about
  /// itself; feeds the strategic (game-theoretic) loop.
  std::optional<econ::RoleSnapshot> roles_true;
  /// Number of proposals actually broadcast.
  std::size_t proposals = 0;
  /// Synchrony state the round ran under.
  net::SynchronyState synchrony = net::SynchronyState::Strong;
};

class RoundEngine {
 public:
  /// `inner_pool` (optional, borrowed, must outlive the engine) fans the
  /// per-node loops of each round out across its workers; nullptr runs
  /// them inline. Results are bit-identical either way.
  RoundEngine(Network& network, consensus::ConsensusParams params,
              util::ThreadPool* inner_pool = nullptr);

  /// Runs the next round (chain height determines the round number),
  /// appends the agreed block to the network's chain, and returns the
  /// per-node outcomes.
  RoundResult run_round();

  /// Same, on caller-owned working memory: `ws` supplies every buffer the
  /// round needs and keeps its capacity for the next call (see
  /// round_workspace.hpp for the reuse contract).
  RoundResult run_round(RoundWorkspace& ws);

  /// Fully recycled form — the round's working buffers come from `ws` and
  /// the outputs are rebuilt in place inside `result` (its vectors and
  /// role snapshots keep their capacity). In steady state this is the
  /// zero-allocation path. Results are bit-identical to run_round()
  /// regardless of what either object previously held.
  ///
  /// Under CommitteeModel::Sampled this dispatches to the sparse core on a
  /// context rebuilt from the ledger (O(N) per round) and expands the full
  /// RoundResult — the dense evaluation of the Sampled semantics.
  void run_round_into(RoundResult& result, RoundWorkspace& ws);

  /// The O(committee · log N) round path (requires CommitteeModel::
  /// Sampled): runs the sparse core on a caller-maintained context —
  /// NOT rebuilt here; the caller owns keeping it in sync with the network
  /// via SparseRoundContext::refresh_node — and reports only aggregates
  /// plus the touched-node roles. Bit-identical to run_round_into's
  /// sampled dispatch whenever `ctx` matches the ledger (the property
  /// tests/prop/prop_sparse.cpp locks).
  void run_round_sparse_into(SparseRoundResult& result,
                             const SparseRoundContext& ctx,
                             SparseRoundWorkspace& ws);

  const consensus::ConsensusParams& params() const { return params_; }
  const util::InnerExecutor& executor() const { return exec_; }

 private:
  Network& network_;
  consensus::ConsensusParams params_;
  util::InnerExecutor exec_;
};

}  // namespace roleshare::sim
