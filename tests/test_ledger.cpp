#include <gtest/gtest.h>

#include "ledger/account_table.hpp"
#include "ledger/transaction.hpp"
#include "ledger/txpool.hpp"

namespace roleshare::ledger {
namespace {

crypto::KeyPair key_of(std::uint64_t id) {
  return crypto::KeyPair::derive(1000, id);
}

TEST(Types, AlgoConversions) {
  EXPECT_EQ(algos(5), 5'000'000);
  EXPECT_DOUBLE_EQ(to_algos(2'500'000), 2.5);
}

TEST(Transaction, CreateAndVerify) {
  const auto sender = key_of(0);
  const auto receiver = key_of(1);
  const Transaction txn =
      Transaction::create(sender, receiver.public_key(), algos(3), 100, 7);
  EXPECT_TRUE(txn.verify_signature());
  EXPECT_EQ(txn.amount(), algos(3));
  EXPECT_EQ(txn.fee(), 100);
  EXPECT_EQ(txn.nonce(), 7u);
  EXPECT_EQ(txn.sender(), sender.public_key());
  EXPECT_EQ(txn.receiver(), receiver.public_key());
}

TEST(Transaction, IdExcludesNothingImportant) {
  const auto sender = key_of(0);
  const auto receiver = key_of(1);
  const auto a =
      Transaction::create(sender, receiver.public_key(), algos(1), 0, 1);
  const auto b =
      Transaction::create(sender, receiver.public_key(), algos(1), 0, 2);
  const auto c =
      Transaction::create(sender, receiver.public_key(), algos(2), 0, 1);
  EXPECT_NE(a.id(), b.id());  // nonce differs
  EXPECT_NE(a.id(), c.id());  // amount differs
}

TEST(Transaction, RejectsNonPositiveAmount) {
  const auto sender = key_of(0);
  EXPECT_THROW(
      Transaction::create(sender, key_of(1).public_key(), 0, 0, 1),
      std::invalid_argument);
  EXPECT_THROW(
      Transaction::create(sender, key_of(1).public_key(), algos(1), -1, 1),
      std::invalid_argument);
}

TEST(AccountTable, AddAndLookup) {
  AccountTable table;
  const NodeId a = table.add_account(key_of(0).public_key(), algos(10));
  const NodeId b = table.add_account(key_of(1).public_key(), algos(20));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.balance(a), algos(10));
  EXPECT_EQ(table.stake(b), 20);
  EXPECT_EQ(table.find(key_of(1).public_key()), std::optional<NodeId>(1));
  EXPECT_FALSE(table.find(key_of(9).public_key()).has_value());
}

TEST(AccountTable, RejectsDuplicateKey) {
  AccountTable table;
  table.add_account(key_of(0).public_key(), algos(1));
  EXPECT_THROW(table.add_account(key_of(0).public_key(), algos(2)),
               std::invalid_argument);
}

TEST(AccountTable, TotalStakeSumsWholeAlgos) {
  AccountTable table;
  table.add_account(key_of(0).public_key(), algos(10) + 400'000);
  table.add_account(key_of(1).public_key(), algos(5));
  EXPECT_EQ(table.total_stake(), 15);  // fractional part ignored
  EXPECT_EQ(table.stakes(), (std::vector<std::int64_t>{10, 5}));
}

TEST(AccountTable, ApplyTransfersValue) {
  AccountTable table;
  const NodeId a = table.add_account(key_of(0).public_key(), algos(10));
  const NodeId b = table.add_account(key_of(1).public_key(), algos(1));
  const auto txn =
      Transaction::create(key_of(0), key_of(1).public_key(), algos(4), 500, 1);
  ASSERT_TRUE(table.validate(txn));
  ASSERT_TRUE(table.apply(txn));
  EXPECT_EQ(table.balance(a), algos(6) - 500);
  EXPECT_EQ(table.balance(b), algos(5));
}

TEST(AccountTable, RejectsOverdraft) {
  AccountTable table;
  table.add_account(key_of(0).public_key(), algos(2));
  table.add_account(key_of(1).public_key(), 0);
  const auto txn =
      Transaction::create(key_of(0), key_of(1).public_key(), algos(3), 0, 1);
  EXPECT_FALSE(table.validate(txn));
  EXPECT_FALSE(table.apply(txn));
  EXPECT_EQ(table.balance(0), algos(2));  // unchanged
}

TEST(AccountTable, RejectsUnknownParties) {
  AccountTable table;
  table.add_account(key_of(0).public_key(), algos(5));
  const auto txn =
      Transaction::create(key_of(0), key_of(9).public_key(), algos(1), 0, 1);
  EXPECT_FALSE(table.validate(txn));
}

TEST(AccountTable, RejectsSelfTransfer) {
  AccountTable table;
  table.add_account(key_of(0).public_key(), algos(5));
  const auto txn =
      Transaction::create(key_of(0), key_of(0).public_key(), algos(1), 0, 1);
  EXPECT_FALSE(table.validate(txn));
}

TEST(AccountTable, CreditIncreasesBalance) {
  AccountTable table;
  const NodeId a = table.add_account(key_of(0).public_key(), algos(1));
  table.credit(a, 250'000);
  EXPECT_EQ(table.balance(a), algos(1) + 250'000);
  EXPECT_THROW(table.credit(a, -1), std::invalid_argument);
}

TEST(TxPool, SubmitAndDedup) {
  TxPool pool;
  const auto txn =
      Transaction::create(key_of(0), key_of(1).public_key(), algos(1), 0, 1);
  EXPECT_TRUE(pool.submit(txn));
  EXPECT_FALSE(pool.submit(txn));  // duplicate id
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(txn.id()));
}

TEST(TxPool, PeekPreservesOrderAndDoesNotRemove) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 5; ++i) {
    pool.submit(Transaction::create(key_of(0), key_of(1).public_key(),
                                    algos(1), 0, i));
  }
  const auto taken = pool.peek(3);
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].nonce(), 0u);
  EXPECT_EQ(taken[2].nonce(), 2u);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(TxPool, MarkIncludedRemoves) {
  TxPool pool;
  std::vector<Transaction> txns;
  for (std::uint64_t i = 0; i < 4; ++i) {
    txns.push_back(Transaction::create(key_of(0), key_of(1).public_key(),
                                       algos(1), 0, i));
    pool.submit(txns.back());
  }
  pool.mark_included({txns[0], txns[2]});
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.contains(txns[0].id()));
  EXPECT_TRUE(pool.contains(txns[1].id()));
  // Removed ids can be resubmitted (e.g. a reorg would reintroduce them).
  EXPECT_TRUE(pool.submit(txns[0]));
}

TEST(TxPool, ClearEmptiesEverything) {
  TxPool pool;
  pool.submit(
      Transaction::create(key_of(0), key_of(1).public_key(), algos(1), 0, 1));
  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.peek(10).size(), 0u);
}

}  // namespace
}  // namespace roleshare::ledger
