// Aggregation of per-round outcomes across simulation runs — the paper's
// 20%-trimmed-mean methodology (§III-C) producing the Fig-3 series.
// Built on the mergeable RoundAccumulator concept so per-run (or
// per-shard) partials can be merged in run-index order by the experiment
// runner, under either the exact or the streaming backend.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/aggregators.hpp"
#include "sim/round_engine.hpp"
#include "util/json.hpp"

namespace roleshare::sim {

/// Trimmed-mean outcome fractions for one round index.
struct RoundAggregate {
  double final_pct = 0.0;      // % of nodes extracting a final block
  double tentative_pct = 0.0;  // % extracting only a tentative block
  double none_pct = 0.0;       // % extracting no block
};

class OutcomeMetrics {
 public:
  /// `backend` selects the accumulator implementation behind all three
  /// outcome series; Exact reproduces the historical sample matrix bit
  /// for bit.
  explicit OutcomeMetrics(std::size_t rounds,
                          AggBackend backend = AggBackend::Exact,
                          const StreamingAggConfig& streaming = {});

  OutcomeMetrics(OutcomeMetrics&&) = default;
  OutcomeMetrics& operator=(OutcomeMetrics&&) = default;

  /// Records one run's result for `round_index` (0-based).
  void record(std::size_t round_index, const RoundResult& result);

  /// Same, from already-computed percentages (0..100) — the form per-run
  /// partials carry across the thread-pool boundary.
  void record(std::size_t round_index, double final_pct, double tentative_pct,
              double none_pct);

  /// Folds `other` in after this instance's own samples (run-index-ordered
  /// reduction; requires equal round counts and the same backend).
  void merge(const OutcomeMetrics& other);

  AggBackend backend() const { return final_->backend(); }
  std::size_t rounds() const { return final_->rounds(); }
  std::size_t runs_recorded(std::size_t round_index) const;

  /// Trimmed-mean series over all recorded runs (percentages, 0..100).
  std::vector<RoundAggregate> aggregate(double trim_fraction = 0.2) const;

  /// Bytes held by the three outcome accumulators.
  std::size_t memory_bytes() const;

  /// Shard-partial serialization; from_json inverts it exactly for the
  /// exact backend.
  util::json::Value to_json() const;
  static OutcomeMetrics from_json(const util::json::Value& value);

 private:
  OutcomeMetrics() = default;  // for from_json

  std::unique_ptr<RoundAccumulator> final_;
  std::unique_ptr<RoundAccumulator> tentative_;
  std::unique_ptr<RoundAccumulator> none_;
};

}  // namespace roleshare::sim
