// Shard orchestration coordinator (DESIGN.md §11): splits a bench's run
// range [0, runs) into fixed-size windows, streams ASSIGNs to worker
// agents over the wire protocol (orch/wire.hpp), and folds each finished
// window's partial document — in window order, through the caller's fold
// callback — into the final series. Failure paths are first-class:
//
//   worker death   (EOF / reaped exit) -> the leased window is requeued,
//                  resuming from the dead attempt's last advertised
//                  checkpoint; a replacement worker is spawned while
//                  work remains.
//   lease expiry   a window leased longer than lease_seconds is requeued
//                  to another worker. The straggler is NOT killed: each
//                  attempt spools to its own private file
//                  (w<i>.a<n>.partial), so whichever attempt finishes
//                  first wins and the loser's DONE is discarded as a
//                  duplicate.
//   FAIL message   the attempt errored but the worker lives: requeue the
//                  window, hand the worker its next assignment.
//   attempt cap    a window that fails max_attempts times aborts the job
//                  loudly (the error is systemic, not transient).
//
// Because every re-issued window re-executes through the worker's
// run_sharded_panels, a finished window that was already published to
// the result store is served from cache, not recomputed — retries are
// cheap by construction. The coordinator itself stays generic: it moves
// bytes and windows, and the bench layer (bench/bench_drivers.hpp)
// supplies the typed fold/finalize callbacks, which is what keeps the
// orchestrated series byte-identical to a single-process run.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

namespace roleshare::orch {

struct JobConfig {
  std::size_t runs = 0;     // total run range [0, runs)
  std::size_t window = 0;   // runs per assignment window (last may be short)
  std::size_t workers = 1;  // worker agents to keep alive
  std::string socket_path;  // Unix socket the workers dial
  std::string spool_dir;    // per-attempt partial files live here
  /// Seconds a window may stay leased without progress before it is
  /// re-issued to another worker; 0 disables the deadline (death and
  /// FAIL still requeue).
  double lease_seconds = 0.0;
  /// A window aborts the job after this many failed/expired attempts.
  std::size_t max_attempts = 5;
  /// Fault injection: after this window first folds, re-enqueue it once
  /// more (it is already folded, so the duplicate result is discarded —
  /// the point is driving the worker's store-hit path). -1 = off.
  long long reissue_window = -1;
  /// Print per-message protocol traffic.
  bool verbose = false;
};

/// The bench-specific half of a job. `config_echo` is the expected HELLO
/// payload (the shard-document header dump); a worker echoing anything
/// else is running a drifted config and the job aborts. `fold` receives
/// each finished window's partial-document bytes IN WINDOW ORDER;
/// `finalize` runs once after the last fold.
struct JobCallbacks {
  std::string config_echo;
  std::function<void(const std::string& bytes, std::size_t run_begin,
                     std::size_t run_end, const std::string& origin)>
      fold;
  std::function<void()> finalize;
};

struct JobStats {
  std::size_t windows = 0;
  std::size_t folded = 0;
  std::size_t retries = 0;            // requeues (death/expiry/FAIL)
  std::size_t store_hits = 0;         // DONEs served from the result store
  std::size_t worker_deaths = 0;      // EOFs / abnormal exits observed
  std::size_t respawns = 0;           // replacement workers spawned
  std::size_t duplicate_results = 0;  // late/straggler DONEs discarded
  std::size_t checkpoints = 0;        // PROGRESS messages received
};

/// Spawns one worker agent process; receives the worker id the agent
/// must HELLO with, returns its pid. The CLI re-execs itself with
/// --worker; tests fork a run_worker call directly.
using SpawnWorkerFn = std::function<pid_t(std::uint32_t worker_id)>;

/// Runs the job to completion: listens, spawns config.workers agents,
/// schedules every window, folds in order, shuts the fleet down, reaps
/// it, calls finalize. Throws std::runtime_error on unrecoverable
/// failures (config-echo drift, attempt cap, corrupt spool).
JobStats run_coordinator(const JobConfig& config,
                         const JobCallbacks& callbacks,
                         const SpawnWorkerFn& spawn_worker);

}  // namespace roleshare::orch
