// Best-response machinery: single-player best responses and asynchronous
// best-response dynamics. Used to study where selfish play converges from
// arbitrary starting profiles (All-D is always absorbing; with the
// role-based scheme and sufficient B_i the Theorem-3 profile is too).
#pragma once

#include "game/equilibrium.hpp"

namespace roleshare::game {

/// The strategy maximizing `player`'s payoff holding everyone else fixed.
/// Ties break toward the current strategy, then C > D > O.
Strategy best_response(const AlgorandGame& game, const Profile& profile,
                       ledger::NodeId player, double tolerance = 1e-9);

struct DynamicsResult {
  Profile profile;             // final profile
  std::size_t sweeps = 0;      // full passes over the population
  bool converged = false;      // no player moved in the last sweep
  std::size_t total_moves = 0; // strategy switches along the way
};

/// Repeated sweeps of sequential best responses (players in id order)
/// until a fixpoint or `max_sweeps`. A fixpoint is a Nash equilibrium.
DynamicsResult best_response_dynamics(const AlgorandGame& game,
                                      Profile start,
                                      std::size_t max_sweeps = 100,
                                      double tolerance = 1e-9);

}  // namespace roleshare::game
