#include "sim/aggregators.hpp"

#include <limits>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

namespace {

/// The deterministic reduction of a round nobody recorded a sample for.
constexpr double empty_round_value() {
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

PerRoundSamples::PerRoundSamples(std::size_t rounds) : samples_(rounds) {
  RS_REQUIRE(rounds > 0, "aggregator needs at least one round");
}

std::size_t PerRoundSamples::count(std::size_t round_index) const {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  return samples_[round_index].size();
}

bool PerRoundSamples::empty_round(std::size_t round_index) const {
  return count(round_index) == 0;
}

const std::vector<double>& PerRoundSamples::samples(
    std::size_t round_index) const {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  return samples_[round_index];
}

void PerRoundSamples::record(std::size_t round_index, double value) {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  samples_[round_index].push_back(value);
}

void PerRoundSamples::merge(const PerRoundSamples& other) {
  RS_REQUIRE(other.samples_.size() == samples_.size(),
             "merging aggregators with different round counts");
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    samples_[r].insert(samples_[r].end(), other.samples_[r].begin(),
                       other.samples_[r].end());
  }
}

std::vector<double> PerRoundSamples::trimmed_mean_series(
    double trim_fraction) const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] = samples_[r].empty()
                 ? empty_round_value()
                 : util::trimmed_mean(samples_[r], trim_fraction);
  }
  return out;
}

std::vector<double> PerRoundSamples::mean_series() const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] =
        samples_[r].empty() ? empty_round_value() : util::mean(samples_[r]);
  }
  return out;
}

std::vector<double> PerRoundSamples::percentile_series(double p) const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] = samples_[r].empty() ? empty_round_value()
                                 : util::percentile(samples_[r], p);
  }
  return out;
}

}  // namespace roleshare::sim
