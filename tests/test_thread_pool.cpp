#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace roleshare::util {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(7), 7u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> done;
  pool.submit([&done] { done.set_value(41); });
  EXPECT_EQ(done.get_future().get(), 41);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_indexed(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  pool.parallel_for_indexed(0, [](std::size_t) { FAIL(); });
  std::atomic<int> count{0};
  pool.parallel_for_indexed(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ExceptionOfLowestIndexPropagates) {
  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t n = 64;
    std::vector<std::atomic<int>> attempted(n);
    try {
      pool.parallel_for_indexed(n, [&](std::size_t i) {
        ++attempted[i];
        if (i == 7) throw std::runtime_error("seven");
        if (i == 23) throw std::runtime_error("twenty-three");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "seven");
    }
    // Every index is still attempted even though two of them threw.
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(attempted[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for_indexed(
        100, [&](std::size_t i) { total += static_cast<long long>(i); });
  }
  EXPECT_EQ(total.load(), 5 * (99 * 100 / 2));
}

}  // namespace
}  // namespace roleshare::util
