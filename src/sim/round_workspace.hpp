// Reusable working memory for RoundEngine::run_round_into.
//
// Every buffer the engine needs while driving a round lives here, owned by
// the caller and recycled across rounds: vectors are clear()-and-refilled,
// never reconstructed, so once each buffer has reached its high-water mark
// a steady-state round performs no heap allocation for engine working
// state. (Residual allocations are inherent to producing *new* state: the
// transactions pulled from the pool for each proposal and the block
// appended to the growing chain.)
//
// Ownership contract: a workspace belongs to one engine invocation at a
// time — run_round_into may scribble over every field. Between calls the
// contents are meaningless; only the capacity is of value. A workspace can
// be shared across engines and configurations freely: every buffer is
// (re)sized from the current network before use, so reusing a "dirty"
// workspace from a different run is safe and bit-identical to starting
// from a fresh one.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "consensus/binary_ba.hpp"
#include "consensus/committee.hpp"
#include "consensus/proposal.hpp"
#include "consensus/roles.hpp"
#include "consensus/votes.hpp"
#include "crypto/hash.hpp"
#include "crypto/sortition.hpp"
#include "net/gossip.hpp"
#include "net/sim_time.hpp"
#include "sim/sampled_round.hpp"

namespace roleshare::sim {

/// Per-node outcome of one voting step: the quorum winner this node
/// counted (nullopt = timeout) and the common coin it observed.
struct StepOutcome {
  std::optional<crypto::Hash256> winner;
  bool coin = false;
};

/// Working memory of one voting step (reused by every step of every round).
struct StepWorkspace {
  consensus::Committee committee;
  std::vector<crypto::SortitionResult> draws;
  std::vector<consensus::Vote> votes;
  /// Chunked RNG derivation: per-vote origin labels and the child seeds
  /// derived from the step's gossip stream in one derive_seeds call.
  std::vector<std::uint64_t> origin_labels;
  std::vector<std::uint64_t> origin_seeds;
  /// Pools indexed by vote: arrival rows and Dijkstra scratch. Grown but
  /// never shrunk, so inner capacity survives across steps.
  std::vector<std::vector<net::TimeMs>> arrivals;
  std::vector<net::GossipScratch> scratch;
  std::vector<std::uint8_t> valid;
  /// Flat tally tables, computed once per step (not once per node):
  /// counted[j] indexes the j-th valid vote; weight/value_id/coin_hash are
  /// parallel to counted. values holds the distinct voted values.
  std::vector<std::uint32_t> counted;
  std::vector<const net::TimeMs*> counted_rows;  // arrival row per counted vote
  std::vector<std::uint64_t> counted_weight;
  std::vector<std::uint32_t> counted_value_id;
  std::vector<crypto::Hash256> counted_coin_hash;
  std::vector<crypto::Hash256> values;
  /// Per-chunk weight accumulators: chunk c uses the slice
  /// [c * values.size(), (c+1) * values.size()).
  std::vector<std::uint64_t> tally_weights;
};

/// All working memory of one round. See the file comment for the
/// ownership and reuse contract.
struct RoundWorkspace {
  std::vector<std::int64_t> stakes;
  net::RelaySet relay;
  std::vector<consensus::Role> observed_roles;
  std::vector<consensus::Role> true_roles;

  // Proposal phase.
  std::vector<crypto::SortitionResult> proposer_draws;
  std::vector<consensus::BlockProposal> proposals;
  /// Block hashes computed once per proposal (Block::hash() walks the
  /// whole transaction list — per (node, proposal) it dominated the round).
  std::vector<crypto::Hash256> proposal_hashes;
  std::vector<std::uint64_t> proposer_labels;
  std::vector<std::uint64_t> proposer_seeds;
  std::vector<std::vector<net::TimeMs>> proposal_arrivals;
  std::vector<net::GossipScratch> proposal_scratch;
  std::vector<int> best_idx;

  // Voting steps.
  StepWorkspace step;
  std::vector<StepOutcome> step1;
  std::vector<StepOutcome> step2;
  std::vector<StepOutcome> ba_out;
  std::vector<StepOutcome> finals;

  // BinaryBA* state.
  std::vector<consensus::BinaryBaState> ba;
  std::vector<int> post_votes;

  // Conclusion and snapshots.
  std::vector<std::pair<crypto::Hash256, std::size_t>> conclusion_counts;
  std::vector<std::int64_t> reward_stakes;
  std::vector<std::int64_t> reward_stakes_true;

  // Sampled-model state (CommitteeModel::Sampled): the dense evaluation
  // rebuilds `sampled_context` from the ledger every round and runs the
  // sparse core on these buffers before expanding the full RoundResult.
  SparseRoundContext sampled_context;
  SparseRoundWorkspace sampled_scratch;
  SparseRoundResult sampled_result;

  /// Total bytes currently reserved across the workspace's buffers — the
  /// round engine's steady-state working set, reported by bench/round_latency.
  std::size_t capacity_bytes() const;
};

}  // namespace roleshare::sim
