// E9 — substrate microbenchmarks (google-benchmark): the primitives whose
// throughput bounds experiment wall-clock — SHA-256, VRF+sortition, gossip
// propagation, vote tallying, and a full simulated consensus round.
#include <benchmark/benchmark.h>

#include "consensus/votes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sortition.hpp"
#include "net/gossip.hpp"
#include "sim/round_engine.hpp"

using namespace roleshare;

namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_VrfEvaluate(benchmark::State& state) {
  const crypto::KeyPair key = crypto::KeyPair::derive(1, 1);
  const crypto::VrfInput input{7, 3, crypto::HashBuilder("b").build()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::vrf_evaluate(key, input));
  }
}
BENCHMARK(BM_VrfEvaluate);

void BM_Sortition(benchmark::State& state) {
  const crypto::KeyPair key = crypto::KeyPair::derive(1, 1);
  const crypto::SortitionParams params{
      1000, static_cast<std::int64_t>(state.range(0))};
  std::uint64_t round = 0;
  for (auto _ : state) {
    const crypto::VrfInput input{++round, 1, crypto::Hash256::zero()};
    benchmark::DoNotOptimize(
        crypto::sortition(key, input, state.range(0) / 100, params));
  }
}
BENCHMARK(BM_Sortition)->Arg(10'000)->Arg(1'000'000);

void BM_GossipPropagate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng trng(5);
  const net::Topology topo = net::Topology::random_k_out(n, 5, trng);
  const net::UniformDelay delay(20, 120);
  const net::GossipEngine engine(topo, delay);
  const net::RelaySet relay = net::RelaySet::all_cooperative(n);
  util::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.propagate(0, 0.0, relay, rng));
  }
}
BENCHMARK(BM_GossipPropagate)->Arg(300)->Arg(1000);

void BM_VoteTally(benchmark::State& state) {
  // Pre-build verified votes once; measure counter throughput.
  const crypto::Hash256 seed = crypto::HashBuilder("t").build();
  const crypto::SortitionParams params{5000, 10'000};
  const crypto::Hash256 value = crypto::HashBuilder("v").build();
  std::vector<consensus::Vote> votes;
  std::uint64_t id = 0;
  while (votes.size() < 64) {
    const crypto::KeyPair key = crypto::KeyPair::derive(2, id++);
    const crypto::VrfInput input{1, 1, seed};
    const auto res = crypto::sortition(key, input, 100, params);
    if (res.selected()) {
      votes.push_back(consensus::make_vote(
          static_cast<ledger::NodeId>(id), key.public_key(), 1, 1, value,
          res));
    }
  }
  for (auto _ : state) {
    consensus::VoteCounter counter(100.0);
    for (const auto& v : votes) counter.add(v);
    benchmark::DoNotOptimize(counter.result());
  }
}
BENCHMARK(BM_VoteTally);

void BM_FullConsensusRound(benchmark::State& state) {
  sim::NetworkConfig config;
  config.node_count = static_cast<std::size_t>(state.range(0));
  config.seed = 17;
  sim::Network net(config);
  sim::RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                                   net.accounts().total_stake()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_round());
  }
}
BENCHMARK(BM_FullConsensusRound)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
