#include "econ/role_snapshot.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

namespace {
std::size_t idx(consensus::Role r) { return static_cast<std::size_t>(r); }
}  // namespace

RoleSnapshot::RoleSnapshot(std::vector<consensus::Role> roles,
                           std::vector<std::int64_t> stakes)
    : roles_(std::move(roles)), stakes_(std::move(stakes)) {
  recompute_aggregates();
}

void RoleSnapshot::reset(std::vector<consensus::Role>& roles,
                         std::vector<std::int64_t>& stakes) {
  roles_.swap(roles);
  stakes_.swap(stakes);
  recompute_aggregates();
}

void RoleSnapshot::recompute_aggregates() {
  RS_REQUIRE(roles_.size() == stakes_.size(), "roles/stakes size mismatch");
  stake_sum_.fill(0);
  stake_min_.fill(0);
  counts_.fill(0);
  for (std::size_t v = 0; v < roles_.size(); ++v) {
    RS_REQUIRE(stakes_[v] >= 0, "negative stake");
    const std::size_t i = idx(roles_[v]);
    stake_sum_[i] += stakes_[v];
    if (counts_[i] == 0 || stakes_[v] < stake_min_[i])
      stake_min_[i] = stakes_[v];
    ++counts_[i];
  }
}

std::size_t RoleSnapshot::count(consensus::Role r) const {
  return counts_[idx(r)];
}

std::int64_t RoleSnapshot::stake_of(consensus::Role r) const {
  return stake_sum_[idx(r)];
}

std::int64_t RoleSnapshot::total_stake() const {
  return stake_sum_[0] + stake_sum_[1] + stake_sum_[2];
}

std::int64_t RoleSnapshot::min_stake_of(consensus::Role r) const {
  return counts_[idx(r)] == 0 ? 0 : stake_min_[idx(r)];
}

RoleSnapshot RoleSnapshot::filtered_others(std::int64_t min_stake) const {
  RS_REQUIRE(min_stake >= 0, "min stake filter");
  std::vector<consensus::Role> roles;
  std::vector<std::int64_t> stakes;
  roles.reserve(roles_.size());
  stakes.reserve(stakes_.size());
  for (std::size_t v = 0; v < roles_.size(); ++v) {
    if (roles_[v] == consensus::Role::Other && stakes_[v] < min_stake)
      continue;
    roles.push_back(roles_[v]);
    stakes.push_back(stakes_[v]);
  }
  return RoleSnapshot(std::move(roles), std::move(stakes));
}

}  // namespace roleshare::econ
