// The mergeable accumulator layer behind every figure's Monte-Carlo
// reduction.
//
// Every figure in the paper reduces per-round series across independent
// runs by the 20%-trimmed mean (§III-C) or by percentiles. This header
// provides that reduction behind one concept — RoundAccumulator — with
// two interchangeable backends:
//
//   ExactAccumulator     wraps PerRoundSamples, the full sample matrix.
//                        O(runs) memory per round; every series is exact,
//                        and merging per-run (or per-shard) partials in
//                        run-index order is bit-identical to a serial
//                        execution. The default, and the baseline every
//                        other backend is measured against.
//   StreamingAccumulator constant memory per round, independent of the
//                        run count: a Welford RunningStats (exact mean /
//                        min / max), a bank of P² quantile estimators for
//                        a fixed grid, and a deterministic reservoir
//                        sample (util/streaming_stats.hpp) for the
//                        trimmed mean and off-grid percentiles. Exact
//                        while runs <= reservoir capacity; beyond that,
//                        estimates with the documented reservoir error
//                        bound (tested in test_aggregators.cpp).
//
// Both backends serialize to/from util::json values — the interchange
// format of the run-range sharding workflow (ExperimentSpec::shard +
// the merge_partials tool). Exact-backend partials round-trip bit for
// bit; merging a streaming partial falls back from P² (a sequential
// algorithm with no merge) to the mergeable reservoir for percentiles.
//
// Empty-round semantics (both backends): a round with zero recorded
// samples reduces to quiet NaN in every *_series method, never a
// fabricated 0.0 — see PerRoundSamples below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/streaming_stats.hpp"

namespace roleshare::sim {

// ---------------------------------------------------------------------
// PerRoundSamples — the exact sample matrix (pre-dates the accumulator
// concept; ExactAccumulator wraps it). Keeps samples in insertion order,
// so merging per-run partials in run-index order reproduces a serial
// execution bit for bit.
//
// Empty-round semantics: a round with zero recorded samples — reachable
// once a scenario records conditionally, e.g. churn emptying a cohort —
// reduces to quiet NaN in every *_series method, deterministically.
// util::stats is never invoked on an empty vector (percentile would
// throw; mean / trimmed_mean would silently fabricate 0.0, which is
// indistinguishable from a real zero). Consumers must skip or map the
// NaN explicitly (bench::emit_json writes it as JSON null).
class PerRoundSamples {
 public:
  explicit PerRoundSamples(std::size_t rounds);

  std::size_t rounds() const { return samples_.size(); }
  std::size_t count(std::size_t round_index) const;
  /// True when round_index has no samples (its series entries are NaN).
  bool empty_round(std::size_t round_index) const;
  const std::vector<double>& samples(std::size_t round_index) const;

  void record(std::size_t round_index, double value);

  /// Appends every sample of `other` (same round count required) in round
  /// order — the run-index-ordered reduction step. Per-round counts may
  /// differ between the two operands (runs of different lengths).
  void merge(const PerRoundSamples& other);

  /// Per-round trimmed mean (the paper's §III-C reduction); NaN for
  /// empty rounds.
  std::vector<double> trimmed_mean_series(double trim_fraction) const;

  /// Per-round arithmetic mean; NaN for empty rounds.
  std::vector<double> mean_series() const;

  /// Per-round linear-interpolated percentile, p in [0, 100]; NaN for
  /// empty rounds.
  std::vector<double> percentile_series(double p) const;

 private:
  std::vector<std::vector<double>> samples_;
};

// ---------------------------------------------------------------------
// The accumulator concept.

enum class AggBackend : std::uint8_t { Exact, Streaming };

/// "exact" / "streaming" — the --agg knob vocabulary and the JSON
/// backend tag. Both functions fail loudly on unknown input.
const char* to_string(AggBackend backend);
AggBackend parse_agg_backend(std::string_view name);

/// Tuning for the streaming backend. Defaults keep per-round state at
/// ~2.5 KB regardless of run count and figure-scale series within a few
/// percent of exact.
struct StreamingAggConfig {
  /// Reservoir capacity per round; estimates are exact while the per-
  /// round sample count stays at or below this.
  std::size_t reservoir_capacity = 256;
  /// Quantile grid (percent units) tracked by dedicated P² estimators;
  /// off-grid percentile queries fall back to the reservoir.
  std::vector<double> p2_grid = {5.0, 25.0, 50.0, 75.0, 95.0};
};

/// One per-round reduction state with mergeable partials. Implementations
/// must keep merge() associative over contiguous run ranges; the exact
/// backend must additionally make (record in run order) == (merge of
/// run-range partials in range order), bit for bit.
class RoundAccumulator {
 public:
  virtual ~RoundAccumulator() = default;

  virtual AggBackend backend() const = 0;
  virtual std::size_t rounds() const = 0;
  virtual std::size_t count(std::size_t round_index) const = 0;
  bool empty_round(std::size_t round_index) const {
    return count(round_index) == 0;
  }

  virtual void record(std::size_t round_index, double value) = 0;

  /// Folds `other` in after this accumulator's own samples — the shard
  /// reduction step. Requires the same backend, round count and (for
  /// streaming) sketch configuration; violations throw
  /// std::invalid_argument naming both sides.
  virtual void merge(const RoundAccumulator& other) = 0;

  /// The series contracts of PerRoundSamples (NaN for empty rounds).
  virtual std::vector<double> trimmed_mean_series(
      double trim_fraction) const = 0;
  virtual std::vector<double> mean_series() const = 0;
  virtual std::vector<double> percentile_series(double p) const = 0;

  /// Bytes of heap + object state held; the exact backend grows with the
  /// run count, the streaming backend must not (tested).
  virtual std::size_t memory_bytes() const = 0;

  /// Serialization for shard partials; accumulator_from_json inverts it.
  virtual util::json::Value to_json() const = 0;

  virtual std::unique_ptr<RoundAccumulator> clone() const = 0;
};

std::unique_ptr<RoundAccumulator> make_accumulator(
    AggBackend backend, std::size_t rounds,
    const StreamingAggConfig& streaming = {});

/// Rebuilds either backend from its to_json() form; throws
/// std::invalid_argument on malformed input.
std::unique_ptr<RoundAccumulator> accumulator_from_json(
    const util::json::Value& value);

// ---------------------------------------------------------------------
// Backends.

class ExactAccumulator final : public RoundAccumulator {
 public:
  explicit ExactAccumulator(std::size_t rounds) : samples_(rounds) {}
  explicit ExactAccumulator(PerRoundSamples samples)
      : samples_(std::move(samples)) {}

  AggBackend backend() const override { return AggBackend::Exact; }
  std::size_t rounds() const override { return samples_.rounds(); }
  std::size_t count(std::size_t round_index) const override {
    return samples_.count(round_index);
  }
  void record(std::size_t round_index, double value) override {
    samples_.record(round_index, value);
  }
  void merge(const RoundAccumulator& other) override;
  std::vector<double> trimmed_mean_series(double trim_fraction) const override {
    return samples_.trimmed_mean_series(trim_fraction);
  }
  std::vector<double> mean_series() const override {
    return samples_.mean_series();
  }
  std::vector<double> percentile_series(double p) const override {
    return samples_.percentile_series(p);
  }
  std::size_t memory_bytes() const override;
  util::json::Value to_json() const override;
  std::unique_ptr<RoundAccumulator> clone() const override {
    return std::make_unique<ExactAccumulator>(*this);
  }

  const PerRoundSamples& samples() const { return samples_; }

 private:
  PerRoundSamples samples_;
};

class StreamingAccumulator final : public RoundAccumulator {
 public:
  StreamingAccumulator(std::size_t rounds, StreamingAggConfig config = {});

  AggBackend backend() const override { return AggBackend::Streaming; }
  std::size_t rounds() const override { return rounds_.size(); }
  std::size_t count(std::size_t round_index) const override;
  void record(std::size_t round_index, double value) override;
  void merge(const RoundAccumulator& other) override;
  std::vector<double> trimmed_mean_series(double trim_fraction) const override;
  std::vector<double> mean_series() const override;
  std::vector<double> percentile_series(double p) const override;
  std::size_t memory_bytes() const override;
  util::json::Value to_json() const override;
  std::unique_ptr<RoundAccumulator> clone() const override {
    return std::make_unique<StreamingAccumulator>(*this);
  }

  const StreamingAggConfig& config() const { return config_; }

 private:
  friend std::unique_ptr<RoundAccumulator> accumulator_from_json(
      const util::json::Value& value);

  /// Per-round sketch bundle. `p2_live` drops to false once a cross-
  /// partial merge makes the sequential P² state unrepresentative; the
  /// percentile path then falls back to the (mergeable) reservoir.
  struct RoundStat {
    util::RunningStats stats;
    util::ReservoirSample reservoir;
    std::vector<util::P2Quantile> p2;
    bool p2_live = true;
  };

  const RoundStat& round_at(std::size_t round_index) const;

  StreamingAggConfig config_;
  std::vector<RoundStat> rounds_;
};

}  // namespace roleshare::sim
