#include "sim/experiment_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/defection_experiment.hpp"
#include "sim/reward_experiment.hpp"
#include "sim/strategic_loop.hpp"

namespace roleshare::sim {
namespace {

TEST(ExperimentSpec, Validation) {
  EXPECT_NO_THROW(validate(ExperimentSpec{1, 1, 0, 1}));
  EXPECT_THROW(validate(ExperimentSpec{0, 1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(validate(ExperimentSpec{1, 0, 0, 1}), std::invalid_argument);
}

TEST(ExperimentSpec, ShardValidationAndDefaulting) {
  ExperimentSpec spec{8, 1, 0, 1};
  const ResolvedShard whole = resolve_shard(spec);
  EXPECT_EQ(whole.begin, 0u);
  EXPECT_EQ(whole.end, 8u);
  EXPECT_EQ(whole.count(), 8u);

  spec.shard = RunShard{2, 5};
  const ResolvedShard window = resolve_shard(spec);
  EXPECT_EQ(window.begin, 2u);
  EXPECT_EQ(window.count(), 3u);

  spec.shard = RunShard{5, 5};  // empty
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec.shard = RunShard{4, 9};  // past the run count
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

TEST(ExperimentRunner, ShardExecutesGlobalRunWindow) {
  // A shard must run exactly its window's GLOBAL run indices with their
  // global streams — the property that makes sharded sweeps replay a
  // single-process execution.
  const auto body = [](std::size_t run, util::Rng& rng) {
    return static_cast<double>(run) * 1000.0 + rng.uniform01();
  };
  ExperimentSpec whole{10, 1, 77, 2};
  const std::vector<double> reference = run_experiment(whole, body);

  ExperimentSpec window = whole;
  window.shard = RunShard{3, 7};
  const std::vector<double> sharded = run_experiment(window, body);
  ASSERT_EQ(sharded.size(), 4u);
  for (std::size_t i = 0; i < sharded.size(); ++i)
    EXPECT_EQ(sharded[i], reference[3 + i]) << "offset " << i;  // bitwise
}

TEST(ExperimentRunner, ShardReduceSeesGlobalIndicesInOrder) {
  ExperimentSpec spec{12, 1, 3, 4};
  spec.shard = RunShard{5, 9};
  std::vector<std::size_t> reduce_order;
  run_and_reduce(
      spec, [](std::size_t run, util::Rng&) { return run; },
      [&](std::size_t run, std::size_t result) {
        EXPECT_EQ(run, result);
        reduce_order.push_back(run);
      });
  EXPECT_EQ(reduce_order, (std::vector<std::size_t>{5, 6, 7, 8}));
}

TEST(ResolveParallelism, OuterClampedToShardSize) {
  // A 2-run shard of a big sweep schedules like a 2-run experiment.
  ExperimentSpec spec;
  spec.runs = 10'000;
  spec.threads = 16;
  spec.inner_threads = 8;
  spec.shard = RunShard{100, 102};
  const ResolvedParallelism par = resolve_parallelism(spec);
  EXPECT_EQ(par.outer, 2u);
  EXPECT_EQ(par.inner, 1u);

  spec.shard = RunShard{100, 101};  // single-run shard: inner may engage
  const ResolvedParallelism single = resolve_parallelism(spec);
  EXPECT_EQ(single.outer, 1u);
  EXPECT_EQ(single.inner, 8u);
}

TEST(ExperimentRunner, RunRngIsRootSplitOfRunIndex) {
  util::Rng root(1234);
  for (const std::size_t run : {0u, 1u, 17u}) {
    util::Rng expected = root.split(run);
    util::Rng actual = rng_for_run(1234, run);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(expected(), actual());
    EXPECT_EQ(seed_for_run(1234, run), root.derive_seed(run));
  }
}

TEST(ExperimentRunner, ResultsIndexedByRunRegardlessOfExecutionOrder) {
  const auto body = [](std::size_t run, util::Rng& rng) {
    return static_cast<double>(run) + rng.uniform01();
  };
  ExperimentSpec serial{32, 1, 9, 1};
  ExperimentSpec parallel = serial;
  parallel.threads = 4;
  const std::vector<double> a = run_experiment(serial, body);
  const std::vector<double> b = run_experiment(parallel, body);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t run = 0; run < a.size(); ++run) {
    EXPECT_GE(a[run], static_cast<double>(run));
    EXPECT_LT(a[run], static_cast<double>(run) + 1.0);
    EXPECT_EQ(a[run], b[run]) << "run " << run;  // bitwise
  }
}

TEST(ExperimentRunner, ReduceRunsInRunIndexOrder) {
  ExperimentSpec spec{16, 1, 3, 4};
  std::vector<std::size_t> reduce_order;
  run_and_reduce(
      spec, [](std::size_t run, util::Rng&) { return run; },
      [&](std::size_t run, std::size_t result) {
        EXPECT_EQ(run, result);
        reduce_order.push_back(run);
      });
  ASSERT_EQ(reduce_order.size(), 16u);
  for (std::size_t i = 0; i < reduce_order.size(); ++i)
    EXPECT_EQ(reduce_order[i], i);
}

TEST(ExperimentRunner, WorkerExceptionPropagates) {
  for (const std::size_t threads : {1u, 4u}) {
    ExperimentSpec spec{8, 1, 3, threads};
    std::atomic<int> attempts{0};
    EXPECT_THROW(
        run_experiment(spec,
                       [&](std::size_t run, util::Rng&) -> int {
                         ++attempts;
                         if (run == 2) throw std::runtime_error("boom");
                         return 0;
                       }),
        std::runtime_error);
    EXPECT_EQ(attempts.load(), 8);
  }
}

TEST(ExperimentRunner, ObjectFormMatchesFreeFunction) {
  const ExperimentRunner<std::uint64_t> runner(ExperimentSpec{4, 1, 77, 2});
  const auto via_object =
      runner.run([](std::size_t, util::Rng& rng) { return rng(); });
  const auto via_free = run_experiment(
      ExperimentSpec{4, 1, 77, 1},
      [](std::size_t, util::Rng& rng) { return rng(); });
  EXPECT_EQ(via_object, via_free);
}

// The acceptance-criteria experiments: parallel aggregates must be
// byte-identical to serial ones.

DefectionExperimentConfig small_defection_config(std::size_t threads) {
  DefectionExperimentConfig config;
  config.network.node_count = 60;
  config.network.seed = 42;
  config.network.defection_rate = 0.15;
  config.runs = 6;
  config.rounds = 4;
  config.threads = threads;
  return config;
}

TEST(ExperimentRunner, DefectionExperimentBitIdenticalAcrossThreadCounts) {
  const DefectionSeries serial =
      run_defection_experiment(small_defection_config(1));
  const DefectionSeries parallel =
      run_defection_experiment(small_defection_config(4));
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    EXPECT_EQ(serial.rounds[r].final_pct, parallel.rounds[r].final_pct);
    EXPECT_EQ(serial.rounds[r].tentative_pct,
              parallel.rounds[r].tentative_pct);
    EXPECT_EQ(serial.rounds[r].none_pct, parallel.rounds[r].none_pct);
  }
  EXPECT_EQ(serial.runs_with_progress, parallel.runs_with_progress);
}

RewardExperimentConfig small_reward_config(std::size_t threads) {
  RewardExperimentConfig config;
  config.node_count = 2'000;
  config.seed = 7;
  config.runs = 5;
  config.rounds_per_run = 3;
  config.threads = threads;
  return config;
}

TEST(ExperimentRunner, RewardExperimentBitIdenticalAcrossThreadCounts) {
  const RewardExperimentResult serial =
      run_reward_experiment(small_reward_config(1));
  const RewardExperimentResult parallel =
      run_reward_experiment(small_reward_config(4));
  EXPECT_EQ(serial.bi_algos, parallel.bi_algos);  // element-wise bitwise
  EXPECT_EQ(serial.bi_per_round_mean, parallel.bi_per_round_mean);
  EXPECT_EQ(serial.mean_bi, parallel.mean_bi);
  EXPECT_EQ(serial.mean_total_stake, parallel.mean_total_stake);
  EXPECT_EQ(serial.mean_alpha, parallel.mean_alpha);
  EXPECT_EQ(serial.mean_beta, parallel.mean_beta);
  EXPECT_EQ(serial.infeasible_rounds, parallel.infeasible_rounds);
}

TEST(ExperimentRunner, StrategicEnsembleBitIdenticalAcrossThreadCounts) {
  StrategicEnsembleConfig config;
  config.base.network.node_count = 60;
  config.base.network.seed = 5;
  config.base.rounds = 3;
  config.base.scheme = SchemeChoice::RoleBasedAdaptive;
  config.runs = 4;
  config.threads = 1;
  const StrategicEnsembleResult serial = run_strategic_ensemble(config);
  config.threads = 4;
  const StrategicEnsembleResult parallel = run_strategic_ensemble(config);
  EXPECT_EQ(serial.cooperation_series, parallel.cooperation_series);
  EXPECT_EQ(serial.final_series, parallel.final_series);
  EXPECT_EQ(serial.reward_series, parallel.reward_series);
  EXPECT_EQ(serial.mean_total_reward_algos,
            parallel.mean_total_reward_algos);
}

TEST(OutcomeMetrics, MergeMatchesDirectRecording) {
  OutcomeMetrics direct(2), left(2), right(2);
  direct.record(0, 80.0, 15.0, 5.0);
  direct.record(0, 60.0, 30.0, 10.0);
  direct.record(1, 90.0, 10.0, 0.0);
  left.record(0, 80.0, 15.0, 5.0);
  right.record(0, 60.0, 30.0, 10.0);
  right.record(1, 90.0, 10.0, 0.0);
  left.merge(right);
  EXPECT_EQ(left.runs_recorded(0), direct.runs_recorded(0));
  const auto a = direct.aggregate(0.0);
  const auto b = left.aggregate(0.0);
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].final_pct, b[r].final_pct);
    EXPECT_EQ(a[r].tentative_pct, b[r].tentative_pct);
    EXPECT_EQ(a[r].none_pct, b[r].none_pct);
  }
}

TEST(PerRoundSamples, MergePreservesInsertionOrder) {
  PerRoundSamples a(2), b(2);
  a.record(0, 1.0);
  a.record(1, 2.0);
  b.record(0, 3.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.samples(0), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(a.count(1), 1u);
  PerRoundSamples mismatched(3);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(PerRoundSamples, MergeWithAsymmetricPerRoundCounts) {
  // Runs of different lengths: the left operand recorded rounds {0, 1},
  // the right only round 1 plus extra samples for round 2 the left never
  // saw. Merge must append per round without requiring equal counts.
  PerRoundSamples a(3), b(3);
  a.record(0, 1.0);
  a.record(1, 2.0);
  b.record(1, 4.0);
  b.record(2, 8.0);
  b.record(2, 16.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.samples(1), (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(a.samples(2), (std::vector<double>{8.0, 16.0}));
  // The merged matrix reduces normally; no round is empty here.
  const auto means = a.mean_series();
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
  EXPECT_DOUBLE_EQ(means[2], 12.0);
}

TEST(PerRoundSamples, EmptyRoundsReduceToNaNDeterministically) {
  // A round with zero samples (churn emptying a cohort) must yield quiet
  // NaN in every series — never UB, a throw, or a fabricated 0.0.
  PerRoundSamples samples(3);
  samples.record(0, 5.0);
  samples.record(2, 7.0);
  EXPECT_TRUE(samples.empty_round(1));
  EXPECT_FALSE(samples.empty_round(0));
  for (const auto& series :
       {samples.trimmed_mean_series(0.2), samples.mean_series(),
        samples.percentile_series(50.0)}) {
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0], 5.0);
    EXPECT_TRUE(std::isnan(series[1]));
    EXPECT_EQ(series[2], 7.0);
  }
}

TEST(ResolveParallelism, OuterClampedToRunCount) {
  // A single-run workload must not let the outer level block inner
  // parallelism (the round_latency shape), and more generally outer can
  // never exceed the run count.
  ExperimentSpec single;
  single.runs = 1;
  single.threads = 8;
  single.inner_threads = 4;
  const ResolvedParallelism a = resolve_parallelism(single);
  EXPECT_EQ(a.outer, 1u);
  EXPECT_EQ(a.inner, 4u);

  ExperimentSpec few;
  few.runs = 3;
  few.threads = 16;
  few.inner_threads = 4;
  const ResolvedParallelism b = resolve_parallelism(few);
  EXPECT_EQ(b.outer, 3u);
  EXPECT_EQ(b.inner, 1u);  // outer still parallel -> inner forced serial

  // Exactly one level may ever be > 1 — for every combination.
  for (const std::size_t runs : {1u, 2u, 7u}) {
    for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
      for (const std::size_t inner : {0u, 1u, 2u, 8u}) {
        ExperimentSpec spec;
        spec.runs = runs;
        spec.threads = threads;
        spec.inner_threads = inner;
        const ResolvedParallelism par = resolve_parallelism(spec);
        EXPECT_TRUE(par.outer == 1 || par.inner == 1)
            << "runs=" << runs << " threads=" << threads
            << " inner=" << inner;
        EXPECT_LE(par.outer, runs);
      }
    }
  }
}

}  // namespace
}  // namespace roleshare::sim
