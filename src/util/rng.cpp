#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace roleshare::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_material_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::derive_seed(std::uint64_t label) const {
  // Mix seed material and label through SplitMix64 twice so that adjacent
  // labels produce unrelated child seeds.
  std::uint64_t sm = seed_material_ ^ (0xa0761d6478bd642fULL * (label + 1));
  const std::uint64_t first = splitmix64(sm);
  const std::uint64_t second = splitmix64(sm);
  return first ^ rotl(second, 29);
}

Rng Rng::split(std::uint64_t label) const { return Rng(derive_seed(label)); }

void Rng::derive_seeds(std::span<const std::uint64_t> labels,
                       std::span<std::uint64_t> out) const {
  RS_REQUIRE(labels.size() == out.size(), "derive_seeds size mismatch");
  // Same mixing as derive_seed, with the per-call overhead (loads of
  // seed_material_, function frames) amortized over the block.
  const std::uint64_t base = seed_material_;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::uint64_t sm = base ^ (0xa0761d6478bd642fULL * (labels[i] + 1));
    const std::uint64_t first = splitmix64(sm);
    const std::uint64_t second = splitmix64(sm);
    out[i] = first ^ rotl(second, 29);
  }
}

Rng Rng::split(std::string_view label) const {
  // FNV-1a over the label, then delegate to the integer split.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return split(h);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RS_REQUIRE(lo <= hi, "uniform_int range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = Rng::max() - Rng::max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  RS_REQUIRE(lo < hi, "uniform_real range");
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  RS_REQUIRE(sigma >= 0.0, "normal sigma");
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) {
  RS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p");
  return uniform01() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  RS_REQUIRE(k <= n, "sample size exceeds population");
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  RS_REQUIRE(!weights.empty(), "weighted_index needs weights");
  double total = 0.0;
  for (const double w : weights) {
    RS_REQUIRE(w >= 0.0, "negative weight");
    total += w;
  }
  RS_REQUIRE(total > 0.0, "weights sum to zero");
  double point = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: return last positive bucket
}

}  // namespace roleshare::util
