#include "econ/stake_proportional.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

ledger::MicroAlgos StakeProportionalScheme::required_budget(
    ledger::Round round, const RoleSnapshot&) {
  return FoundationSchedule::reward_for_round(round);
}

Payouts StakeProportionalScheme::distribute(ledger::Round,
                                            const RoleSnapshot& snapshot,
                                            ledger::MicroAlgos budget) {
  RS_REQUIRE(budget >= 0, "budget must be non-negative");
  Payouts out;
  out.amounts.assign(snapshot.node_count(), 0);
  const std::int64_t sn = snapshot.total_stake();
  if (sn == 0 || budget == 0) return out;

  // r_i = B_i / S_N, identical for every role (Eq 3). 128-bit intermediate
  // avoids overflow for mainnet-scale budgets * stakes.
  for (std::size_t v = 0; v < snapshot.node_count(); ++v) {
    const auto share = static_cast<ledger::MicroAlgos>(
        static_cast<__int128>(budget) * snapshot.stake(static_cast<ledger::NodeId>(v)) / sn);
    out.amounts[v] = share;
    out.total += share;
  }
  RS_ENSURE(out.total <= budget, "disbursed more than the budget");
  return out;
}

}  // namespace roleshare::econ
