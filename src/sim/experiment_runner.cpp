// The experiment runner is header-only templates over ThreadPool; this
// translation unit exists to give the header a home in the library target
// and to type-check it stand-alone.
#include "sim/experiment_runner.hpp"

namespace roleshare::sim {

// Instantiation smoke check: keeps the template compiling for the most
// common result shape even when no consumer in this TU uses it.
template class ExperimentRunner<double>;

}  // namespace roleshare::sim
