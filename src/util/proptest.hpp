// Property-based testing layered under GoogleTest (DESIGN.md §8).
//
// A property is a predicate that must hold for *every* value a generator
// can produce; the framework samples the generator N times, and on the
// first failing value it greedily walks the value's shrink tree toward a
// minimal counterexample, then reports both the shrunk value and the
// seeds needed to replay the exact failing case. Self-contained (no
// rapidcheck; the build box is offline) but mirrors the
// RC_GTEST_PROP_WITH_PARAMS pattern: per-test case counts, overridable
// through the environment so nightly deep runs push cheap properties to
// tens of thousands of cases.
//
// Seeding contract (the project's Rng stream discipline):
//   root        = Rng(ROLESHARE_PROP_SEED or kDefaultSeed)
//   test stream = root.split("Suite.Name")
//   check k     = test_stream.split(k)        (k-th check() in the test)
//   case i seed = check_stream.derive_seed(i)
//   case i rng  = Rng(case_seed)
// A failure prints case_seed; ROLESHARE_PROP_CASE_SEED=<case_seed> (with
// --gtest_filter to select the test) re-runs exactly that case — no
// dependence on the case count or position in the run.
//
// Environment knobs:
//   ROLESHARE_PROP_CASES         absolute case-count override (all checks)
//   ROLESHARE_PROP_SCALE         multiplier on each check's default count
//   ROLESHARE_PROP_SEED          root seed (decimal)
//   ROLESHARE_PROP_CASE_SEED     replay exactly one case from its seed
//   ROLESHARE_PROP_ARTIFACT_DIR  write minimized-counterexample repro
//                                files here on failure (CI uploads them)
//
// The PROP_TEST_WITH_PARAMS macro expands to a gtest TEST, so this header
// must be included after <gtest/gtest.h>; the framework itself carries no
// gtest dependency (Checker just records failures).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace roleshare::util::proptest {

inline constexpr std::uint64_t kDefaultSeed = 0x726f'6c65'7368'6172ULL;

// ---------------------------------------------------------------------
// Shrinkable<T>: a value plus a lazily computed list of smaller
// candidates, each itself shrinkable — the rose tree rapidcheck uses,
// flattened to "children on demand". Generators return the tree root;
// the shrinker descends greedily (first failing child wins) until no
// child fails or the evaluation budget runs out.

template <typename T>
struct Shrinkable {
  // Aggregate on purpose: Shrinkable<T>{value, children} needs no
  // default constructor on T (Transaction, RoleSnapshot lack one).
  T value;
  /// Immediate shrink candidates, most aggressive first. Null = leaf.
  std::function<std::vector<Shrinkable<T>>()> children;

  std::vector<Shrinkable<T>> shrinks() const {
    return children ? children() : std::vector<Shrinkable<T>>{};
  }
};

template <typename T>
Shrinkable<T> shrinkable_leaf(T value) {
  return Shrinkable<T>{std::move(value), nullptr};
}

/// Integer shrink tree toward `origin` (clamped 0 by the int generators):
/// candidates are origin, then the halving sequence v - (v-origin)/2^k.
inline Shrinkable<std::int64_t> shrinkable_int(std::int64_t v,
                                               std::int64_t origin) {
  Shrinkable<std::int64_t> s;
  s.value = v;
  if (v == origin) return s;
  s.children = [v, origin]() {
    std::vector<Shrinkable<std::int64_t>> kids;
    for (std::int64_t step = v - origin; step != 0; step /= 2)
      kids.push_back(shrinkable_int(v - step, origin));
    return kids;
  };
  return s;
}

/// Real shrink tree toward `origin`: origin itself, the integral
/// truncation, then halving toward v (bounded depth — binary64 halving
/// would otherwise produce ~1000 candidates).
inline Shrinkable<double> shrinkable_real(double v, double origin) {
  Shrinkable<double> s;
  s.value = v;
  if (v == origin) return s;
  s.children = [v, origin]() {
    std::vector<Shrinkable<double>> kids;
    kids.push_back(shrinkable_real(origin, origin));
    const double trunc = std::trunc(v);
    if (trunc != v && ((origin <= trunc && trunc < v) ||
                       (v < trunc && trunc <= origin)))
      kids.push_back(shrinkable_real(trunc, origin));
    double delta = (v - origin) / 2;
    for (int i = 0; i < 16 && v - delta != v && v - delta != origin; ++i) {
      kids.push_back(shrinkable_real(v - delta, origin));
      delta /= 2;
    }
    return kids;
  };
  return s;
}

/// Maps a shrink tree through `f`, preserving the shrink structure of the
/// underlying value — this is what makes Gen::map shrink correctly.
template <typename T, typename F>
auto map_shrinkable(const Shrinkable<T>& s, F f)
    -> Shrinkable<std::decay_t<decltype(f(s.value))>> {
  using U = std::decay_t<decltype(f(s.value))>;
  std::function<std::vector<Shrinkable<U>>()> kids_fn;
  if (s.children) {
    kids_fn = [s, f]() {
      std::vector<Shrinkable<U>> kids;
      for (const auto& c : s.shrinks()) kids.push_back(map_shrinkable(c, f));
      return kids;
    };
  }
  return Shrinkable<U>{f(s.value), std::move(kids_fn)};
}

/// Prunes shrink candidates that fail `pred` (they stay unexplored — a
/// filtered generator never presents an invalid counterexample).
template <typename T, typename P>
Shrinkable<T> filter_shrinkable(Shrinkable<T> s, P pred) {
  if (!s.children) return s;
  auto inner = s.children;
  s.children = [inner, pred]() {
    std::vector<Shrinkable<T>> kids;
    for (auto& c : inner())
      if (pred(c.value)) kids.push_back(filter_shrinkable(std::move(c), pred));
    return kids;
  };
  return s;
}

/// Vector shrink tree: drop chunks of elements first (largest chunks
/// most aggressive), then shrink individual elements in place.
template <typename T>
Shrinkable<std::vector<T>> shrinkable_vector(
    std::vector<Shrinkable<T>> elems, std::size_t min_len) {
  Shrinkable<std::vector<T>> s{{}, nullptr};
  s.value.reserve(elems.size());
  for (const auto& e : elems) s.value.push_back(e.value);
  s.children = [elems = std::move(elems), min_len]() {
    std::vector<Shrinkable<std::vector<T>>> kids;
    const std::size_t n = elems.size();
    // Chunk removals, halving chunk sizes.
    for (std::size_t chunk = n; chunk >= 1; chunk /= 2) {
      if (n < chunk || n - chunk < min_len) continue;
      for (std::size_t start = 0; start + chunk <= n; start += chunk) {
        std::vector<Shrinkable<T>> rest;
        rest.reserve(n - chunk);
        for (std::size_t i = 0; i < n; ++i)
          if (i < start || i >= start + chunk) rest.push_back(elems[i]);
        kids.push_back(shrinkable_vector(std::move(rest), min_len));
      }
      if (chunk == 1) break;
    }
    // Per-element shrinks.
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& c : elems[i].shrinks()) {
        std::vector<Shrinkable<T>> copy = elems;
        copy[i] = std::move(c);
        kids.push_back(shrinkable_vector(std::move(copy), min_len));
      }
    }
    return kids;
  };
  return s;
}

// ---------------------------------------------------------------------
// Gen<T>: a function Rng& -> Shrinkable<T> with combinators.

template <typename T>
class Gen {
 public:
  using value_type = T;
  using Fn = std::function<Shrinkable<T>(Rng&)>;

  explicit Gen(Fn fn) : fn_(std::move(fn)) {
    RS_REQUIRE(fn_ != nullptr, "Gen constructed from a null function");
  }

  Shrinkable<T> generate(Rng& rng) const { return fn_(rng); }

  /// Composes a pure function over the generated values; shrinking maps
  /// the underlying value's shrink tree through `f`.
  template <typename F>
  auto map(F f) const -> Gen<std::decay_t<decltype(f(std::declval<T>()))>> {
    using U = std::decay_t<decltype(f(std::declval<T>()))>;
    Fn self = fn_;
    return Gen<U>([self, f](Rng& rng) {
      return map_shrinkable(self(rng), f);
    });
  }

  /// Keeps only values satisfying `pred`: regenerates up to `max_tries`
  /// times (throws std::runtime_error if the predicate is too sparse) and
  /// prunes shrink candidates that violate it.
  Gen<T> filter(std::function<bool(const T&)> pred,
                std::size_t max_tries = 100) const {
    Fn self = fn_;
    return Gen<T>([self, pred, max_tries](Rng& rng) {
      for (std::size_t i = 0; i < max_tries; ++i) {
        Shrinkable<T> s = self(rng);
        if (pred(s.value)) return filter_shrinkable(std::move(s), pred);
      }
      throw std::runtime_error(
          "Gen::filter: predicate rejected " + std::to_string(max_tries) +
          " consecutive candidates — generator and filter are mismatched");
    });
  }

 private:
  Fn fn_;
};

namespace gen {

/// Uniform integer in [lo, hi], shrinking toward clamp(0, lo, hi).
inline Gen<std::int64_t> int_range(std::int64_t lo, std::int64_t hi) {
  RS_REQUIRE(lo <= hi, "gen::int_range requires lo <= hi");
  const std::int64_t origin = std::clamp<std::int64_t>(0, lo, hi);
  return Gen<std::int64_t>([lo, hi, origin](Rng& rng) {
    return shrinkable_int(rng.uniform_int(lo, hi), origin);
  });
}

/// Uniform size_t in [lo, hi], shrinking toward lo.
inline Gen<std::size_t> size_range(std::size_t lo, std::size_t hi) {
  return int_range(static_cast<std::int64_t>(lo),
                   static_cast<std::int64_t>(hi))
      .map([](std::int64_t v) { return static_cast<std::size_t>(v); });
}

/// Uniform double in [lo, hi), shrinking toward clamp(0, lo, hi).
inline Gen<double> real_range(double lo, double hi) {
  RS_REQUIRE(lo < hi, "gen::real_range requires lo < hi");
  const double origin = std::clamp(0.0, lo, hi);
  return Gen<double>([lo, hi, origin](Rng& rng) {
    return shrinkable_real(rng.uniform_real(lo, hi), origin);
  });
}

inline Gen<bool> boolean() {
  return Gen<bool>([](Rng& rng) {
    Shrinkable<bool> s;
    s.value = rng.bernoulli(0.5);
    if (s.value) {
      s.children = []() {
        return std::vector<Shrinkable<bool>>{shrinkable_leaf(false)};
      };
    }
    return s;
  });
}

template <typename T>
Gen<T> constant(T value) {
  return Gen<T>([value](Rng&) { return shrinkable_leaf(value); });
}

/// Uniform pick from a fixed table, shrinking toward earlier entries.
template <typename T>
Gen<T> element_of(std::vector<T> table) {
  RS_REQUIRE(!table.empty(), "gen::element_of requires a non-empty table");
  const std::size_t n = table.size();
  return size_range(0, n - 1).map(
      [table = std::move(table)](std::size_t i) { return table[i]; });
}

/// Uniform pick among alternative generators. Shrinks within the chosen
/// alternative only (no cross-alternative jumps).
template <typename T>
Gen<T> one_of(std::vector<Gen<T>> alts) {
  RS_REQUIRE(!alts.empty(), "gen::one_of requires a non-empty alternative set");
  return Gen<T>([alts = std::move(alts)](Rng& rng) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(alts.size()) - 1));
    return alts[i].generate(rng);
  });
}

/// Vector of `elem` draws with a length drawn from [min_len, max_len].
/// Shrinks by dropping element chunks (never below min_len), then by
/// shrinking elements in place.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> elem, std::size_t min_len,
                              std::size_t max_len) {
  RS_REQUIRE(min_len <= max_len, "gen::vector_of requires min_len <= max_len");
  return Gen<std::vector<T>>([elem = std::move(elem), min_len,
                              max_len](Rng& rng) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(min_len), static_cast<std::int64_t>(max_len)));
    std::vector<Shrinkable<T>> elems;
    elems.reserve(len);
    for (std::size_t i = 0; i < len; ++i) elems.push_back(elem.generate(rng));
    return shrinkable_vector(std::move(elems), min_len);
  });
}

namespace detail {

template <typename Tuple, std::size_t... Is>
Shrinkable<Tuple> shrinkable_tuple_impl(
    std::tuple<Shrinkable<std::tuple_element_t<Is, Tuple>>...> parts,
    std::index_sequence<Is...> seq) {
  Shrinkable<Tuple> s{Tuple{std::get<Is>(parts).value...}, nullptr};
  s.children = [parts = std::move(parts), seq]() {
    std::vector<Shrinkable<Tuple>> kids;
    // Shrink one component at a time, in component order.
    (
        [&] {
          for (auto& c : std::get<Is>(parts).shrinks()) {
            auto copy = parts;
            std::get<Is>(copy) = std::move(c);
            kids.push_back(shrinkable_tuple_impl<Tuple>(std::move(copy), seq));
          }
        }(),
        ...);
    return kids;
  };
  return s;
}

}  // namespace detail

/// Independent draws combined into a std::tuple; shrinks componentwise.
template <typename... Ts>
Gen<std::tuple<Ts...>> tuple_of(Gen<Ts>... gens) {
  return Gen<std::tuple<Ts...>>(
      [... gens = std::move(gens)](Rng& rng) {
        // Left-to-right evaluation: brace-init guarantees draw order.
        std::tuple<Shrinkable<Ts>...> parts{gens.generate(rng)...};
        return detail::shrinkable_tuple_impl<std::tuple<Ts...>>(
            std::move(parts), std::index_sequence_for<Ts...>{});
      });
}

template <typename A, typename B>
Gen<std::pair<A, B>> pair_of(Gen<A> a, Gen<B> b) {
  return tuple_of(std::move(a), std::move(b))
      .map([](const std::tuple<A, B>& t) {
        return std::pair<A, B>{std::get<0>(t), std::get<1>(t)};
      });
}

}  // namespace gen

// ---------------------------------------------------------------------
// Value printing for counterexample reports. Anything streamable prints
// through operator<<; doubles print %.17g (copy-pasteable exactly);
// vectors/pairs/tuples recurse; everything else prints a placeholder —
// pass an explicit printer to Checker::check for those.

namespace detail {

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
struct is_vector : std::false_type {};
template <typename T>
struct is_vector<std::vector<T>> : std::true_type {};

template <typename T>
struct is_tuple_like : std::false_type {};
template <typename... Ts>
struct is_tuple_like<std::tuple<Ts...>> : std::true_type {};
template <typename A, typename B>
struct is_tuple_like<std::pair<A, B>> : std::true_type {};

}  // namespace detail

template <typename T>
std::string describe(const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_floating_point_v<T>) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(v));
    return buf;
  } else if constexpr (std::is_same_v<T, std::string>) {
    return "\"" + v + "\"";
  } else if constexpr (detail::is_vector<T>::value) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ", ";
      out += describe(v[i]);
    }
    return out + "]";
  } else if constexpr (detail::is_tuple_like<T>::value) {
    std::string out = "(";
    bool first = true;
    std::apply(
        [&](const auto&... parts) {
          ((out += (first ? "" : ", ") + describe(parts), first = false), ...);
        },
        v);
    return out + ")";
  } else if constexpr (detail::is_streamable<T>::value) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<value of an unprintable type — pass a printer to check()>";
  }
}

// ---------------------------------------------------------------------
// Checker: runs properties, shrinks failures, assembles the report.

/// Property outcome when a plain bool is not expressive enough: `note`
/// travels into the failure report alongside the counterexample.
struct Verdict {
  bool ok = true;
  std::string note;
};

/// Case-count / seed configuration after environment resolution.
struct PropParams {
  std::size_t cases = 0;
  std::uint64_t root_seed = kDefaultSeed;
  std::optional<std::uint64_t> replay_case_seed;
  std::size_t max_shrink_evals = 4000;
};

/// Resolves the effective parameters for one check: the environment
/// overrides (ROLESHARE_PROP_CASES / _SCALE / _SEED / _CASE_SEED) applied
/// to the test's default case count.
PropParams resolve_params(std::size_t default_cases);

class Checker {
 public:
  Checker(std::string test_id, std::size_t default_cases);
  /// Hermetic form for the framework's own tests: `params` is taken as
  /// given, with no environment resolution.
  Checker(std::string test_id, PropParams params);

  const std::string& test_id() const { return test_id_; }
  const PropParams& params() const { return params_; }

  bool failed() const { return !failure_message_.empty(); }
  const std::string& failure_message() const { return failure_message_; }

  /// Runs `property` against params().cases draws of `g`; on the first
  /// failure, shrinks greedily and records the report (also written to
  /// ROLESHARE_PROP_ARTIFACT_DIR when set). Returns true when the
  /// property held for every case. Later checks still run after a
  /// failure — each check() is an independent property.
  template <typename T, typename Prop>
  bool check(const Gen<T>& g, Prop&& property) {
    return check(g, std::forward<Prop>(property),
                 [](const T& v) { return describe(v); });
  }

  template <typename T, typename Prop, typename Print>
  bool check(const Gen<T>& g, Prop&& property, Print&& printer) {
    const std::size_t check_index = checks_run_++;
    Rng check_stream = test_stream_.split(check_index);
    const std::size_t cases = params_.replay_case_seed ? 1 : params_.cases;
    for (std::size_t i = 0; i < cases; ++i) {
      const std::uint64_t case_seed = params_.replay_case_seed
                                          ? *params_.replay_case_seed
                                          : check_stream.derive_seed(i);
      Rng rng(case_seed);
      std::optional<Shrinkable<T>> root;
      try {
        root.emplace(g.generate(rng));
      } catch (const std::exception& e) {
        record_failure(check_index, i, case_seed, 0, 0,
                       "<generator threw before producing a value>",
                       std::string("generator exception: ") + e.what());
        return false;
      }
      Shrinkable<T>& drawn = *root;
      Verdict v = eval(property, drawn.value);
      if (v.ok) continue;
      // Greedy descent: first failing child becomes the new candidate.
      std::size_t evals = 0;
      std::size_t steps = 0;
      bool progress = true;
      while (progress && evals < params_.max_shrink_evals) {
        progress = false;
        for (auto& cand : drawn.shrinks()) {
          if (++evals > params_.max_shrink_evals) break;
          Verdict cv = eval(property, cand.value);
          if (!cv.ok) {
            // emplace, not assignment: T need not be assignable.
            root.emplace(std::move(cand));
            v = std::move(cv);
            ++steps;
            progress = true;
            break;
          }
        }
      }
      record_failure(check_index, i, case_seed, steps, evals,
                     printer(drawn.value), v.note);
      return false;
    }
    return true;
  }

 private:
  template <typename Prop, typename T>
  static Verdict eval(Prop& property, const T& value) {
    try {
      using R = decltype(property(value));
      if constexpr (std::is_void_v<R>) {
        property(value);
        return Verdict{};
      } else if constexpr (std::is_same_v<std::decay_t<R>, Verdict>) {
        return property(value);
      } else {
        return Verdict{static_cast<bool>(property(value)), {}};
      }
    } catch (const std::exception& e) {
      return Verdict{false, std::string("exception: ") + e.what()};
    } catch (...) {
      return Verdict{false, "non-standard exception"};
    }
  }

  void record_failure(std::size_t check_index, std::size_t case_index,
                      std::uint64_t case_seed, std::size_t shrink_steps,
                      std::size_t shrink_evals,
                      const std::string& counterexample,
                      const std::string& note);

  std::string test_id_;
  PropParams params_;
  Rng test_stream_;
  std::size_t checks_run_ = 0;
  std::string failure_message_;
};

}  // namespace roleshare::util::proptest

// ---------------------------------------------------------------------
// The gtest glue. PROP_TEST_WITH_PARAMS(Suite, Name, cases) mirrors
// RC_GTEST_PROP_WITH_PARAMS: the body receives `prop` (a Checker&) and
// calls prop.check(gen, property) one or more times; the expansion FAILs
// the gtest case with the full shrink report when any check failed.
// Requires <gtest/gtest.h> to be included first.
#define PROP_TEST_WITH_PARAMS(Suite, Name, Cases)                            \
  static void RsPropImpl_##Suite##_##Name(                                   \
      ::roleshare::util::proptest::Checker& prop);                           \
  TEST(Suite, Name) {                                                        \
    ::roleshare::util::proptest::Checker prop(#Suite "." #Name, (Cases));    \
    RsPropImpl_##Suite##_##Name(prop);                                       \
    if (prop.failed()) FAIL() << prop.failure_message();                     \
  }                                                                          \
  static void RsPropImpl_##Suite##_##Name(                                   \
      ::roleshare::util::proptest::Checker& prop)

#define PROP_TEST(Suite, Name) PROP_TEST_WITH_PARAMS(Suite, Name, 200)
