#include "econ/reward_controller.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

RewardController::RewardController(std::unique_ptr<RewardScheme> scheme,
                                   bool use_fee_pool_after_exhaustion,
                                   ledger::MicroAlgos foundation_ceiling)
    : scheme_(std::move(scheme)),
      foundation_(foundation_ceiling),
      use_fee_pool_(use_fee_pool_after_exhaustion) {
  RS_REQUIRE(scheme_ != nullptr, "controller needs a scheme");
}

RoundRewardReport RewardController::settle_round(
    ledger::Round round, const RoleSnapshot& snapshot,
    ledger::MicroAlgos round_fees, ledger::AccountTable& accounts) {
  RS_REQUIRE(snapshot.node_count() == accounts.size(),
             "snapshot/accounts size mismatch");
  RoundRewardReport report;
  report.round = round;

  report.injected =
      foundation_.inject(FoundationSchedule::reward_for_round(round));
  fees_.deposit(round_fees);

  report.requested = scheme_->required_budget(round, snapshot);
  report.from_foundation = foundation_.withdraw(report.requested);
  if (use_fee_pool_ && report.from_foundation < report.requested &&
      foundation_.exhausted()) {
    report.from_fees =
        fees_.withdraw(report.requested - report.from_foundation);
    report.fee_pool_tapped = report.from_fees > 0;
  }

  const ledger::MicroAlgos budget =
      report.from_foundation + report.from_fees;
  const Payouts payouts = scheme_->distribute(round, snapshot, budget);
  for (std::size_t v = 0; v < payouts.amounts.size(); ++v) {
    if (payouts.amounts[v] > 0)
      accounts.credit(static_cast<ledger::NodeId>(v), payouts.amounts[v]);
  }
  report.distributed = payouts.total;

  // Integer-floor dust from distribute() is swept into the fee pool so no
  // money is ever destroyed (the Foundation controls both keys, §III-B;
  // re-injecting into the Foundation pool would double-count emission).
  const ledger::MicroAlgos dust = budget - payouts.total;
  if (dust > 0) fees_.deposit(dust);
  return report;
}

}  // namespace roleshare::econ
