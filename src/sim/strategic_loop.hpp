// Strategic loop — the paper's headline claim, closed end to end:
// "our reward sharing approach ... can guarantee cooperation within a group
// of selfish Algorand users" (§I), where the Foundation's cannot.
//
// Every node is rational. Each round t:
//   1. the consensus protocol runs with the current strategy profile;
//   2. rewards are paid by the configured scheme (Foundation
//      stake-proportional at the Table-III R_i, or role-based with the
//      Algorithm-1 minimal B_i);
//   3. each node updates its strategy to the best response in the
//      one-round game induced by round t's true roles, scheme and reward —
//      myopic best-response dynamics across rounds.
//
// Expected outcomes (verified by tests and the incentive_loop example):
// under the Foundation scheme cooperation unravels (Theorem 2) and the
// defectors' silence degrades consensus (Fig 3); under the role-based
// scheme the cooperative profile is self-enforcing (Theorem 3) and the
// network keeps finalizing blocks — while paying far less.
#pragma once

#include <vector>

#include "game/game_model.hpp"
#include "sim/aggregators.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/partial.hpp"
#include "sim/round_engine.hpp"
#include "sim/scenario_policy.hpp"

namespace roleshare::sim {

enum class SchemeChoice : std::uint8_t { FoundationStakeProportional,
                                         RoleBasedAdaptive };

struct StrategicLoopConfig {
  NetworkConfig network;
  std::size_t rounds = 20;
  SchemeChoice scheme = SchemeChoice::FoundationStakeProportional;
  econ::CostModel costs{};
  /// Strategy profile nodes start from (default: everyone cooperates).
  game::Strategy initial = game::Strategy::Cooperate;
  /// Within-run worker threads (0 = all hardware threads). One pool serves
  /// both per-round workloads — the round engine's per-node loops
  /// (sortition, gossip, tallies) and the best-response sweep over the
  /// population. Neither changes results for any thread count.
  std::size_t threads = 1;
  /// Optional churn schedule: nodes leave/join between rounds on
  /// deterministic per-(round, node) streams (scenario_policy.hpp).
  /// Departed nodes play Offline; rejoining nodes restart from `initial`.
  ChurnSchedule churn{};
};

struct StrategicRoundStats {
  ledger::Round round = 0;
  double cooperation_fraction = 0.0;  // share of live nodes playing C
  double final_fraction = 0.0;        // share extracting a final block
  double bi_algos = 0.0;              // reward paid this round
  bool non_empty_block = false;
  std::size_t live = 0;               // live-node count (churn)
};

struct StrategicLoopResult {
  std::vector<StrategicRoundStats> rounds;
  double total_reward_algos = 0.0;
  /// Cooperation share in the last round — the loop's fixpoint indicator.
  double final_cooperation = 0.0;
};

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config);

/// Same loop, but running its within-run parallelism on a caller-owned
/// pool (nullptr = serial) instead of creating one from config.threads —
/// the hook the ensemble uses to share a single inner pool across runs.
StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config,
                                       util::ThreadPool* inner_pool);

/// Monte-Carlo ensemble of independent strategic loops on the shared
/// ExperimentRunner engine — the runs×rounds view of the paper's headline
/// claim (population iterations fan out across the thread pool; run k
/// uses the stream root.split(k) where root is base.network.seed).
struct StrategicEnsembleConfig {
  /// Template for every run; its network.seed is the ensemble root seed.
  /// base.threads is ignored — the ensemble's two knobs below decide the
  /// parallelism level per the no-oversubscription contract.
  StrategicLoopConfig base;
  std::size_t runs = 8;
  /// Worker threads for the run fan-out (0 = all hardware threads).
  /// Aggregates are bit-identical for every thread count.
  std::size_t threads = 1;
  /// Worker threads for each run's inner per-node loops (0 = all hardware
  /// threads); forced serial while the run fan-out is parallel.
  std::size_t inner_threads = 1;
  /// Reduction backend for the three per-round series (exact = the bit-
  /// identical sum/divide baseline; streaming = O(rounds) memory).
  AggBackend agg = AggBackend::Exact;
  StreamingAggConfig streaming{};
  /// Run window THIS process executes (default: all runs); all result
  /// means are over the executed window.
  RunShard shard{};
};

struct StrategicEnsembleResult {
  /// Per-round means across runs.
  std::vector<double> cooperation_series;  // fraction playing C
  std::vector<double> final_series;        // fraction extracting final
  std::vector<double> reward_series;       // Algos paid
  double mean_total_reward_algos = 0.0;
  double mean_final_cooperation = 0.0;
  /// Bytes held by the three per-round reduction accumulators.
  std::size_t accumulator_bytes = 0;
};

/// The experiment-specific half of a StrategicPartial: the three
/// per-round series accumulators plus the per-run scalar banks (total
/// reward paid, final cooperation), kept in run order so exact-backend
/// merges replay a serial execution bit for bit.
class StrategicPayload {
 public:
  static constexpr std::string_view kKind = "strategic";

  StrategicPayload(std::size_t rounds, AggBackend backend,
                   const StreamingAggConfig& streaming);

  void record_round(std::size_t round_index, double cooperation_fraction,
                    double final_fraction, double reward_algos);
  void record_run(double total_reward_algos, double final_cooperation);

  void merge(const StrategicPayload& next);

  StrategicEnsembleResult finalize(const PartialEnvelope& envelope) const;

  std::size_t accumulator_bytes() const;

  util::json::Value to_json() const;
  static StrategicPayload from_json(const util::json::Value& value,
                                    const PartialEnvelope& envelope);

 private:
  /// Deserialization path: adopts already-built state instead of
  /// constructing (and discarding) fresh accumulators.
  StrategicPayload(std::unique_ptr<RoundAccumulator> coop,
                   std::unique_ptr<RoundAccumulator> final_acc,
                   std::unique_ptr<RoundAccumulator> reward,
                   ScalarBank total_reward, ScalarBank final_coop);

  std::unique_ptr<RoundAccumulator> coop_;
  std::unique_ptr<RoundAccumulator> final_;
  std::unique_ptr<RoundAccumulator> reward_;
  ScalarBank total_reward_;
  ScalarBank final_coop_;
};

using StrategicPartial = ExperimentPartial<StrategicPayload>;

/// Canonical echo of every result-affecting ensemble config field — the
/// spec-hash input shared by all partials of one strategic ensemble.
util::json::Value strategic_spec_echo(const StrategicEnsembleConfig& config);

/// Executes config.shard's run window and reduces it into a mergeable
/// partial. Deterministic in config.base.network.seed, independent of
/// the thread knobs.
StrategicPartial run_strategic_partial(const StrategicEnsembleConfig& config);

/// run_strategic_partial + finalize — the single-process ensemble,
/// bit-identical under the exact backend.
StrategicEnsembleResult run_strategic_ensemble(
    const StrategicEnsembleConfig& config);

}  // namespace roleshare::sim
