#include "sim/sampled_round.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "econ/foundation_schedule.hpp"
#include "econ/sparse_payout.hpp"
#include "sim/round_engine.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {
namespace {

NetworkConfig config_with(double defection_rate, std::size_t nodes = 150,
                          std::uint64_t seed = 21) {
  NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  return config;
}

consensus::ConsensusParams sampled_params_for(const Network& net) {
  auto params =
      consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
  params.committee_model = consensus::CommitteeModel::Sampled;
  return params;
}

// Applies one round of compounded fixed-split payouts to `net` from the
// sparse result's touched set and returns the µAlgos credited. The
// long-horizon economy loop in miniature.
ledger::MicroAlgos apply_payouts(Network& net, const SparseRoundResult& sparse,
                                 SparseRoundContext* ctx) {
  std::vector<consensus::Role> roles;
  std::vector<std::int64_t> stakes;
  std::vector<ledger::MicroAlgos> amounts(sparse.touched.size(), 0);
  roles.reserve(sparse.touched.size());
  stakes.reserve(sparse.touched.size());
  for (const SparseNodeRole& t : sparse.touched) {
    roles.push_back(t.role_observed);
    stakes.push_back(t.reward_stake);
  }
  const econ::RewardSplit split(0.30, 0.30);
  const auto budget = econ::FoundationSchedule::reward_for_round(
      std::max<ledger::Round>(sparse.round, 1));
  const auto totals = econ::distribute_touched(
      split, budget, roles, stakes, sparse.online_stake, amounts);
  for (std::size_t i = 0; i < sparse.touched.size(); ++i) {
    if (amounts[i] == 0) continue;
    const ledger::NodeId v = sparse.touched[i].node;
    net.accounts().credit(v, amounts[i]);
    if (ctx != nullptr) ctx->refresh_node(net, v);
  }
  return totals.paid;
}

TEST(MeanFieldHops, EdgeCases) {
  EXPECT_EQ(mean_field_hops(0, 5, 4), 0u);    // nobody online
  EXPECT_EQ(mean_field_hops(100, 0, 4), 0u);  // no relays: unreachable
  EXPECT_EQ(mean_field_hops(1, 1, 4), 1u);    // lone node hears itself
  // More nodes at fixed relays/fan-out cannot take fewer hops.
  std::uint32_t prev = 0;
  for (std::size_t online : {10u, 100u, 1000u, 10000u}) {
    const std::uint32_t hops = mean_field_hops(online, online / 2, 4);
    EXPECT_GE(hops, prev);
    prev = hops;
  }
  // Vanishing relay fraction saturates at the 64-hop clamp.
  EXPECT_EQ(mean_field_hops(1'000'000, 1, 1), 64u);
}

TEST(SampledRound, DenseSampledReachesConsensus) {
  Network net(config_with(0.0));
  RoundEngine engine(net, sampled_params_for(net));
  RoundResult result;
  RoundWorkspace ws;
  engine.run_round_into(result, ws);
  EXPECT_EQ(result.round, 1u);
  EXPECT_GT(result.final_fraction, 0.9);
  EXPECT_TRUE(result.non_empty_block);
  EXPECT_GT(result.proposals, 0u);
  EXPECT_EQ(result.outcomes.size(), net.node_count());
  ASSERT_TRUE(result.roles.has_value());
  EXPECT_GT(result.roles->count(consensus::Role::Leader), 0u);
  EXPECT_GT(result.roles->count(consensus::Role::Committee), 0u);
}

// The tentpole contract: a caller-maintained sparse context produces a
// bit-identical evaluation to the dense path's per-round rebuild, round
// after round, while rewards compound into stake on both sides.
TEST(SampledRound, SparseMatchesDenseAcrossCompoundingRounds) {
  Network dense_net(config_with(0.15, 200, 7));
  Network sparse_net(config_with(0.15, 200, 7));
  RoundEngine dense(dense_net, sampled_params_for(dense_net));
  RoundEngine sparse(sparse_net, sampled_params_for(sparse_net));

  SparseRoundContext ctx;
  ctx.init_from(sparse_net);
  SparseRoundWorkspace sparse_ws;
  SparseRoundResult sparse_result;
  RoundResult dense_result;
  RoundWorkspace dense_ws;
  RoundResult expanded;
  RoundWorkspace expand_ws;

  for (int r = 1; r <= 12; ++r) {
    dense.run_round_into(dense_result, dense_ws);
    sparse.run_round_sparse_into(sparse_result, ctx, sparse_ws);

    ASSERT_EQ(sparse_result.round, dense_result.round) << "round " << r;
    EXPECT_EQ(sparse_result.live_count, dense_result.live_count);
    EXPECT_EQ(sparse_result.final_fraction, dense_result.final_fraction);
    EXPECT_EQ(sparse_result.tentative_fraction,
              dense_result.tentative_fraction);
    EXPECT_EQ(sparse_result.none_fraction, dense_result.none_fraction);
    EXPECT_EQ(sparse_result.non_empty_block, dense_result.non_empty_block);
    EXPECT_EQ(sparse_result.proposals, dense_result.proposals);
    EXPECT_EQ(sparse_result.synchrony, dense_result.synchrony);

    // The chains must agree byte for byte.
    ASSERT_EQ(sparse_net.chain().tip().hash(), dense_net.chain().tip().hash())
        << "round " << r;

    // Expanding the sparse result reproduces the dense materialization.
    expand_sparse_into(sparse_net, sparse_result, expanded, expand_ws);
    ASSERT_EQ(expanded.outcomes, dense_result.outcomes) << "round " << r;
    ASSERT_TRUE(expanded.roles.has_value());
    ASSERT_TRUE(dense_result.roles.has_value());
    EXPECT_EQ(expanded.roles->roles(), dense_result.roles->roles());
    EXPECT_EQ(expanded.roles->stakes(), dense_result.roles->stakes());
    ASSERT_TRUE(expanded.roles_true.has_value());
    ASSERT_TRUE(dense_result.roles_true.has_value());
    EXPECT_EQ(expanded.roles_true->roles(), dense_result.roles_true->roles());
    EXPECT_EQ(expanded.roles_true->stakes(),
              dense_result.roles_true->stakes());

    // Compound identical rewards into both economies; the sparse context
    // absorbs them incrementally, the dense path rebuilds next round.
    const auto paid_sparse = apply_payouts(sparse_net, sparse_result, &ctx);
    SparseRoundResult dense_as_sparse;
    // The dense side needs the same touched accounting; run the payouts
    // from the sparse result (already proven equal this round).
    const auto paid_dense = apply_payouts(dense_net, sparse_result, nullptr);
    EXPECT_EQ(paid_sparse, paid_dense);
    (void)dense_as_sparse;
  }
}

TEST(SampledRound, SparseMatchesDenseUnderChurn) {
  Network dense_net(config_with(0.10, 160, 11));
  Network sparse_net(config_with(0.10, 160, 11));
  RoundEngine dense(dense_net, sampled_params_for(dense_net));
  RoundEngine sparse(sparse_net, sampled_params_for(sparse_net));

  SparseRoundContext ctx;
  ctx.init_from(sparse_net);
  SparseRoundWorkspace sparse_ws;
  SparseRoundResult sparse_result;
  RoundResult dense_result;
  RoundWorkspace dense_ws;

  util::Rng churn(99);
  for (int r = 1; r <= 10; ++r) {
    dense.run_round_into(dense_result, dense_ws);
    sparse.run_round_sparse_into(sparse_result, ctx, sparse_ws);
    EXPECT_EQ(sparse_result.final_fraction, dense_result.final_fraction)
        << "round " << r;
    EXPECT_EQ(sparse_result.live_count, dense_result.live_count);
    ASSERT_EQ(sparse_net.chain().tip().hash(), dense_net.chain().tip().hash());

    // Toggle liveness of a few random nodes identically on both networks.
    for (int k = 0; k < 4; ++k) {
      const auto v = static_cast<ledger::NodeId>(churn.uniform_int(
          0, static_cast<std::int64_t>(dense_net.node_count()) - 1));
      const bool live = churn.bernoulli(0.7);
      dense_net.set_live(v, live);
      sparse_net.set_live(v, live);
      ctx.refresh_node(sparse_net, v);
    }
  }
}

TEST(SampledRound, InnerPoolBitIdentity) {
  Network serial_net(config_with(0.2, 140, 5));
  Network pooled_net(config_with(0.2, 140, 5));
  util::ThreadPool pool(4);
  RoundEngine serial(serial_net, sampled_params_for(serial_net));
  RoundEngine pooled(pooled_net, sampled_params_for(pooled_net), &pool);
  RoundResult a, b;
  RoundWorkspace wa, wb;
  for (int r = 0; r < 4; ++r) {
    serial.run_round_into(a, wa);
    pooled.run_round_into(b, wb);
    ASSERT_EQ(a.outcomes, b.outcomes);
    ASSERT_EQ(serial_net.chain().tip().hash(), pooled_net.chain().tip().hash());
  }
}

TEST(SparseRoundContext, RefreshTracksCreditsAndLiveness) {
  Network net(config_with(0.0, 50, 3));
  SparseRoundContext ctx;
  ctx.init_from(net);
  const auto before_stake = ctx.online_stake();
  const auto before_count = ctx.online_count();
  EXPECT_EQ(before_stake, net.accounts().total_stake());

  // Credit 5 whole Algos to node 7: index and counters must follow.
  const ledger::NodeId v = 7;
  const auto old = net.accounts().stake(v);
  net.accounts().credit(v, 5 * ledger::kMicroPerAlgo);
  ctx.refresh_node(net, v);
  EXPECT_EQ(ctx.index().stake_of(v), old + 5);
  EXPECT_EQ(ctx.online_stake(), before_stake + 5);

  // Departures remove the node's stake and presence.
  net.set_live(v, false);
  ctx.refresh_node(net, v);
  EXPECT_FALSE(ctx.online(v));
  EXPECT_EQ(ctx.index().stake_of(v), 0);
  EXPECT_EQ(ctx.online_count(), before_count - 1);
  EXPECT_EQ(ctx.online_stake(), before_stake - old);

  // Rejoin restores everything.
  net.set_live(v, true);
  ctx.refresh_node(net, v);
  EXPECT_TRUE(ctx.online(v));
  EXPECT_EQ(ctx.index().stake_of(v), old + 5);
  EXPECT_EQ(ctx.online_count(), before_count);
}

// The reuse contract: after warm-up, repeated sparse rounds must not grow
// any workspace buffer (capacity_bytes is the allocation proxy the
// round_latency --self-check gate also uses).
TEST(SparseRoundWorkspace, SteadyStateCapacityStable) {
  Network net(config_with(0.1, 300, 13));
  RoundEngine engine(net, sampled_params_for(net));
  SparseRoundContext ctx;
  ctx.init_from(net);
  SparseRoundWorkspace ws;
  SparseRoundResult result;
  for (int r = 0; r < 5; ++r) {
    engine.run_round_sparse_into(result, ctx, ws);
    apply_payouts(net, result, &ctx);
  }
  const std::size_t warm = ws.capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (int r = 0; r < 10; ++r) {
    engine.run_round_sparse_into(result, ctx, ws);
    apply_payouts(net, result, &ctx);
  }
  EXPECT_EQ(ws.capacity_bytes(), warm);
}

TEST(SampledRound, TouchedNodesAreUniqueAndOnlineStakeConsistent) {
  Network net(config_with(0.1, 120, 17));
  RoundEngine engine(net, sampled_params_for(net));
  SparseRoundContext ctx;
  ctx.init_from(net);
  SparseRoundWorkspace ws;
  SparseRoundResult result;
  engine.run_round_sparse_into(result, ctx, ws);
  std::vector<bool> seen(net.node_count(), false);
  for (const SparseNodeRole& t : result.touched) {
    EXPECT_FALSE(seen[t.node]) << "node touched twice: " << t.node;
    seen[t.node] = true;
    if (ctx.online(t.node)) {
      EXPECT_EQ(t.reward_stake, ctx.index().stake_of(t.node));
    } else {
      EXPECT_EQ(t.reward_stake, 0);
    }
  }
  EXPECT_EQ(result.online_stake, ctx.online_stake());
  EXPECT_EQ(result.online_count, ctx.online_count());
}

}  // namespace
}  // namespace roleshare::sim
