#include "sim/strategic_loop.hpp"

#include <gtest/gtest.h>

namespace roleshare::sim {
namespace {

StrategicLoopConfig base_config(SchemeChoice scheme, std::uint64_t seed) {
  StrategicLoopConfig config;
  config.network.node_count = 100;
  config.network.seed = seed;
  config.rounds = 10;
  config.scheme = scheme;
  return config;
}

TEST(StrategicLoop, FoundationSchemeUnravelsCooperation) {
  const StrategicLoopResult result = run_strategic_loop(
      base_config(SchemeChoice::FoundationStakeProportional, 71));
  ASSERT_EQ(result.rounds.size(), 10u);
  // Round 1 starts fully cooperative...
  EXPECT_DOUBLE_EQ(result.rounds.front().cooperation_fraction, 1.0);
  // ...then Theorem 2's deviations kick in: most of the network defects.
  EXPECT_LT(result.final_cooperation, 0.5);
  // Cooperation is non-increasing-ish: final well below initial.
  EXPECT_LT(result.rounds.back().cooperation_fraction,
            result.rounds.front().cooperation_fraction);
}

TEST(StrategicLoop, RoleBasedSchemeSustainsCooperation) {
  const StrategicLoopResult result =
      run_strategic_loop(base_config(SchemeChoice::RoleBasedAdaptive, 71));
  // Theorem 3: cooperation is self-enforcing for everyone who matters;
  // the loop stays (almost) fully cooperative throughout.
  EXPECT_GT(result.final_cooperation, 0.9);
  for (const StrategicRoundStats& r : result.rounds) {
    EXPECT_GT(r.cooperation_fraction, 0.9) << "round " << r.round;
  }
}

TEST(StrategicLoop, RoleBasedKeepsConsensusAlive) {
  const StrategicLoopResult role_based =
      run_strategic_loop(base_config(SchemeChoice::RoleBasedAdaptive, 72));
  const StrategicLoopResult foundation = run_strategic_loop(
      base_config(SchemeChoice::FoundationStakeProportional, 72));
  // Average final-consensus share over the last half of the horizon.
  auto tail_final = [](const StrategicLoopResult& r) {
    double sum = 0;
    const std::size_t half = r.rounds.size() / 2;
    for (std::size_t i = half; i < r.rounds.size(); ++i)
      sum += r.rounds[i].final_fraction;
    return sum / static_cast<double>(r.rounds.size() - half);
  };
  EXPECT_GT(tail_final(role_based), tail_final(foundation));
  EXPECT_GT(tail_final(role_based), 0.8);
}

TEST(StrategicLoop, RoleBasedPaysLessThanFoundation) {
  const StrategicLoopResult role_based =
      run_strategic_loop(base_config(SchemeChoice::RoleBasedAdaptive, 73));
  // The role-based loop keeps producing blocks AND pays less than the
  // Foundation schedule would (20 Algos per successful round).
  double successful_rounds = 0;
  for (const auto& r : role_based.rounds)
    if (r.non_empty_block) successful_rounds += 1;
  ASSERT_GT(successful_rounds, 0);
  EXPECT_LT(role_based.total_reward_algos, 20.0 * successful_rounds / 10.0);
}

TEST(StrategicLoop, AllDefectStartCannotRecover) {
  // Theorem 1: All-D is absorbing under either scheme — cooperation never
  // restarts once everyone defects.
  for (const SchemeChoice scheme :
       {SchemeChoice::FoundationStakeProportional,
        SchemeChoice::RoleBasedAdaptive}) {
    StrategicLoopConfig config = base_config(scheme, 74);
    config.initial = game::Strategy::Defect;
    config.rounds = 5;
    const StrategicLoopResult result = run_strategic_loop(config);
    EXPECT_DOUBLE_EQ(result.final_cooperation, 0.0);
    for (const auto& r : result.rounds) EXPECT_FALSE(r.non_empty_block);
  }
}

TEST(StrategicLoop, ParallelBestResponseSweepMatchesSerial) {
  // The per-node best-response sweep reads only the frozen previous
  // profile, so threads must not change any per-round statistic.
  StrategicLoopConfig serial =
      base_config(SchemeChoice::RoleBasedAdaptive, 77);
  StrategicLoopConfig parallel = serial;
  parallel.threads = 4;
  const StrategicLoopResult a = run_strategic_loop(serial);
  const StrategicLoopResult b = run_strategic_loop(parallel);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].cooperation_fraction,
              b.rounds[i].cooperation_fraction);
    EXPECT_EQ(a.rounds[i].final_fraction, b.rounds[i].final_fraction);
    EXPECT_EQ(a.rounds[i].bi_algos, b.rounds[i].bi_algos);
  }
  EXPECT_EQ(a.final_cooperation, b.final_cooperation);
  EXPECT_EQ(a.total_reward_algos, b.total_reward_algos);
}

TEST(StrategicLoop, Deterministic) {
  const auto a =
      run_strategic_loop(base_config(SchemeChoice::RoleBasedAdaptive, 75));
  const auto b =
      run_strategic_loop(base_config(SchemeChoice::RoleBasedAdaptive, 75));
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].cooperation_fraction,
                     b.rounds[i].cooperation_fraction);
    EXPECT_DOUBLE_EQ(a.rounds[i].bi_algos, b.rounds[i].bi_algos);
  }
}

TEST(StrategicLoop, RejectsZeroRounds) {
  StrategicLoopConfig config =
      base_config(SchemeChoice::RoleBasedAdaptive, 76);
  config.rounds = 0;
  EXPECT_THROW(run_strategic_loop(config), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::sim
