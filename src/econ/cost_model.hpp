// Algorand task-cost model (paper §III-A, Tables I & II).
//
// Per-task costs are micro-Algos (doubles, since they parameterize analytic
// bounds). Eq (1): c_fix = c_ve + c_se + c_so + c_go + c_vs + c_vc.
// Eq (2): leaders pay c_fix + c_bl; committee members pay
// c_fix + c_bs + c_vo; other online nodes pay c_fix. Defectors pay only
// c_so (they still run sortition to stay in the network).
#pragma once

#include <array>
#include <string_view>

#include "consensus/roles.hpp"

namespace roleshare::econ {

/// Per-task costs in micro-Algos.
struct TaskCosts {
  double cve = 0.2;  // transaction verification
  double cse = 0.2;  // seed generation
  double cso = 5.0;  // sortition algorithm
  double cvs = 0.2;  // verify sortition proofs
  double cbl = 10.0; // block proposition (leaders only)
  double cgo = 0.2;  // gossiping
  double cbs = 2.0;  // block selection (committee only)
  double cvo = 4.0;  // voting (committee only)
  double cvc = 0.2;  // vote counting

  /// Throws std::invalid_argument if any cost is negative.
  void validate() const;
};

/// Role-level costs derived from task costs — the paper's c_L, c_M, c_K.
class CostModel {
 public:
  /// Defaults reproduce §V-A: c_L = 16, c_M = 12, c_K = 6, c_so = 5 µAlgos.
  explicit CostModel(TaskCosts tasks = TaskCosts{});

  /// Directly specifies role costs (used by sensitivity benches).
  /// Requires c_leader >= c_committee >= c_other >= c_sortition >= 0.
  static CostModel from_role_costs(double c_leader, double c_committee,
                                   double c_other, double c_sortition);

  const TaskCosts& tasks() const { return tasks_; }

  /// Eq (1): cost common to every cooperative node.
  double fixed_cost() const;

  /// Eq (2): cost of cooperation for a node in the given role.
  double cooperation_cost(consensus::Role role) const;

  double leader_cost() const;     // c_L
  double committee_cost() const;  // c_M
  double other_cost() const;      // c_K

  /// Cost a defector still pays (sortition only).
  double defection_cost() const;  // c_so

  /// Which tasks the given role performs (Table II row set).
  static bool role_performs(consensus::Role role, std::string_view task);

 private:
  CostModel(TaskCosts tasks, bool direct, double cl, double cm, double ck,
            double cso);

  TaskCosts tasks_;
  bool direct_ = false;
  double direct_cl_ = 0, direct_cm_ = 0, direct_ck_ = 0, direct_cso_ = 0;
};

/// Table II task identifiers, in presentation order.
inline constexpr std::array<std::string_view, 9> kTaskNames = {
    "transaction_verification", "seed_generation", "sortition",
    "verify_sortition_proof",   "block_proposition", "gossiping",
    "block_selection",          "vote",              "vote_counting"};

}  // namespace roleshare::econ
