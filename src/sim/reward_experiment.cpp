#include "sim/reward_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "econ/foundation_schedule.hpp"
#include "util/alias_sampler.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

StakeSpec StakeSpec::uniform(std::int64_t lo, std::int64_t hi) {
  StakeSpec s;
  s.kind = Kind::Uniform;
  s.a = static_cast<double>(lo);
  s.b = static_cast<double>(hi);
  return s;
}

StakeSpec StakeSpec::normal(double mean, double sigma) {
  StakeSpec s;
  s.kind = Kind::Normal;
  s.a = mean;
  s.b = sigma;
  return s;
}

std::string StakeSpec::name() const { return make()->name(); }

std::unique_ptr<util::StakeDistribution> StakeSpec::make() const {
  if (kind == Kind::Uniform) {
    return util::make_uniform_stake(static_cast<std::int64_t>(a),
                                    static_cast<std::int64_t>(b));
  }
  return util::make_normal_stake(a, b);
}

namespace {

/// Draws a role's member set by sub-user sampling: `tau` stake-weighted
/// draws; distinct drawn nodes form the set. Returns the minimum stake
/// among members (0 if none).
std::int64_t sample_role_min_stake(
    const util::AliasSampler& sampler, const std::vector<std::int64_t>& stakes,
    std::uint64_t tau, util::Rng& rng,
    std::unordered_set<std::size_t>& members_out) {
  std::int64_t min_stake = 0;
  for (std::uint64_t d = 0; d < tau; ++d) {
    const std::size_t v = sampler.sample(rng);
    members_out.insert(v);
    if (min_stake == 0 || stakes[v] < min_stake) min_stake = stakes[v];
  }
  return min_stake;
}

}  // namespace

RewardExperimentResult run_reward_experiment(
    const RewardExperimentConfig& config) {
  RS_REQUIRE(config.node_count > 2, "population too small");
  RS_REQUIRE(config.runs > 0 && config.rounds_per_run > 0, "runs/rounds");

  RewardExperimentResult result;
  result.bi_per_round_mean.assign(config.rounds_per_run, 0.0);
  result.foundation_per_round.assign(config.rounds_per_run, 0.0);
  for (std::size_t r = 0; r < config.rounds_per_run; ++r) {
    result.foundation_per_round[r] = ledger::to_algos(
        econ::FoundationSchedule::reward_for_round(r + 1));
  }

  const econ::RewardOptimizer optimizer(config.optimizer);
  util::RunningStats bi_stats;
  util::RunningStats alpha_stats;
  util::RunningStats beta_stats;
  util::RunningStats stake_stats;

  util::Rng master(config.seed);
  const auto dist = config.stakes.make();

  for (std::size_t run = 0; run < config.runs; ++run) {
    util::Rng rng = master.split(run + 1);
    std::vector<std::int64_t> stakes =
        dist->sample_many(rng, config.node_count);
    std::int64_t total_stake = 0;
    for (const std::int64_t s : stakes) total_stake += s;

    for (std::size_t round = 0; round < config.rounds_per_run; ++round) {
      // Committee sampling (sub-user draws, alias table rebuilt per round
      // because the churn below shifts weights).
      std::vector<double> weights(stakes.begin(), stakes.end());
      const util::AliasSampler sampler(weights);

      std::unordered_set<std::size_t> leaders, committee;
      const std::int64_t min_leader = sample_role_min_stake(
          sampler, stakes, config.leader_stake, rng, leaders);
      const std::int64_t min_committee = sample_role_min_stake(
          sampler, stakes, config.committee_stake, rng, committee);

      // Others: everyone else. s*_k is the min stake among others at or
      // above the Fig-7(c) threshold; S_K excludes filtered nodes.
      const std::int64_t threshold = config.min_other_stake.value_or(0);
      std::int64_t min_other = 0;
      std::int64_t others_stake = 0;
      for (std::size_t v = 0; v < stakes.size(); ++v) {
        if (leaders.contains(v) || committee.contains(v)) continue;
        if (stakes[v] < threshold) continue;
        others_stake += stakes[v];
        if (min_other == 0 || stakes[v] < min_other) min_other = stakes[v];
      }

      econ::BoundInputs inputs;
      inputs.stake_leaders = static_cast<double>(config.leader_stake);
      inputs.stake_committee = static_cast<double>(config.committee_stake);
      inputs.stake_others = static_cast<double>(others_stake);
      inputs.min_stake_leader =
          static_cast<double>(std::max<std::int64_t>(1, min_leader));
      inputs.min_stake_committee =
          static_cast<double>(std::max<std::int64_t>(1, min_committee));
      inputs.min_stake_other =
          static_cast<double>(std::max<std::int64_t>(1, min_other));

      const econ::OptimizerResult opt = optimizer.optimize(inputs,
                                                           config.costs);
      if (!opt.feasible) {
        ++result.infeasible_rounds;
      } else {
        const double bi_algos = opt.min_bi / 1e6;  // µAlgos -> Algos
        result.bi_algos.push_back(bi_algos);
        result.bi_per_round_mean[round] += bi_algos;
        bi_stats.add(bi_algos);
        alpha_stats.add(opt.split.alpha);
        beta_stats.add(opt.split.beta);
      }

      // Transaction churn: stake-weighted parties exchange a few Algos.
      for (std::size_t t = 0; t < config.tx_parties; ++t) {
        const std::size_t v = sampler.sample(rng);
        const std::int64_t delta = rng.uniform_int(config.tx_lo, config.tx_hi);
        const std::int64_t updated = std::max<std::int64_t>(1, stakes[v] + delta);
        total_stake += updated - stakes[v];
        stakes[v] = updated;
      }
    }
    stake_stats.add(static_cast<double>(total_stake));
  }

  for (double& m : result.bi_per_round_mean)
    m /= static_cast<double>(config.runs);
  result.mean_bi = bi_stats.mean();
  result.mean_total_stake = stake_stats.mean();
  result.mean_alpha = alpha_stats.mean();
  result.mean_beta = beta_stats.mean();
  return result;
}

}  // namespace roleshare::sim
