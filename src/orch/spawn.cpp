#include "orch/spawn.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

// Forked workers leave via _exit (exit() would run the parent's atexit
// handlers), which skips gcov's at-exit counter write — without an
// explicit dump the whole worker side of the orchestrator would look
// uncovered to the coverage gate. The reference must be strong and
// compiled only under instrumentation: a weak one does not pull the
// object out of static libgcov.
#ifdef ROLESHARE_COVERAGE_BUILD
extern "C" void __gcov_dump(void);
#endif

namespace roleshare::orch {

namespace {

sockaddr_un address_of(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("orch: socket path too long (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             "): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path) {
  const sockaddr_un addr = address_of(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("orch: socket(): ") +
                             std::strerror(errno));
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("orch: bind(" + path +
                             "): " + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("orch: listen(" + path +
                             "): " + std::strerror(err));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = address_of(path);
  // The coordinator binds before spawning workers, so in practice the
  // first attempt succeeds; the retry loop covers externally-launched
  // workers racing the bind.
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
      throw std::runtime_error(std::string("orch: socket(): ") +
                               std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    const int err = errno;
    ::close(fd);
    if ((err != ENOENT && err != ECONNREFUSED) || attempt >= 50)
      throw std::runtime_error("orch: connect(" + path +
                               "): " + std::strerror(err));
    ::usleep(100 * 1000);
  }
}

int accept_unix(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("orch: accept(): ") +
                             std::strerror(errno));
  }
}

pid_t spawn_child(const std::function<int()>& child) {
  // Flush BEFORE forking: any bytes sitting in the parent's stdio
  // buffers would be duplicated by every child that later flushes.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("orch: fork(): ") +
                             std::strerror(errno));
  if (pid == 0) {
    int status = 127;
    try {
      status = child();
    } catch (...) {
      status = 125;
    }
    hard_exit(status);
  }
  return pid;
}

void hard_exit(int status) {
  // Flush the process's OWN output (safe after spawn_child — the
  // pre-fork flush emptied the inherited buffers), dump coverage
  // counters if instrumented, then _exit: exit() would also run the
  // parent's atexit handlers.
  std::fflush(nullptr);
#ifdef ROLESHARE_COVERAGE_BUILD
  __gcov_dump();
#endif
  ::_exit(status);
}

bool try_reap(pid_t pid, int& status) {
  while (true) {
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return true;
    if (got == 0) return false;
    if (errno == EINTR) continue;
    throw std::runtime_error("orch: waitpid(" + std::to_string(pid) +
                             "): " + std::strerror(errno));
  }
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

}  // namespace roleshare::orch
