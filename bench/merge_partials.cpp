// merge_partials — folds the per-shard partials of a sharded figure sweep
// back into the figure (the reduce step of the run-range sharding
// workflow; see DESIGN.md "Accumulators & sharding").
//
//   $ ./fig3_defection --runs=8 --run-begin=0 --run-end=4 --partial-out=s0.json
//   $ ./fig3_defection --runs=8 --run-begin=4 --run-end=8 --partial-out=s1.json
//   $ ./merge_partials --series-out=merged.json s0.json s1.json
//
// The experiment family is auto-detected from the shard documents' "kind"
// field (defection = fig3/scenario_sweep, reward = fig6/fig7, strategic =
// strategic_ensemble); mixing kinds, configs or panel layouts across the
// shard set is refused loudly, naming both sides. Shards may be listed in
// any order; before any merge the whole set is validated to tile the full
// run range [0, runs) exactly — no overlaps, no gaps, no unfinished
// checkpoints (a partial whose run_end < window_end must be resumed via
// the bench's --partial-in first). That tiling is the contract that makes
// an exact-backend merge bit-identical to a single-process execution (the
// CI smoke jobs diff merged.json against an unsharded --series-out byte
// for byte). Streaming-backend partials merge within the documented
// reservoir error bound instead.
//
// Shard files are read through sim::decode_partial_document, so JSON and
// framed-binary shards (bench --format=bin) interoperate freely — the
// format is auto-detected per file from its leading bytes and printed
// with the byte size. --format={auto,json,bin} (default auto) makes an
// explicit choice a *requirement* on every input: a pipeline that
// intends binary shards fails loudly when a text one sneaks in. With
// --store=DIR the merged full-range partial is additionally published
// to the content-addressed sim::ResultStore, so a later bench run over
// the whole window is a cache hit.
//
// Exit codes: 0 on success, 1 on malformed/incompatible/missing shards.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/defection_experiment.hpp"
#include "sim/longhorizon.hpp"
#include "sim/partial.hpp"
#include "sim/partial_codec.hpp"
#include "sim/result_store.hpp"
#include "sim/reward_experiment.hpp"
#include "sim/strategic_loop.hpp"
#include "util/json.hpp"

using namespace roleshare;

namespace {

struct ShardFile {
  std::string path;
  util::json::Value doc;
};

/// Document members every shard document carries around its config echo;
/// everything else in the header must agree verbatim across shards.
bool is_window_key(const std::string& key) {
  return key == "run_begin" || key == "run_end" || key == "window_end" ||
         key == "panels";
}

void check_headers_match(const ShardFile& reference, const ShardFile& file) {
  for (const auto& [key, value] : reference.doc.as_object()) {
    if (is_window_key(key)) continue;
    const util::json::Value* other = file.doc.find(key);
    if (other == nullptr) {
      throw std::invalid_argument("shard " + file.path +
                                  " is missing header field \"" + key +
                                  "\" that " + reference.path + " carries");
    }
    if (other->dump() != value.dump()) {
      throw std::invalid_argument("shard " + file.path +
                                  " disagrees on \"" + key + "\": " +
                                  other->dump() + " vs " + value.dump() +
                                  " in " + reference.path);
    }
  }
  // Symmetric: a shard carrying header fields the reference lacks is just
  // as mismatched — validation must not depend on argument order.
  for (const auto& [key, value] : file.doc.as_object()) {
    if (is_window_key(key)) continue;
    if (reference.doc.find(key) == nullptr) {
      throw std::invalid_argument("shard " + file.path +
                                  " carries extra header field \"" + key +
                                  "\" that " + reference.path + " lacks");
    }
  }
}

/// The panel-identity fields (everything but "partial"), used to check
/// that all shards share one panel layout and to rebuild series panels.
util::json::Value panel_meta_of(const util::json::Value& panel) {
  util::json::Value meta = util::json::Value::object();
  for (const auto& [key, value] : panel.as_object())
    if (key != "partial") meta.set(key, value);
  return meta;
}

/// Merges every shard's panel partials in window order. The envelope
/// inside each partial re-checks kind / spec hash / backend / contiguity,
/// so a shard that slipped past the document-level validation still
/// cannot corrupt the merge silently.
template <typename PartialT>
struct MergedPanels {
  std::vector<PartialT> partials;
  std::vector<util::json::Value> metas;
};

template <typename PartialT>
MergedPanels<PartialT> merge_panels(const std::vector<ShardFile>& files) {
  MergedPanels<PartialT> merged;
  std::vector<std::string> meta_dumps;
  for (const ShardFile& file : files) {
    const auto& panels = file.doc.at("panels").as_array();
    if (panels.empty())
      throw std::invalid_argument("shard " + file.path + " has no panels");
    if (merged.partials.empty()) {
      for (const util::json::Value& panel : panels) {
        merged.partials.push_back(PartialT::from_json(panel.at("partial")));
        merged.metas.push_back(panel_meta_of(panel));
        meta_dumps.push_back(merged.metas.back().dump());
      }
      continue;
    }
    if (panels.size() != merged.partials.size())
      throw std::invalid_argument("shard " + file.path + " has " +
                                  std::to_string(panels.size()) +
                                  " panels, the first shard has " +
                                  std::to_string(merged.partials.size()));
    for (std::size_t i = 0; i < panels.size(); ++i) {
      if (panel_meta_of(panels[i]).dump() != meta_dumps[i])
        throw std::invalid_argument("shard " + file.path +
                                    " has a different panel layout at "
                                    "panel " + std::to_string(i));
      merged.partials[i].merge(PartialT::from_json(panels[i].at("partial")));
    }
  }
  return merged;
}

util::json::Value series_header(const util::json::Value& shard_doc) {
  util::json::Value header = util::json::Value::object();
  for (const auto& [key, value] : shard_doc.as_object())
    if (!is_window_key(key)) header.set(key, value);
  return header;
}

/// Publishes the merged full-range partial to the result store, so a
/// later bench invocation over the whole window ([0, runs)) is served
/// from cache instead of recomputing every shard's work.
template <typename PartialT>
void publish_merged(const std::string& store_dir,
                    const util::json::Value& shard_doc,
                    std::size_t runs_total,
                    const MergedPanels<PartialT>& merged,
                    sim::PartialFormat format) {
  if (store_dir.empty()) return;
  const util::json::Value header = series_header(shard_doc);
  const std::function<util::json::Value(std::size_t)> panel_meta =
      [&](std::size_t i) { return merged.metas[i]; };
  const std::string bytes = sim::partial_codec(format).encode(
      bench::partial_document(header, 0, runs_total, runs_total,
                              merged.partials, panel_meta));
  sim::ResultStore store(store_dir);
  const std::string path =
      store.insert(bench::store_key_of(header, 0, runs_total), bytes);
  std::printf("[store] published merged runs [0, %zu) to %s (%zu bytes, "
              "%s)\n",
              runs_total, path.c_str(), bytes.size(),
              sim::to_string(format));
}

/// Kind-specific finalize + series snapshot + stdout summary.
util::json::Value finalize_defection(
    const MergedPanels<sim::DefectionPartial>& merged, double trim) {
  util::json::Value panels = util::json::Value::array();
  for (std::size_t i = 0; i < merged.partials.size(); ++i) {
    const sim::DefectionSeries series = merged.partials[i].finalize(trim);
    std::printf("\n--- panel %zu: %s ---\n", i + 1,
                merged.metas[i].dump().c_str());
    bench::print_defection_table(series);
    std::printf("mean final%% = %.1f | runs with chain progress = %.0f%%\n",
                bench::mean_final_pct(series),
                series.runs_with_progress * 100);
    util::json::Value panel = merged.metas[i];
    panel.set("series", bench::defection_series_json(series));
    panels.push_back(std::move(panel));
  }
  return panels;
}

util::json::Value finalize_reward(
    const MergedPanels<sim::RewardPartial>& merged) {
  util::json::Value panels = util::json::Value::array();
  for (std::size_t i = 0; i < merged.partials.size(); ++i) {
    const sim::RewardExperimentResult result = merged.partials[i].finalize();
    std::printf("panel %zu %s: mean B_i = %.4f Algos, mean alpha=%.4f "
                "beta=%.4f, infeasible=%zu\n",
                i + 1, merged.metas[i].dump().c_str(), result.mean_bi,
                result.mean_alpha, result.mean_beta,
                result.infeasible_rounds);
    util::json::Value panel = merged.metas[i];
    panel.set("series", bench::reward_series_json(result));
    panels.push_back(std::move(panel));
  }
  return panels;
}

util::json::Value finalize_longhorizon(
    const MergedPanels<sim::LongHorizonPartial>& merged) {
  util::json::Value panels = util::json::Value::array();
  for (std::size_t i = 0; i < merged.partials.size(); ++i) {
    const sim::LongHorizonResult result = merged.partials[i].finalize();
    std::printf("panel %zu %s: end gini = %.4f, end top-share = %.4f, "
                "defector corr = %.4f, paid = %.1f Algos\n",
                i + 1, merged.metas[i].dump().c_str(), result.mean_end_gini,
                result.mean_end_top_share, result.mean_end_defector_corr,
                result.mean_paid_algos);
    util::json::Value panel = merged.metas[i];
    panel.set("series", bench::longhorizon_series_json(result));
    panels.push_back(std::move(panel));
  }
  return panels;
}

util::json::Value finalize_strategic(
    const MergedPanels<sim::StrategicPartial>& merged) {
  util::json::Value panels = util::json::Value::array();
  for (std::size_t i = 0; i < merged.partials.size(); ++i) {
    const sim::StrategicEnsembleResult result =
        merged.partials[i].finalize();
    std::printf("panel %zu %s: cooperation at horizon = %.0f%%, mean total "
                "reward = %.4f Algos\n",
                i + 1, merged.metas[i].dump().c_str(),
                result.mean_final_cooperation * 100,
                result.mean_total_reward_algos);
    util::json::Value panel = merged.metas[i];
    panel.set("series", bench::strategic_series_json(result));
    panels.push_back(std::move(panel));
  }
  return panels;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "MERGED_series.json");
  const std::string format_arg =
      bench::arg_string(argc, argv, "format", "auto");
  const std::string store_dir = bench::arg_string(argc, argv, "store", "");
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) paths.push_back(arg);
  }

  bench::print_header("merge_partials", "fold shard partials into a figure");
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "usage: merge_partials [--series-out=FILE] "
                 "[--format={auto,json,bin}] [--store=DIR] "
                 "shard0 shard1 ...\n"
                 "(need at least two shard partial files; shard formats "
                 "auto-detect unless --format pins one)\n");
    return 1;
  }

  try {
    // --format=auto accepts any mix; an explicit choice is a requirement
    // on every input file. The store publication (if any) reuses the
    // pinned format, defaulting to the compact binary form under auto.
    std::optional<sim::PartialFormat> required_format;
    if (format_arg != "auto")
      required_format = sim::parse_partial_format(format_arg);
    const sim::PartialFormat publish_format =
        required_format.value_or(sim::PartialFormat::Binary);

    std::vector<ShardFile> files;
    for (const std::string& path : paths) {
      const std::string bytes = bench::read_text_file(path);
      const sim::PartialFormat format =
          sim::detect_partial_format(bytes, path);
      if (required_format && format != *required_format) {
        throw std::invalid_argument(
            "shard " + path + " is " + sim::to_string(format) +
            " but --format=" + format_arg + " requires every shard to be " +
            sim::to_string(*required_format));
      }
      std::printf("[shard] %s: %zu bytes, %s\n", path.c_str(), bytes.size(),
                  sim::to_string(format));
      files.push_back({path, sim::decode_partial_document(bytes, path)});
    }

    // Every shard must be the same experiment kind — auto-detected from
    // the first file, cross-checked against all others.
    const std::string kind = files.front().doc.at("kind").as_string();
    for (const ShardFile& file : files) {
      const std::string& file_kind = file.doc.at("kind").as_string();
      if (file_kind != kind) {
        throw std::invalid_argument(
            "refusing to merge across experiment kinds: " +
            files.front().path + " is \"" + kind + "\", " + file.path +
            " is \"" + file_kind + "\"");
      }
      check_headers_match(files.front(), file);
    }

    std::sort(files.begin(), files.end(),
              [](const ShardFile& a, const ShardFile& b) {
                return a.doc.at("run_begin").as_size() <
                       b.doc.at("run_begin").as_size();
              });
    const util::json::Value& header = files.front().doc;
    const std::size_t runs_total = header.at("runs").as_size();

    // Pre-flight: the shard set must tile [0, runs) exactly — overlaps,
    // gaps, missing shards and unfinished checkpoints are all named
    // before any merge work starts.
    std::vector<sim::ShardWindow> windows;
    for (const ShardFile& file : files) {
      windows.push_back({file.doc.at("run_begin").as_size(),
                         file.doc.at("run_end").as_size(),
                         file.doc.at("window_end").as_size(), file.path});
    }
    sim::check_shard_tiling(std::move(windows), runs_total);

    const sim::AggBackend agg =
        sim::parse_agg_backend(header.at("agg").as_string());
    std::printf("merging %zu %s shards, runs [0, %zu), agg=%s\n",
                files.size(), kind.c_str(), runs_total,
                sim::to_string(agg));

    util::json::Value series_panels;
    if (kind == sim::DefectionPayload::kKind) {
      const auto merged = merge_panels<sim::DefectionPartial>(files);
      series_panels =
          finalize_defection(merged, header.at("trim").as_number());
      publish_merged(store_dir, header, runs_total, merged, publish_format);
    } else if (kind == sim::RewardPayload::kKind) {
      const auto merged = merge_panels<sim::RewardPartial>(files);
      series_panels = finalize_reward(merged);
      publish_merged(store_dir, header, runs_total, merged, publish_format);
    } else if (kind == sim::StrategicPayload::kKind) {
      const auto merged = merge_panels<sim::StrategicPartial>(files);
      series_panels = finalize_strategic(merged);
      publish_merged(store_dir, header, runs_total, merged, publish_format);
    } else if (kind == sim::LongHorizonPayload::kKind) {
      const auto merged = merge_panels<sim::LongHorizonPartial>(files);
      series_panels = finalize_longhorizon(merged);
      publish_merged(store_dir, header, runs_total, merged, publish_format);
    } else {
      throw std::invalid_argument("unknown experiment kind \"" + kind +
                                  "\" (expected \"defection\", \"reward\", "
                                  "\"strategic\" or \"longhorizon\")");
    }

    bench::write_series_document(series_out, series_header(header), 0,
                                 runs_total, std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ERROR: %s\n", e.what());
    return 1;
  }
  return 0;
}
