// Aggregation of per-round outcomes across simulation runs — the paper's
// 20%-trimmed-mean methodology (§III-C) producing the Fig-3 series.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/round_engine.hpp"

namespace roleshare::sim {

/// Trimmed-mean outcome fractions for one round index.
struct RoundAggregate {
  double final_pct = 0.0;      // % of nodes extracting a final block
  double tentative_pct = 0.0;  // % extracting only a tentative block
  double none_pct = 0.0;       // % extracting no block
};

class OutcomeMetrics {
 public:
  explicit OutcomeMetrics(std::size_t rounds);

  /// Records one run's result for `round_index` (0-based).
  void record(std::size_t round_index, const RoundResult& result);

  std::size_t rounds() const { return per_round_final_.size(); }
  std::size_t runs_recorded(std::size_t round_index) const;

  /// Trimmed-mean series over all recorded runs (percentages, 0..100).
  std::vector<RoundAggregate> aggregate(double trim_fraction = 0.2) const;

 private:
  std::vector<std::vector<double>> per_round_final_;
  std::vector<std::vector<double>> per_round_tentative_;
  std::vector<std::vector<double>> per_round_none_;
};

}  // namespace roleshare::sim
