// Consensus protocol parameters.
//
// Expected committee sizes are expressed in *stake units* (sub-users), as in
// Algorand: tau_proposer = 26, tau_step = 1000, tau_final = 10000 — exactly
// the S_L = 26, S_STEP = 1k, S_FINAL = 10k accounting the paper uses in
// §V-B (S_M = tau_step * 3 + tau_final for the expected committee stake of
// one reduction+binary pipeline). Vote thresholds are fractions of tau.
#pragma once

#include <cstdint>

#include "net/sim_time.hpp"

namespace roleshare::consensus {

/// How a round turns stake into proposer/committee seats.
///
///   PerNodeVrf  the paper-faithful model: every node evaluates its VRF
///               and binomial inversion per step (crypto/sortition.hpp).
///               Inherently Ω(N) per round — selection is only knowable
///               by evaluating every key.
///   Sampled     the population-scale model: tau seats per step are drawn
///               with replacement from the stake distribution (the same
///               sub-user accounting sim/reward_experiment.cpp always
///               used); a node's weight is the seats it won. Selection
///               touches O(tau · log N) state, which is what makes the
///               sparse round path (sim/sampled_round.hpp) possible. The
///               dense and sparse engines implement identical Sampled
///               semantics bit for bit.
enum class CommitteeModel : std::uint8_t { PerNodeVrf, Sampled };

struct ConsensusParams {
  /// Expected total stake of block proposers per round (tau_proposer).
  std::uint64_t expected_proposer_stake = 26;
  /// Expected committee stake per BA* step (tau_step, "S_STEP").
  std::uint64_t expected_step_stake = 1000;
  /// Expected committee stake for the final vote (tau_final, "S_FINAL").
  std::uint64_t expected_final_stake = 10'000;

  /// Fraction of tau_step that a value must exceed to win a step (T).
  double step_threshold = 0.685;
  /// Fraction of tau_final required to declare a block final (T_FINAL).
  double final_threshold = 0.74;

  /// Maximum BinaryBA* iterations before giving up (the paper: <11 steps).
  std::uint32_t max_binary_iterations = 11;

  /// Seat-selection model (see CommitteeModel above). The default keeps
  /// every existing experiment on the paper-faithful per-node VRF path.
  CommitteeModel committee_model = CommitteeModel::PerNodeVrf;

  /// Virtual time allotted to collect block proposals.
  net::TimeMs proposal_timeout_ms = 10'000.0;
  /// Virtual time allotted to collect votes per step (paper: 20 s).
  net::TimeMs step_timeout_ms = net::kDefaultStepTimeoutMs;

  /// Weighted-vote quorum for one step: step_threshold * tau_step.
  double step_quorum() const;
  /// Weighted-vote quorum for finality: final_threshold * tau_final.
  double final_quorum() const;

  /// Expected committee stake S_M for one full round, as the paper counts
  /// it (§V-B): tau_step * 3 + tau_final.
  std::uint64_t expected_committee_stake_per_round() const;

  /// Throws std::invalid_argument when a field is out of range.
  void validate() const;

  /// Scales the stake expectations for small test networks: committees
  /// sized for a total stake of `total_stake` instead of the mainnet-scale
  /// defaults, keeping the same proportions.
  static ConsensusParams scaled_for(std::int64_t total_stake);
};

}  // namespace roleshare::consensus
