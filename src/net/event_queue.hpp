// Minimal discrete-event simulation core: a virtual clock plus a priority
// queue of timestamped callbacks. Ties are broken by insertion order so
// runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/sim_time.hpp"

namespace roleshare::net {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current virtual time. Starts at 0.
  TimeMs now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  void schedule_at(TimeMs at, Handler fn);

  /// Schedules `fn` to run `delay` ms from now (delay >= 0).
  void schedule_in(TimeMs delay, Handler fn);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the next event is later than
  /// `until`; the clock then advances to `until` if it is ahead.
  void run_until(TimeMs until);

  /// Drains the queue completely.
  void run_all();

  /// Drops all pending events and resets the clock to 0.
  void reset();

 private:
  struct Event {
    TimeMs at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace roleshare::net
