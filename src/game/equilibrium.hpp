// Nash-equilibrium analysis for the Algorand game, plus constructive
// verifiers for the paper's formal results (Lemma 1, Theorems 1–3).
//
// The checks are exhaustive over unilateral deviations: a profile is a NE
// iff no player gains by switching to either alternative strategy. The
// scanner evaluates a deviation in O(1) after an O(n) aggregate pass, so
// full NE checks are O(n).
#pragma once

#include <optional>
#include <string>

#include "game/game_model.hpp"
#include "util/rng.hpp"

namespace roleshare::game {

struct DeviationWitness {
  ledger::NodeId player = 0;
  Strategy from = Strategy::Cooperate;
  Strategy to = Strategy::Defect;
  double payoff_before = 0;
  double payoff_after = 0;
  double gain() const { return payoff_after - payoff_before; }
};

/// Evaluates unilateral deviations cheaply against a fixed base profile.
class DeviationScanner {
 public:
  DeviationScanner(const AlgorandGame& game, const Profile& profile);

  /// The player's payoff under the base profile.
  double base_payoff(ledger::NodeId player) const;

  /// The player's payoff if they alone switch to `alt`.
  double deviation_payoff(ledger::NodeId player, Strategy alt) const;

 private:
  /// Adds (sign = +1) or removes (sign = -1) one player's contribution to
  /// the aggregates, mirroring AlgorandGame::aggregate's per-player logic.
  static void adjust(AlgorandGame::Aggregates& agg, const GameConfig& config,
                     ledger::NodeId player, Strategy strategy, int sign);

  const AlgorandGame& game_;
  const Profile& profile_;
  AlgorandGame::Aggregates base_;
};

/// First profitable unilateral deviation, if any. `tolerance` guards
/// against floating-point ties (a deviation counts only if it gains more
/// than `tolerance`).
std::optional<DeviationWitness> find_profitable_deviation(
    const AlgorandGame& game, const Profile& profile,
    double tolerance = 1e-9);

bool is_nash(const AlgorandGame& game, const Profile& profile,
             double tolerance = 1e-9);

/// Report from checking one of the paper's formal results on a concrete
/// game instance.
struct TheoremReport {
  bool holds = false;
  std::string detail;
  std::optional<DeviationWitness> witness;
};

/// Lemma 1: Offline is strictly dominated by Defect. Checked for every
/// player across `samples` random opponent profiles.
TheoremReport verify_lemma1(const AlgorandGame& game, util::Rng& rng,
                            std::size_t samples = 32);

/// Theorem 1: All-D is a Nash equilibrium.
TheoremReport verify_theorem1(const AlgorandGame& game);

/// Theorem 2: under stake-proportional sharing, All-C is NOT a Nash
/// equilibrium (the report carries the deviating witness).
TheoremReport verify_theorem2(const AlgorandGame& game);

/// The Theorem-3 strategy profile: leaders and committee cooperate, Other
/// nodes in the sync set cooperate, remaining Others defect.
Profile theorem3_profile(const AlgorandGame& game);

/// Theorem 3: the profile above is a NE of G_Al+ when B_i exceeds the
/// bounds. The check is purely game-theoretic — it does not trust the
/// bound formulas; it scans every deviation.
TheoremReport verify_theorem3(const AlgorandGame& game);

}  // namespace roleshare::game
