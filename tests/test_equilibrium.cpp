#include "game/equilibrium.hpp"

#include <gtest/gtest.h>

#include "econ/optimizer.hpp"

namespace roleshare::game {
namespace {

using consensus::Role;
using econ::CostModel;
using econ::RoleSnapshot;

RoleSnapshot snapshot() {
  return RoleSnapshot({Role::Leader, Role::Leader, Role::Committee,
                       Role::Committee, Role::Committee, Role::Other,
                       Role::Other, Role::Other, Role::Other, Role::Other},
                      {5, 8, 10, 12, 9, 20, 15, 30, 25, 40});
}

GameConfig gal_config(double bi_algos) {
  return GameConfig{snapshot(),
                    CostModel{},
                    SchemeKind::StakeProportional,
                    bi_algos * 1e6,
                    econ::RewardSplit(0.2, 0.3),
                    {},
                    0.685};
}

GameConfig galplus_config(double bi_micro, econ::RewardSplit split,
                          std::vector<bool> sync_set) {
  return GameConfig{snapshot(),         CostModel{}, SchemeKind::RoleBased,
                    bi_micro,           split,       std::move(sync_set),
                    0.685};
}

TEST(Equilibrium, ScannerMatchesDirectPayoffs) {
  const AlgorandGame game(gal_config(30));
  Profile p = all_cooperate(game.player_count());
  p[2] = Strategy::Defect;
  const DeviationScanner scanner(game, p);
  for (ledger::NodeId v = 0; v < game.player_count(); ++v) {
    EXPECT_NEAR(scanner.base_payoff(v), game.payoff(p, v), 1e-9);
    for (const Strategy alt :
         {Strategy::Cooperate, Strategy::Defect, Strategy::Offline}) {
      Profile q = p;
      q[v] = alt;
      EXPECT_NEAR(scanner.deviation_payoff(v, alt), game.payoff(q, v), 1e-9)
          << "player " << v << " alt " << to_string(alt);
    }
  }
}

TEST(Equilibrium, Lemma1OfflineDominated) {
  const AlgorandGame game(gal_config(30));
  util::Rng rng(1);
  const TheoremReport report = verify_lemma1(game, rng, 16);
  EXPECT_TRUE(report.holds) << report.detail;
}

TEST(Equilibrium, Theorem1AllDefectIsNash) {
  for (const double bi : {0.0, 5.0, 50.0, 5000.0}) {
    const AlgorandGame game(gal_config(bi));
    const TheoremReport report = verify_theorem1(game);
    EXPECT_TRUE(report.holds) << "bi=" << bi << ": " << report.detail;
  }
}

TEST(Equilibrium, Theorem2AllCooperateIsNotNash) {
  // Regardless of how large the stake-proportional reward is, someone
  // profits by defecting (reward is role-blind, costs are not).
  for (const double bi : {1.0, 20.0, 1000.0}) {
    const AlgorandGame game(gal_config(bi));
    const TheoremReport report = verify_theorem2(game);
    EXPECT_TRUE(report.holds) << "bi=" << bi;
    ASSERT_TRUE(report.witness.has_value());
    EXPECT_EQ(report.witness->from, Strategy::Cooperate);
    EXPECT_EQ(report.witness->to, Strategy::Defect);
    EXPECT_GT(report.witness->gain(), 0.0);
  }
}

TEST(Equilibrium, Theorem2WitnessSavesRoleCostDelta) {
  // The deviating player keeps its reward and saves (c_role - c_so).
  const AlgorandGame game(gal_config(100));
  const TheoremReport report = verify_theorem2(game);
  ASSERT_TRUE(report.holds);
  ASSERT_TRUE(report.witness.has_value());
  const auto role = game.config().snapshot.role(report.witness->player);
  const double saved = CostModel{}.cooperation_cost(role) -
                       CostModel{}.defection_cost();
  EXPECT_NEAR(report.witness->gain(), saved, 1e-6);
}

std::vector<bool> sync_set_for(const RoleSnapshot& snap,
                               std::initializer_list<int> members) {
  std::vector<bool> y(snap.node_count(), false);
  for (const int v : members) y[static_cast<std::size_t>(v)] = true;
  return y;
}

TEST(Equilibrium, Theorem3ProfileShape) {
  const auto y = sync_set_for(snapshot(), {5, 7});
  const AlgorandGame game(
      galplus_config(10e6, econ::RewardSplit(0.2, 0.3), y));
  const Profile p = theorem3_profile(game);
  EXPECT_EQ(p[0], Strategy::Cooperate);  // leaders
  EXPECT_EQ(p[2], Strategy::Cooperate);  // committee
  EXPECT_EQ(p[5], Strategy::Cooperate);  // Y-other
  EXPECT_EQ(p[6], Strategy::Defect);     // non-Y other
  EXPECT_EQ(p[7], Strategy::Cooperate);  // Y-other
  EXPECT_EQ(p[9], Strategy::Defect);
}

// The pivotal end-to-end check: with B_i above the Theorem-3 bounds the
// profile is a NE; below any single bound it is not, and the violating
// role's player is the witness.
TEST(Equilibrium, Theorem3HoldsAboveBoundsFailsBelow) {
  const RoleSnapshot snap = snapshot();
  const auto y = sync_set_for(snap, {5, 7});
  const econ::RewardSplit split(0.2, 0.3);

  // Bounds computed on the *cooperating* population of the profile: S_K
  // counts the gamma pool of the equilibrium profile — all others plus
  // nobody defecting among leaders/committee. Use snapshot aggregates.
  econ::BoundInputs in = econ::BoundInputs::from_snapshot(snap);
  // In the Theorem-3 profile the non-Y others defect but still draw from
  // the gamma pot, so S_K (stake 130) is unchanged; s*_k is the minimum
  // over Y members only (stakes 20 and 30).
  in.min_stake_other = 20;
  const econ::BiBounds bounds =
      econ::compute_bi_bounds(split, in, CostModel{});
  ASSERT_TRUE(bounds.feasible);

  {
    const AlgorandGame game(
        galplus_config(bounds.required() * 1.01, split, y));
    const TheoremReport report = verify_theorem3(game);
    EXPECT_TRUE(report.holds) << report.detail;
  }
  {
    const AlgorandGame game(
        galplus_config(bounds.required() * 0.5, split, y));
    const TheoremReport report = verify_theorem3(game);
    EXPECT_FALSE(report.holds);
    ASSERT_TRUE(report.witness.has_value());
  }
}

TEST(Equilibrium, Theorem3NonSyncOthersCannotGainByCooperating) {
  const RoleSnapshot snap = snapshot();
  const auto y = sync_set_for(snap, {5, 7});
  const econ::RewardSplit split(0.2, 0.3);
  econ::BoundInputs in = econ::BoundInputs::from_snapshot(snap);
  in.min_stake_other = 20;
  const double bi =
      econ::compute_bi_bounds(split, in, CostModel{}).required() * 1.01;
  const AlgorandGame game(galplus_config(bi, split, y));
  const Profile p = theorem3_profile(game);
  const DeviationScanner scanner(game, p);
  // Node 6 (non-Y other, defecting in the profile): cooperating only adds
  // cost — the block exists either way.
  EXPECT_LT(scanner.deviation_payoff(6, Strategy::Cooperate),
            scanner.base_payoff(6));
}

TEST(Equilibrium, AllDefectRemainsNashInGalPlus) {
  const auto y = sync_set_for(snapshot(), {5});
  const AlgorandGame game(
      galplus_config(50e6, econ::RewardSplit(0.2, 0.3), y));
  EXPECT_TRUE(is_nash(game, all_defect(game.player_count())));
}

TEST(Equilibrium, FindDeviationRespectsTolerance) {
  const AlgorandGame game(gal_config(20));
  const Profile p = all_defect(game.player_count());
  // With an astronomically large tolerance nothing is profitable.
  EXPECT_FALSE(find_profitable_deviation(game, p, 1e12).has_value());
}

TEST(Equilibrium, Theorem2RequiresStakeProportional) {
  const auto y = sync_set_for(snapshot(), {});
  const AlgorandGame game(
      galplus_config(10e6, econ::RewardSplit(0.2, 0.3), y));
  EXPECT_THROW(verify_theorem2(game), std::invalid_argument);
}

TEST(Equilibrium, Theorem3RequiresRoleBased) {
  const AlgorandGame game(gal_config(10));
  EXPECT_THROW(verify_theorem3(game), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::game
