#include "consensus/proposal.hpp"

#include <gtest/gtest.h>

#include "consensus/roles.hpp"

namespace roleshare::consensus {
namespace {

struct ProposerSetup {
  crypto::Hash256 seed = crypto::HashBuilder("pseed").add_u64(3).build();
  crypto::SortitionParams params{2'000, 10'000};
  std::uint64_t round = 4;

  crypto::VrfInput input() const {
    return crypto::VrfInput{round, kProposerStep, seed};
  }

  /// Finds a node id whose sortition wins for this round.
  std::pair<crypto::KeyPair, crypto::SortitionResult> winning_proposer(
      std::uint64_t start_id) const {
    std::uint64_t id = start_id;
    while (true) {
      const crypto::KeyPair key = crypto::KeyPair::derive(4242, id++);
      const auto res = crypto::sortition(key, input(), 100, params);
      if (res.selected()) return {key, res};
    }
  }

  ledger::Block block_for(const crypto::PublicKey& proposer) const {
    return ledger::Block::make(round, crypto::Hash256::zero(),
                               crypto::Hash256::zero(), proposer, {});
  }
};

TEST(Proposal, MakeCarriesPriority) {
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  const BlockProposal p =
      make_proposal(7, key.public_key(), s.block_for(key.public_key()), res);
  EXPECT_EQ(p.proposer, 7u);
  EXPECT_EQ(p.priority, res.priority());
  EXPECT_GT(p.priority, 0u);
}

TEST(Proposal, MakeRejectsUnselectedProposer) {
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  crypto::SortitionResult unselected = res;
  unselected.sub_users = 0;
  EXPECT_THROW(make_proposal(7, key.public_key(),
                             s.block_for(key.public_key()), unselected),
               std::invalid_argument);
}

TEST(Proposal, VerifyAcceptsHonestProposal) {
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  const BlockProposal p =
      make_proposal(1, key.public_key(), s.block_for(key.public_key()), res);
  EXPECT_TRUE(verify_proposal(p, s.input(), 100, s.params));
}

TEST(Proposal, VerifyRejectsWrongStake) {
  // Claiming a different stake changes the recomputed sub-user count.
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  const BlockProposal p =
      make_proposal(1, key.public_key(), s.block_for(key.public_key()), res);
  EXPECT_FALSE(verify_proposal(p, s.input(), 10'000, s.params));
}

TEST(Proposal, VerifyRejectsInflatedPriority) {
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  BlockProposal p =
      make_proposal(1, key.public_key(), s.block_for(key.public_key()), res);
  p.priority += 1;
  EXPECT_FALSE(verify_proposal(p, s.input(), 100, s.params));
}

TEST(Proposal, VerifyRejectsStolenProof) {
  const ProposerSetup s;
  const auto [key, res] = s.winning_proposer(0);
  const auto [thief, thief_res] = s.winning_proposer(1000);
  BlockProposal p = make_proposal(1, thief.public_key(),
                                  s.block_for(thief.public_key()), thief_res);
  p.sortition = res;  // splice someone else's proof
  p.priority = res.priority();
  EXPECT_FALSE(verify_proposal(p, s.input(), 100, s.params));
}

TEST(Proposal, SelectBestPicksHighestPriority) {
  const ProposerSetup s;
  std::vector<BlockProposal> proposals;
  std::uint64_t id = 0;
  for (int i = 0; i < 4; ++i) {
    const auto [key, res] = s.winning_proposer(id);
    id += 500;
    proposals.push_back(make_proposal(static_cast<ledger::NodeId>(i),
                                      key.public_key(),
                                      s.block_for(key.public_key()), res));
  }
  const auto best = select_best_proposal(proposals);
  ASSERT_TRUE(best.has_value());
  for (const BlockProposal& p : proposals)
    EXPECT_GE(best->priority, p.priority);
}

TEST(Proposal, SelectBestEmptyInput) {
  EXPECT_FALSE(select_best_proposal({}).has_value());
}

TEST(Proposal, SelectBestDeterministicTieBreak) {
  // Two copies of the same priority must resolve identically regardless of
  // order — ties break toward the lower block hash.
  const ProposerSetup s;
  const auto [k1, r1] = s.winning_proposer(0);
  const auto [k2, r2] = s.winning_proposer(300);
  auto p1 = make_proposal(0, k1.public_key(), s.block_for(k1.public_key()),
                          r1);
  auto p2 = make_proposal(1, k2.public_key(), s.block_for(k2.public_key()),
                          r2);
  p1.priority = p2.priority = 42;  // force the tie
  const std::vector<BlockProposal> ab = {p1, p2};
  const std::vector<BlockProposal> ba = {p2, p1};
  const auto best_ab = select_best_proposal(ab);
  const auto best_ba = select_best_proposal(ba);
  ASSERT_TRUE(best_ab.has_value());
  ASSERT_TRUE(best_ba.has_value());
  EXPECT_EQ(best_ab->block_hash(), best_ba->block_hash());
}

}  // namespace
}  // namespace roleshare::consensus
