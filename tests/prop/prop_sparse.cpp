// Property suite: sparse-vs-dense equivalence of the Sampled round path
// (DESIGN.md §10) under random configurations, reward policies and churn.
//
// Two contracts, both exact (== on doubles, byte-equal chains):
//   - A caller-maintained SparseRoundContext fed only O(log N) deltas
//     (reward credits, liveness toggles) makes run_round_sparse_into +
//     expand_sparse_into bit-identical to the dense run_round_into
//     evaluation, which rebuilds its context from the ledger each round.
//   - util::StakeIndex updated incrementally through a random delta
//     sequence is indistinguishable from a fresh rebuild over the final
//     stakes: totals, prefix sums, ownership lookups and the draws it
//     yields for identical rng states.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "consensus/params.hpp"
#include "econ/bi_bounds.hpp"
#include "econ/foundation_schedule.hpp"
#include "econ/sparse_payout.hpp"
#include "gen/domain_gen.hpp"
#include "ledger/types.hpp"
#include "sim/network.hpp"
#include "sim/round_engine.hpp"
#include "sim/round_workspace.hpp"
#include "sim/sampled_round.hpp"
#include "util/proptest.hpp"
#include "util/rng.hpp"
#include "util/stake_index.hpp"

namespace {

using roleshare::sim::Network;
using roleshare::sim::NetworkConfig;
using roleshare::sim::RoundEngine;
using roleshare::sim::RoundResult;
using roleshare::sim::RoundWorkspace;
using roleshare::sim::SparseNodeRole;
using roleshare::sim::SparseRoundContext;
using roleshare::sim::SparseRoundResult;
using roleshare::sim::SparseRoundWorkspace;
using roleshare::util::Rng;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

roleshare::consensus::ConsensusParams sampled_params(const Network& net) {
  auto params = roleshare::consensus::ConsensusParams::scaled_for(
      net.accounts().total_stake());
  params.committee_model = roleshare::consensus::CommitteeModel::Sampled;
  return params;
}

// Credits the round's fixed-split payouts into `net` from the sparse
// touched list; refreshes `ctx` when given one (the sparse side).
void compound_rewards(Network& net, const SparseRoundResult& sparse,
                      const roleshare::econ::RewardSplit& split,
                      SparseRoundContext* ctx) {
  std::vector<roleshare::consensus::Role> roles;
  std::vector<std::int64_t> stakes;
  std::vector<roleshare::ledger::MicroAlgos> amounts(sparse.touched.size());
  for (const SparseNodeRole& t : sparse.touched) {
    roles.push_back(t.role_observed);
    stakes.push_back(t.reward_stake);
  }
  const auto budget = roleshare::econ::FoundationSchedule::reward_for_round(
      std::max<roleshare::ledger::Round>(sparse.round, 1));
  (void)roleshare::econ::distribute_touched(split, budget, roles, stakes,
                                            sparse.online_stake, amounts);
  for (std::size_t i = 0; i < sparse.touched.size(); ++i) {
    if (amounts[i] == 0) continue;
    net.accounts().credit(sparse.touched[i].node, amounts[i]);
    if (ctx != nullptr) ctx->refresh_node(net, sparse.touched[i].node);
  }
}

Verdict expect_eq_results(const RoundResult& dense, const RoundResult& exp,
                          const std::string& label) {
  const auto fail = [&](const std::string& what) {
    return Verdict{false, label + ": " + what};
  };
  if (dense.round != exp.round) return fail("round differs");
  if (dense.outcomes != exp.outcomes) return fail("outcomes differ");
  if (dense.live_count != exp.live_count) return fail("live_count differs");
  if (dense.final_fraction != exp.final_fraction ||
      dense.tentative_fraction != exp.tentative_fraction ||
      dense.none_fraction != exp.none_fraction)
    return fail("fractions differ");
  if (dense.non_empty_block != exp.non_empty_block)
    return fail("non_empty_block differs");
  if (dense.proposals != exp.proposals) return fail("proposals differ");
  if (dense.synchrony != exp.synchrony) return fail("synchrony differs");
  if (!dense.roles || !exp.roles || !dense.roles_true || !exp.roles_true)
    return fail("role snapshot missing");
  if (dense.roles->roles() != exp.roles->roles() ||
      dense.roles->stakes() != exp.roles->stakes())
    return fail("observed snapshot differs");
  if (dense.roles_true->roles() != exp.roles_true->roles() ||
      dense.roles_true->stakes() != exp.roles_true->stakes())
    return fail("true snapshot differs");
  return Verdict{};
}

}  // namespace

// Random configuration x random split x random churn: the incrementally
// maintained sparse context must replay the dense evaluation exactly,
// round after compounding round.
PROP_TEST_WITH_PARAMS(PropSparse, SparseMatchesDenseUnderChurnAndRewards, 6) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::network_config(24, 56),
                     pgen::real_range(0.10, 0.40),
                     pgen::real_range(0.10, 0.40)),
      [](const std::tuple<NetworkConfig, double, double>& t) {
        const auto& [config, alpha, beta] = t;
        const roleshare::econ::RewardSplit split(alpha, beta);

        Network dense_net(config);
        Network sparse_net(config);
        RoundEngine dense(dense_net, sampled_params(dense_net));
        RoundEngine sparse(sparse_net, sampled_params(sparse_net));

        SparseRoundContext ctx;
        ctx.init_from(sparse_net);
        SparseRoundWorkspace sparse_ws;
        SparseRoundResult sparse_result;
        RoundResult dense_result, expanded;
        RoundWorkspace dense_ws, expand_ws;

        Rng churn(Rng(config.seed).derive_seed(0xC0FFEE));
        std::size_t offline = 0;
        for (int r = 1; r <= 4; ++r) {
          dense.run_round_into(dense_result, dense_ws);
          sparse.run_round_sparse_into(sparse_result, ctx, sparse_ws);
          expand_sparse_into(sparse_net, sparse_result, expanded, expand_ws);

          const std::string label =
              "round " + std::to_string(r) + " (seed " +
              std::to_string(config.seed) + ")";
          Verdict v = expect_eq_results(dense_result, expanded, label);
          if (!v.ok) return v;
          if (!(dense_net.chain().tip().hash() ==
                sparse_net.chain().tip().hash()))
            return Verdict{false, label + ": chains diverged"};

          // Identical compounding on both economies; only the sparse
          // context sees incremental refreshes.
          compound_rewards(sparse_net, sparse_result, split, &ctx);
          compound_rewards(dense_net, sparse_result, split, nullptr);

          // Random churn, applied identically to both networks. Cap the
          // offline fraction so the live stake never collapses to zero.
          for (int k = 0; k < 3; ++k) {
            const auto node = static_cast<roleshare::ledger::NodeId>(
                churn.uniform_int(
                    0,
                    static_cast<std::int64_t>(config.node_count) - 1));
            bool live = churn.bernoulli(0.75);
            if (!live && offline * 4 >= config.node_count) live = true;
            const bool was_live = dense_net.live(node);
            if (was_live && !live) ++offline;
            if (!was_live && live) --offline;
            dense_net.set_live(node, live);
            sparse_net.set_live(node, live);
            ctx.refresh_node(sparse_net, node);
          }
        }
        return Verdict{};
      },
      [](const std::tuple<NetworkConfig, double, double>& t) {
        const auto& [config, alpha, beta] = t;
        return "nodes=" + std::to_string(config.node_count) +
               " seed=" + std::to_string(config.seed) +
               " defect=" + std::to_string(config.defection_rate) +
               " faulty=" + std::to_string(config.faulty_rate) +
               " alpha=" + std::to_string(alpha) +
               " beta=" + std::to_string(beta);
      });
}

// Random stake vectors + random delta sequences: incremental Fenwick
// updates leave the index indistinguishable from a fresh rebuild.
PROP_TEST_WITH_PARAMS(PropSparse, StakeIndexIncrementalEqualsRebuild, 30) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::stake_vector(1, 300),
                     pgen::int_range(1, 500), pgen::int_range(0, 1 << 30)),
      [](const std::tuple<std::vector<std::int64_t>, std::int64_t,
                          std::int64_t>& t) {
        const auto& [initial, deltas, seed] = t;
        std::vector<std::int64_t> stakes = initial;
        roleshare::util::StakeIndex incremental(stakes);
        Rng rng(static_cast<std::uint64_t>(seed));
        for (std::int64_t d = 0; d < deltas; ++d) {
          const auto v = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(stakes.size()) - 1));
          stakes[v] = rng.uniform_int(0, 200);
          incremental.update(v, stakes[v]);
        }
        const roleshare::util::StakeIndex fresh(stakes);
        if (incremental.total() != fresh.total())
          return Verdict{false, "totals differ"};
        for (std::size_t v = 0; v <= stakes.size(); ++v)
          if (incremental.prefix_sum(v) != fresh.prefix_sum(v))
            return Verdict{false,
                           "prefix_sum differs at " + std::to_string(v)};
        for (std::int64_t target = 0; target < fresh.total(); target += 7)
          if (incremental.find(target) != fresh.find(target))
            return Verdict{false, "find differs at " + std::to_string(target)};
        if (fresh.total() > 0) {
          Rng a(11), b(11);
          for (int d = 0; d < 64; ++d)
            if (incremental.sample(a) != fresh.sample(b))
              return Verdict{false, "samples diverged at draw " +
                                        std::to_string(d)};
        }
        return Verdict{};
      },
      [](const std::tuple<std::vector<std::int64_t>, std::int64_t,
                          std::int64_t>& t) {
        return "n=" + std::to_string(std::get<0>(t).size()) +
               " deltas=" + std::to_string(std::get<1>(t)) +
               " seed=" + std::to_string(std::get<2>(t));
      });
}
