#include "util/alias_sampler.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::util {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  RS_REQUIRE(!weights.empty(), "alias sampler needs weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  bool all_equal = true;
  for (const double w : weights) {
    RS_REQUIRE(std::isfinite(w), "non-finite weight");
    RS_REQUIRE(w >= 0.0, "negative weight");
    total += w;
    all_equal = all_equal && w == weights.front();
  }
  RS_REQUIRE(total > 0.0, "weights sum to zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // All-equal weights (single entries included): the scaled probabilities
  // are 1 by definition, but the floating-point total can land an epsilon
  // off n * w, leaving stray sub-1 buckets whose alias partner then steals
  // a ~1e-16 sliver of probability. Pin the exact uniform table instead.
  if (all_equal) {
    prob_.assign(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
      alias_[i] = static_cast<std::uint32_t>(i);
    return;
  }

  // Scaled probabilities; split into under/over-full buckets.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numeric leftovers
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t n = prob_.size();
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

}  // namespace roleshare::util
