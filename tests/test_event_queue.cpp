#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace roleshare::net {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(10, [&] {});
  q.run_all();  // clock now at 10
  q.schedule_in(5, [&] { fired_at = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) q.schedule_in(1, chain);
  };
  q.schedule_at(0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 2u);
  q.run_all();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesIdleClock) {
  EventQueue q;
  q.run_until(100);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(1, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_until(3);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

}  // namespace
}  // namespace roleshare::net
