// Framed binary serialization primitives (DESIGN.md §9) — the byte-level
// layer under the binary shard-partial codec (sim/partial_codec.hpp) and
// the content-addressed result store (sim/result_store.hpp).
//
// A frame is a magic + format-version header followed by named,
// length-prefixed, individually checksummed sections:
//
//   frame    := magic(u32) version(u16) section*
//   section  := name_len(u16) name(bytes) payload_len(u64)
//               payload(bytes) checksum(u64)     -- FNV-1a 64 of payload
//
// All scalars are little-endian; doubles travel as their IEEE-754
// binary64 bit pattern (u64), so every finite and non-finite value
// round-trips bit for bit. Inside a section the Writer/Reader pair
// provides typed scalar, string and f64-column accessors; the column
// form (count + raw values) is what makes the partial codec columnar —
// a 10k-sample array is 8 bytes per sample instead of ~20 bytes of
// decimal text.
//
// The discipline is NAR-shaped (NixOS/nix libutil serialise.hh): the
// reader never trusts a length it has not bounds-checked, every
// structural violation throws framed::Error naming the section, the
// offset and what was expected there, and a frame is only accepted when
// it is consumed EXACTLY — truncation at any byte and trailing bytes
// after the last section are both hard errors, never silent tolerance.
// Checksums make single-byte corruption anywhere in a payload a named
// error too (the result store treats that as a cache miss).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace roleshare::util::framed {

/// FNV-1a 64-bit over a byte string — the section checksum, and the
/// digest the spec-hash / store-key derivations share (sim/partial.cpp).
std::uint64_t fnv1a_64(std::string_view bytes);

/// Every malformed-frame condition throws this, with a message naming
/// the frame's origin (when the caller provided one), the section and
/// the violated expectation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds a frame in memory. Sections must be properly bracketed:
/// begin_section / typed puts / end_section, then finish() once.
class Writer {
 public:
  Writer(std::uint32_t magic, std::uint16_t version);

  void begin_section(std::string_view name);
  void end_section();

  /// Typed appends, current section only.
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  /// u32 length prefix + raw bytes.
  void put_string(std::string_view s);
  /// u64 count prefix + raw binary64 values — the columnar primitive.
  void put_f64_column(const std::vector<double>& column);
  /// Raw bytes, no prefix (the caller's own framing).
  void put_bytes(std::string_view bytes);

  /// Seals the frame and returns the bytes. The Writer is spent.
  std::string finish();

 private:
  std::string out_;
  std::size_t section_payload_start_ = 0;  // offset of current payload
  bool in_section_ = false;
  bool finished_ = false;
};

/// Consumes a frame. The header is validated on construction; sections
/// are pulled in file order with begin_section (which verifies the name,
/// the length bound and the checksum before any payload accessor runs).
/// finish() must be called after the last section — it is the
/// trailing-byte rejection.
class Reader {
 public:
  /// `origin` names the frame in every error (a file path, "store entry
  /// …"); pass what the operator should see.
  Reader(std::string_view data, std::uint32_t magic,
         std::uint16_t expected_version, std::string origin);

  std::uint16_t version() const { return version_; }

  /// Opens the next section, which must be named `expected_name`.
  void begin_section(std::string_view expected_name);
  /// The next section's name WITHOUT opening it — the dispatch primitive
  /// for frames whose section name encodes a message type (the orch wire
  /// protocol). Validates only the name header; the payload is still
  /// checked by the begin_section that follows. Errors like truncation
  /// mid-name throw exactly as begin_section would.
  std::string peek_section_name() const;
  /// True iff at least one more section header starts here.
  bool has_section() const;
  /// Closes the current section; unread payload bytes are an error.
  void end_section();
  /// After the last section: any remaining byte is an error.
  void finish() const;

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  std::string get_string();
  std::vector<double> get_f64_column();
  /// Raw bytes of known length.
  std::string get_bytes(std::size_t n);

 private:
  [[noreturn]] void fail(const std::string& what) const;
  std::string_view take(std::size_t n, const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  std::string section_name_;
  bool in_section_ = false;
  std::uint16_t version_ = 0;
  std::string origin_;
};

/// Cheap sniff: does `data` begin with this frame magic? (Format
/// auto-detection; a positive answer still needs a full Reader pass.)
bool starts_with_magic(std::string_view data, std::uint32_t magic);

/// Builds a u32 magic from four ASCII bytes, first byte lowest —
/// magic4('R','S','B','P') writes "RSBP" on disk.
constexpr std::uint32_t magic4(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

}  // namespace roleshare::util::framed
