// Strategy set of the Algorand game G_Al (§IV): Cooperate, Defect, Offline.
// Lemma 1 shows Offline is strictly dominated by Defect; it is kept in the
// model so the lemma itself is checkable.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace roleshare::game {

enum class Strategy : std::uint8_t { Cooperate, Defect, Offline };

constexpr std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::Cooperate:
      return "C";
    case Strategy::Defect:
      return "D";
    case Strategy::Offline:
      return "O";
  }
  return "?";
}

using Profile = std::vector<Strategy>;

/// All-C / All-D profiles for n players.
Profile all_cooperate(std::size_t n);
Profile all_defect(std::size_t n);

}  // namespace roleshare::game
