#include "sim/reward_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "econ/foundation_schedule.hpp"
#include "sim/experiment_runner.hpp"
#include "util/alias_sampler.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

StakeSpec StakeSpec::uniform(std::int64_t lo, std::int64_t hi) {
  StakeSpec s;
  s.kind = Kind::Uniform;
  s.a = static_cast<double>(lo);
  s.b = static_cast<double>(hi);
  return s;
}

StakeSpec StakeSpec::normal(double mean, double sigma) {
  StakeSpec s;
  s.kind = Kind::Normal;
  s.a = mean;
  s.b = sigma;
  return s;
}

std::string StakeSpec::name() const { return make()->name(); }

std::unique_ptr<util::StakeDistribution> StakeSpec::make() const {
  if (kind == Kind::Uniform) {
    return util::make_uniform_stake(static_cast<std::int64_t>(a),
                                    static_cast<std::int64_t>(b));
  }
  return util::make_normal_stake(a, b);
}

namespace {

/// Draws a role's member set by sub-user sampling: `tau` stake-weighted
/// draws; distinct drawn nodes form the set. Returns the minimum stake
/// among members (0 if none).
std::int64_t sample_role_min_stake(
    const util::AliasSampler& sampler, const std::vector<std::int64_t>& stakes,
    std::uint64_t tau, util::Rng& rng,
    std::unordered_set<std::size_t>& members_out) {
  std::int64_t min_stake = 0;
  for (std::uint64_t d = 0; d < tau; ++d) {
    const std::size_t v = sampler.sample(rng);
    members_out.insert(v);
    if (min_stake == 0 || stakes[v] < min_stake) min_stake = stakes[v];
  }
  return min_stake;
}

/// One run's contribution: every per-round optimizer outcome, in round
/// order, so the reduction can replay them exactly as a serial loop would.
struct RewardRun {
  std::vector<double> bi_algos;      // feasible rounds only, round order
  std::vector<double> per_round_bi;  // length rounds_per_run, 0 = infeasible
  std::vector<double> alphas;        // feasible rounds only
  std::vector<double> betas;
  double total_stake = 0.0;
  std::size_t infeasible = 0;
};

RewardRun execute_run(const RewardExperimentConfig& config,
                      const econ::RewardOptimizer& optimizer,
                      const util::StakeDistribution& dist, util::Rng& rng,
                      const util::InnerExecutor& exec) {
  RewardRun run;
  run.per_round_bi.assign(config.rounds_per_run, 0.0);

  std::vector<std::int64_t> stakes = dist.sample_many(rng, config.node_count);
  std::int64_t total_stake = 0;
  for (const std::int64_t s : stakes) total_stake += s;

  for (std::size_t round = 0; round < config.rounds_per_run; ++round) {
    // Committee sampling (sub-user draws, alias table rebuilt per round
    // because the churn below shifts weights).
    std::vector<double> weights(stakes.begin(), stakes.end());
    const util::AliasSampler sampler(weights);

    std::unordered_set<std::size_t> leaders, committee;
    const std::int64_t min_leader = sample_role_min_stake(
        sampler, stakes, config.leader_stake, rng, leaders);
    const std::int64_t min_committee = sample_role_min_stake(
        sampler, stakes, config.committee_stake, rng, committee);

    // Others: everyone else. s*_k is the min stake among others at or
    // above the Fig-7(c) threshold; S_K excludes filtered nodes. The
    // O(node_count) scan fans out in chunks; the partials (integer sum and
    // min) merge exactly, so the result is identical for every executor.
    const std::int64_t threshold = config.min_other_stake.value_or(0);
    const std::size_t chunks = util::InnerExecutor::chunk_count(stakes.size());
    std::vector<std::int64_t> chunk_min(chunks, 0);
    std::vector<std::int64_t> chunk_sum(chunks, 0);
    exec.for_each_chunk(
        stakes.size(), [&](std::size_t c, std::size_t begin, std::size_t end) {
          for (std::size_t v = begin; v < end; ++v) {
            if (leaders.contains(v) || committee.contains(v)) continue;
            if (stakes[v] < threshold) continue;
            chunk_sum[c] += stakes[v];
            if (chunk_min[c] == 0 || stakes[v] < chunk_min[c])
              chunk_min[c] = stakes[v];
          }
        });
    std::int64_t min_other = 0;
    std::int64_t others_stake = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      others_stake += chunk_sum[c];
      if (chunk_min[c] != 0 && (min_other == 0 || chunk_min[c] < min_other))
        min_other = chunk_min[c];
    }

    econ::BoundInputs inputs;
    inputs.stake_leaders = static_cast<double>(config.leader_stake);
    inputs.stake_committee = static_cast<double>(config.committee_stake);
    inputs.stake_others = static_cast<double>(others_stake);
    inputs.min_stake_leader =
        static_cast<double>(std::max<std::int64_t>(1, min_leader));
    inputs.min_stake_committee =
        static_cast<double>(std::max<std::int64_t>(1, min_committee));
    inputs.min_stake_other =
        static_cast<double>(std::max<std::int64_t>(1, min_other));

    const econ::OptimizerResult opt = optimizer.optimize(inputs, config.costs);
    if (!opt.feasible) {
      ++run.infeasible;
    } else {
      const double bi_algos = opt.min_bi / 1e6;  // µAlgos -> Algos
      run.bi_algos.push_back(bi_algos);
      run.per_round_bi[round] = bi_algos;
      run.alphas.push_back(opt.split.alpha);
      run.betas.push_back(opt.split.beta);
    }

    // Transaction churn: stake-weighted parties exchange a few Algos.
    for (std::size_t t = 0; t < config.tx_parties; ++t) {
      const std::size_t v = sampler.sample(rng);
      const std::int64_t delta = rng.uniform_int(config.tx_lo, config.tx_hi);
      const std::int64_t updated =
          std::max<std::int64_t>(1, stakes[v] + delta);
      total_stake += updated - stakes[v];
      stakes[v] = updated;
    }
  }
  run.total_stake = static_cast<double>(total_stake);
  return run;
}

}  // namespace

RewardPayload::RewardPayload(std::size_t rounds, AggBackend backend,
                             const StreamingAggConfig& streaming)
    : per_round_(make_accumulator(backend, rounds, streaming)),
      bi_(backend),
      alpha_(backend),
      beta_(backend),
      stake_(backend) {}

RewardPayload::RewardPayload(std::unique_ptr<RoundAccumulator> per_round,
                             ScalarBank bi, ScalarBank alpha, ScalarBank beta,
                             ScalarBank stake, std::size_t infeasible)
    : per_round_(std::move(per_round)),
      bi_(std::move(bi)),
      alpha_(std::move(alpha)),
      beta_(std::move(beta)),
      stake_(std::move(stake)),
      infeasible_(infeasible) {}

void RewardPayload::record_feasible(double bi_algos, double alpha,
                                    double beta) {
  bi_.record(bi_algos);
  alpha_.record(alpha);
  beta_.record(beta);
}

void RewardPayload::record_round_bi(std::size_t round_index,
                                    double bi_algos) {
  per_round_->record(round_index, bi_algos);
}

void RewardPayload::record_run(double total_stake,
                               std::size_t infeasible_rounds) {
  stake_.record(total_stake);
  infeasible_ += infeasible_rounds;
}

void RewardPayload::merge(const RewardPayload& next) {
  per_round_->merge(*next.per_round_);
  bi_.merge(next.bi_);
  alpha_.merge(next.alpha_);
  beta_.merge(next.beta_);
  stake_.merge(next.stake_);
  infeasible_ += next.infeasible_;
}

RewardExperimentResult RewardPayload::finalize(
    const PartialEnvelope& envelope) const {
  RewardExperimentResult result;
  result.foundation_per_round.assign(envelope.rounds, 0.0);
  for (std::size_t r = 0; r < envelope.rounds; ++r) {
    result.foundation_per_round[r] = ledger::to_algos(
        econ::FoundationSchedule::reward_for_round(r + 1));
  }
  if (envelope.backend == AggBackend::Exact) result.bi_algos = bi_.samples();
  result.bi_per_round_mean = per_round_->mean_series();
  result.mean_bi = bi_.count() > 0 ? bi_.mean() : 0.0;
  result.mean_total_stake = stake_.count() > 0 ? stake_.mean() : 0.0;
  result.mean_alpha = alpha_.count() > 0 ? alpha_.mean() : 0.0;
  result.mean_beta = beta_.count() > 0 ? beta_.mean() : 0.0;
  result.infeasible_rounds = infeasible_;
  result.accumulator_bytes = accumulator_bytes();
  return result;
}

std::size_t RewardPayload::accumulator_bytes() const {
  return per_round_->memory_bytes() + bi_.memory_bytes() +
         alpha_.memory_bytes() + beta_.memory_bytes() +
         stake_.memory_bytes();
}

util::json::Value RewardPayload::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("per_round", per_round_->to_json());
  v.set("bi", bi_.to_json());
  v.set("alpha", alpha_.to_json());
  v.set("beta", beta_.to_json());
  v.set("stake", stake_.to_json());
  v.set("infeasible", infeasible_);
  return v;
}

RewardPayload RewardPayload::from_json(const util::json::Value& value,
                                       const PartialEnvelope& envelope) {
  RewardPayload p(accumulator_from_json(value.at("per_round")),
                  ScalarBank::from_json(value.at("bi")),
                  ScalarBank::from_json(value.at("alpha")),
                  ScalarBank::from_json(value.at("beta")),
                  ScalarBank::from_json(value.at("stake")),
                  value.at("infeasible").as_size());
  RS_REQUIRE(p.per_round_->backend() == envelope.backend,
             "partial JSON accumulator backend disagrees with the envelope");
  RS_REQUIRE(p.per_round_->rounds() == envelope.rounds,
             "partial JSON accumulator round count disagrees with the "
             "envelope");
  for (const ScalarBank* bank : {&p.bi_, &p.alpha_, &p.beta_, &p.stake_}) {
    RS_REQUIRE(bank->backend() == envelope.backend,
               "partial JSON scalar-bank backend disagrees with the "
               "envelope");
  }
  return p;
}

util::json::Value reward_spec_echo(const RewardExperimentConfig& config) {
  using util::json::Value;
  Value v = Value::object();
  v.set("experiment", std::string(RewardPayload::kKind));
  v.set("node_count", config.node_count);
  v.set("seed", config.seed);
  v.set("stakes_kind",
        config.stakes.kind == StakeSpec::Kind::Uniform ? "uniform" : "normal");
  v.set("stakes_a", config.stakes.a);
  v.set("stakes_b", config.stakes.b);
  v.set("runs", config.runs);
  v.set("rounds_per_run", config.rounds_per_run);
  v.set("leader_cost", config.costs.leader_cost());
  v.set("committee_cost", config.costs.committee_cost());
  v.set("other_cost", config.costs.other_cost());
  v.set("defection_cost", config.costs.defection_cost());
  v.set("optimizer_margin", config.optimizer.margin);
  v.set("optimizer_min_share", config.optimizer.min_share);
  v.set("leader_stake", config.leader_stake);
  v.set("committee_stake", config.committee_stake);
  v.set("tx_parties", config.tx_parties);
  v.set("tx_lo", config.tx_lo);
  v.set("tx_hi", config.tx_hi);
  v.set("min_other_stake", config.min_other_stake
                               ? Value(*config.min_other_stake)
                               : Value());
  v.set("agg", to_string(config.agg));
  v.set("reservoir_capacity", config.streaming.reservoir_capacity);
  Value grid = Value::array();
  for (const double q : config.streaming.p2_grid) grid.push_back(q);
  v.set("p2_grid", std::move(grid));
  return v;
}

RewardPartial run_reward_partial(const RewardExperimentConfig& config) {
  RS_REQUIRE(config.node_count > 2, "population too small");

  const econ::RewardOptimizer optimizer(config.optimizer);
  const auto dist = config.stakes.make();

  const ExperimentSpec spec{config.runs,    config.rounds_per_run,
                            config.seed,    config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const ResolvedShard shard = resolve_shard(spec);
  RewardPartial partial(
      make_envelope(RewardPayload::kKind,
                    spec_hash_hex(reward_spec_echo(config)), config.agg,
                    config.runs, config.rounds_per_run, shard.begin,
                    shard.end),
      RewardPayload(config.rounds_per_run, config.agg, config.streaming));

  run_and_reduce(
      spec,
      [&](std::size_t, util::Rng& rng, const RunContext& ctx) {
        return execute_run(config, optimizer, *dist, rng,
                           util::InnerExecutor(ctx.inner_pool));
      },
      [&](std::size_t, RewardRun run) {
        // Replayed in run order, feeding every bank in exactly the sample
        // order a serial loop would produce.
        RewardPayload& payload = partial.payload();
        for (std::size_t i = 0; i < run.bi_algos.size(); ++i)
          payload.record_feasible(run.bi_algos[i], run.alphas[i],
                                  run.betas[i]);
        for (std::size_t r = 0; r < config.rounds_per_run; ++r)
          payload.record_round_bi(r, run.per_round_bi[r]);
        payload.record_run(run.total_stake, run.infeasible);
      });
  return partial;
}

RewardExperimentResult run_reward_experiment(
    const RewardExperimentConfig& config) {
  return run_reward_partial(config).finalize();
}

}  // namespace roleshare::sim
