// Fixed-size worker pool used by the experiment runner to spread
// independent simulation runs across cores.
//
// The pool is deliberately minimal: tasks are plain std::function<void()>,
// there is no work stealing, and `parallel_for_indexed` is the only
// batching primitive — experiments need exactly "run body(i) for every i,
// wait for all, surface failures deterministically" and nothing more.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace roleshare::util {

class ThreadPool {
 public:
  /// Resolves a user-facing `threads=` knob: 0 means "all hardware
  /// threads" (never less than 1), any other value is taken as-is.
  static std::size_t resolve_thread_count(std::size_t requested);

  /// Starts `threads` workers (>= 1). A single-worker pool executes
  /// `parallel_for_indexed` inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not outlive the pool; the destructor
  /// drains the queue before joining the workers.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all indices have finished. Every index is
  /// attempted even when earlier ones throw; afterwards the exception of
  /// the *lowest* failing index is rethrown, so the surfaced error does
  /// not depend on scheduling order.
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stopping_ = false;
};

}  // namespace roleshare::util
