// Pending-transaction pool from which leaders assemble block proposals.
#pragma once

#include <deque>
#include <unordered_set>
#include <vector>

#include "ledger/transaction.hpp"

namespace roleshare::ledger {

class TxPool {
 public:
  /// Adds a transaction if its id is not already pending. Returns whether
  /// it was added.
  bool submit(Transaction txn);

  std::size_t size() const { return pending_.size(); }
  bool contains(const crypto::Hash256& id) const;

  /// Takes up to `max_count` oldest pending transactions for a proposal
  /// (they stay pending until marked included).
  std::vector<Transaction> peek(std::size_t max_count) const;

  /// Removes transactions included in an agreed block.
  void mark_included(const std::vector<Transaction>& txns);

  void clear();

 private:
  std::deque<Transaction> pending_;
  std::unordered_set<crypto::Hash256, crypto::Hash256Hasher> ids_;
};

}  // namespace roleshare::ledger
