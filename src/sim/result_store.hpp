// Content-addressed on-disk result store for finished shard partials
// (DESIGN.md §9) — the memoization layer that turns retries and
// incremental sweeps into cache hits.
//
// A finished partial document is a pure function of (experiment config,
// shard window, accumulator backend): the config is already digested
// into the FNV spec hash every envelope carries, so
//
//   key  = kind / bench / spec_hash / agg backend / [run_begin, run_end)
//
// addresses the result content the way a Nix store path addresses a
// build output. The store is a flat directory of entry files named by
// the FNV-1a 64 digest of the canonical key id; each entry is a framed
// file (util/framed_io, magic "RSRS") carrying the full key id — the
// digest-collision guard — and the payload bytes verbatim, both
// checksummed.
//
// Durability discipline (NixOS/nix libstore):
//   - insert() writes a unique temp file in the store directory and
//     renames it into place — publication is atomic, readers never see
//     a half-written entry, and two writers racing on one key both
//     succeed (last rename wins; both wrote identical content, because
//     the key addresses it).
//   - lookup() re-validates everything (magic, version, checksums, key
//     id); ANY violation is a miss, never an error — a corrupt cache
//     must cost a recompute, not a failed sweep. gc() deletes what
//     lookup would reject, and can evict oldest-first to a byte budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/aggregators.hpp"

namespace roleshare::sim {

/// The cache key of one finished shard window. `kind` is the experiment
/// family ("defection"/"reward"/"strategic"), `bench` the producing
/// driver (two benches of one family — fig6 vs fig7 — never share
/// entries even if their spec hashes collided), `spec_hash` the FNV
/// digest of the full config echo.
struct ResultKey {
  std::string kind;
  std::string bench;
  std::string spec_hash;
  AggBackend backend = AggBackend::Exact;
  std::size_t run_begin = 0;
  std::size_t run_end = 0;

  /// Canonical id, e.g. "defection/fig3_defection/91ab…/exact/[0,50)".
  /// The store file name is the FNV-1a 64 hex of this string; the id
  /// itself is stored inside the entry as the collision guard.
  std::string id() const;
  /// "<fnv16hex>.rsr" — the entry file name under the store root.
  std::string entry_name() const;
};

struct GcStats {
  std::size_t entries_kept = 0;
  std::size_t corrupt_removed = 0;
  std::size_t evicted = 0;
  std::uint64_t bytes_kept = 0;
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error when the path exists but is not a directory or
  /// cannot be created.
  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// The payload bytes published under `key`, byte-identical to what
  /// insert() received — or nullopt on a miss. Corrupt or mismatched
  /// entries (bad magic/version/checksum, foreign key id) are misses.
  std::optional<std::string> lookup(const ResultKey& key) const;

  bool contains(const ResultKey& key) const { return lookup(key).has_value(); }

  /// Validity + size of `key`'s entry without copying the payload out —
  /// the retry-memoization probe the orchestrator uses to report whether
  /// a re-issued window will be a cache hit. Same validation (and same
  /// corruption-is-a-miss discipline) as lookup().
  struct EntryStat {
    std::uint64_t payload_bytes = 0;  // bytes insert() received
    std::uint64_t entry_bytes = 0;    // on-disk framed entry size
  };
  std::optional<EntryStat> stat(const ResultKey& key) const;

  /// Publishes `payload` under `key` atomically (unique temp file +
  /// rename into place); returns the final entry path. Concurrent
  /// inserts on the same key all succeed. Throws std::runtime_error on
  /// I/O failure.
  std::string insert(const ResultKey& key, std::string_view payload);

  /// Where `key`'s entry lives (whether or not it exists yet).
  std::string entry_path(const ResultKey& key) const;

  /// Deletes every entry lookup() would reject, then — when
  /// `max_total_bytes` > 0 — evicts valid entries oldest-first until the
  /// store fits the budget.
  GcStats gc(std::uint64_t max_total_bytes = 0);

 private:
  std::string root_;
};

}  // namespace roleshare::sim
