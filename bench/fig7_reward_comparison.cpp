// E6/E7 — Figure 7 (a, b, c):
//  (a) per-round reward distributed by our adaptive role-based mechanism
//      versus the Algorand Foundation schedule, per stake distribution;
//  (b) accumulated rewards over the horizon;
//  (c) accumulated rewards under the U_w(1,200) filters that exclude
//      Other-nodes with stakes below w in {3, 5, 7}.
//
// Expected shape: the Foundation pays a flat-then-rising 20+ Algos per
// round; our mechanism pays a (much smaller) stake-distribution-dependent
// amount and does not grow over the horizon; excluding small stakes cuts
// the required reward further (~1/w).
//
// Panel layout, seeds and config construction live in
// bench/bench_drivers.hpp (make_fig7_driver) — shared with the
// orchestrate coordinator/worker pair.
//
// Sharding / checkpointing (DESIGN.md §6): the six panels (three stake
// distributions + three U_w filters) execute through the checkpointed
// shard driver; --partial-out / --partial-in / --checkpoint-every /
// --series-out behave exactly as on fig3/fig6.
#include <cstdio>
#include <vector>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/reward_experiment.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const bench::Fig7Driver d = bench::make_fig7_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Figure 7", "our adaptive reward vs Foundation schedule");
  std::printf("nodes=%zu runs=%zu rounds/run=%zu threads=%zu "
              "inner-threads=%zu agg=%s (shard with --run-begin/--run-end "
              "+ --partial-out, resume with --checkpoint-every + "
              "--partial-in)\n",
              d.nodes, d.runs, d.rounds, d.threads, d.inner_threads,
              sim::to_string(d.agg));

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::RewardPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  std::vector<sim::RewardExperimentResult> results;
  for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel)
    results.push_back(exec.partials[panel].finalize());

  // (a) per-round rewards.
  std::printf("\n--- Fig 7(a): distributed reward per round (Algos) ---\n");
  std::printf("%6s %12s", "round", "Foundation");
  for (const auto& spec : bench::fig7::specs())
    std::printf(" %12s", spec.name().c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < d.rounds; ++r) {
    std::printf("%6zu %12.1f", r + 1, results[0].foundation_per_round[r]);
    for (std::size_t i = 0; i < 3; ++i)
      std::printf(" %12.2f", results[i].bi_per_round_mean[r]);
    std::printf("\n");
  }

  // (b) accumulated rewards.
  std::printf("\n--- Fig 7(b): accumulated rewards (Algos) ---\n");
  std::printf("%6s %12s", "round", "Foundation");
  for (const auto& spec : bench::fig7::specs())
    std::printf(" %12s", spec.name().c_str());
  std::printf("\n");
  double acc_foundation = 0;
  std::vector<double> acc(3, 0.0);
  for (std::size_t r = 0; r < d.rounds; ++r) {
    acc_foundation += results[0].foundation_per_round[r];
    std::printf("%6zu %12.1f", r + 1, acc_foundation);
    for (std::size_t i = 0; i < 3; ++i) {
      acc[i] += results[i].bi_per_round_mean[r];
      std::printf(" %12.2f", acc[i]);
    }
    std::printf("\n");
  }

  // (c) the U_w(1,200) small-stake filters.
  std::printf("\n--- Fig 7(c): accumulated reward with stakes < w excluded, "
              "U(1,200) ---\n");
  std::printf("%6s %12s %12s %12s %12s\n", "round", "U(1,200)", "U3", "U5",
              "U7");
  double acc_base = 0;
  std::vector<double> acc_f(3, 0.0);
  for (std::size_t r = 0; r < d.rounds; ++r) {
    acc_base += results[0].bi_per_round_mean[r];
    std::printf("%6zu %12.2f", r + 1, acc_base);
    for (std::size_t i = 0; i < 3; ++i) {
      acc_f[i] += results[3 + i].bi_per_round_mean[r];
      std::printf(" %12.2f", acc_f[i]);
    }
    std::printf("\n");
  }

  if (!series_out.empty()) {
    util::json::Value series_panels = util::json::Value::array();
    for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel) {
      util::json::Value v = d.panels.panel_meta(panel);
      v.set("series", bench::reward_series_json(results[panel]));
      series_panels.push_back(std::move(v));
    }
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  std::size_t accumulator_bytes = 0;
  for (const auto& result : results) accumulator_bytes += result.accumulator_bytes;
  bench::emit_json(
      "fig7_reward_comparison",
      {{"nodes", static_cast<double>(d.nodes)},
       {"runs", static_cast<double>(d.runs)},
       {"rounds", static_cast<double>(d.rounds)},
       {"threads", static_cast<double>(d.threads)},
       {"inner_threads", static_cast<double>(d.inner_threads)},
       {"agg", sim::to_string(d.agg)},
       {"accumulator_bytes", static_cast<double>(accumulator_bytes)},
       {"mean_bi_u1_200", results[0].mean_bi},
       {"mean_bi_n100_20", results[1].mean_bi},
       {"mean_bi_n100_10", results[2].mean_bi},
       {"mean_bi_u1_200_w7", results[5].mean_bi},
       {"wall_ms", timer.elapsed_ms()}});

  std::printf("\nShape check: ours << Foundation and flat across the\n"
              "horizon; U7 < U5 < U3 < U(1,200) (higher w, smaller B_i).\n");
  return 0;
}
