#include "ledger/transaction.hpp"

#include "util/require.hpp"

namespace roleshare::ledger {

namespace {

crypto::Hash256 content_hash(const crypto::PublicKey& from,
                             const crypto::PublicKey& to, MicroAlgos amount,
                             MicroAlgos fee, std::uint64_t nonce) {
  return crypto::HashBuilder("roleshare.txn")
      .add(from.value)
      .add(to.value)
      .add_i64(amount)
      .add_i64(fee)
      .add_u64(nonce)
      .build();
}

}  // namespace

Transaction Transaction::create(const crypto::KeyPair& sender_key,
                                const crypto::PublicKey& to,
                                MicroAlgos amount, MicroAlgos fee,
                                std::uint64_t nonce) {
  RS_REQUIRE(amount > 0, "transaction amount must be positive");
  RS_REQUIRE(fee >= 0, "transaction fee must be non-negative");
  Transaction txn;
  txn.sender_ = sender_key.public_key();
  txn.receiver_ = to;
  txn.amount_ = amount;
  txn.fee_ = fee;
  txn.nonce_ = nonce;
  txn.signature_ = sender_key.sign(
      content_hash(txn.sender_, txn.receiver_, amount, fee, nonce));
  return txn;
}

Transaction Transaction::from_parts(const crypto::PublicKey& sender,
                                    const crypto::PublicKey& receiver,
                                    MicroAlgos amount, MicroAlgos fee,
                                    std::uint64_t nonce,
                                    const crypto::Signature& signature) {
  RS_REQUIRE(amount > 0, "transaction amount must be positive");
  RS_REQUIRE(fee >= 0, "transaction fee must be non-negative");
  Transaction txn;
  txn.sender_ = sender;
  txn.receiver_ = receiver;
  txn.amount_ = amount;
  txn.fee_ = fee;
  txn.nonce_ = nonce;
  txn.signature_ = signature;
  return txn;
}

crypto::Hash256 Transaction::id() const {
  return content_hash(sender_, receiver_, amount_, fee_, nonce_);
}

bool Transaction::verify_signature() const {
  return crypto::verify(sender_, id(), signature_);
}

}  // namespace roleshare::ledger
