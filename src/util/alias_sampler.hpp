// Walker alias method: O(n) construction, O(1) weighted index draws.
// Used to sample stake-weighted participants (committee members,
// transaction parties) from populations of hundreds of thousands of nodes,
// where per-draw linear scans would dominate the experiment runtime.
//
// Edge-case contract (regression-tested in tests/test_stats.cpp):
//   - empty weights, any negative or non-finite weight, or a zero total
//     throw std::invalid_argument — a degenerate distribution is a caller
//     bug, never a silent uniform fallback;
//   - a single positive entry always samples index 0;
//   - all-equal positive weights sample exactly uniformly (the scaled
//     probabilities are pinned to 1 instead of trusting the floating-point
//     sum, so no epsilon-sized bias toward alias partners);
//   - zero-weight entries are never returned.
// Every draw consumes exactly one uniform_int and one uniform01 from the
// rng regardless of the table's shape, so swapping weight vectors of the
// same size never desynchronizes downstream streams.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {

class AliasSampler {
 public:
  /// Builds the table for the given finite non-negative weights (at least
  /// one must be positive). Throws std::invalid_argument otherwise.
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t size() const { return prob_.size(); }

  /// Draws an index with probability weight[i] / sum(weights).
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace roleshare::util
