#include "sim/round_workspace.hpp"

namespace roleshare::sim {

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
std::size_t nested_bytes(const std::vector<std::vector<T>>& v) {
  std::size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += vec_bytes(inner);
  return total;
}

}  // namespace

std::size_t RoundWorkspace::capacity_bytes() const {
  std::size_t total = 0;
  total += vec_bytes(stakes);
  total += vec_bytes(relay.relays) + vec_bytes(relay.online);
  total += vec_bytes(observed_roles) + vec_bytes(true_roles);
  total += vec_bytes(proposer_draws);
  total += vec_bytes(proposals) + vec_bytes(proposal_hashes);
  total += vec_bytes(proposer_labels) + vec_bytes(proposer_seeds);
  total += nested_bytes(proposal_arrivals);
  for (const net::GossipScratch& s : proposal_scratch)
    total += vec_bytes(s.frontier);
  total += vec_bytes(best_idx);
  total += vec_bytes(step.committee.members) + vec_bytes(step.draws);
  total += vec_bytes(step.votes);
  total += vec_bytes(step.origin_labels) + vec_bytes(step.origin_seeds);
  total += nested_bytes(step.arrivals);
  for (const net::GossipScratch& s : step.scratch)
    total += vec_bytes(s.frontier);
  total += vec_bytes(step.valid) + vec_bytes(step.counted);
  total += vec_bytes(step.counted_rows);
  total += vec_bytes(step.counted_weight) + vec_bytes(step.counted_value_id);
  total += vec_bytes(step.counted_coin_hash) + vec_bytes(step.values);
  total += vec_bytes(step.tally_weights);
  total += vec_bytes(step1) + vec_bytes(step2);
  total += vec_bytes(ba_out) + vec_bytes(finals);
  total += vec_bytes(ba) + vec_bytes(post_votes);
  total += vec_bytes(conclusion_counts);
  total += vec_bytes(reward_stakes) + vec_bytes(reward_stakes_true);
  total += sampled_scratch.capacity_bytes();
  total += vec_bytes(sampled_result.touched);
  return total;
}

}  // namespace roleshare::sim
