// BENCH_*.json emission: numeric + string fields, escaping, and the
// always-present git_sha provenance field.
#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace roleshare::bench {
namespace {

std::string read_and_remove(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(BenchUtil, EmitJsonWritesNumericAndStringFields) {
  emit_json("test_mixed", {{"nodes", 100.0},
                           {"threads", std::size_t{4}},
                           {"stakes", "U(1,200)"},
                           {"wall_ms", 12.5}});
  const std::string json = read_and_remove("BENCH_test_mixed.json");
  EXPECT_NE(json.find("\"bench\": \"test_mixed\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"stakes\": \"U(1,200)\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\": 12.5"), std::string::npos);
}

TEST(BenchUtil, EmitJsonAlwaysRecordsGitSha) {
  emit_json("test_sha", {});
  const std::string json = read_and_remove("BENCH_test_sha.json");
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
  // The baked-in value itself is available programmatically too.
  EXPECT_NE(json.find(git_sha()), std::string::npos);
}

TEST(BenchUtil, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(BenchUtil, EmitJsonEscapesStringValues) {
  emit_json("test_escape", {{"label", "quote\"and\\slash"}});
  const std::string json = read_and_remove("BENCH_test_escape.json");
  EXPECT_NE(json.find("\"label\": \"quote\\\"and\\\\slash\""),
            std::string::npos);
}

TEST(BenchUtil, ArgParsingReadsInnerThreads) {
  const char* argv_c[] = {"prog", "--threads=3", "--inner-threads=5"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(arg_threads(3, argv), 3u);
  EXPECT_EQ(arg_inner_threads(3, argv), 5u);
  EXPECT_EQ(arg_inner_threads(1, argv), 1u);  // default
}

}  // namespace
}  // namespace roleshare::bench
