// Quickstart: spin up a simulated Algorand network, run a few consensus
// rounds, and pay rewards with the paper's incentive-compatible role-based
// mechanism (Algorithm 1) out of the Foundation pool.
//
//   $ ./quickstart
//
// This walks the whole public API surface end to end: Network ->
// RoundEngine -> RoleSnapshot -> RoleBasedScheme -> FoundationPool ->
// AccountTable credits.
#include <cstdio>

#include "econ/foundation_schedule.hpp"
#include "econ/reward_pool.hpp"
#include "econ/role_based.hpp"
#include "sim/round_engine.hpp"

using namespace roleshare;

int main() {
  // 1. A 200-node network, stakes U(1,50), everyone honest.
  sim::NetworkConfig config;
  config.node_count = 200;
  config.seed = 2024;
  sim::Network net(config);
  std::printf("network: %zu nodes, %lld Algos total stake\n",
              net.node_count(),
              static_cast<long long>(net.accounts().total_stake()));

  // 2. Consensus parameters scaled to this network's stake.
  const auto params =
      consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
  sim::RoundEngine engine(net, params);

  // 3. The paper's reward mechanism + the Foundation pool it draws from.
  econ::RoleBasedScheme scheme{econ::CostModel{}};
  econ::FoundationPool pool;

  for (int r = 1; r <= 5; ++r) {
    const sim::RoundResult result = engine.run_round();
    std::printf("round %llu: %.0f%% final, %.0f%% tentative, %.0f%% none "
                "(%zu proposals)\n",
                static_cast<unsigned long long>(result.round),
                result.final_fraction * 100, result.tentative_fraction * 100,
                result.none_fraction * 100, result.proposals);

    // Fig-2 flow: R_i enters the pool; our scheme asks only for the
    // minimal incentive-compatible B_i, the rest stays for future use.
    pool.inject(econ::FoundationSchedule::reward_for_round(result.round));
    const ledger::MicroAlgos bi =
        pool.withdraw(scheme.required_budget(result.round, *result.roles));
    const econ::Payouts payouts =
        scheme.distribute(result.round, *result.roles, bi);
    for (std::size_t v = 0; v < payouts.amounts.size(); ++v)
      net.accounts().credit(static_cast<ledger::NodeId>(v),
                            payouts.amounts[v]);

    std::printf("  rewards: B_i = %.4f Algos (foundation would pay %.0f), "
                "split a=%.3f b=%.3f g=%.3f\n",
                ledger::to_algos(bi),
                ledger::to_algos(
                    econ::FoundationSchedule::reward_for_round(result.round)),
                scheme.last_split().alpha, scheme.last_split().beta,
                scheme.last_split().gamma());
  }

  std::printf("\nchain height %zu (%zu non-empty blocks); pool saved "
              "%.2f Algos for future use\n",
              net.chain().height(), net.chain().non_empty_count(),
              ledger::to_algos(pool.balance()));
  return 0;
}
