#include "game/best_response.hpp"

#include <gtest/gtest.h>

namespace roleshare::game {
namespace {

using consensus::Role;
using econ::CostModel;
using econ::RoleSnapshot;

GameConfig gal_config(double bi_algos) {
  return GameConfig{
      RoleSnapshot({Role::Leader, Role::Leader, Role::Committee,
                    Role::Committee, Role::Committee, Role::Other,
                    Role::Other, Role::Other},
                   {5, 8, 10, 12, 9, 20, 15, 30}),
      CostModel{},
      SchemeKind::StakeProportional,
      bi_algos * 1e6,
      econ::RewardSplit(0.2, 0.3),
      {},
      0.685};
}

TEST(BestResponse, AgainstAllDefectIsDefect) {
  const AlgorandGame game(gal_config(20));
  const Profile p = all_defect(game.player_count());
  for (ledger::NodeId v = 0; v < game.player_count(); ++v) {
    EXPECT_EQ(best_response(game, p, v), Strategy::Defect);
  }
}

TEST(BestResponse, RoleHoldersDefectFromAllCooperate) {
  // Theorem 2's content as a best-response statement.
  const AlgorandGame game(gal_config(100));
  const Profile p = all_cooperate(game.player_count());
  EXPECT_EQ(best_response(game, p, 0), Strategy::Defect);  // leader
  // Committee member whose defection keeps the quorum:
  EXPECT_EQ(best_response(game, p, 4), Strategy::Defect);  // stake 9
}

TEST(BestResponse, TieBreaksTowardCurrentStrategy) {
  // With bi = 0, a lone Other's payoff is identical for C at no extra cost?
  // No: cooperation costs more. But Defect vs Offline for zero reward both
  // pay -c_so; a defector keeps its current strategy on ties.
  const AlgorandGame game(gal_config(0));
  Profile p = all_defect(game.player_count());
  EXPECT_EQ(best_response(game, p, 5), Strategy::Defect);
  p[5] = Strategy::Offline;
  // Offline and Defect both yield -c_so when no block is created; the tie
  // keeps the player offline.
  EXPECT_EQ(best_response(game, p, 5), Strategy::Offline);
}

TEST(BestResponseDynamics, CooperationUnravelsFromAllCooperate) {
  // Theorem 2 in motion: starting from All-C, players peel off to Defect.
  // With a large reward the dynamics settle on a *partial* cooperation NE
  // (players pivotal for the block keep cooperating); All-C itself never
  // survives.
  const AlgorandGame game(gal_config(50));
  const DynamicsResult result =
      best_response_dynamics(game, all_cooperate(game.player_count()));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_nash(game, result.profile));
  EXPECT_GT(result.total_moves, 0u);
  EXPECT_NE(result.profile, all_cooperate(game.player_count()));
}

TEST(BestResponseDynamics, ZeroRewardConvergesToAllDefect) {
  // Without rewards cooperation cannot pay: the unique absorbing state is
  // All-D.
  const AlgorandGame game(gal_config(0));
  const DynamicsResult result =
      best_response_dynamics(game, all_cooperate(game.player_count()));
  EXPECT_TRUE(result.converged);
  for (const Strategy s : result.profile) EXPECT_EQ(s, Strategy::Defect);
}

TEST(BestResponseDynamics, AllDefectIsFixpoint) {
  const AlgorandGame game(gal_config(50));
  const DynamicsResult result =
      best_response_dynamics(game, all_defect(game.player_count()));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.total_moves, 0u);
  EXPECT_EQ(result.sweeps, 1u);
}

TEST(BestResponseDynamics, Theorem3ProfileIsFixpointWithSufficientBi) {
  using econ::RewardSplit;
  const RoleSnapshot snap(
      {Role::Leader, Role::Leader, Role::Committee, Role::Committee,
       Role::Committee, Role::Other, Role::Other, Role::Other},
      {5, 8, 10, 12, 9, 20, 15, 30});
  std::vector<bool> y(snap.node_count(), false);
  y[5] = true;
  y[7] = true;
  const RewardSplit split(0.2, 0.3);
  econ::BoundInputs in = econ::BoundInputs::from_snapshot(snap);
  in.min_stake_other = 20;
  const double bi =
      econ::compute_bi_bounds(split, in, CostModel{}).required() * 1.05;
  const AlgorandGame game(GameConfig{snap, CostModel{},
                                     SchemeKind::RoleBased, bi, split, y,
                                     0.685});
  const Profile start = theorem3_profile(game);
  const DynamicsResult result = best_response_dynamics(game, start);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.total_moves, 0u);
  EXPECT_EQ(result.profile, start);
}

TEST(BestResponseDynamics, TerminatesWithinSweepLimit) {
  const AlgorandGame game(gal_config(20));
  Profile start(game.player_count(), Strategy::Offline);
  const DynamicsResult result = best_response_dynamics(game, start, 3);
  EXPECT_LE(result.sweeps, 3u);
}

TEST(BestResponse, RejectsBadPlayer) {
  const AlgorandGame game(gal_config(20));
  EXPECT_THROW(
      best_response(game, all_defect(game.player_count()), 999),
      std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::game
