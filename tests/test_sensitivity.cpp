#include "econ/sensitivity.hpp"

#include <gtest/gtest.h>

#include "econ/optimizer.hpp"

namespace roleshare::econ {
namespace {

BoundInputs paper_inputs() {
  BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.stake_others = 50'000'000.0 - 26 - 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  in.min_stake_other = 10;
  return in;
}

// Finite-difference cross-check of a closed-form partial: re-optimizes at
// a perturbed input and compares slopes.
template <typename Perturb>
double finite_difference(const BoundInputs& in, const CostModel& costs,
                         Perturb&& perturb, double h) {
  const RewardOptimizer opt;
  BoundInputs plus = in;
  perturb(plus, h);
  BoundInputs minus = in;
  perturb(minus, -h);
  const double f_plus = opt.optimize(plus, costs).min_bi;
  const double f_minus = opt.optimize(minus, costs).min_bi;
  return (f_plus - f_minus) / (2.0 * h);
}

TEST(Sensitivity, BiMatchesOptimizer) {
  const RewardOptimizer opt;
  const Sensitivity s = compute_sensitivity(paper_inputs(), CostModel{});
  const OptimizerResult r = opt.optimize(paper_inputs(), CostModel{});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(s.bi, r.min_bi, r.min_bi * 1e-4);
}

TEST(Sensitivity, CostPartialsAreClosedForm) {
  const BoundInputs in = paper_inputs();
  const Sensitivity s = compute_sensitivity(in, CostModel{});
  EXPECT_DOUBLE_EQ(s.d_cost_leader, in.stake_leaders / 1.0);
  EXPECT_DOUBLE_EQ(s.d_cost_committee, in.stake_committee / 1.0);
  EXPECT_GT(s.d_cost_other, 0.0);
  EXPECT_LT(s.d_cost_sortition, 0.0);
  // Sortition-cost relief cancels all three cooperation-cost exposures.
  EXPECT_NEAR(s.d_cost_sortition,
              -(s.d_cost_leader + s.d_cost_committee + s.d_cost_other),
              1e-9);
}

TEST(Sensitivity, LeaderCostPartialMatchesFiniteDifference) {
  const BoundInputs in = paper_inputs();
  const Sensitivity s = compute_sensitivity(in, CostModel{});
  // Perturb c_L via from_role_costs.
  const RewardOptimizer opt;
  const double h = 0.01;
  const double f_plus =
      opt.optimize(in, CostModel::from_role_costs(16 + h, 12, 6, 5)).min_bi;
  const double f_minus =
      opt.optimize(in, CostModel::from_role_costs(16 - h, 12, 6, 5)).min_bi;
  EXPECT_NEAR((f_plus - f_minus) / (2 * h), s.d_cost_leader,
              std::abs(s.d_cost_leader) * 0.01 + 1.0);
}

TEST(Sensitivity, StakePartialMatchesFiniteDifference) {
  const BoundInputs in = paper_inputs();
  const Sensitivity s = compute_sensitivity(in, CostModel{});
  const double fd = finite_difference(
      in, CostModel{},
      [](BoundInputs& b, double h) { b.stake_others += h * 1e4; }, 1.0);
  EXPECT_NEAR(fd / 1e4, s.d_stake_others,
              std::abs(s.d_stake_others) * 0.01 + 1e-9);
}

TEST(Sensitivity, MinStakePartialMatchesFiniteDifference) {
  const BoundInputs in = paper_inputs();
  const Sensitivity s = compute_sensitivity(in, CostModel{});
  const double fd = finite_difference(
      in, CostModel{},
      [](BoundInputs& b, double h) { b.min_stake_other += h; }, 0.01);
  EXPECT_NEAR(fd, s.d_min_stake_other,
              std::abs(s.d_min_stake_other) * 0.01);
}

TEST(Sensitivity, DustFloorElasticityNearMinusOne) {
  // When the online bound dominates (paper regime), B ~ 1/s*_k, so the
  // elasticity is ~ -1: doubling the floor halves the reward — exactly
  // the Fig-7(c) observation.
  const Sensitivity s = compute_sensitivity(paper_inputs(), CostModel{});
  EXPECT_NEAR(s.elasticity_min_stake_other, -1.0, 0.05);
}

TEST(Sensitivity, MoreStakeMeansMoreReward) {
  const Sensitivity s = compute_sensitivity(paper_inputs(), CostModel{});
  EXPECT_GT(s.d_stake_others, 0.0);
}

TEST(Sensitivity, ValidatesInputs) {
  BoundInputs in = paper_inputs();
  in.stake_committee = 0;
  EXPECT_THROW(compute_sensitivity(in, CostModel{}), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::econ
