// Role-based reward payouts evaluated on a round's touched set only.
//
// RoleBasedScheme::distribute walks the full population snapshot — O(N)
// per round, which the sparse round path cannot afford. But under the
// fixed-split scheme the α and β pots only ever pay the round's leaders
// and committee members, all of whom the sparse round already collected
// (sim/sampled_round.hpp's touched list), and the role stake sums the
// shares divide by are available without a population walk:
//
//   S_L, S_M   from the touched entries' observed roles and reward stakes
//   S_K        = online_stake − S_L − S_M (every other online node is an
//               observed Other carrying its full stake; offline nodes
//               carry 0 — the dense snapshot's exact accounting)
//
// distribute_touched replicates RoleBasedScheme::distribute's arithmetic
// digit for digit for the Leader/Committee amounts (same double shares,
// same floor; test_longhorizon.cpp locks the equality), so compounding
// the sparse payouts drifts stakes exactly as the dense scheme would.
//
// The γ pot is the one modelled difference: paying it means crediting
// every online node — O(N) — so the sparse path reports the pot total
// without individual payouts. Long-horizon economies treat the Others
// share as consumed (covering participation costs) rather than
// compounded; DESIGN.md §10 records the approximation.
#pragma once

#include <span>

#include "consensus/roles.hpp"
#include "econ/bi_bounds.hpp"
#include "ledger/types.hpp"

namespace roleshare::econ {

/// distribute_touched's round totals.
struct SparsePayoutTotals {
  /// µAlgos actually credited (Leader + Committee pots after flooring).
  ledger::MicroAlgos paid = 0;
  /// γ pot in µAlgos — owed to Others collectively, not individually paid.
  ledger::MicroAlgos others_pot = 0;
  /// Role stake sums the shares were computed from (paper's S_L/S_M/S_K).
  std::int64_t leader_stake = 0;
  std::int64_t committee_stake = 0;
  std::int64_t other_stake = 0;
};

/// Computes the fixed-split role payouts for the touched set: `roles`,
/// `stakes` and `amounts` are parallel (observed role, reward stake in
/// Algos — 0 when offline); `online_stake` is the round's total online
/// stake in Algos. Writes each touched node's µAlgo payout into `amounts`
/// (Others get 0 — see the file comment) and returns the totals.
SparsePayoutTotals distribute_touched(const RewardSplit& split,
                                      ledger::MicroAlgos budget,
                                      std::span<const consensus::Role> roles,
                                      std::span<const std::int64_t> stakes,
                                      std::int64_t online_stake,
                                      std::span<ledger::MicroAlgos> amounts);

}  // namespace roleshare::econ
