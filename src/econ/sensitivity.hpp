// Sensitivity of the minimal incentive-compatible reward B_i* to the
// economy's parameters — closed-form partial derivatives of the
// Algorithm-1 optimum
//     B_i* = A + B + D(1+C),
//     A = (c_L−c_so)·S_L/s*_l,  B = (c_M−c_so)·S_M/s*_m,
//     D = (c_K−c_so)·S_K/s*_k,  C = S_L/(S_K+s*_l) + S_M/(S_K+s*_m)
// (see optimizer.hpp). This is the quantitative version of the paper's
// closing advice: the Foundation can "adapt dynamically with the
// distribution of stakes" — these derivatives say *how fast* B_i moves
// when costs change, stake pours in, or the dust floor w is raised.
#pragma once

#include "econ/bi_bounds.hpp"

namespace roleshare::econ {

struct Sensitivity {
  double bi = 0;  // B_i* itself, µAlgos

  // Partials with respect to role costs (µAlgos of B_i per µAlgo of cost).
  double d_cost_leader = 0;     // ∂B/∂c_L = S_L/s*_l
  double d_cost_committee = 0;  // ∂B/∂c_M = S_M/s*_m
  double d_cost_other = 0;      // ∂B/∂c_K = S_K(1+C)/s*_k
  double d_cost_sortition = 0;  // ∂B/∂c_so = −(sum of the above)

  // Partials with respect to population aggregates.
  double d_stake_others = 0;     // ∂B/∂S_K
  double d_min_stake_other = 0;  // ∂B/∂s*_k = −D(1+C)/s*_k

  /// Elasticity of B_i to the dust floor: (s*_k/B)·∂B/∂s*_k — close to −1
  /// when the online bound dominates, quantifying the Fig-7(c) lever.
  double elasticity_min_stake_other = 0;
};

/// Evaluates the closed-form sensitivities at the given population/costs.
Sensitivity compute_sensitivity(const BoundInputs& inputs,
                                const CostModel& costs);

}  // namespace roleshare::econ
