// Global heap-allocation counter for benchmark binaries.
//
// Replaces the global operator new/delete with counting wrappers so a
// bench can bracket a region and report exactly how many heap allocations
// it performed — the ground truth behind the round engine's reusable-
// workspace contract (steady-state rounds should allocate only for state
// that genuinely grows: the transactions of each proposed block and the
// chain append).
//
// Include from exactly ONE translation unit per binary: the replacement
// functions below are definitions, and a program gets one set of them.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace roleshare::bench {

inline std::atomic<std::uint64_t> g_alloc_count{0};

/// Number of global operator new calls since process start.
inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace roleshare::bench

void* operator new(std::size_t size) {
  roleshare::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  roleshare::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
