#include "net/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace roleshare::net {

Topology Topology::random_k_out(std::size_t n, std::size_t k,
                                util::Rng& rng) {
  RS_REQUIRE(n > 0, "topology needs nodes");
  RS_REQUIRE(k < n, "fan-out must be smaller than node count");
  Topology t;
  t.fan_out_ = k;
  t.out_.resize(n);
  // Per node: k distinct targets != v, sampled from n-1 logical slots
  // with indices >= v shifted by one. The draw sequence and picks are
  // exactly Rng::sample_without_replacement(n-1, k)'s partial
  // Fisher–Yates, but only the swapped slots are materialized
  // (epoch-stamped, shared across nodes), so the whole build is
  // O(n·k) instead of the O(n²) a full index vector per node costs —
  // the difference between seconds and hours at a million nodes.
  std::vector<std::uint64_t> slot_epoch(n, 0);
  std::vector<std::size_t> slot_value(n, 0);
  std::uint64_t epoch = 0;
  const auto value_at = [&](std::size_t p) {
    return slot_epoch[p] == epoch ? slot_value[p] : p;
  };
  for (std::size_t v = 0; v < n; ++v) {
    ++epoch;
    auto& row = t.out_[v];
    row.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(n) - 2));
      const std::size_t pick = value_at(j);
      // swap(idx[i], idx[j]): position i is never read again (future
      // swap targets are > i), so only idx[j] needs recording.
      const std::size_t displaced = value_at(i);
      slot_value[j] = displaced;
      slot_epoch[j] = epoch;
      const std::size_t target = (pick >= v) ? pick + 1 : pick;
      row.push_back(static_cast<ledger::NodeId>(target));
    }
    std::sort(row.begin(), row.end());
  }
  t.build_reverse();
  return t;
}

Topology Topology::from_adjacency(
    std::vector<std::vector<ledger::NodeId>> adjacency) {
  Topology t;
  t.out_ = std::move(adjacency);
  const std::size_t n = t.out_.size();
  for (const auto& row : t.out_) {
    t.fan_out_ = std::max(t.fan_out_, row.size());
    for (const ledger::NodeId to : row)
      RS_REQUIRE(to < n, "adjacency target out of range");
  }
  t.build_reverse();
  return t;
}

std::span<const ledger::NodeId> Topology::out_neighbors(
    ledger::NodeId v) const {
  RS_REQUIRE(v < out_.size(), "node id out of range");
  return out_[v];
}

std::span<const ledger::NodeId> Topology::in_neighbors(
    ledger::NodeId v) const {
  RS_REQUIRE(v < in_.size(), "node id out of range");
  return in_[v];
}

void Topology::build_reverse() {
  in_.assign(out_.size(), {});
  for (std::size_t v = 0; v < out_.size(); ++v)
    for (const ledger::NodeId to : out_[v])
      in_[to].push_back(static_cast<ledger::NodeId>(v));
}

}  // namespace roleshare::net
