#include "sim/defection_experiment.hpp"

#include <algorithm>
#include <optional>

#include "sim/round_engine.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

/// What one run contributes to the aggregate: per-round outcome
/// percentages plus the liveness flag. Small and trivially movable so the
/// thread-pool fan-out stays cheap.
struct DefectionRun {
  struct RoundFractions {
    double final_pct = 0.0;
    double tentative_pct = 0.0;
    double none_pct = 0.0;
    double live = 0.0;      // live-node count this round
    double coop_pct = 0.0;  // % of live nodes playing Cooperate
  };
  std::vector<RoundFractions> rounds;
  bool progress = false;
};

DefectionRun execute_run(const DefectionExperimentConfig& config,
                         std::uint64_t run_seed,
                         util::ThreadPool* inner_pool) {
  NetworkConfig net_config = config.network;
  net_config.seed = run_seed;
  Network network(net_config);

  consensus::ConsensusParams params = config.params;
  if (config.scale_params_to_stake) {
    params = consensus::ConsensusParams::scaled_for(
        network.accounts().total_stake());
    params.step_threshold = config.params.step_threshold;
    params.final_threshold = config.params.final_threshold;
    params.max_binary_iterations = config.params.max_binary_iterations;
    params.proposal_timeout_ms = config.params.proposal_timeout_ms;
    params.step_timeout_ms = config.params.step_timeout_ms;
  }

  RoundEngine engine(network, params, inner_pool);
  // The policy layer only engages when it changes anything; a disabled
  // policy keeps the run bit-identical to the pre-policy experiment.
  std::optional<ScenarioPolicy> policy;
  if (config.policy.enabled()) {
    ScenarioPolicyConfig policy_config = config.policy;
    // Adaptive candidates must best-respond in the game this run's
    // consensus actually plays.
    policy_config.committee_threshold = params.step_threshold;
    policy.emplace(policy_config, network);
  }

  DefectionRun run;
  run.rounds.reserve(config.rounds);
  RoundResult last;
  for (std::size_t r = 0; r < config.rounds; ++r) {
    if (policy)
      policy->begin_round(r, r > 0 ? &last : nullptr, engine.executor());
    RoundResult result = engine.run_round();
    std::size_t coop = 0;
    const auto& strategies = network.strategies();
    for (std::size_t v = 0; v < strategies.size(); ++v) {
      if (network.live(static_cast<ledger::NodeId>(v)) &&
          strategies[v] == game::Strategy::Cooperate)
        ++coop;
    }
    run.rounds.push_back({result.final_fraction * 100.0,
                          result.tentative_fraction * 100.0,
                          result.none_fraction * 100.0,
                          static_cast<double>(result.live_count),
                          100.0 * static_cast<double>(coop) /
                              static_cast<double>(result.live_count)});
    run.progress = run.progress || result.non_empty_block;
    last = std::move(result);
  }
  return run;
}

}  // namespace

DefectionPartial::DefectionPartial(std::size_t run_begin, std::size_t run_end,
                                   std::size_t runs_total, std::size_t rounds,
                                   AggBackend backend,
                                   const StreamingAggConfig& streaming)
    : run_begin_(run_begin),
      run_end_(run_end),
      runs_total_(runs_total),
      rounds_(rounds),
      metrics_(rounds, backend, streaming),
      live_(make_accumulator(backend, rounds, streaming)),
      coop_(make_accumulator(backend, rounds, streaming)) {
  RS_REQUIRE(run_begin < run_end, "partial run window is empty");
  RS_REQUIRE(run_end <= runs_total,
             "partial run window ends at " + std::to_string(run_end) +
                 " but the experiment has only " +
                 std::to_string(runs_total) + " runs");
}

DefectionPartial::DefectionPartial(std::size_t run_begin, std::size_t run_end,
                                   std::size_t runs_total, std::size_t rounds,
                                   OutcomeMetrics metrics,
                                   std::unique_ptr<RoundAccumulator> live,
                                   std::unique_ptr<RoundAccumulator> coop)
    : run_begin_(run_begin),
      run_end_(run_end),
      runs_total_(runs_total),
      rounds_(rounds),
      metrics_(std::move(metrics)),
      live_(std::move(live)),
      coop_(std::move(coop)) {
  RS_REQUIRE(run_begin < run_end, "partial run window is empty");
  RS_REQUIRE(run_end <= runs_total,
             "partial run window ends at " + std::to_string(run_end) +
                 " but the experiment has only " +
                 std::to_string(runs_total) + " runs");
}

void DefectionPartial::record_round(std::size_t round_index, double final_pct,
                                    double tentative_pct, double none_pct,
                                    double live, double coop_pct) {
  metrics_.record(round_index, final_pct, tentative_pct, none_pct);
  live_->record(round_index, live);
  coop_->record(round_index, coop_pct);
  const auto live_count = static_cast<std::size_t>(live);
  min_live_ = any_live_ ? std::min(min_live_, live_count) : live_count;
  max_live_ = any_live_ ? std::max(max_live_, live_count) : live_count;
  any_live_ = true;
}

void DefectionPartial::record_run_progress(bool progress) {
  if (progress) ++runs_with_progress_;
}

void DefectionPartial::merge(const DefectionPartial& next) {
  RS_REQUIRE(next.run_begin_ == run_end_,
             "merging non-contiguous run windows: this ends at run " +
                 std::to_string(run_end_) + ", next begins at run " +
                 std::to_string(next.run_begin_));
  RS_REQUIRE(next.runs_total_ == runs_total_,
             "merging partials of different experiments: this has " +
                 std::to_string(runs_total_) + " total runs, next has " +
                 std::to_string(next.runs_total_));
  RS_REQUIRE(next.rounds_ == rounds_,
             "merging partials with different round counts: this has " +
                 std::to_string(rounds_) + " rounds, next has " +
                 std::to_string(next.rounds_));
  metrics_.merge(next.metrics_);
  live_->merge(*next.live_);
  coop_->merge(*next.coop_);
  runs_with_progress_ += next.runs_with_progress_;
  if (next.any_live_) {
    min_live_ = any_live_ ? std::min(min_live_, next.min_live_)
                          : next.min_live_;
    max_live_ = any_live_ ? std::max(max_live_, next.max_live_)
                          : next.max_live_;
    any_live_ = true;
  }
  run_end_ = next.run_end_;
}

DefectionSeries DefectionPartial::finalize(double trim_fraction) const {
  DefectionSeries series;
  series.rounds = metrics_.aggregate(trim_fraction);
  series.runs_with_progress = static_cast<double>(runs_with_progress_) /
                              static_cast<double>(run_end_ - run_begin_);
  series.live_series = live_->mean_series();
  series.cooperation_series = coop_->mean_series();
  series.min_live = min_live_;
  series.max_live = max_live_;
  series.accumulator_bytes = accumulator_bytes();
  return series;
}

std::size_t DefectionPartial::accumulator_bytes() const {
  return metrics_.memory_bytes() + live_->memory_bytes() +
         coop_->memory_bytes();
}

util::json::Value DefectionPartial::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("run_begin", run_begin_);
  v.set("run_end", run_end_);
  v.set("runs_total", runs_total_);
  v.set("rounds", rounds_);
  v.set("backend", to_string(backend()));
  v.set("metrics", metrics_.to_json());
  v.set("live", live_->to_json());
  v.set("coop", coop_->to_json());
  v.set("runs_with_progress", runs_with_progress_);
  v.set("any_live", any_live_);
  v.set("min_live", min_live_);
  v.set("max_live", max_live_);
  return v;
}

DefectionPartial DefectionPartial::from_json(const util::json::Value& value) {
  const AggBackend backend =
      parse_agg_backend(value.at("backend").as_string());
  DefectionPartial p(value.at("run_begin").as_size(),
                     value.at("run_end").as_size(),
                     value.at("runs_total").as_size(),
                     value.at("rounds").as_size(),
                     OutcomeMetrics::from_json(value.at("metrics")),
                     accumulator_from_json(value.at("live")),
                     accumulator_from_json(value.at("coop")));
  RS_REQUIRE(p.metrics_.backend() == backend &&
                 p.live_->backend() == backend &&
                 p.coop_->backend() == backend,
             "partial JSON mixes accumulator backends");
  RS_REQUIRE(p.metrics_.rounds() == p.rounds_ &&
                 p.live_->rounds() == p.rounds_ &&
                 p.coop_->rounds() == p.rounds_,
             "partial JSON accumulator round counts disagree with header");
  p.runs_with_progress_ = value.at("runs_with_progress").as_size();
  p.any_live_ = value.at("any_live").as_bool();
  p.min_live_ = value.at("min_live").as_size();
  p.max_live_ = value.at("max_live").as_size();
  return p;
}

DefectionPartial run_defection_partial(
    const DefectionExperimentConfig& config) {
  const ExperimentSpec spec{config.runs,    config.rounds,
                            config.network.seed, config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const ResolvedShard shard = resolve_shard(spec);
  DefectionPartial partial(shard.begin, shard.end, config.runs, config.rounds,
                           config.agg, config.streaming);

  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        // The network rebuilds its stream from a scalar seed, so hand it
        // this run's seed material (== root.split(run)).
        return execute_run(config, rng.seed_material(), ctx.inner_pool);
      },
      [&](std::size_t, DefectionRun run) {
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          partial.record_round(r, run.rounds[r].final_pct,
                               run.rounds[r].tentative_pct,
                               run.rounds[r].none_pct, run.rounds[r].live,
                               run.rounds[r].coop_pct);
        }
        partial.record_run_progress(run.progress);
      });
  return partial;
}

DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config) {
  return run_defection_partial(config).finalize(config.trim_fraction);
}

}  // namespace roleshare::sim
