// Simulated time, in milliseconds of virtual wall-clock.
#pragma once

#include <limits>

namespace roleshare::net {

using TimeMs = double;

inline constexpr TimeMs kNever = std::numeric_limits<TimeMs>::infinity();

/// Algorand's vote-submission timeout (§III-A: 20 seconds).
inline constexpr TimeMs kDefaultStepTimeoutMs = 20'000.0;

}  // namespace roleshare::net
