#include "net/event_queue.hpp"

#include "util/require.hpp"

namespace roleshare::net {

void EventQueue::schedule_at(TimeMs at, Handler fn) {
  RS_REQUIRE(at >= now_, "cannot schedule into the past");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(TimeMs delay, Handler fn) {
  RS_REQUIRE(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void EventQueue::run_until(TimeMs until) {
  while (!heap_.empty() && heap_.top().at <= until) step();
  if (now_ < until) now_ = until;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

void EventQueue::reset() {
  heap_ = {};
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace roleshare::net
