// Long-horizon economy runs (DESIGN.md §10): wealth concentration under
// compounding role-based rewards at population scale.
//
// One panel = one defection rate; each run drives a CommitteeModel::
// Sampled network through the sparse O(committee · log N) round path for
// thousands of rounds, crediting the fixed-split role payouts back into
// stake every round. The reported series are the streaming concentration
// metrics: Gini, top-k stake share, defector–wealth correlation, plus the
// Fig-3 final% consensus-health line.
//
// Expected shape: Gini and top-share drift upward as seats compound into
// stake (rich-get-richer) while final% stays flat — the economy drifts,
// consensus does not. The defector correlation tracks whether compounding
// favors the defecting cohort (defectors hide their roles, so their
// leader seats pay as Other: nothing).
//
// Panel layout, seeds and config construction live in
// bench/bench_drivers.hpp (make_longhorizon_driver) — shared with the
// orchestrate coordinator/worker pair.
//
// Sharding / checkpointing (DESIGN.md §6): --run-begin/--run-end +
// --partial-out produce a mergeable shard; --checkpoint-every +
// --partial-in resume; --format={json,bin} picks the partial encoding;
// --store=DIR serves finished windows from the content-addressed cache.
// merge_partials folds shard files byte-identically (exact backend).
#include <cstdio>
#include <vector>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/longhorizon.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const bench::LongHorizonDriver d = bench::make_longhorizon_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Long horizon",
                      "population-scale compounding economy (sparse path)");
  std::printf("nodes=%zu runs=%zu rounds/run=%zu threads=%zu "
              "inner-threads=%zu agg=%s alpha=%.2f beta=%.2f top=%.3f "
              "(shard with --run-begin/--run-end + --partial-out, resume "
              "with --checkpoint-every + --partial-in)\n",
              d.nodes, d.runs, d.rounds, d.threads, d.inner_threads,
              sim::to_string(d.agg), d.alpha, d.beta, d.top_fraction);

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::LongHorizonPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  std::vector<sim::LongHorizonResult> results;
  for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel)
    results.push_back(exec.partials[panel].finalize());

  std::printf("\n--- wealth concentration at the horizon (round %zu) ---\n",
              d.rounds);
  std::printf("%10s %10s %12s %14s %10s\n", "defect", "end gini",
              "end top-1%", "defector-corr", "final%");
  for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel) {
    const sim::LongHorizonResult& r = results[panel];
    std::printf("%10.2f %10.4f %12.4f %14.4f %10.1f\n",
                bench::longhorizon::kDefectionRates[panel], r.mean_end_gini,
                r.mean_end_top_share, r.mean_end_defector_corr,
                r.final_pct_per_round.empty()
                    ? 0.0
                    : r.final_pct_per_round.back());
  }

  std::printf("\n--- Gini drift (every rounds/8) ---\n");
  std::printf("%8s", "round");
  for (const double rate : bench::longhorizon::kDefectionRates)
    std::printf(" %11.2f", rate);
  std::printf("\n");
  const std::size_t stride = d.rounds < 8 ? 1 : d.rounds / 8;
  for (std::size_t r = stride - 1; r < d.rounds; r += stride) {
    std::printf("%8zu", r + 1);
    for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel)
      std::printf(" %11.5f", results[panel].gini_per_round[r]);
    std::printf("\n");
  }

  if (!series_out.empty()) {
    util::json::Value series_panels = util::json::Value::array();
    for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel) {
      util::json::Value v = d.panels.panel_meta(panel);
      v.set("series", bench::longhorizon_series_json(results[panel]));
      series_panels.push_back(std::move(v));
    }
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  std::size_t accumulator_bytes = 0;
  for (const auto& result : results)
    accumulator_bytes += result.accumulator_bytes;
  bench::emit_json(
      "fig_longhorizon",
      {{"nodes", static_cast<double>(d.nodes)},
       {"runs", static_cast<double>(d.runs)},
       {"rounds", static_cast<double>(d.rounds)},
       {"threads", static_cast<double>(d.threads)},
       {"inner_threads", static_cast<double>(d.inner_threads)},
       {"agg", sim::to_string(d.agg)},
       {"accumulator_bytes", static_cast<double>(accumulator_bytes)},
       {"end_gini_d0", results[0].mean_end_gini},
       {"end_gini_d30", results[2].mean_end_gini},
       {"end_top_share_d0", results[0].mean_end_top_share},
       {"defector_corr_d30", results[2].mean_end_defector_corr},
       {"mean_paid_algos_d0", results[0].mean_paid_algos},
       {"peak_rss_mb", bench::peak_rss_bytes() / (1024.0 * 1024.0)},
       {"wall_ms", timer.elapsed_ms()}});

  std::printf("\nShape check: Gini/top-share drift upward with the horizon\n"
              "while final%% stays flat — compounding moves wealth, not\n"
              "consensus.\n");
  return 0;
}
