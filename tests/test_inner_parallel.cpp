// Within-run parallelism determinism: every experiment aggregate must be
// bit-identical across inner_threads ∈ {1, 2, 0 (= all hardware)} — the
// contract that makes --inner-threads a pure latency knob (DESIGN.md §3/§4).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "consensus/committee.hpp"
#include "consensus/votes.hpp"
#include "sim/defection_experiment.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/reward_experiment.hpp"
#include "sim/round_engine.hpp"
#include "sim/strategic_loop.hpp"
#include "util/thread_pool.hpp"

namespace roleshare {
namespace {

// The three inner settings every experiment is checked across.
constexpr std::size_t kInnerSettings[] = {1, 2, 0};

TEST(InnerExecutor, ChunksCoverEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 255u, 256u, 257u, 5000u, 100'000u}) {
    std::vector<int> hits(n, 0);
    util::ThreadPool pool(2);
    util::InnerExecutor exec(&pool);
    exec.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(InnerExecutor, ChunkBoundariesDependOnlyOnN) {
  // The chunking is what makes chunk-ordered partial reductions
  // bit-identical across worker counts: boundaries are a pure function of
  // n, so a 1-, 2- and 8-worker executor all see the same chunks.
  for (const std::size_t n : {1u, 300u, 4096u, 500'000u}) {
    const std::size_t chunks = util::InnerExecutor::chunk_count(n);
    const std::size_t len = util::InnerExecutor::chunk_length(n);
    EXPECT_GE(chunks, 1u);
    EXPECT_GE(len * chunks, n);
    EXPECT_LT(len * (chunks - 1), n);
  }
  // Chunks are never tiny (dispatch amortization) …
  EXPECT_EQ(util::InnerExecutor::chunk_count(100), 1u);
  // … and large loops split into ~kTargetChunks pieces.
  EXPECT_EQ(util::InnerExecutor::chunk_count(640'000),
            util::InnerExecutor::kTargetChunks);
}

TEST(InnerExecutor, SerialAndPooledForEachIndexAgree) {
  constexpr std::size_t n = 1000;
  std::vector<std::size_t> serial(n), pooled(n);
  util::InnerExecutor{}.for_each_index(
      n, [&](std::size_t i) { serial[i] = i * i; });
  util::ThreadPool pool(3);
  util::InnerExecutor(&pool).for_each_index(
      n, [&](std::size_t i) { pooled[i] = i * i; });
  EXPECT_EQ(serial, pooled);
}

TEST(InnerExecutor, RethrowsLowestFailingIndexInline) {
  util::InnerExecutor exec;  // serial path
  std::atomic<int> attempts{0};
  try {
    exec.for_each_index(10, [&](std::size_t i) {
      ++attempts;
      if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  EXPECT_EQ(attempts.load(), 10);  // every index still attempted
}

TEST(CommitteeElection, ExecutorDoesNotChangeTheCommittee) {
  sim::NetworkConfig config;
  config.node_count = 200;
  config.seed = 11;
  sim::Network net(config);
  const auto stakes = net.accounts().stakes();
  const std::int64_t total =
      std::accumulate(stakes.begin(), stakes.end(), std::int64_t{0});
  const crypto::Hash256 seed = net.chain().current_seed();

  const consensus::Committee serial = consensus::elect_committee(
      net.keys(), stakes, 1, consensus::kReductionStep1, seed, 1000, total);
  util::ThreadPool pool(2);
  const consensus::Committee parallel = consensus::elect_committee(
      net.keys(), stakes, 1, consensus::kReductionStep1, seed, 1000, total,
      util::InnerExecutor(&pool));

  ASSERT_EQ(serial.members.size(), parallel.members.size());
  for (std::size_t i = 0; i < serial.members.size(); ++i) {
    EXPECT_EQ(serial.members[i].node, parallel.members[i].node);
    EXPECT_EQ(serial.members[i].weight, parallel.members[i].weight);
  }
}

TEST(VoteVerification, BatchMatchesSingleVoteChecks) {
  sim::NetworkConfig config;
  config.node_count = 120;
  config.seed = 13;
  sim::Network net(config);
  const auto stakes = net.accounts().stakes();
  const std::int64_t total =
      std::accumulate(stakes.begin(), stakes.end(), std::int64_t{0});
  const crypto::Hash256 seed = net.chain().current_seed();
  const crypto::SortitionParams params{1000, total};

  const consensus::Committee committee = consensus::elect_committee(
      net.keys(), stakes, 1, consensus::kReductionStep1, seed, 1000, total);
  ASSERT_FALSE(committee.members.empty());
  std::vector<consensus::Vote> votes;
  for (const consensus::CommitteeMember& m : committee.members) {
    votes.push_back(consensus::make_vote(
        m.node, net.keys()[m.node].public_key(), 1,
        consensus::kReductionStep1, seed, m.sortition));
  }
  // Corrupt one vote's claimed weight so the batch sees both verdicts.
  votes.front().weight += 1;

  util::ThreadPool pool(2);
  const auto batch = consensus::verify_votes(votes, seed, stakes, params,
                                             util::InnerExecutor(&pool));
  ASSERT_EQ(batch.size(), votes.size());
  for (std::size_t i = 0; i < votes.size(); ++i) {
    const bool single = consensus::verify_vote(
        votes[i], seed, stakes[votes[i].voter], params);
    EXPECT_EQ(batch[i] != 0, single) << "vote " << i;
  }
  EXPECT_EQ(batch.front(), 0u);  // the corrupted vote fails
}

TEST(RoundEngine, InnerPoolBitIdenticalToSerial) {
  auto run_rounds = [](util::ThreadPool* pool) {
    sim::NetworkConfig config;
    config.node_count = 150;
    config.seed = 31;
    config.defection_rate = 0.15;
    sim::Network net(config);
    sim::RoundEngine engine(net,
                            consensus::ConsensusParams::scaled_for(
                                net.accounts().total_stake()),
                            pool);
    std::vector<sim::RoundResult> results;
    for (int r = 0; r < 3; ++r) results.push_back(engine.run_round());
    return results;
  };
  const auto serial = run_rounds(nullptr);
  util::ThreadPool pool(4);
  const auto parallel = run_rounds(&pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].final_fraction, parallel[r].final_fraction);
    EXPECT_EQ(serial[r].tentative_fraction, parallel[r].tentative_fraction);
    EXPECT_EQ(serial[r].none_fraction, parallel[r].none_fraction);
    EXPECT_EQ(serial[r].proposals, parallel[r].proposals);
    EXPECT_EQ(serial[r].outcomes, parallel[r].outcomes);
  }
}

TEST(ScenarioPolicies, BitIdenticalAcrossInnerThreads) {
  // Every behaviour policy (adaptive best-response, stake-correlated,
  // churn) must be a pure function of the seed: inner_threads ∈ {1, 2, hw}
  // may not change a single aggregate, live count or cooperation share.
  auto run_with = [](sim::PolicyKind kind, bool churn, std::size_t inner) {
    sim::DefectionExperimentConfig config;
    config.network.node_count = 70;
    config.network.seed = 37;
    config.runs = 2;
    config.rounds = 4;
    config.inner_threads = inner;
    config.policy.kind = kind;
    if (kind == sim::PolicyKind::StakeCorrelatedDefect) {
      config.policy.defect_at_bottom = 0.5;
    } else {
      config.network.defection_rate = 0.2;
    }
    if (churn) {
      config.policy.churn.leave_probability = 0.1;
      config.policy.churn.join_probability = 0.2;
      config.policy.churn.min_live = 20;
    }
    return sim::run_defection_experiment(config);
  };
  for (const sim::PolicyKind kind :
       {sim::PolicyKind::AdaptiveDefect,
        sim::PolicyKind::StakeCorrelatedDefect}) {
    for (const bool churn : {false, true}) {
      const sim::DefectionSeries baseline = run_with(kind, churn, 1);
      for (const std::size_t inner : kInnerSettings) {
        const sim::DefectionSeries series = run_with(kind, churn, inner);
        ASSERT_EQ(series.rounds.size(), baseline.rounds.size());
        for (std::size_t r = 0; r < series.rounds.size(); ++r) {
          EXPECT_EQ(series.rounds[r].final_pct, baseline.rounds[r].final_pct)
              << "kind=" << static_cast<int>(kind) << " churn=" << churn
              << " inner=" << inner << " round=" << r;
          EXPECT_EQ(series.rounds[r].tentative_pct,
                    baseline.rounds[r].tentative_pct);
          EXPECT_EQ(series.rounds[r].none_pct, baseline.rounds[r].none_pct);
        }
        EXPECT_EQ(series.live_series, baseline.live_series);
        EXPECT_EQ(series.cooperation_series, baseline.cooperation_series);
        EXPECT_EQ(series.min_live, baseline.min_live);
        EXPECT_EQ(series.max_live, baseline.max_live);
      }
    }
  }
}

TEST(DefectionExperiment, BitIdenticalAcrossInnerThreads) {
  auto run_with = [](std::size_t inner) {
    sim::DefectionExperimentConfig config;
    config.network.node_count = 80;
    config.network.seed = 17;
    config.network.defection_rate = 0.2;
    config.runs = 3;
    config.rounds = 3;
    config.inner_threads = inner;
    return sim::run_defection_experiment(config);
  };
  const sim::DefectionSeries baseline = run_with(1);
  for (const std::size_t inner : kInnerSettings) {
    const sim::DefectionSeries series = run_with(inner);
    ASSERT_EQ(series.rounds.size(), baseline.rounds.size());
    for (std::size_t r = 0; r < series.rounds.size(); ++r) {
      EXPECT_EQ(series.rounds[r].final_pct, baseline.rounds[r].final_pct)
          << "inner=" << inner << " round=" << r;
      EXPECT_EQ(series.rounds[r].tentative_pct,
                baseline.rounds[r].tentative_pct);
      EXPECT_EQ(series.rounds[r].none_pct, baseline.rounds[r].none_pct);
    }
    EXPECT_EQ(series.runs_with_progress, baseline.runs_with_progress);
  }
}

TEST(RewardExperiment, BitIdenticalAcrossInnerThreads) {
  auto run_with = [](std::size_t inner) {
    sim::RewardExperimentConfig config;
    config.node_count = 3'000;
    config.seed = 19;
    config.runs = 2;
    config.rounds_per_run = 2;
    config.inner_threads = inner;
    return sim::run_reward_experiment(config);
  };
  const sim::RewardExperimentResult baseline = run_with(1);
  for (const std::size_t inner : kInnerSettings) {
    const sim::RewardExperimentResult result = run_with(inner);
    EXPECT_EQ(result.bi_algos, baseline.bi_algos) << "inner=" << inner;
    EXPECT_EQ(result.mean_bi, baseline.mean_bi);
    EXPECT_EQ(result.mean_alpha, baseline.mean_alpha);
    EXPECT_EQ(result.mean_beta, baseline.mean_beta);
    EXPECT_EQ(result.mean_total_stake, baseline.mean_total_stake);
  }
}

TEST(StrategicEnsemble, BitIdenticalAcrossInnerThreads) {
  auto run_with = [](std::size_t inner) {
    sim::StrategicEnsembleConfig config;
    config.base.network.node_count = 60;
    config.base.network.seed = 23;
    config.base.rounds = 3;
    config.base.scheme = sim::SchemeChoice::RoleBasedAdaptive;
    config.runs = 2;
    config.inner_threads = inner;
    return sim::run_strategic_ensemble(config);
  };
  const sim::StrategicEnsembleResult baseline = run_with(1);
  for (const std::size_t inner : kInnerSettings) {
    const sim::StrategicEnsembleResult result = run_with(inner);
    EXPECT_EQ(result.cooperation_series, baseline.cooperation_series)
        << "inner=" << inner;
    EXPECT_EQ(result.final_series, baseline.final_series);
    EXPECT_EQ(result.reward_series, baseline.reward_series);
    EXPECT_EQ(result.mean_total_reward_algos,
              baseline.mean_total_reward_algos);
  }
}

TEST(ExperimentRunner, OuterParallelForcesInnerSerial) {
  sim::ExperimentSpec spec;
  spec.runs = 4;
  spec.threads = 4;
  spec.inner_threads = 8;
  const sim::ResolvedParallelism par = sim::resolve_parallelism(spec);
  EXPECT_EQ(par.outer, 4u);
  EXPECT_EQ(par.inner, 1u);  // no oversubscription
}

TEST(ExperimentRunner, SingleRunKeepsInnerParallelism) {
  sim::ExperimentSpec spec;
  spec.runs = 1;
  spec.threads = 4;
  spec.inner_threads = 8;
  const sim::ResolvedParallelism par = sim::resolve_parallelism(spec);
  EXPECT_EQ(par.inner, 8u);
}

TEST(ExperimentRunner, RunContextHandsBodiesTheSharedPool) {
  sim::ExperimentSpec spec;
  spec.runs = 3;
  spec.threads = 1;
  spec.inner_threads = 2;
  std::vector<util::ThreadPool*> seen;
  struct Unit {
    int dummy = 0;
  };
  sim::run_experiment(spec, [&](std::size_t, util::Rng&,
                                const sim::RunContext& ctx) {
    seen.push_back(ctx.inner_pool);
    return Unit{};
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_NE(seen[0], nullptr);
  // One pool, shared by every run.
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[1], seen[2]);
}

}  // namespace
}  // namespace roleshare
