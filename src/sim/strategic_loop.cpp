#include "sim/strategic_loop.hpp"

#include <optional>

#include "econ/foundation_schedule.hpp"
#include "econ/optimizer.hpp"
#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"
#include "game/best_response.hpp"
#include "sim/experiment_runner.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config) {
  const std::size_t threads =
      util::ThreadPool::resolve_thread_count(config.threads);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  return run_strategic_loop(config, pool ? &*pool : nullptr);
}

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config,
                                       util::ThreadPool* inner_pool) {
  RS_REQUIRE(config.rounds > 0, "at least one round");
  Network net(config.network);
  // The round engine's per-node loops and the best-response sweep below
  // share the one caller-owned pool — never two pools in one run.
  RoundEngine engine(net,
                     consensus::ConsensusParams::scaled_for(
                         net.accounts().total_stake()),
                     inner_pool);

  econ::StakeProportionalScheme foundation;
  econ::RoleBasedScheme role_based(config.costs);

  game::Profile profile(net.node_count(), config.initial);
  StrategicLoopResult result;
  // Churn state: per-(round, node) streams off the shared scenario-policy
  // root, so a strategic loop and a policy-driven defection run with the
  // same seed see the same join/leave pattern.
  const util::Rng policy_root = scenario_policy_root(config.network.seed);
  std::vector<std::uint8_t> was_live(net.node_count(), 1);

  for (std::size_t t = 0; t < config.rounds; ++t) {
    if (config.churn.enabled()) {
      apply_churn(net, config.churn, policy_root, t);
      for (std::size_t v = 0; v < profile.size(); ++v) {
        const auto id = static_cast<ledger::NodeId>(v);
        if (!net.live(id)) {
          profile[v] = game::Strategy::Offline;
        } else if (!was_live[v]) {
          profile[v] = config.initial;  // rejoined: restart from the seed
        }
        was_live[v] = net.live(id) ? 1 : 0;
      }
    }
    net.set_strategies(profile);
    const RoundResult round = engine.run_round();

    StrategicRoundStats stats;
    stats.round = round.round;
    stats.final_fraction = round.final_fraction;
    stats.non_empty_block = round.non_empty_block;
    stats.live = round.live_count;
    std::size_t coop = 0;
    for (const game::Strategy s : profile)
      if (s == game::Strategy::Cooperate) ++coop;
    stats.cooperation_fraction =
        static_cast<double>(coop) / static_cast<double>(round.live_count);

    // Rewards for this round, and the induced one-round game. Nodes know
    // their *true* roles when reasoning about deviations.
    const econ::RoleSnapshot& snap = *round.roles_true;
    game::GameConfig game_config{snap,
                                 config.costs,
                                 game::SchemeKind::StakeProportional,
                                 0.0,
                                 econ::RewardSplit(0.02, 0.03),
                                 {},
                                 0.685};

    if (config.scheme == SchemeChoice::FoundationStakeProportional) {
      game_config.bi = static_cast<double>(
          foundation.required_budget(round.round, snap));
      stats.bi_algos = round.non_empty_block
                           ? ledger::to_algos(static_cast<ledger::MicroAlgos>(
                                 game_config.bi))
                           : 0.0;
    } else {
      game_config.scheme = game::SchemeKind::RoleBased;
      const ledger::MicroAlgos bi =
          role_based.required_budget(round.round, snap);
      game_config.bi = static_cast<double>(bi);
      game_config.split = role_based.last_split();
      // Liveness set Y: every online Other is needed to relay — the
      // conservative assumption the Theorem-3 bounds were derived under.
      game_config.sync_set.assign(snap.node_count(), false);
      for (std::size_t v = 0; v < snap.node_count(); ++v) {
        if (snap.role(static_cast<ledger::NodeId>(v)) ==
                consensus::Role::Other &&
            snap.stake(static_cast<ledger::NodeId>(v)) > 0)
          game_config.sync_set[v] = true;
      }
      stats.bi_algos =
          round.non_empty_block ? ledger::to_algos(bi) : 0.0;
    }
    result.total_reward_algos += stats.bi_algos;
    result.rounds.push_back(stats);

    // Myopic best responses for the next round (one sweep). Each node's
    // response reads only the frozen previous profile and writes its own
    // slot, so the population iteration fans out across the pool.
    const game::AlgorandGame game(game_config);
    game::Profile next = profile;
    // Per-index claiming, not chunks: each best response is a heavy game
    // evaluation, and populations are often smaller than a single chunk.
    engine.executor().for_each_index(profile.size(), [&](std::size_t v) {
      const auto id = static_cast<ledger::NodeId>(v);
      if (!net.live(id)) return;  // departed nodes stay Offline
      next[v] = game::best_response(game, profile, id);
    });
    profile = std::move(next);
  }

  std::size_t coop = 0;
  for (const game::Strategy s : profile)
    if (s == game::Strategy::Cooperate) ++coop;
  result.final_cooperation =
      static_cast<double>(coop) / static_cast<double>(net.live_count());
  return result;
}

StrategicPayload::StrategicPayload(std::size_t rounds, AggBackend backend,
                                   const StreamingAggConfig& streaming)
    : coop_(make_accumulator(backend, rounds, streaming)),
      final_(make_accumulator(backend, rounds, streaming)),
      reward_(make_accumulator(backend, rounds, streaming)),
      total_reward_(backend),
      final_coop_(backend) {}

StrategicPayload::StrategicPayload(std::unique_ptr<RoundAccumulator> coop,
                                   std::unique_ptr<RoundAccumulator> final_acc,
                                   std::unique_ptr<RoundAccumulator> reward,
                                   ScalarBank total_reward,
                                   ScalarBank final_coop)
    : coop_(std::move(coop)),
      final_(std::move(final_acc)),
      reward_(std::move(reward)),
      total_reward_(std::move(total_reward)),
      final_coop_(std::move(final_coop)) {}

void StrategicPayload::record_round(std::size_t round_index,
                                    double cooperation_fraction,
                                    double final_fraction,
                                    double reward_algos) {
  coop_->record(round_index, cooperation_fraction);
  final_->record(round_index, final_fraction);
  reward_->record(round_index, reward_algos);
}

void StrategicPayload::record_run(double total_reward_algos,
                                  double final_cooperation) {
  total_reward_.record(total_reward_algos);
  final_coop_.record(final_cooperation);
}

void StrategicPayload::merge(const StrategicPayload& next) {
  coop_->merge(*next.coop_);
  final_->merge(*next.final_);
  reward_->merge(*next.reward_);
  total_reward_.merge(next.total_reward_);
  final_coop_.merge(next.final_coop_);
}

StrategicEnsembleResult StrategicPayload::finalize(
    const PartialEnvelope& envelope) const {
  StrategicEnsembleResult out;
  out.cooperation_series = coop_->mean_series();
  out.final_series = final_->mean_series();
  out.reward_series = reward_->mean_series();
  // The historical reduction summed the per-run scalars left to right
  // and divided by the executed run count; ScalarBank::sum replays that
  // exactly under the exact backend.
  const auto executed = static_cast<double>(envelope.runs_executed());
  out.mean_total_reward_algos = total_reward_.sum() / executed;
  out.mean_final_cooperation = final_coop_.sum() / executed;
  out.accumulator_bytes = accumulator_bytes();
  return out;
}

std::size_t StrategicPayload::accumulator_bytes() const {
  return coop_->memory_bytes() + final_->memory_bytes() +
         reward_->memory_bytes() + total_reward_.memory_bytes() +
         final_coop_.memory_bytes();
}

util::json::Value StrategicPayload::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("coop", coop_->to_json());
  v.set("final", final_->to_json());
  v.set("reward", reward_->to_json());
  v.set("total_reward", total_reward_.to_json());
  v.set("final_coop", final_coop_.to_json());
  return v;
}

StrategicPayload StrategicPayload::from_json(const util::json::Value& value,
                                             const PartialEnvelope& envelope) {
  StrategicPayload p(accumulator_from_json(value.at("coop")),
                     accumulator_from_json(value.at("final")),
                     accumulator_from_json(value.at("reward")),
                     ScalarBank::from_json(value.at("total_reward")),
                     ScalarBank::from_json(value.at("final_coop")));
  RS_REQUIRE(p.coop_->backend() == envelope.backend &&
                 p.final_->backend() == envelope.backend &&
                 p.reward_->backend() == envelope.backend,
             "partial JSON accumulator backends disagree with the envelope");
  RS_REQUIRE(p.coop_->rounds() == envelope.rounds &&
                 p.final_->rounds() == envelope.rounds &&
                 p.reward_->rounds() == envelope.rounds,
             "partial JSON accumulator round counts disagree with the "
             "envelope");
  RS_REQUIRE(p.total_reward_.backend() == envelope.backend &&
                 p.final_coop_.backend() == envelope.backend,
             "partial JSON scalar-bank backend disagrees with the envelope");
  return p;
}

util::json::Value strategic_spec_echo(const StrategicEnsembleConfig& config) {
  using util::json::Value;
  Value v = Value::object();
  v.set("experiment", std::string(StrategicPayload::kKind));
  v.set("network", network_spec_echo(config.base.network));
  v.set("rounds", config.base.rounds);
  v.set("scheme", config.base.scheme == SchemeChoice::FoundationStakeProportional
                      ? "foundation"
                      : "role-based");
  v.set("leader_cost", config.base.costs.leader_cost());
  v.set("committee_cost", config.base.costs.committee_cost());
  v.set("other_cost", config.base.costs.other_cost());
  v.set("defection_cost", config.base.costs.defection_cost());
  v.set("initial_strategy", static_cast<int>(config.base.initial));
  v.set("churn_leave", config.base.churn.leave_probability);
  v.set("churn_join", config.base.churn.join_probability);
  v.set("churn_min_live", config.base.churn.min_live);
  v.set("runs", config.runs);
  v.set("agg", to_string(config.agg));
  v.set("reservoir_capacity", config.streaming.reservoir_capacity);
  Value grid = Value::array();
  for (const double q : config.streaming.p2_grid) grid.push_back(q);
  v.set("p2_grid", std::move(grid));
  return v;
}

StrategicPartial run_strategic_partial(const StrategicEnsembleConfig& config) {
  RS_REQUIRE(config.base.rounds > 0, "at least one round");
  const ExperimentSpec spec{config.runs,    config.base.rounds,
                            config.base.network.seed, config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const ResolvedShard shard = resolve_shard(spec);
  StrategicPartial partial(
      make_envelope(StrategicPayload::kKind,
                    spec_hash_hex(strategic_spec_echo(config)), config.agg,
                    config.runs, config.base.rounds, shard.begin, shard.end),
      StrategicPayload(config.base.rounds, config.agg, config.streaming));

  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        StrategicLoopConfig run_config = config.base;
        run_config.network.seed = rng.seed_material();
        // The engine already applied the no-oversubscription policy:
        // ctx.inner_pool is the (possibly null) shared within-run pool.
        return run_strategic_loop(run_config, ctx.inner_pool);
      },
      [&](std::size_t, StrategicLoopResult run) {
        StrategicPayload& payload = partial.payload();
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          payload.record_round(r, run.rounds[r].cooperation_fraction,
                               run.rounds[r].final_fraction,
                               run.rounds[r].bi_algos);
        }
        payload.record_run(run.total_reward_algos, run.final_cooperation);
      });
  return partial;
}

StrategicEnsembleResult run_strategic_ensemble(
    const StrategicEnsembleConfig& config) {
  return run_strategic_partial(config).finalize();
}

}  // namespace roleshare::sim
