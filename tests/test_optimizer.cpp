#include "econ/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace roleshare::econ {
namespace {

BoundInputs paper_inputs() {
  BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.stake_others = 50'000'000.0 - 26 - 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  in.min_stake_other = 10;
  return in;
}

TEST(Optimizer, FindsFeasibleMinimumNearPaperValue) {
  const RewardOptimizer opt;
  const OptimizerResult r = opt.optimize(paper_inputs(), CostModel{});
  ASSERT_TRUE(r.feasible);
  // The paper reports ~5.2 Algos at (0.02, 0.03); the true optimum pushes
  // gamma slightly higher, so the minimized B_i lands just above the
  // gamma=1 limit of 5.0 Algos and below the paper's point.
  const double bi_algos = r.min_bi / 1e6;
  EXPECT_GT(bi_algos, 4.9);
  EXPECT_LT(bi_algos, 5.6);
  // Small alpha/beta, large gamma — Fig-5's qualitative shape.
  EXPECT_LT(r.split.alpha, 0.1);
  EXPECT_LT(r.split.beta, 0.1);
  EXPECT_GT(r.split.gamma(), 0.8);
}

TEST(Optimizer, ResultSatisfiesItsOwnBounds) {
  const RewardOptimizer opt;
  const OptimizerResult r = opt.optimize(paper_inputs(), CostModel{});
  ASSERT_TRUE(r.feasible);
  const BiBounds check =
      compute_bi_bounds(r.split, paper_inputs(), CostModel{});
  ASSERT_TRUE(check.feasible);
  EXPECT_GT(r.min_bi, check.required() * 0.9999);
}

TEST(Optimizer, NoGridNeighborBeatsResult) {
  const RewardOptimizer opt;
  const BoundInputs in = paper_inputs();
  const OptimizerResult r = opt.optimize(in, CostModel{});
  ASSERT_TRUE(r.feasible);
  // Probe a local neighborhood around the incumbent.
  for (const double da : {-0.005, 0.0, 0.005}) {
    for (const double db : {-0.005, 0.0, 0.005}) {
      const double a = r.split.alpha + da;
      const double b = r.split.beta + db;
      if (a <= 0 || b <= 0 || a + b >= 1) continue;
      const BiBounds probe =
          compute_bi_bounds(RewardSplit(a, b), in, CostModel{});
      if (!probe.feasible) continue;
      EXPECT_GE(probe.required() * (1 + 1e-6), r.bounds.required() * 0.999)
          << "better neighbor at (" << a << ", " << b << ")";
    }
  }
}

TEST(Optimizer, DeterministicAcrossCalls) {
  const RewardOptimizer opt;
  const OptimizerResult a = opt.optimize(paper_inputs(), CostModel{});
  const OptimizerResult b = opt.optimize(paper_inputs(), CostModel{});
  EXPECT_DOUBLE_EQ(a.min_bi, b.min_bi);
  EXPECT_DOUBLE_EQ(a.split.alpha, b.split.alpha);
  EXPECT_DOUBLE_EQ(a.split.beta, b.split.beta);
}

TEST(Optimizer, HigherCommitteeCostsRaiseBi) {
  const RewardOptimizer opt;
  const OptimizerResult base = opt.optimize(paper_inputs(), CostModel{});
  const CostModel expensive = CostModel::from_role_costs(16, 200, 6, 5);
  const OptimizerResult costly = opt.optimize(paper_inputs(), expensive);
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(costly.feasible);
  EXPECT_GE(costly.min_bi, base.min_bi);
}

TEST(Optimizer, SnapshotOverloadAgreesWithInputs) {
  using consensus::Role;
  const RoleSnapshot snap(
      {Role::Leader, Role::Leader, Role::Committee, Role::Committee,
       Role::Other, Role::Other, Role::Other, Role::Other},
      {3, 5, 10, 12, 40, 60, 25, 80});
  const RewardOptimizer opt;
  const OptimizerResult via_snapshot = opt.optimize(snap, CostModel{});
  const OptimizerResult via_inputs =
      opt.optimize(BoundInputs::from_snapshot(snap), CostModel{});
  EXPECT_DOUBLE_EQ(via_snapshot.min_bi, via_inputs.min_bi);
}

TEST(Optimizer, MarginMakesInequalityStrict) {
  OptimizerConfig config;
  config.margin = 0.05;
  const RewardOptimizer opt(config);
  const OptimizerResult r = opt.optimize(paper_inputs(), CostModel{});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_bi, r.bounds.required() * 1.05,
              r.bounds.required() * 1e-9);
}

TEST(Optimizer, RejectsBadConfig) {
  OptimizerConfig config;
  config.margin = -0.1;
  EXPECT_THROW(RewardOptimizer{config}, std::invalid_argument);
  config = OptimizerConfig{};
  config.min_share = 0.0;
  EXPECT_THROW(RewardOptimizer{config}, std::invalid_argument);
  config = OptimizerConfig{};
  config.min_share = 0.5;
  EXPECT_THROW(RewardOptimizer{config}, std::invalid_argument);
}

TEST(Optimizer, ClosedFormMatchesAnalyticOptimum) {
  // gamma* = D / (A + B + D(1+C)) and B_i* = A + B + D(1+C); see
  // optimizer.hpp for the derivation.
  const BoundInputs in = paper_inputs();
  const CostModel costs;
  const double a_num = (16.0 - 5.0) * in.stake_leaders / 1.0;
  const double b_num = (12.0 - 5.0) * in.stake_committee / 1.0;
  const double d_num = (6.0 - 5.0) * in.stake_others / 10.0;
  const double c_slope = in.stake_leaders / (in.stake_others + 1.0) +
                         in.stake_committee / (in.stake_others + 1.0);
  const double expected_bi = a_num + b_num + d_num * (1.0 + c_slope);

  const RewardOptimizer opt;
  const OptimizerResult r = opt.optimize(in, costs);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_bi, expected_bi, expected_bi * 1e-4);
  EXPECT_NEAR(r.split.gamma(), d_num / expected_bi, 1e-6);
}

TEST(Optimizer, DegenerateMostlyCommitteePopulationStaysFeasible) {
  // The regime that breaks naive grid search: S_M >> S_K squeezes the
  // feasible (alpha, beta) region into a sliver near alpha+beta ~ 1.
  BoundInputs in;
  in.stake_leaders = 242;
  in.stake_committee = 3518;
  in.stake_others = 14;
  in.min_stake_leader = 14;
  in.min_stake_committee = 2;
  in.min_stake_other = 1;
  const RewardOptimizer opt;
  const OptimizerResult r = opt.optimize(in, CostModel{});
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.min_bi, 0.0);
  EXPECT_LT(r.split.gamma(), 0.01);  // gamma squeezed, but positive
  // And the returned split satisfies its own bounds.
  const BiBounds check = compute_bi_bounds(r.split, in, CostModel{});
  EXPECT_TRUE(check.feasible);
  EXPECT_GE(r.min_bi, check.required());
}

TEST(Optimizer, ScalesWithMinOtherStake) {
  // Raising s*_k by excluding small holders should scale B_i down ~1/s*_k
  // (the Fig-7(c) lever).
  const RewardOptimizer opt;
  BoundInputs in = paper_inputs();
  const double base = opt.optimize(in, CostModel{}).min_bi;
  in.min_stake_other = 20;
  const double filtered = opt.optimize(in, CostModel{}).min_bi;
  EXPECT_NEAR(filtered / base, 0.5, 0.05);
}

}  // namespace
}  // namespace roleshare::econ
