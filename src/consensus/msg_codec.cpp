#include "consensus/msg_codec.hpp"

namespace roleshare::consensus {

namespace {

constexpr std::uint8_t kTagVote = 0x03;
constexpr std::uint8_t kTagProposal = 0x04;
constexpr std::uint8_t kTagCredential = 0x05;

void put_sortition(ledger::Encoder& enc,
                   const crypto::SortitionResult& sortition) {
  enc.put_u64(sortition.sub_users);
  enc.put_hash(sortition.vrf.output);
  enc.put_hash(sortition.vrf.proof.value);
}

crypto::SortitionResult get_sortition(ledger::Decoder& dec) {
  crypto::SortitionResult res;
  res.sub_users = dec.get_u64();
  res.vrf.output = dec.get_hash();
  res.vrf.proof = crypto::Signature{dec.get_hash()};
  return res;
}

}  // namespace

Credential Credential::for_proposal(const BlockProposal& proposal,
                                    std::uint64_t round) {
  Credential c;
  c.proposer = proposal.proposer;
  c.proposer_key = proposal.proposer_key;
  c.round = round;
  c.sortition = proposal.sortition;
  c.priority = proposal.priority;
  return c;
}

bool Credential::verify(const crypto::VrfInput& input, std::int64_t stake,
                        const crypto::SortitionParams& params) const {
  const std::uint64_t sub_users = crypto::verify_sortition(
      proposer_key, input, sortition.vrf, stake, params);
  if (sub_users == 0 || sub_users != sortition.sub_users) return false;
  return priority == sortition.priority();
}

std::vector<std::uint8_t> encode_vote(const Vote& vote) {
  ledger::Encoder enc;
  enc.put_u8(kTagVote);
  enc.put_u32(vote.voter);
  enc.put_hash(vote.voter_key.value);
  enc.put_u64(vote.round);
  enc.put_u32(vote.step);
  enc.put_hash(vote.value);
  enc.put_u64(vote.weight);
  put_sortition(enc, vote.sortition);
  return enc.take();
}

Vote decode_vote(std::span<const std::uint8_t> bytes) {
  ledger::Decoder dec(bytes);
  if (dec.get_u8() != kTagVote) throw DecodeError("not a voting message");
  Vote vote;
  vote.voter = dec.get_u32();
  vote.voter_key = crypto::PublicKey{dec.get_hash()};
  vote.round = dec.get_u64();
  vote.step = dec.get_u32();
  vote.value = dec.get_hash();
  vote.weight = dec.get_u64();
  vote.sortition = get_sortition(dec);
  if (vote.weight == 0) throw DecodeError("zero-weight vote");
  if (vote.weight != vote.sortition.sub_users)
    throw DecodeError("vote weight/sortition mismatch");
  dec.expect_done();
  return vote;
}

std::vector<std::uint8_t> encode_proposal(const BlockProposal& proposal) {
  ledger::Encoder enc;
  enc.put_u8(kTagProposal);
  enc.put_u32(proposal.proposer);
  enc.put_hash(proposal.proposer_key.value);
  put_sortition(enc, proposal.sortition);
  enc.put_u64(proposal.priority);
  enc.put_bytes(ledger::encode_block(proposal.block));
  return enc.take();
}

BlockProposal decode_proposal(std::span<const std::uint8_t> bytes) {
  ledger::Decoder dec(bytes);
  if (dec.get_u8() != kTagProposal)
    throw DecodeError("not a block-proposal message");
  BlockProposal p;
  p.proposer = dec.get_u32();
  p.proposer_key = crypto::PublicKey{dec.get_hash()};
  p.sortition = get_sortition(dec);
  p.priority = dec.get_u64();
  const auto block_bytes = dec.get_bytes();
  p.block = ledger::decode_block(block_bytes);
  if (p.sortition.sub_users == 0)
    throw DecodeError("proposal without winning sortition");
  dec.expect_done();
  return p;
}

std::vector<std::uint8_t> encode_credential(const Credential& credential) {
  ledger::Encoder enc;
  enc.put_u8(kTagCredential);
  enc.put_u32(credential.proposer);
  enc.put_hash(credential.proposer_key.value);
  enc.put_u64(credential.round);
  put_sortition(enc, credential.sortition);
  enc.put_u64(credential.priority);
  return enc.take();
}

Credential decode_credential(std::span<const std::uint8_t> bytes) {
  ledger::Decoder dec(bytes);
  if (dec.get_u8() != kTagCredential)
    throw DecodeError("not a credential message");
  Credential c;
  c.proposer = dec.get_u32();
  c.proposer_key = crypto::PublicKey{dec.get_hash()};
  c.round = dec.get_u64();
  c.sortition = get_sortition(dec);
  c.priority = dec.get_u64();
  dec.expect_done();
  return c;
}

}  // namespace roleshare::consensus
