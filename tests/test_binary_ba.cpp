#include "consensus/binary_ba.hpp"

#include <gtest/gtest.h>

#include "consensus/roles.hpp"
#include "util/rng.hpp"

namespace roleshare::consensus {
namespace {

const crypto::Hash256 kBlock = crypto::HashBuilder("block").build();
const crypto::Hash256 kEmpty = crypto::HashBuilder("empty").build();

TEST(BinaryBa, HappyPathConcludesFirstIteration) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  EXPECT_TRUE(ba.running());
  EXPECT_EQ(ba.vote_value(), kBlock);
  EXPECT_EQ(ba.step_number(), kFirstBinaryStep);
  ba.advance(kBlock);  // quorum on the block in sub-step A
  EXPECT_EQ(ba.status(), BaStatus::ConcludedBlock);
  EXPECT_EQ(ba.result(), kBlock);
  EXPECT_TRUE(ba.concluded_in_first_iteration());
}

TEST(BinaryBa, EmptyQuorumConcludesEmptyInSubStepB) {
  BinaryBaState ba(kEmpty, kEmpty, 11);
  ba.advance(kEmpty);  // sub-step A: quorum on empty does NOT conclude
  EXPECT_TRUE(ba.running());
  EXPECT_EQ(ba.vote_value(), kEmpty);
  ba.advance(kEmpty);  // sub-step B: quorum on empty concludes empty
  EXPECT_EQ(ba.status(), BaStatus::ConcludedEmpty);
  EXPECT_EQ(ba.result(), kEmpty);
  EXPECT_FALSE(ba.concluded_in_first_iteration());
}

TEST(BinaryBa, TimeoutsFollowDefaults) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  ba.advance(std::nullopt);  // A timeout: revert to initial
  EXPECT_EQ(ba.vote_value(), kBlock);
  ba.advance(std::nullopt);  // B timeout: vote empty
  EXPECT_EQ(ba.vote_value(), kEmpty);
  ba.advance(std::nullopt, /*coin=*/true);  // C timeout: coin -> initial
  EXPECT_EQ(ba.vote_value(), kBlock);
  EXPECT_EQ(ba.iteration(), 2u);
  EXPECT_TRUE(ba.running());
}

TEST(BinaryBa, CoinFalsePicksEmpty) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  ba.advance(std::nullopt);
  ba.advance(std::nullopt);
  ba.advance(std::nullopt, /*coin=*/false);
  EXPECT_EQ(ba.vote_value(), kEmpty);
}

TEST(BinaryBa, QuorumInSubStepCOverridesCoin) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  ba.advance(std::nullopt);
  ba.advance(std::nullopt);
  ba.advance(kBlock, /*coin=*/false);  // counted quorum wins over coin
  EXPECT_EQ(ba.vote_value(), kBlock);
}

TEST(BinaryBa, BlockQuorumInLaterIterationIsNotFinal) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  // Burn iteration 1 with timeouts.
  ba.advance(std::nullopt);
  ba.advance(std::nullopt);
  ba.advance(std::nullopt, true);
  // Iteration 2, sub-step A: block quorum concludes but not "first
  // iteration" — the node will not cast a FINAL vote.
  ba.advance(kBlock);
  EXPECT_EQ(ba.status(), BaStatus::ConcludedBlock);
  EXPECT_FALSE(ba.concluded_in_first_iteration());
  EXPECT_EQ(ba.iteration(), 2u);
}

TEST(BinaryBa, NonEmptyQuorumInSubStepBAdoptsValue) {
  BinaryBaState ba(kEmpty, kEmpty, 11);
  ba.advance(std::nullopt);  // A timeout
  ba.advance(kBlock);        // B: non-empty quorum -> adopt, keep running
  EXPECT_TRUE(ba.running());
  EXPECT_EQ(ba.vote_value(), kBlock);
}

TEST(BinaryBa, ExhaustsAfterMaxIterations) {
  BinaryBaState ba(kBlock, kEmpty, 3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ba.running());
    ba.advance(std::nullopt);
    ba.advance(std::nullopt);
    ba.advance(std::nullopt, true);
  }
  EXPECT_EQ(ba.status(), BaStatus::Exhausted);
}

TEST(BinaryBa, StepNumbersAdvanceSequentially) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  EXPECT_EQ(ba.step_number(), kFirstBinaryStep);
  ba.advance(std::nullopt);
  EXPECT_EQ(ba.step_number(), kFirstBinaryStep + 1);
  ba.advance(std::nullopt);
  EXPECT_EQ(ba.step_number(), kFirstBinaryStep + 2);
  ba.advance(std::nullopt, true);
  EXPECT_EQ(ba.step_number(), kFirstBinaryStep + 3);
}

TEST(BinaryBa, AdvanceAfterConclusionThrows) {
  BinaryBaState ba(kBlock, kEmpty, 11);
  ba.advance(kBlock);
  EXPECT_THROW(ba.advance(kBlock), std::logic_error);
}

TEST(BinaryBa, RejectsZeroIterations) {
  EXPECT_THROW(BinaryBaState(kBlock, kEmpty, 0), std::invalid_argument);
}

// Safety property across adversarial-ish schedules: two machines fed the
// same per-step counted results always conclude the same value.
class BinaryBaAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BinaryBaAgreement, IdenticalViewsAgree) {
  util::Rng rng(1000 + GetParam());
  BinaryBaState a(kBlock, kEmpty, 11);
  BinaryBaState b(kBlock, kEmpty, 11);
  while (a.running() && b.running()) {
    std::optional<crypto::Hash256> counted;
    const int c = static_cast<int>(rng.uniform_int(0, 2));
    if (c == 1) counted = kBlock;
    if (c == 2) counted = kEmpty;
    const bool coin = rng.bernoulli(0.5);
    a.advance(counted, coin);
    b.advance(counted, coin);
  }
  EXPECT_EQ(a.status(), b.status());
  if (a.status() == BaStatus::ConcludedBlock) {
    EXPECT_EQ(a.result(), b.result());
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, BinaryBaAgreement,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace roleshare::consensus
