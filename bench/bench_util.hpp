// Shared helpers for the table/figure reproduction binaries: consistent
// headers and simple argument parsing (--key=value overrides so the same
// binary can be run at paper scale or smoke-test scale).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace roleshare::bench {

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("Fooladgar et al., \"On Incentive Compatible Role-Based Reward\n"
              "Distribution in Algorand\" (DSN 2020) — RoleShare reproduction\n");
  std::printf("================================================================\n");
}

/// Parses "--name=value" from argv; returns fallback when absent.
inline long long arg_int(int argc, char** argv, const std::string& name,
                         long long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return std::atoll(arg.substr(prefix.size()).c_str());
  }
  return fallback;
}

}  // namespace roleshare::bench
