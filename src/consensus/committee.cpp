#include "consensus/committee.hpp"

#include "util/require.hpp"

namespace roleshare::consensus {

std::uint64_t Committee::total_weight() const {
  std::uint64_t total = 0;
  for (const CommitteeMember& m : members) total += m.weight;
  return total;
}

bool Committee::contains(ledger::NodeId node) const {
  return find(node) != nullptr;
}

const CommitteeMember* Committee::find(ledger::NodeId node) const {
  for (const CommitteeMember& m : members)
    if (m.node == node) return &m;
  return nullptr;
}

Committee elect_committee(const std::vector<crypto::KeyPair>& keys,
                          const std::vector<std::int64_t>& stakes,
                          std::uint64_t round, std::uint32_t step,
                          const crypto::Hash256& prev_seed,
                          std::uint64_t expected_stake,
                          std::int64_t total_stake,
                          const util::InnerExecutor& exec) {
  Committee committee;
  std::vector<crypto::SortitionResult> draws;
  elect_committee_into(keys, stakes, round, step, prev_seed, expected_stake,
                       total_stake, committee, draws, exec);
  return committee;
}

void elect_committee_into(const std::vector<crypto::KeyPair>& keys,
                          const std::vector<std::int64_t>& stakes,
                          std::uint64_t round, std::uint32_t step,
                          const crypto::Hash256& prev_seed,
                          std::uint64_t expected_stake,
                          std::int64_t total_stake, Committee& committee,
                          std::vector<crypto::SortitionResult>& draws_scratch,
                          const util::InnerExecutor& exec) {
  RS_REQUIRE(keys.size() == stakes.size(), "keys/stakes size mismatch");
  committee.round = round;
  committee.step = step;
  committee.members.clear();

  const crypto::VrfInput input{round, step, prev_seed};
  const crypto::SortitionParams params{expected_stake, total_stake};
  // The VRF evaluations are the expensive part; the winner collection is a
  // cheap serial scan in node order, which keeps `members` deterministic.
  crypto::sortition_batch_into(keys, input, stakes, params, draws_scratch,
                               exec);
  for (std::size_t i = 0; i < draws_scratch.size(); ++i) {
    if (draws_scratch[i].selected()) {
      committee.members.push_back(
          CommitteeMember{static_cast<ledger::NodeId>(i),
                          draws_scratch[i].sub_users, draws_scratch[i]});
    }
  }
}

}  // namespace roleshare::consensus
