#include "game/welfare.hpp"

#include <limits>

#include "util/require.hpp"

namespace roleshare::game {

ProfileMetrics analyze_profile(const AlgorandGame& game,
                               const Profile& profile) {
  RS_REQUIRE(profile.size() == game.player_count(), "profile size mismatch");
  ProfileMetrics m;
  m.block_created = game.block_created(profile);

  const std::vector<double> payoffs = game.payoffs(profile);
  std::size_t coop = 0;
  const econ::CostModel& costs = game.config().costs;
  for (std::size_t v = 0; v < profile.size(); ++v) {
    m.social_welfare += payoffs[v];
    switch (profile[v]) {
      case Strategy::Cooperate:
        ++coop;
        m.total_cost += costs.cooperation_cost(
            game.config().snapshot.role(static_cast<ledger::NodeId>(v)));
        break;
      case Strategy::Defect:
      case Strategy::Offline:
        m.total_cost += costs.defection_cost();
        break;
    }
  }
  // welfare = rewards − costs, so expenditure falls out without re-deriving
  // the per-scheme reward arithmetic.
  m.designer_expenditure = m.social_welfare + m.total_cost;
  m.cooperation_rate =
      static_cast<double>(coop) / static_cast<double>(profile.size());
  return m;
}

ProfileMetrics cooperative_benchmark(const AlgorandGame& game) {
  return analyze_profile(game, all_cooperate(game.player_count()));
}

double anarchy_ratio(const AlgorandGame& game, const Profile& equilibrium) {
  const double best = cooperative_benchmark(game).social_welfare;
  const double actual = analyze_profile(game, equilibrium).social_welfare;
  if (best <= 0.0 && actual <= 0.0) return 1.0;
  if (actual <= 0.0) return std::numeric_limits<double>::infinity();
  return best / actual;
}

}  // namespace roleshare::game
