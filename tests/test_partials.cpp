// The universal experiment-partial layer (sim/partial.hpp): envelope
// compatibility checks that name both sides, cross-kind rejection, JSON
// round-trips for all three experiment payloads, kill-and-resume
// bit-identity, property-style randomized shard splits, shard-window
// tiling validation, and the ScalarBank reduction primitive.
#include "sim/partial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/defection_experiment.hpp"
#include "sim/reward_experiment.hpp"
#include "sim/strategic_loop.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {
namespace {

constexpr std::size_t kRuns = 6;

DefectionExperimentConfig small_defection(AggBackend agg) {
  DefectionExperimentConfig config;
  config.network.node_count = 50;
  config.network.seed = 4242;
  config.network.defection_rate = 0.15;
  config.runs = kRuns;
  config.rounds = 3;
  config.agg = agg;
  return config;
}

RewardExperimentConfig small_reward(AggBackend agg) {
  RewardExperimentConfig config;
  config.node_count = 2'000;
  config.seed = 7;
  config.runs = kRuns;
  config.rounds_per_run = 2;
  config.agg = agg;
  return config;
}

StrategicEnsembleConfig small_strategic(AggBackend agg) {
  StrategicEnsembleConfig config;
  config.base.network.node_count = 40;
  config.base.network.seed = 5;
  config.base.rounds = 3;
  config.base.scheme = SchemeChoice::RoleBasedAdaptive;
  config.runs = kRuns;
  config.agg = agg;
  return config;
}

template <typename Config, typename RunPartialFn>
auto partial_for_window(Config config, std::size_t begin, std::size_t end,
                        RunPartialFn run) {
  config.shard = RunShard{begin, end};
  return run(config);
}

// ---------------------------------------------------------------------
// Envelope contract.

TEST(PartialEnvelope, ValidatesShape) {
  EXPECT_NO_THROW(make_envelope("defection", "abc", AggBackend::Exact, 8, 3,
                                0, 8));
  // Empty window.
  EXPECT_THROW(make_envelope("defection", "abc", AggBackend::Exact, 8, 3, 4,
                             4),
               std::invalid_argument);
  // Window past the run count.
  EXPECT_THROW(make_envelope("defection", "abc", AggBackend::Exact, 8, 3, 4,
                             9),
               std::invalid_argument);
  // Zero rounds.
  EXPECT_THROW(make_envelope("defection", "abc", AggBackend::Exact, 8, 0, 0,
                             8),
               std::invalid_argument);
}

TEST(PartialEnvelope, ExtendWindowGuards) {
  PartialEnvelope env =
      make_envelope("defection", "abc", AggBackend::Exact, 8, 3, 0, 4);
  env.extend_window(8);
  EXPECT_EQ(env.window_end, 8u);
  EXPECT_FALSE(env.complete());
  EXPECT_THROW(env.extend_window(3), std::invalid_argument);  // < run_end
  EXPECT_THROW(env.extend_window(9), std::invalid_argument);  // > runs_total
}

TEST(PartialEnvelope, CheckMergeNamesBothSidesOnEveryMismatch) {
  const auto base = [] {
    return make_envelope("defection", "hash-a", AggBackend::Exact, 8, 3, 0,
                         4);
  };
  const auto expect_names = [](const PartialEnvelope& a,
                               const PartialEnvelope& b,
                               const std::string& lhs,
                               const std::string& rhs) {
    try {
      a.check_merge(b);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(lhs), std::string::npos) << what;
      EXPECT_NE(what.find(rhs), std::string::npos) << what;
    }
  };

  PartialEnvelope cross_kind =
      make_envelope("reward", "hash-a", AggBackend::Exact, 8, 3, 4, 8);
  expect_names(base(), cross_kind, "\"defection\"", "\"reward\"");

  PartialEnvelope wrong_hash =
      make_envelope("defection", "hash-b", AggBackend::Exact, 8, 3, 4, 8);
  expect_names(base(), wrong_hash, "hash-a", "hash-b");

  PartialEnvelope wrong_backend =
      make_envelope("defection", "hash-a", AggBackend::Streaming, 8, 3, 4, 8);
  expect_names(base(), wrong_backend, "exact", "streaming");

  PartialEnvelope wrong_runs =
      make_envelope("defection", "hash-a", AggBackend::Exact, 9, 3, 4, 8);
  expect_names(base(), wrong_runs, "8 total runs", "next has 9");

  PartialEnvelope wrong_rounds =
      make_envelope("defection", "hash-a", AggBackend::Exact, 8, 4, 4, 8);
  expect_names(base(), wrong_rounds, "3 rounds", "next has 4");

  PartialEnvelope gapped =
      make_envelope("defection", "hash-a", AggBackend::Exact, 8, 3, 6, 8);
  expect_names(base(), gapped, "ends at run 4", "begins at run 6");
}

TEST(PartialEnvelope, JsonRoundTrip) {
  PartialEnvelope env =
      make_envelope("strategic", "deadbeef", AggBackend::Streaming, 10, 4, 2,
                    7);
  env.extend_window(9);
  const PartialEnvelope restored =
      PartialEnvelope::from_json(util::json::parse(env.to_json().dump()));
  EXPECT_EQ(restored.kind, env.kind);
  EXPECT_EQ(restored.spec_hash, env.spec_hash);
  EXPECT_EQ(restored.backend, env.backend);
  EXPECT_EQ(restored.runs_total, env.runs_total);
  EXPECT_EQ(restored.rounds, env.rounds);
  EXPECT_EQ(restored.run_begin, env.run_begin);
  EXPECT_EQ(restored.run_end, env.run_end);
  EXPECT_EQ(restored.window_end, env.window_end);
  EXPECT_FALSE(restored.complete());
}

// ---------------------------------------------------------------------
// Cross-kind and cross-experiment rejection on real partials.

TEST(Partials, CrossKindLoadRejectedNamingBothKinds) {
  const RewardPartial reward = run_reward_partial(
      small_reward(AggBackend::Exact));
  const util::json::Value doc =
      util::json::parse(reward.to_json().dump());
  try {
    DefectionPartial::from_json(doc);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("\"reward\""), std::string::npos) << what;
    EXPECT_NE(what.find("\"defection\""), std::string::npos) << what;
  }
  // And the other two directions, spot-checked.
  EXPECT_THROW(StrategicPartial::from_json(doc), std::invalid_argument);
  EXPECT_NO_THROW(RewardPartial::from_json(doc));
}

TEST(Partials, MergeRejectsDifferentExperimentsNamingBothHashes) {
  DefectionPartial first = partial_for_window(
      small_defection(AggBackend::Exact), 0, 3, run_defection_partial);
  DefectionExperimentConfig other_config = small_defection(AggBackend::Exact);
  other_config.network.seed = 999;  // a different experiment
  const DefectionPartial alien =
      partial_for_window(other_config, 3, kRuns, run_defection_partial);
  ASSERT_NE(first.envelope().spec_hash, alien.envelope().spec_hash);
  try {
    first.merge(alien);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(first.envelope().spec_hash), std::string::npos)
        << what;
    EXPECT_NE(what.find(alien.envelope().spec_hash), std::string::npos)
        << what;
  }
}

TEST(Partials, SpecHashIgnoresThreadAndShardKnobs) {
  DefectionExperimentConfig a = small_defection(AggBackend::Exact);
  DefectionExperimentConfig b = a;
  b.threads = 7;
  b.inner_threads = 3;
  b.shard = RunShard{2, 4};
  EXPECT_EQ(spec_hash_hex(defection_spec_echo(a)),
            spec_hash_hex(defection_spec_echo(b)));
  b.network.defection_rate = 0.3;
  EXPECT_NE(spec_hash_hex(defection_spec_echo(a)),
            spec_hash_hex(defection_spec_echo(b)));
}

// ---------------------------------------------------------------------
// JSON round-trips for all three payloads, both backends.

TEST(Partials, JsonRoundTripIsExactForAllThreeFamilies) {
  for (const AggBackend agg : {AggBackend::Exact, AggBackend::Streaming}) {
    {
      const DefectionPartial partial =
          run_defection_partial(small_defection(agg));
      const DefectionPartial restored = DefectionPartial::from_json(
          util::json::parse(partial.to_json().dump()));
      EXPECT_EQ(restored.to_json().dump(), partial.to_json().dump())
          << "defection/" << to_string(agg);
    }
    {
      const RewardPartial partial = run_reward_partial(small_reward(agg));
      const RewardPartial restored = RewardPartial::from_json(
          util::json::parse(partial.to_json().dump()));
      EXPECT_EQ(restored.to_json().dump(), partial.to_json().dump())
          << "reward/" << to_string(agg);
      const RewardExperimentResult a = partial.finalize();
      const RewardExperimentResult b = restored.finalize();
      EXPECT_EQ(a.bi_algos, b.bi_algos);
      EXPECT_EQ(a.bi_per_round_mean, b.bi_per_round_mean);
      EXPECT_EQ(a.mean_bi, b.mean_bi);
      EXPECT_EQ(a.mean_total_stake, b.mean_total_stake);
      EXPECT_EQ(a.infeasible_rounds, b.infeasible_rounds);
    }
    {
      const StrategicPartial partial =
          run_strategic_partial(small_strategic(agg));
      const StrategicPartial restored = StrategicPartial::from_json(
          util::json::parse(partial.to_json().dump()));
      EXPECT_EQ(restored.to_json().dump(), partial.to_json().dump())
          << "strategic/" << to_string(agg);
      const StrategicEnsembleResult a = partial.finalize();
      const StrategicEnsembleResult b = restored.finalize();
      EXPECT_EQ(a.cooperation_series, b.cooperation_series);
      EXPECT_EQ(a.final_series, b.final_series);
      EXPECT_EQ(a.reward_series, b.reward_series);
      EXPECT_EQ(a.mean_total_reward_algos, b.mean_total_reward_algos);
      EXPECT_EQ(a.mean_final_cooperation, b.mean_final_cooperation);
    }
  }
}

// ---------------------------------------------------------------------
// Kill-and-resume: checkpoint after R runs, "crash" (serialize +
// reload), finish the window, compare bit-identical to an uninterrupted
// execution. Exercised for every family under the exact backend.

template <typename Config, typename RunPartialFn>
void expect_kill_and_resume_bit_identical(const Config& config,
                                          RunPartialFn run) {
  const auto uninterrupted = partial_for_window(config, 0, kRuns, run);

  // Checkpoint at run 2 — the partial declares the full window, then the
  // process "dies" and the checkpoint file is all that survives.
  auto checkpoint = partial_for_window(config, 0, 2, run);
  checkpoint.extend_window(kRuns);
  EXPECT_FALSE(checkpoint.complete());
  auto resumed = std::decay_t<decltype(checkpoint)>::from_json(
      util::json::parse(checkpoint.to_json().dump()));
  EXPECT_EQ(resumed.run_end(), 2u);
  EXPECT_EQ(resumed.window_end(), kRuns);

  // Resume: execute the remainder in two sub-windows, with a second
  // crash-and-reload between them.
  resumed.merge(partial_for_window(config, 2, 4, run));
  resumed = std::decay_t<decltype(checkpoint)>::from_json(
      util::json::parse(resumed.to_json().dump()));
  resumed.merge(partial_for_window(config, 4, kRuns, run));

  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.to_json().dump(), uninterrupted.to_json().dump());
}

TEST(Partials, KillAndResumeBitIdenticalDefection) {
  expect_kill_and_resume_bit_identical(small_defection(AggBackend::Exact),
                                       run_defection_partial);
}

TEST(Partials, KillAndResumeBitIdenticalReward) {
  expect_kill_and_resume_bit_identical(small_reward(AggBackend::Exact),
                                       run_reward_partial);
}

TEST(Partials, KillAndResumeBitIdenticalStrategic) {
  expect_kill_and_resume_bit_identical(small_strategic(AggBackend::Exact),
                                       run_strategic_partial);
}

// ---------------------------------------------------------------------
// Property-style randomized shard splits: a random run range split into
// 1..5 random contiguous shards, merged in order, must reproduce the
// single-process partial bit for bit (exact) or within the documented
// streaming tolerance.

std::vector<std::size_t> random_split(util::Rng& rng, std::size_t runs) {
  const std::size_t shards = 1 + rng.uniform_int(0, 4);
  std::vector<std::size_t> cuts{0, runs};
  for (std::size_t s = 1; s < shards; ++s)
    cuts.push_back(1 + static_cast<std::size_t>(
                           rng.uniform_int(0, static_cast<long long>(runs) - 2)));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;  // boundaries 0 = c0 < c1 < ... < ck = runs
}

template <typename Config, typename RunPartialFn>
auto merge_random_shards(const Config& config,
                         const std::vector<std::size_t>& cuts,
                         RunPartialFn run) {
  auto merged = partial_for_window(config, cuts[0], cuts[1], run);
  for (std::size_t i = 1; i + 1 < cuts.size(); ++i)
    merged.merge(partial_for_window(config, cuts[i], cuts[i + 1], run));
  return merged;
}

void expect_series_close(const std::vector<double>& a,
                         const std::vector<double>& b, double tol,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << label << " index " << i;
}

TEST(Partials, RandomShardSplitsExactModeByteIdenticalAllFamilies) {
  util::Rng rng(2026);
  for (std::size_t trial = 0; trial < 3; ++trial) {
    const std::vector<std::size_t> cuts = random_split(rng, kRuns);
    {
      const auto config = small_defection(AggBackend::Exact);
      const auto whole =
          partial_for_window(config, 0, kRuns, run_defection_partial);
      EXPECT_EQ(merge_random_shards(config, cuts, run_defection_partial)
                    .to_json()
                    .dump(),
                whole.to_json().dump())
          << "defection trial " << trial;
    }
    {
      const auto config = small_reward(AggBackend::Exact);
      const auto whole =
          partial_for_window(config, 0, kRuns, run_reward_partial);
      EXPECT_EQ(merge_random_shards(config, cuts, run_reward_partial)
                    .to_json()
                    .dump(),
                whole.to_json().dump())
          << "reward trial " << trial;
    }
    {
      const auto config = small_strategic(AggBackend::Exact);
      const auto whole =
          partial_for_window(config, 0, kRuns, run_strategic_partial);
      EXPECT_EQ(merge_random_shards(config, cuts, run_strategic_partial)
                    .to_json()
                    .dump(),
                whole.to_json().dump())
          << "strategic trial " << trial;
    }
  }
}

TEST(Partials, RandomShardSplitsStreamingModeWithinTolerance) {
  // Streaming merges are not bit-identical (Chan mean combine, P² falls
  // back to the reservoir), but at test scale — runs far below the
  // reservoir capacity — every mean-type series must agree to rounding
  // with the exact single-process baseline.
  util::Rng rng(77);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    const std::vector<std::size_t> cuts = random_split(rng, kRuns);
    {
      const DefectionSeries exact =
          run_defection_experiment(small_defection(AggBackend::Exact));
      const auto merged = merge_random_shards(
          small_defection(AggBackend::Streaming), cuts,
          run_defection_partial);
      const DefectionSeries streamed = merged.finalize(0.2);
      ASSERT_EQ(streamed.rounds.size(), exact.rounds.size());
      for (std::size_t r = 0; r < exact.rounds.size(); ++r) {
        EXPECT_NEAR(streamed.rounds[r].final_pct, exact.rounds[r].final_pct,
                    1e-9);
        EXPECT_NEAR(streamed.rounds[r].none_pct, exact.rounds[r].none_pct,
                    1e-9);
      }
      expect_series_close(streamed.live_series, exact.live_series, 1e-9,
                          "defection live");
      EXPECT_EQ(streamed.runs_with_progress, exact.runs_with_progress);
    }
    {
      const RewardExperimentResult exact =
          run_reward_experiment(small_reward(AggBackend::Exact));
      const RewardExperimentResult streamed =
          merge_random_shards(small_reward(AggBackend::Streaming), cuts,
                              run_reward_partial)
              .finalize();
      expect_series_close(streamed.bi_per_round_mean, exact.bi_per_round_mean,
                          1e-9, "reward per-round");
      EXPECT_NEAR(streamed.mean_bi, exact.mean_bi, 1e-9);
      EXPECT_NEAR(streamed.mean_total_stake, exact.mean_total_stake, 1.0);
      EXPECT_EQ(streamed.infeasible_rounds, exact.infeasible_rounds);
      EXPECT_TRUE(streamed.bi_algos.empty());  // not materialized
    }
    {
      const StrategicEnsembleResult exact =
          run_strategic_ensemble(small_strategic(AggBackend::Exact));
      const StrategicEnsembleResult streamed =
          merge_random_shards(small_strategic(AggBackend::Streaming), cuts,
                              run_strategic_partial)
              .finalize();
      expect_series_close(streamed.cooperation_series,
                          exact.cooperation_series, 1e-9, "strategic coop");
      expect_series_close(streamed.final_series, exact.final_series, 1e-9,
                          "strategic final");
      expect_series_close(streamed.reward_series, exact.reward_series, 1e-9,
                          "strategic reward");
      EXPECT_NEAR(streamed.mean_total_reward_algos,
                  exact.mean_total_reward_algos, 1e-9);
      EXPECT_NEAR(streamed.mean_final_cooperation,
                  exact.mean_final_cooperation, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------
// Shard-window tiling validation (the merge_partials pre-flight).

TEST(ShardTiling, AcceptsExactTilings) {
  EXPECT_NO_THROW(check_shard_tiling({{0, 8, 8, "only"}}, 8));
  EXPECT_NO_THROW(check_shard_tiling(
      {{4, 8, 8, "b"}, {0, 2, 2, "a"}, {2, 4, 4, "mid"}}, 8));
}

TEST(ShardTiling, RejectsOverlapNamingBothShards) {
  try {
    check_shard_tiling({{0, 4, 4, "s0.json"}, {2, 8, 8, "s1.json"}}, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("overlap"), std::string::npos) << what;
    EXPECT_NE(what.find("s0.json"), std::string::npos) << what;
    EXPECT_NE(what.find("s1.json"), std::string::npos) << what;
  }
}

TEST(ShardTiling, RejectsGapNamingBothShards) {
  try {
    check_shard_tiling({{0, 2, 2, "s0.json"}, {4, 8, 8, "s1.json"}}, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gap"), std::string::npos) << what;
    EXPECT_NE(what.find("ends at run 2"), std::string::npos) << what;
    EXPECT_NE(what.find("begins at run 4"), std::string::npos) << what;
  }
}

TEST(ShardTiling, RejectsDuplicateWindows) {
  EXPECT_THROW(
      check_shard_tiling({{0, 4, 4, "s0.json"}, {0, 4, 4, "dup.json"}}, 8),
      std::invalid_argument);
}

TEST(ShardTiling, RejectsIncompleteCoverage) {
  try {
    check_shard_tiling({{0, 2, 2, "s0.json"}, {2, 6, 6, "s1.json"}}, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("incomplete"), std::string::npos) << what;
  }
  // Missing the head of the range is just as incomplete.
  EXPECT_THROW(check_shard_tiling({{2, 8, 8, "tail.json"}}, 8),
               std::invalid_argument);
}

TEST(ShardTiling, RejectsUnfinishedCheckpoints) {
  try {
    check_shard_tiling({{0, 4, 4, "s0.json"}, {4, 6, 8, "ck.json"}}, 8);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unfinished checkpoint"), std::string::npos) << what;
    EXPECT_NE(what.find("ck.json"), std::string::npos) << what;
    EXPECT_NE(what.find("resume"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------
// ScalarBank.

TEST(ScalarBank, ExactMeanMatchesWelfordReplayAndMergeConcatenates) {
  util::Rng rng(11);
  ScalarBank whole(AggBackend::Exact);
  ScalarBank left(AggBackend::Exact);
  ScalarBank right(AggBackend::Exact);
  util::RunningStats reference;
  for (std::size_t i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.record(x);
    (i < 200 ? left : right).record(x);
    reference.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.samples(), whole.samples());  // element-wise bitwise
  EXPECT_EQ(left.mean(), whole.mean());
  EXPECT_EQ(whole.mean(), reference.mean());  // the Welford replay
  EXPECT_EQ(left.sum(), whole.sum());
  EXPECT_EQ(left.count(), 500u);
}

TEST(ScalarBank, StreamingKeepsNoSamplesAndMergesByChan) {
  util::Rng rng(13);
  ScalarBank whole(AggBackend::Streaming);
  ScalarBank left(AggBackend::Streaming);
  ScalarBank right(AggBackend::Streaming);
  for (std::size_t i = 0; i < 300; ++i) {
    const double x = rng.uniform_real(0.0, 10.0);
    whole.record(x);
    (i < 100 ? left : right).record(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.sum(), whole.sum(), 1e-9);
  EXPECT_THROW(left.samples(), std::logic_error);
  // O(1) memory regardless of the sample count.
  EXPECT_EQ(left.memory_bytes(), sizeof(ScalarBank));
}

TEST(ScalarBank, MergeRejectsBackendMismatchNamingBoth) {
  ScalarBank exact(AggBackend::Exact);
  ScalarBank streaming(AggBackend::Streaming);
  try {
    exact.merge(streaming);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this is exact"), std::string::npos) << what;
    EXPECT_NE(what.find("other is streaming"), std::string::npos) << what;
  }
}

TEST(ScalarBank, JsonRoundTripBothBackends) {
  util::Rng rng(17);
  for (const AggBackend backend :
       {AggBackend::Exact, AggBackend::Streaming}) {
    ScalarBank bank(backend);
    for (std::size_t i = 0; i < 64; ++i) bank.record(rng.normal(0.0, 1.0));
    const ScalarBank restored =
        ScalarBank::from_json(util::json::parse(bank.to_json().dump()));
    EXPECT_EQ(restored.backend(), backend);
    EXPECT_EQ(restored.count(), bank.count());
    EXPECT_EQ(restored.mean(), bank.mean());
    EXPECT_EQ(restored.to_json().dump(), bank.to_json().dump());
  }
  ScalarBank empty(AggBackend::Exact);
  EXPECT_TRUE(std::isnan(empty.mean()));
  EXPECT_EQ(empty.sum(), 0.0);
}

}  // namespace
}  // namespace roleshare::sim
