// Domain generators for the property suites (tests/prop/): randomized
// but *valid* draws of the system's own configuration and message types,
// built on util::proptest combinators so every draw shrinks toward a
// minimal counterexample (smaller populations, fewer transactions,
// rates closer to zero).
//
// Everything here is deterministic in the Rng handed to Gen::generate —
// the proptest seeding contract (DESIGN.md §8) therefore covers these
// generators too: a printed case seed replays the exact draw.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "consensus/msg_codec.hpp"
#include "consensus/params.hpp"
#include "consensus/proposal.hpp"
#include "consensus/votes.hpp"
#include "crypto/hash.hpp"
#include "crypto/keypair.hpp"
#include "econ/role_snapshot.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "sim/network.hpp"
#include "sim/scenario_policy.hpp"
#include "util/json.hpp"
#include "util/proptest.hpp"

namespace roleshare::testgen {

using util::proptest::Gen;

// ---- crypto / ledger values -----------------------------------------

/// Uniform 32-byte hash; shrinks to the zero hash.
Gen<crypto::Hash256> hash256();
Gen<crypto::PublicKey> public_key();

/// Arbitrary byte string (control bytes, quotes, backslashes, NUL and
/// high bytes included) up to `max_len` — the JSON/string stressor.
Gen<std::string> byte_string(std::size_t max_len);

/// Signed transfer with a valid signature.
Gen<ledger::Transaction> transaction();
/// Block (empty-block variant included) carrying 0–4 transactions.
Gen<ledger::Block> block();

// ---- consensus messages (structurally arbitrary, codec targets) -----

Gen<consensus::Vote> vote();
Gen<consensus::BlockProposal> block_proposal();
Gen<consensus::Credential> credential();

// ---- configuration draws --------------------------------------------

/// Valid ConsensusParams (validate() holds by construction).
Gen<consensus::ConsensusParams> consensus_params();

/// Stake vector with occasional zero-stake nodes.
Gen<std::vector<std::int64_t>> stake_vector(std::size_t min_n,
                                            std::size_t max_n);

/// Role snapshot over a random population: ~5% leaders, ~15% committee,
/// rest Others; stakes in [0, 100].
Gen<econ::RoleSnapshot> role_snapshot(std::size_t min_n, std::size_t max_n);

/// Small-but-diverse NetworkConfig: population, stake range, defection /
/// faulty rates, gossip fan-out, delays and synchrony degradation all
/// randomized. Rates are bounded so every round keeps live stake.
Gen<sim::NetworkConfig> network_config(std::size_t min_nodes,
                                       std::size_t max_nodes);

Gen<sim::ChurnSchedule> churn_schedule();
/// Scenario-policy draw across all PolicyKinds, churn included.
Gen<sim::ScenarioPolicyConfig> scenario_policy();

// ---- shard tilings ---------------------------------------------------

/// Contiguous windows [(0,c1),(c1,c2),...,(ck,runs_total)] tiling
/// [0, runs_total) exactly, with 1..5 windows; shrinks toward fewer cuts
/// (i.e. toward the single-process window).
Gen<std::vector<std::pair<std::size_t, std::size_t>>> shard_tiling(
    std::size_t runs_total);

// ---- util::json value trees -----------------------------------------

/// Arbitrary JSON tree up to `max_depth` container levels: null / bool /
/// finite numbers (integers, subnormals, huge magnitudes, -0.0) /
/// byte-stressed strings / arrays / objects with unique keys.
Gen<util::json::Value> json_value(std::size_t max_depth);

}  // namespace roleshare::testgen
