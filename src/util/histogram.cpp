#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/require.hpp"

namespace roleshare::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RS_REQUIRE(lo < hi, "histogram range");
  RS_REQUIRE(bins > 0, "histogram needs bins");
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long long>(std::floor((value - lo_) / width));
  raw = std::clamp(raw, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (const double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  RS_REQUIRE(bin < counts_.size(), "histogram bin index");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  RS_REQUIRE(bin < counts_.size(), "histogram bin index");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) /
                     static_cast<double>(peak)));
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %8zu | ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace roleshare::util
