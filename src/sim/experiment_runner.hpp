// The one runs×rounds engine behind every figure, bench and example.
//
// An experiment is `runs` independent simulations of `rounds` rounds each,
// reduced to an aggregate. The runner owns the three invariants every
// consumer used to re-implement by hand:
//
//  1. Seeding — run k's randomness is the stream root.split(k), where root
//     is Rng(root_seed). Streams are independent by construction; there is
//     no additive seed offsetting (which can collide across experiments
//     whose root seeds are close together).
//  2. Parallelism — runs execute across a fixed-size ThreadPool
//     (`threads` knob; 0 = all hardware threads, 1 = inline serial).
//     Within a run, the `inner_threads` knob fans the run body's per-node
//     loops out instead — but never both at once: when the outer fan-out
//     is parallel, inner parallelism is forced serial so outer runs ×
//     inner nodes share the machine without oversubscription.
//  3. Determinism — per-run results are stored at their run index and the
//     reduction is applied in run-index order on the calling thread, so a
//     parallel execution is bit-identical to a serial one. Inner loops
//     follow the InnerExecutor contract, so `inner_threads` does not
//     change results either.
//  4. Sharding — the spec's RunShard window restricts which global run
//     indices THIS process executes without changing their seeding, so a
//     sweep can be split across processes/machines and the per-shard
//     partials folded back (sim/aggregators merge + the merge_partials
//     tool) into the same aggregate a single process computes —
//     bit-identically under the exact accumulator backend.
//
// See DESIGN.md ("Experiment orchestration") for the contract new
// experiments must follow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {

/// A contiguous window [begin, end) of the global run range — the unit of
/// sharded execution. The default (begin == end == 0) means the whole
/// range. Run k of a shard is still seeded from root.split(k) with k the
/// GLOBAL run index, so executing shards [0,4) and [4,8) in two processes
/// and folding their partials in range order replays exactly the runs a
/// single-process execution of 8 runs performs.
struct RunShard {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool whole() const { return begin == 0 && end == 0; }
};

struct ExperimentSpec {
  std::size_t runs = 1;
  /// Rounds per run. The runner itself does not loop over rounds — that is
  /// the run body's job — but the value travels with the spec so every
  /// consumer reads it from one place.
  std::size_t rounds = 1;
  std::uint64_t root_seed = 0;
  /// Worker threads for the run fan-out; 0 = all hardware threads.
  std::size_t threads = 1;
  /// Worker threads for each run's *inner* per-node loops (round engine
  /// node loops etc.); 0 = all hardware threads. Ignored (forced 1)
  /// whenever the outer fan-out is parallel — see resolve_parallelism.
  std::size_t inner_threads = 1;
  /// Which window of the `runs` global run indices THIS process executes;
  /// default = all of them. Global-index seeding keeps sharded execution
  /// reproducible (see RunShard).
  RunShard shard{};
};

/// The concrete [begin, end) window of the spec after defaulting and
/// validation; count() is the number of runs this process executes.
struct ResolvedShard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count() const { return end - begin; }
};

/// Throws std::invalid_argument unless the shard window is non-empty and
/// inside [0, spec.runs].
inline ResolvedShard resolve_shard(const ExperimentSpec& spec) {
  if (spec.shard.whole()) return {0, spec.runs};
  RS_REQUIRE(spec.shard.begin < spec.shard.end,
             "run shard window [" + std::to_string(spec.shard.begin) + ", " +
                 std::to_string(spec.shard.end) + ") is empty");
  RS_REQUIRE(spec.shard.end <= spec.runs,
             "run shard window ends at " + std::to_string(spec.shard.end) +
                 " but the experiment has only " +
                 std::to_string(spec.runs) + " runs");
  return {spec.shard.begin, spec.shard.end};
}

/// What the engine actually launches after applying the
/// no-oversubscription policy: exactly one of the two levels may be > 1.
struct ResolvedParallelism {
  std::size_t outer = 1;
  std::size_t inner = 1;
};

/// Resolves the two thread knobs (0 = hardware threads each) against the
/// nested-parallelism contract: the outer run fan-out owns the cores when
/// it is parallel, and only otherwise may the inner per-node fan-out
/// activate. This keeps worker count at max(outer, inner), never
/// outer × inner.
///
/// The outer level is clamped to the run count BEFORE the
/// oversubscription check: an experiment can never use more outer
/// workers than it has runs, so e.g. a single-run workload with
/// threads=0 (the round_latency shape) resolves to outer=1 and keeps its
/// inner parallelism — without the caller having to remember to pass
/// threads=1. The clamp is also what upholds the "exactly one level may
/// be > 1" contract for consumers that read `outer` directly.
inline ResolvedParallelism resolve_parallelism(const ExperimentSpec& spec) {
  // Clamp to the runs THIS process executes: a 2-run shard of a 10k-run
  // sweep behaves like a 2-run experiment for scheduling purposes.
  const std::size_t local_runs =
      spec.shard.whole() ? spec.runs : resolve_shard(spec).count();
  ResolvedParallelism r;
  r.outer = std::min(util::ThreadPool::resolve_thread_count(spec.threads),
                     std::max<std::size_t>(local_runs, 1));
  r.inner = util::ThreadPool::resolve_thread_count(spec.inner_threads);
  if (r.outer > 1) r.inner = 1;
  return r;
}

/// Hands a run body the shared inner pool (nullptr = run inner loops
/// serial). The pool outlives every run body invocation; successive runs
/// reuse it, so "outer runs × inner nodes" share one set of workers.
struct RunContext {
  util::ThreadPool* inner_pool = nullptr;
  std::size_t inner_threads = 1;  // resolved count backing inner_pool
};

/// Throws std::invalid_argument unless runs >= 1, rounds >= 1 and the
/// shard window (when set) is a non-empty sub-range of [0, runs).
inline void validate(const ExperimentSpec& spec) {
  RS_REQUIRE(spec.runs > 0, "experiment needs at least one run");
  RS_REQUIRE(spec.rounds > 0, "experiment needs at least one round");
  (void)resolve_shard(spec);
}

/// Run k's independent RNG stream: Rng(root_seed).split(k).
inline util::Rng rng_for_run(std::uint64_t root_seed, std::size_t run_index) {
  return util::Rng(root_seed).split(run_index);
}

/// Seed material of rng_for_run — for components that take a scalar seed
/// (NetworkConfig) and rebuild the stream themselves.
inline std::uint64_t seed_for_run(std::uint64_t root_seed,
                                  std::size_t run_index) {
  return util::Rng(root_seed).derive_seed(run_index);
}

namespace detail {

/// Invokes a run body with or without the RunContext, whichever signature
/// it accepts — legacy two-argument bodies keep working unchanged.
template <typename RunFn>
decltype(auto) invoke_run_fn(RunFn& run_fn, std::size_t run, util::Rng& rng,
                             const RunContext& ctx) {
  if constexpr (std::is_invocable_v<RunFn&, std::size_t, util::Rng&,
                                    const RunContext&>) {
    return run_fn(run, rng, ctx);
  } else {
    (void)ctx;
    return run_fn(run, rng);
  }
}

// Lazily selects the result type so only the signature the body actually
// has gets instantiated.
template <typename RunFn, typename = void>
struct run_result {
  using type = std::invoke_result_t<RunFn&, std::size_t, util::Rng&>;
};
template <typename RunFn>
struct run_result<RunFn,
                  std::enable_if_t<std::is_invocable_v<
                      RunFn&, std::size_t, util::Rng&, const RunContext&>>> {
  using type =
      std::invoke_result_t<RunFn&, std::size_t, util::Rng&, const RunContext&>;
};

template <typename RunFn>
using run_result_t = typename run_result<RunFn>::type;

}  // namespace detail

/// Executes run_fn(run_index, rng[, run_context]) for every run of the
/// spec's shard window (default: every run) and returns the per-run
/// results indexed by window offset — results[i] is global run
/// shard.begin + i, independent of execution order. run_fn always
/// receives the GLOBAL run index and its root.split(global) stream, so a
/// shard executes exactly the runs a whole-range execution would. Bodies
/// that take the optional `const RunContext&` receive the shared inner
/// pool for their within-run node loops; the no-oversubscription policy
/// of resolve_parallelism decides whether that pool exists. The result
/// type must be default-constructible and movable. Exceptions thrown by
/// run bodies are rethrown for the lowest failing run index.
template <typename RunFn>
auto run_experiment(const ExperimentSpec& spec, RunFn&& run_fn) {
  validate(spec);
  using Result = detail::run_result_t<RunFn>;
  static_assert(!std::is_void_v<Result>,
                "run_fn must return the run's result");
  static_assert(!std::is_same_v<Result, bool>,
                "bool results share packed bits in std::vector<bool>, which "
                "is a data race under the parallel fan-out — wrap the flag "
                "in a struct");
  // A body that cannot receive the RunContext gets no inner pool either —
  // its workers would only ever idle.
  constexpr bool kTakesContext =
      std::is_invocable_v<RunFn&, std::size_t, util::Rng&, const RunContext&>;
  const ResolvedShard shard = resolve_shard(spec);
  const ResolvedParallelism par = resolve_parallelism(spec);
  std::optional<util::ThreadPool> inner_pool;
  if (kTakesContext && par.inner > 1) inner_pool.emplace(par.inner);
  const RunContext ctx{inner_pool ? &*inner_pool : nullptr,
                       kTakesContext ? par.inner : 1};

  std::vector<Result> results(shard.count());
  const auto execute_one = [&](std::size_t offset) {
    const std::size_t run = shard.begin + offset;  // global run index
    util::Rng rng = rng_for_run(spec.root_seed, run);
    results[offset] = detail::invoke_run_fn(run_fn, run, rng, ctx);
  };
  if (par.outer <= 1 || shard.count() <= 1) {
    // Same failure semantics as the pool: every run is attempted, the
    // lowest failing run's exception surfaces.
    std::exception_ptr first_error;
    for (std::size_t offset = 0; offset < shard.count(); ++offset) {
      try {
        execute_one(offset);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    util::ThreadPool pool(par.outer);
    pool.parallel_for_indexed(shard.count(), execute_one);
  }
  return results;
}

/// run_experiment + a reduction applied in run-index order on the calling
/// thread: reduce(global_run_index, result&&). This is the only
/// sanctioned way to fold per-run results into an aggregate — it makes
/// threads=N output bit-identical to threads=1, and per-shard partials
/// reduced this way then merged in shard order bit-identical to a
/// whole-range execution (exact accumulator backend).
template <typename RunFn, typename Reducer>
void run_and_reduce(const ExperimentSpec& spec, RunFn&& run_fn,
                    Reducer&& reduce) {
  const ResolvedShard shard = resolve_shard(spec);
  auto results = run_experiment(spec, std::forward<RunFn>(run_fn));
  for (std::size_t offset = 0; offset < results.size(); ++offset)
    reduce(shard.begin + offset, std::move(results[offset]));
}

/// Object form of the same engine, for call sites that pass the spec
/// around or run several bodies under one configuration.
template <typename RunResult>
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentSpec spec) : spec_(spec) {
    validate(spec_);
  }

  const ExperimentSpec& spec() const { return spec_; }

  template <typename RunFn>
  std::vector<RunResult> run(RunFn&& run_fn) const {
    return run_experiment(spec_, std::forward<RunFn>(run_fn));
  }

  template <typename RunFn, typename Reducer>
  void run_and_reduce(RunFn&& run_fn, Reducer&& reduce) const {
    sim::run_and_reduce(spec_, std::forward<RunFn>(run_fn),
                        std::forward<Reducer>(reduce));
  }

 private:
  ExperimentSpec spec_;
};

}  // namespace roleshare::sim
