#include "util/streaming_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace roleshare::util {
namespace {

std::vector<double> normal_samples(std::size_t n, std::uint64_t seed,
                                   double mean, double sigma) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.normal(mean, sigma);
  return xs;
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile p2(0.5);
  EXPECT_THROW(p2.estimate(), std::invalid_argument);  // empty
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.estimate(), 3.0);
  p2.add(1.0);
  p2.add(2.0);
  // Three samples: the estimate is the exact interpolated median.
  EXPECT_DOUBLE_EQ(p2.estimate(), percentile({3.0, 1.0, 2.0}, 50.0));
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, TracksQuantilesOfALargeStream) {
  // The documented error bound: on 10k normal samples the P² estimate of
  // each tracked quantile stays within a few percent of one sigma from
  // the exact order statistic.
  const std::vector<double> xs = normal_samples(10'000, 99, 50.0, 10.0);
  for (const double q : {0.25, 0.5, 0.75, 0.95}) {
    P2Quantile p2(q);
    for (const double x : xs) p2.add(x);
    const double exact = percentile(xs, q * 100.0);
    EXPECT_NEAR(p2.estimate(), exact, 0.5)
        << "quantile " << q;  // 0.5 = 5% of sigma
  }
}

TEST(P2Quantile, DeterministicAndSerializable) {
  const std::vector<double> xs = normal_samples(500, 7, 0.0, 1.0);
  P2Quantile a(0.5), b(0.5);
  for (const double x : xs) {
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(a.estimate(), b.estimate());

  // State round-trip continues identically.
  P2Quantile restored = P2Quantile::from_state(a.state());
  for (const double x : normal_samples(100, 8, 0.0, 1.0)) {
    a.add(x);
    restored.add(x);
  }
  EXPECT_DOUBLE_EQ(restored.estimate(), a.estimate());
  EXPECT_EQ(restored.count(), a.count());
}

TEST(ReservoirSample, ExactWhileStreamFits) {
  ReservoirSample r(8, 42);
  for (const double x : {5.0, 1.0, 3.0}) r.add(x);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.seen(), 3u);
  EXPECT_EQ(r.samples(), (std::vector<double>{5.0, 1.0, 3.0}));
}

TEST(ReservoirSample, DeterministicForSameSeedAndStream) {
  const std::vector<double> xs = normal_samples(2'000, 11, 0.0, 1.0);
  ReservoirSample a(64, 9), b(64, 9);
  for (const double x : xs) {
    a.add(x);
    b.add(x);
  }
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.samples(), b.samples());  // bitwise
  EXPECT_EQ(a.seen(), 2'000u);
  EXPECT_EQ(a.samples().size(), 64u);
}

TEST(ReservoirSample, SubsampleQuantilesNearExact) {
  // Rank-space error ~ sqrt(p(1-p)/K): K=256 on 20k samples keeps the
  // median of N(100, 15) within ~2 sigma of the exact one.
  const std::vector<double> xs = normal_samples(20'000, 21, 100.0, 15.0);
  ReservoirSample r(256, 5);
  for (const double x : xs) r.add(x);
  const double exact_median = percentile(xs, 50.0);
  const double est_median = percentile(r.samples(), 50.0);
  EXPECT_NEAR(est_median, exact_median, 3.0);  // 0.2 sigma
  const double exact_trimmed = trimmed_mean(xs, 0.2);
  const double est_trimmed = trimmed_mean(r.samples(), 0.2);
  EXPECT_NEAR(est_trimmed, exact_trimmed, 3.0);
}

TEST(ReservoirSample, MergeConcatenatesWhileFitting) {
  ReservoirSample a(8, 1), b(8, 2);
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.samples(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(a.seen(), 3u);
}

TEST(ReservoirSample, MergeWithEmptyAdopts) {
  ReservoirSample filled(4, 1), empty(4, 2);
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) filled.add(x);
  ReservoirSample target(4, 3);
  target.merge(filled);
  EXPECT_EQ(target.seen(), filled.seen());
  EXPECT_EQ(target.samples(), filled.samples());
  filled.merge(empty);  // no-op
  EXPECT_EQ(filled.seen(), 6u);
}

TEST(ReservoirSample, MergedSubsampleStaysRepresentative) {
  // Two shards of one stream, merged, must estimate the union's median
  // within the same error budget as a single reservoir.
  const std::vector<double> xs = normal_samples(20'000, 33, 0.0, 1.0);
  ReservoirSample left(256, 4), right(256, 4);
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  left.merge(right);
  EXPECT_EQ(left.seen(), 20'000u);
  EXPECT_EQ(left.samples().size(), 256u);
  EXPECT_NEAR(percentile(left.samples(), 50.0), percentile(xs, 50.0), 0.2);
}

TEST(ReservoirSample, MergeRejectsCapacityMismatchNamingBoth) {
  ReservoirSample a(8, 1), b(16, 1);
  try {
    a.merge(b);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find('8'), std::string::npos) << what;
    EXPECT_NE(what.find("16"), std::string::npos) << what;
  }
}

TEST(ReservoirSample, StateRoundTripContinuesIdentically) {
  const std::vector<double> xs = normal_samples(1'000, 55, 0.0, 1.0);
  ReservoirSample original(64, 12);
  for (const double x : xs) original.add(x);
  ReservoirSample restored = ReservoirSample::from_state(
      64, original.seed_material(), original.seen(), original.draws(),
      std::vector<double>(original.samples()));
  for (const double x : normal_samples(500, 56, 0.0, 1.0)) {
    original.add(x);
    restored.add(x);
  }
  EXPECT_EQ(restored.samples(), original.samples());  // bitwise
  EXPECT_EQ(restored.seen(), original.seen());
  EXPECT_EQ(restored.draws(), original.draws());
}

TEST(ReservoirSample, StateRoundTripAfterMergeContinuesIdentically) {
  // merge() consumes private-stream draws too; the serialized draw count
  // must fast-forward past them so a restored reservoir replays ANY
  // history exactly — the contract shard checkpointing relies on.
  ReservoirSample left(32, 3), right(32, 4);
  for (const double x : normal_samples(300, 61, 0.0, 1.0)) left.add(x);
  for (const double x : normal_samples(300, 62, 0.0, 1.0)) right.add(x);
  left.merge(right);
  ReservoirSample restored = ReservoirSample::from_state(
      32, left.seed_material(), left.seen(), left.draws(),
      std::vector<double>(left.samples()));
  for (const double x : normal_samples(200, 63, 0.0, 1.0)) {
    left.add(x);
    restored.add(x);
  }
  EXPECT_EQ(restored.samples(), left.samples());  // bitwise
  EXPECT_EQ(restored.seen(), left.seen());
}

// ---------------------------------------------------------------------
// StakeConcentration — the long-horizon wealth sketches.

double exact_gini(std::vector<std::int64_t> stakes) {
  std::sort(stakes.begin(), stakes.end());
  double total = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    total += static_cast<double>(stakes[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(stakes[i]);
  }
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(stakes.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

TEST(StakeConcentration, EqualStakesHaveZeroGini) {
  StakeConcentration c;
  for (int i = 0; i < 100; ++i) c.add(25);
  EXPECT_NEAR(c.gini(), 0.0, 1e-12);
  EXPECT_EQ(c.count(), 100u);
  EXPECT_EQ(c.total(), 2500);
}

TEST(StakeConcentration, GiniTracksExactWithinQuantization) {
  Rng rng(41);
  std::vector<std::int64_t> stakes(3000);
  StakeConcentration c;
  for (auto& s : stakes) {
    s = rng.uniform_int(1, 5000);
    c.add(s);
  }
  // 8 buckets per octave => within-bucket spread < 2^(1/8) - 1 ~ 9%;
  // the Gini of the quantized distribution lands well inside 0.02 of
  // the exact value for smooth stake distributions.
  EXPECT_NEAR(c.gini(), exact_gini(stakes), 0.02);
}

TEST(StakeConcentration, TopShareExactWhenTopBucketIsolated) {
  StakeConcentration c;
  for (int i = 0; i < 9; ++i) c.add(1);
  c.add(991);  // alone in its bucket: the top-10% holder is identifiable
  EXPECT_NEAR(c.top_share(0.10), 0.991, 1e-12);
  EXPECT_NEAR(c.top_share(1.0), 1.0, 1e-12);
}

TEST(StakeConcentration, UpdateMatchesFreshRebuild) {
  Rng rng(43);
  std::vector<std::int64_t> stakes(500);
  StakeConcentration incremental;
  for (auto& s : stakes) {
    s = rng.uniform_int(1, 800);
    incremental.add(s);
  }
  for (int step = 0; step < 3000; ++step) {
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stakes.size()) - 1));
    const std::int64_t next = rng.uniform_int(1, 1200);
    incremental.update(stakes[v], next);
    stakes[v] = next;
  }
  StakeConcentration fresh;
  for (const auto s : stakes) fresh.add(s);
  EXPECT_EQ(incremental.count(), fresh.count());
  EXPECT_EQ(incremental.total(), fresh.total());
  EXPECT_EQ(incremental.gini(), fresh.gini());
  EXPECT_EQ(incremental.top_share(0.01), fresh.top_share(0.01));
  EXPECT_EQ(incremental.top_share(0.25), fresh.top_share(0.25));
}

TEST(StakeConcentration, RemoveUndoesAdd) {
  StakeConcentration c;
  c.add(10);
  c.add(500);
  const double before = c.gini();
  c.add(77);
  c.remove(77);
  EXPECT_EQ(c.gini(), before);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.total(), 510);
}

TEST(StakeConcentration, EmptyAndAllZeroAreDefined) {
  StakeConcentration c;
  EXPECT_EQ(c.gini(), 0.0);
  EXPECT_EQ(c.top_share(0.5), 0.0);
  c.add(0);
  c.add(0);
  EXPECT_EQ(c.gini(), 0.0);
  EXPECT_EQ(c.top_share(0.5), 0.0);
}

// ---------------------------------------------------------------------
// CohortWealthCorrelation — defector-vs-wealth tracking.

double exact_point_biserial(const std::vector<std::int64_t>& stakes,
                            const std::vector<bool>& cohort) {
  const double n = static_cast<double>(stakes.size());
  double n1 = 0, sum1 = 0, sum = 0, sum_sq = 0;
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    const double s = static_cast<double>(stakes[i]);
    sum += s;
    sum_sq += s * s;
    if (cohort[i]) {
      n1 += 1;
      sum1 += s;
    }
  }
  const double n0 = n - n1;
  if (n1 == 0 || n0 == 0) return 0.0;
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  if (var <= 0.0) return 0.0;
  const double mean1 = sum1 / n1;
  const double mean0 = (sum - sum1) / n0;
  return (mean1 - mean0) / std::sqrt(var) * std::sqrt(n1 * n0 / (n * n));
}

TEST(CohortWealthCorrelation, MatchesExactReference) {
  Rng rng(47);
  std::vector<std::int64_t> stakes(400);
  std::vector<bool> cohort(400);
  CohortWealthCorrelation c;
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    cohort[i] = rng.bernoulli(0.2);
    // Cohort members poorer on average: the correlation must come out
    // negative and match the closed form.
    stakes[i] = rng.uniform_int(1, cohort[i] ? 40 : 100);
    c.add(stakes[i], cohort[i]);
  }
  const double expected = exact_point_biserial(stakes, cohort);
  EXPECT_LT(expected, 0.0);
  EXPECT_NEAR(c.correlation(), expected, 1e-9);
}

TEST(CohortWealthCorrelation, DegenerateCasesAreZero) {
  CohortWealthCorrelation empty;
  EXPECT_EQ(empty.correlation(), 0.0);

  CohortWealthCorrelation one_sided;
  one_sided.add(10, false);
  one_sided.add(20, false);
  EXPECT_EQ(one_sided.correlation(), 0.0);

  CohortWealthCorrelation no_variance;
  no_variance.add(5, true);
  no_variance.add(5, false);
  EXPECT_EQ(no_variance.correlation(), 0.0);
}

TEST(CohortWealthCorrelation, UpdateMatchesFreshRebuild) {
  Rng rng(53);
  std::vector<std::int64_t> stakes(300);
  std::vector<bool> cohort(300);
  CohortWealthCorrelation incremental;
  for (std::size_t i = 0; i < stakes.size(); ++i) {
    cohort[i] = rng.bernoulli(0.3);
    stakes[i] = rng.uniform_int(1, 500);
    incremental.add(stakes[i], cohort[i]);
  }
  for (int step = 0; step < 2000; ++step) {
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stakes.size()) - 1));
    const std::int64_t next = rng.uniform_int(1, 900);
    incremental.update(stakes[v], next, cohort[v]);
    stakes[v] = next;
  }
  CohortWealthCorrelation fresh;
  for (std::size_t i = 0; i < stakes.size(); ++i)
    fresh.add(stakes[i], cohort[i]);
  EXPECT_NEAR(incremental.correlation(), fresh.correlation(), 1e-9);
  EXPECT_EQ(incremental.count(), fresh.count());
  EXPECT_EQ(incremental.cohort_count(), fresh.cohort_count());
}

}  // namespace
}  // namespace roleshare::util
