// Voting messages and weighted vote counting (§II-B2/B3).
//
// A vote carries the voter's sortition proof; counting verifies each proof,
// sums the verified sub-user weights per value, and reports the value whose
// weight crosses the step quorum T * tau.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/sortition.hpp"
#include "ledger/types.hpp"

namespace roleshare::consensus {

struct Vote {
  ledger::NodeId voter = 0;
  crypto::PublicKey voter_key;
  std::uint64_t round = 0;
  std::uint32_t step = 0;
  crypto::Hash256 value;  // block hash voted for
  std::uint64_t weight = 0;
  crypto::SortitionResult sortition;
};

/// Builds a vote for a committee member who won sortition for (round, step).
Vote make_vote(ledger::NodeId voter, const crypto::PublicKey& key,
               std::uint64_t round, std::uint32_t step,
               const crypto::Hash256& value,
               const crypto::SortitionResult& sortition);

/// Verifies a single vote's sortition proof and claimed weight.
/// `stake` is the voter's stake; `params` the step's sortition parameters.
bool verify_vote(const Vote& vote, const crypto::Hash256& prev_seed,
                 std::int64_t stake, const crypto::SortitionParams& params);

/// Verifies a batch of votes, fanning the per-vote proof checks out across
/// `exec`. Verdicts are written at their vote index (std::uint8_t, not
/// bool — std::vector<bool> packs bits and would race under the fan-out),
/// so the result is identical for every executor. `stakes` is indexed by
/// voter id.
std::vector<std::uint8_t> verify_votes(std::span<const Vote> votes,
                                       const crypto::Hash256& prev_seed,
                                       const std::vector<std::int64_t>& stakes,
                                       const crypto::SortitionParams& params,
                                       const util::InnerExecutor& exec = {});

/// Allocation-free form: verdicts go into `valid` (assigned to votes.size(),
/// capacity kept across calls). Bit-identical to verify_votes().
void verify_votes_into(std::span<const Vote> votes,
                       const crypto::Hash256& prev_seed,
                       const std::vector<std::int64_t>& stakes,
                       const crypto::SortitionParams& params,
                       std::vector<std::uint8_t>& valid,
                       const util::InnerExecutor& exec = {});

/// Result of tallying one step.
struct TallyResult {
  /// Value whose verified weight exceeded the quorum, if any.
  std::optional<crypto::Hash256> winner;
  /// Verified weight of the winning value (0 when no winner).
  std::uint64_t winner_weight = 0;
  /// Total verified weight across all values.
  std::uint64_t total_weight = 0;
};

/// Vote tally for one (round, step). Assumes votes were already verified
/// (the simulator verifies at receive time); duplicate votes by the same
/// voter are counted once.
class VoteCounter {
 public:
  explicit VoteCounter(double quorum);

  /// Adds a vote; returns false if this voter was already counted.
  bool add(const Vote& vote);

  /// Current weight for a value.
  std::uint64_t weight_for(const crypto::Hash256& value) const;
  std::uint64_t total_weight() const { return total_weight_; }

  /// The value exceeding the quorum, if any (highest weight wins; ties
  /// break toward the lower hash so all nodes agree).
  TallyResult result() const;

  /// Algorand's common coin: least significant bit of the minimum vote-hash
  /// over all counted votes. Returns nullopt when no votes were counted.
  std::optional<bool> common_coin() const;

 private:
  struct Entry {
    crypto::Hash256 value;
    std::uint64_t weight = 0;
  };
  double quorum_;
  std::vector<Entry> tallies_;
  std::vector<ledger::NodeId> seen_voters_;
  std::uint64_t total_weight_ = 0;
  crypto::Hash256 min_vote_hash_;
  bool any_vote_ = false;
};

/// Convenience: tally a batch of votes against a quorum.
TallyResult tally_votes(std::span<const Vote> votes, double quorum);

}  // namespace roleshare::consensus
