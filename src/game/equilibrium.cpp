#include "game/equilibrium.hpp"

#include <array>

#include "util/require.hpp"

namespace roleshare::game {

namespace {

constexpr std::array<Strategy, 3> kAllStrategies = {
    Strategy::Cooperate, Strategy::Defect, Strategy::Offline};

}  // namespace

// committee_total_stake is strategy-independent and never touched here.
void DeviationScanner::adjust(AlgorandGame::Aggregates& agg,
                              const GameConfig& config, ledger::NodeId player,
                              Strategy strategy, int sign) {
  const double stake =
      sign * static_cast<double>(config.snapshot.stake(player));
  const bool in_sync =
      !config.sync_set.empty() && config.sync_set[player];
  const consensus::Role role = config.snapshot.role(player);

  const auto bump = [sign](std::size_t& counter) {
    if (sign > 0) {
      ++counter;
    } else {
      RS_ENSURE(counter > 0, "aggregate counter underflow");
      --counter;
    }
  };

  if (strategy == Strategy::Offline) {
    if (in_sync) bump(agg.sync_defectors);
    return;
  }
  agg.online_stake += stake;
  if (strategy == Strategy::Cooperate) {
    switch (role) {
      case consensus::Role::Leader:
        agg.coop_leader_stake += stake;
        bump(agg.coop_leader_count);
        break;
      case consensus::Role::Committee:
        agg.coop_committee_stake += stake;
        break;
      case consensus::Role::Other:
        agg.gamma_pool_stake += stake;
        break;
    }
  } else {
    agg.gamma_pool_stake += stake;
    if (in_sync) bump(agg.sync_defectors);
  }
}

DeviationScanner::DeviationScanner(const AlgorandGame& game,
                                   const Profile& profile)
    : game_(game), profile_(profile), base_(game.aggregate(profile)) {}

double DeviationScanner::base_payoff(ledger::NodeId player) const {
  return game_.payoff_of(base_, player, profile_[player]);
}

double DeviationScanner::deviation_payoff(ledger::NodeId player,
                                          Strategy alt) const {
  AlgorandGame::Aggregates agg = base_;
  adjust(agg, game_.config(), player, profile_[player], -1);
  adjust(agg, game_.config(), player, alt, +1);
  return game_.payoff_of(agg, player, alt);
}

std::optional<DeviationWitness> find_profitable_deviation(
    const AlgorandGame& game, const Profile& profile, double tolerance) {
  RS_REQUIRE(profile.size() == game.player_count(), "profile size mismatch");
  const DeviationScanner scanner(game, profile);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto player = static_cast<ledger::NodeId>(i);
    const double before = scanner.base_payoff(player);
    for (const Strategy alt : kAllStrategies) {
      if (alt == profile[i]) continue;
      const double after = scanner.deviation_payoff(player, alt);
      if (after > before + tolerance) {
        return DeviationWitness{player, profile[i], alt, before, after};
      }
    }
  }
  return std::nullopt;
}

bool is_nash(const AlgorandGame& game, const Profile& profile,
             double tolerance) {
  return !find_profitable_deviation(game, profile, tolerance).has_value();
}

TheoremReport verify_lemma1(const AlgorandGame& game, util::Rng& rng,
                            std::size_t samples) {
  const std::size_t n = game.player_count();
  for (std::size_t s = 0; s < samples; ++s) {
    Profile profile(n);
    for (auto& strat : profile) {
      strat = kAllStrategies[static_cast<std::size_t>(
          rng.uniform_int(0, 2))];
    }
    const DeviationScanner scanner(game, profile);
    for (std::size_t i = 0; i < n; ++i) {
      const auto player = static_cast<ledger::NodeId>(i);
      const double u_defect = scanner.deviation_payoff(player, Strategy::Defect);
      const double u_offline =
          scanner.deviation_payoff(player, Strategy::Offline);
      if (!(u_defect >= u_offline)) {
        return TheoremReport{
            false,
            "player " + std::to_string(i) +
                " prefers Offline to Defect in a sampled profile",
            DeviationWitness{player, Strategy::Defect, Strategy::Offline,
                             u_defect, u_offline}};
      }
    }
  }
  return TheoremReport{true,
                       "Defect weakly dominates Offline on all sampled "
                       "profiles (strictly whenever a block is created)",
                       std::nullopt};
}

TheoremReport verify_theorem1(const AlgorandGame& game) {
  const Profile profile = all_defect(game.player_count());
  if (auto witness = find_profitable_deviation(game, profile)) {
    return TheoremReport{false, "All-D admits a profitable deviation",
                         witness};
  }
  return TheoremReport{true, "All-D is a Nash equilibrium", std::nullopt};
}

TheoremReport verify_theorem2(const AlgorandGame& game) {
  RS_REQUIRE(game.config().scheme == SchemeKind::StakeProportional,
             "Theorem 2 concerns the stake-proportional scheme");
  const Profile profile = all_cooperate(game.player_count());
  if (auto witness = find_profitable_deviation(game, profile)) {
    return TheoremReport{
        true, "All-C is not a NE: a player profits by defecting", witness};
  }
  return TheoremReport{false,
                       "All-C unexpectedly is a NE under stake-proportional "
                       "sharing",
                       std::nullopt};
}

Profile theorem3_profile(const AlgorandGame& game) {
  const econ::RoleSnapshot& snap = game.config().snapshot;
  Profile profile(game.player_count(), Strategy::Defect);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto v = static_cast<ledger::NodeId>(i);
    const consensus::Role role = snap.role(v);
    const bool in_sync =
        !game.config().sync_set.empty() && game.config().sync_set[v];
    if (role != consensus::Role::Other || in_sync)
      profile[i] = Strategy::Cooperate;
  }
  return profile;
}

TheoremReport verify_theorem3(const AlgorandGame& game) {
  RS_REQUIRE(game.config().scheme == SchemeKind::RoleBased,
             "Theorem 3 concerns the role-based scheme");
  const Profile profile = theorem3_profile(game);
  if (auto witness = find_profitable_deviation(game, profile)) {
    return TheoremReport{false,
                         "Theorem-3 profile admits a profitable deviation "
                         "(B_i below the bounds?)",
                         witness};
  }
  return TheoremReport{true, "Theorem-3 profile is a Nash equilibrium",
                       std::nullopt};
}

}  // namespace roleshare::game
