#include "consensus/votes.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace roleshare::consensus {

Vote make_vote(ledger::NodeId voter, const crypto::PublicKey& key,
               std::uint64_t round, std::uint32_t step,
               const crypto::Hash256& value,
               const crypto::SortitionResult& sortition) {
  RS_REQUIRE(sortition.selected(), "voter must have won sortition");
  Vote v;
  v.voter = voter;
  v.voter_key = key;
  v.round = round;
  v.step = step;
  v.value = value;
  v.weight = sortition.sub_users;
  v.sortition = sortition;
  return v;
}

bool verify_vote(const Vote& vote, const crypto::Hash256& prev_seed,
                 std::int64_t stake, const crypto::SortitionParams& params) {
  const crypto::VrfInput input{vote.round, vote.step, prev_seed};
  const std::uint64_t sub_users = crypto::verify_sortition(
      vote.voter_key, input, vote.sortition.vrf, stake, params);
  return sub_users > 0 && sub_users == vote.weight;
}

std::vector<std::uint8_t> verify_votes(std::span<const Vote> votes,
                                       const crypto::Hash256& prev_seed,
                                       const std::vector<std::int64_t>& stakes,
                                       const crypto::SortitionParams& params,
                                       const util::InnerExecutor& exec) {
  std::vector<std::uint8_t> valid;
  verify_votes_into(votes, prev_seed, stakes, params, valid, exec);
  return valid;
}

void verify_votes_into(std::span<const Vote> votes,
                       const crypto::Hash256& prev_seed,
                       const std::vector<std::int64_t>& stakes,
                       const crypto::SortitionParams& params,
                       std::vector<std::uint8_t>& valid,
                       const util::InnerExecutor& exec) {
  valid.assign(votes.size(), 0);
  exec.for_each_chunk(votes.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      RS_REQUIRE(votes[i].voter < stakes.size(), "voter id out of range");
      valid[i] = verify_vote(votes[i], prev_seed, stakes[votes[i].voter],
                             params)
                     ? 1
                     : 0;
    }
  });
}

VoteCounter::VoteCounter(double quorum) : quorum_(quorum) {
  RS_REQUIRE(quorum > 0.0, "quorum must be positive");
}

bool VoteCounter::add(const Vote& vote) {
  if (std::find(seen_voters_.begin(), seen_voters_.end(), vote.voter) !=
      seen_voters_.end())
    return false;
  seen_voters_.push_back(vote.voter);
  total_weight_ += vote.weight;

  auto it = std::find_if(tallies_.begin(), tallies_.end(),
                         [&](const Entry& e) { return e.value == vote.value; });
  if (it == tallies_.end()) {
    tallies_.push_back(Entry{vote.value, vote.weight});
  } else {
    it->weight += vote.weight;
  }

  const crypto::Hash256 vote_hash = crypto::HashBuilder("roleshare.coin")
                                        .add(vote.sortition.vrf.output)
                                        .build();
  if (!any_vote_ || vote_hash < min_vote_hash_) {
    min_vote_hash_ = vote_hash;
    any_vote_ = true;
  }
  return true;
}

std::uint64_t VoteCounter::weight_for(const crypto::Hash256& value) const {
  for (const Entry& e : tallies_)
    if (e.value == value) return e.weight;
  return 0;
}

TallyResult VoteCounter::result() const {
  TallyResult r;
  r.total_weight = total_weight_;
  const Entry* best = nullptr;
  for (const Entry& e : tallies_) {
    if (static_cast<double>(e.weight) <= quorum_) continue;
    if (best == nullptr || e.weight > best->weight ||
        (e.weight == best->weight && e.value < best->value)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    r.winner = best->value;
    r.winner_weight = best->weight;
  }
  return r;
}

std::optional<bool> VoteCounter::common_coin() const {
  if (!any_vote_) return std::nullopt;
  return (min_vote_hash_.bytes().back() & 1) != 0;
}

TallyResult tally_votes(std::span<const Vote> votes, double quorum) {
  VoteCounter counter(quorum);
  for (const Vote& v : votes) counter.add(v);
  return counter.result();
}

}  // namespace roleshare::consensus
