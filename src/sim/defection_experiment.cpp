#include "sim/defection_experiment.hpp"

#include "sim/experiment_runner.hpp"
#include "sim/round_engine.hpp"

namespace roleshare::sim {

namespace {

/// What one run contributes to the aggregate: per-round outcome
/// percentages plus the liveness flag. Small and trivially movable so the
/// thread-pool fan-out stays cheap.
struct DefectionRun {
  struct RoundFractions {
    double final_pct = 0.0;
    double tentative_pct = 0.0;
    double none_pct = 0.0;
  };
  std::vector<RoundFractions> rounds;
  bool progress = false;
};

DefectionRun execute_run(const DefectionExperimentConfig& config,
                         std::uint64_t run_seed,
                         util::ThreadPool* inner_pool) {
  NetworkConfig net_config = config.network;
  net_config.seed = run_seed;
  Network network(net_config);

  consensus::ConsensusParams params = config.params;
  if (config.scale_params_to_stake) {
    params = consensus::ConsensusParams::scaled_for(
        network.accounts().total_stake());
    params.step_threshold = config.params.step_threshold;
    params.final_threshold = config.params.final_threshold;
    params.max_binary_iterations = config.params.max_binary_iterations;
    params.proposal_timeout_ms = config.params.proposal_timeout_ms;
    params.step_timeout_ms = config.params.step_timeout_ms;
  }

  RoundEngine engine(network, params, inner_pool);
  DefectionRun run;
  run.rounds.reserve(config.rounds);
  for (std::size_t r = 0; r < config.rounds; ++r) {
    const RoundResult result = engine.run_round();
    run.rounds.push_back({result.final_fraction * 100.0,
                          result.tentative_fraction * 100.0,
                          result.none_fraction * 100.0});
    run.progress = run.progress || result.non_empty_block;
  }
  return run;
}

}  // namespace

DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config) {
  const ExperimentSpec spec{config.runs, config.rounds, config.network.seed,
                            config.threads, config.inner_threads};
  OutcomeMetrics metrics(config.rounds);
  std::size_t runs_with_progress = 0;

  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        // The network rebuilds its stream from a scalar seed, so hand it
        // this run's seed material (== root.split(run)).
        return execute_run(config, rng.seed_material(), ctx.inner_pool);
      },
      [&](std::size_t, DefectionRun run) {
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          metrics.record(r, run.rounds[r].final_pct,
                         run.rounds[r].tentative_pct, run.rounds[r].none_pct);
        }
        if (run.progress) ++runs_with_progress;
      });

  DefectionSeries series;
  series.rounds = metrics.aggregate(config.trim_fraction);
  series.runs_with_progress = static_cast<double>(runs_with_progress) /
                              static_cast<double>(config.runs);
  return series;
}

}  // namespace roleshare::sim
