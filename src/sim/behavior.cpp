#include "sim/behavior.hpp"

namespace roleshare::sim {

game::Strategy choose_strategy(BehaviorType behavior,
                               const econ::CostModel& costs,
                               const SelfishContext& ctx, util::Rng& rng) {
  switch (behavior) {
    case BehaviorType::Honest:
      return game::Strategy::Cooperate;
    case BehaviorType::ScriptedDefect:
      return game::Strategy::Defect;
    case BehaviorType::Faulty:
      return game::Strategy::Offline;
    case BehaviorType::Malicious:
      return rng.bernoulli(0.5) ? game::Strategy::Cooperate
                                : game::Strategy::Defect;
    case BehaviorType::Selfish: {
      // Expected extra cost of cooperating over defecting this round.
      const double expected_cost =
          (costs.other_cost() - costs.defection_cost()) +
          ctx.p_leader * (costs.leader_cost() - costs.other_cost()) +
          ctx.p_committee * (costs.committee_cost() - costs.other_cost());
      // Under no-punishment schemes defection keeps the stake reward, so a
      // purely myopic node would always defect; but defection risks the
      // block (and thus the reward) failing. The node cooperates when the
      // reward at stake exceeds the cost of cooperating.
      const double reward_at_stake =
          ctx.last_reward_per_stake * static_cast<double>(ctx.stake);
      return reward_at_stake > expected_cost ? game::Strategy::Cooperate
                                             : game::Strategy::Defect;
    }
  }
  return game::Strategy::Cooperate;
}

}  // namespace roleshare::sim
