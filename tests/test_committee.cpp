#include "consensus/committee.hpp"

#include <gtest/gtest.h>

namespace roleshare::consensus {
namespace {

struct Population {
  std::vector<crypto::KeyPair> keys;
  std::vector<std::int64_t> stakes;
  std::int64_t total = 0;
};

Population make_population(std::size_t n, std::int64_t stake_each,
                           std::uint64_t seed = 1) {
  Population p;
  for (std::size_t v = 0; v < n; ++v) {
    p.keys.push_back(crypto::KeyPair::derive(seed, v));
    p.stakes.push_back(stake_each);
    p.total += stake_each;
  }
  return p;
}

TEST(Committee, ExpectedTotalWeightNearTau) {
  const Population p = make_population(400, 25);
  const std::uint64_t tau = 1000;
  double sum = 0;
  const int rounds = 30;
  for (int r = 0; r < rounds; ++r) {
    const auto seed = crypto::HashBuilder("cseed").add_u64(r).build();
    const Committee c = elect_committee(p.keys, p.stakes, r, 1, seed, tau,
                                        p.total);
    sum += static_cast<double>(c.total_weight());
  }
  EXPECT_NEAR(sum / rounds, static_cast<double>(tau), 60.0);
}

TEST(Committee, MembersHavePositiveWeightAndValidProofs) {
  const Population p = make_population(100, 50);
  const auto seed = crypto::HashBuilder("cseed").add_u64(7).build();
  const Committee c =
      elect_committee(p.keys, p.stakes, 3, 2, seed, 500, p.total);
  const crypto::VrfInput input{3, 2, seed};
  const crypto::SortitionParams params{500, p.total};
  for (const CommitteeMember& m : c.members) {
    EXPECT_GT(m.weight, 0u);
    EXPECT_EQ(crypto::verify_sortition(p.keys[m.node].public_key(), input,
                                       m.sortition.vrf, p.stakes[m.node],
                                       params),
              m.weight);
  }
}

TEST(Committee, DifferentStepsDifferentCommittees) {
  const Population p = make_population(300, 25);
  const auto seed = crypto::HashBuilder("cseed").add_u64(1).build();
  const Committee a =
      elect_committee(p.keys, p.stakes, 1, 1, seed, 800, p.total);
  const Committee b =
      elect_committee(p.keys, p.stakes, 1, 2, seed, 800, p.total);
  ASSERT_FALSE(a.members.empty());
  ASSERT_FALSE(b.members.empty());
  // Committees are re-drawn per step; identical membership is vanishingly
  // unlikely.
  bool identical = a.members.size() == b.members.size();
  if (identical) {
    for (std::size_t i = 0; i < a.members.size(); ++i)
      if (a.members[i].node != b.members[i].node) identical = false;
  }
  EXPECT_FALSE(identical);
}

TEST(Committee, DeterministicForSameInputs) {
  const Population p = make_population(100, 30);
  const auto seed = crypto::HashBuilder("cseed").add_u64(2).build();
  const Committee a =
      elect_committee(p.keys, p.stakes, 5, 3, seed, 400, p.total);
  const Committee b =
      elect_committee(p.keys, p.stakes, 5, 3, seed, 400, p.total);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].node, b.members[i].node);
    EXPECT_EQ(a.members[i].weight, b.members[i].weight);
  }
}

TEST(Committee, ZeroStakeNodesNeverElected) {
  Population p = make_population(50, 20);
  p.stakes[7] = 0;
  p.stakes[8] = 0;
  p.total -= 40;
  const auto seed = crypto::HashBuilder("cseed").add_u64(3).build();
  for (int r = 0; r < 20; ++r) {
    const Committee c =
        elect_committee(p.keys, p.stakes, r, 1, seed, 300, p.total);
    EXPECT_FALSE(c.contains(7));
    EXPECT_FALSE(c.contains(8));
  }
}

TEST(Committee, FindAndContains) {
  const Population p = make_population(60, 40);
  const auto seed = crypto::HashBuilder("cseed").add_u64(4).build();
  const Committee c =
      elect_committee(p.keys, p.stakes, 1, 1, seed, 1200, p.total);
  ASSERT_FALSE(c.members.empty());
  const CommitteeMember& first = c.members.front();
  EXPECT_TRUE(c.contains(first.node));
  ASSERT_NE(c.find(first.node), nullptr);
  EXPECT_EQ(c.find(first.node)->weight, first.weight);
}

TEST(Committee, HigherStakeElectedMoreOften) {
  Population p = make_population(100, 10);
  p.stakes[0] = 200;  // whale
  p.total += 190;
  int whale = 0, minnow = 0;
  for (int r = 0; r < 200; ++r) {
    const auto seed = crypto::HashBuilder("cseed").add_u64(100 + r).build();
    const Committee c =
        elect_committee(p.keys, p.stakes, r, 1, seed, 50, p.total);
    if (c.contains(0)) ++whale;
    if (c.contains(1)) ++minnow;
  }
  EXPECT_GT(whale, minnow * 2);
}

TEST(Committee, SizeMismatchRejected) {
  const Population p = make_population(10, 5);
  std::vector<std::int64_t> short_stakes(5, 5);
  EXPECT_THROW(elect_committee(p.keys, short_stakes, 1, 1,
                               crypto::Hash256::zero(), 10, 50),
               std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::consensus
