// Property suite: the binary partial codec is indistinguishable from
// the JSON path over randomized document trees (the PartialCodec
// contract, DESIGN.md §9), and malformed binary input never decodes
// silently — every truncated prefix and every appended trailing byte is
// a named util::framed::Error.
//
// These sweep what the handwritten cases in tests/test_partial_codec.cpp
// cannot: arbitrary nesting of columnar and non-columnar arrays, NUL and
// high bytes in keys and strings, -0.0 and subnormal samples, documents
// where the SAME array flips between columnar and generic encoding
// depending on a single non-finite element.
#include <gtest/gtest.h>

#include <string>

#include "gen/domain_gen.hpp"
#include "sim/partial_codec.hpp"
#include "util/framed_io.hpp"
#include "util/json.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::sim::decode_partial_document;
using roleshare::sim::detect_partial_format;
using roleshare::sim::partial_codec;
using roleshare::sim::PartialFormat;
using roleshare::util::json::Value;
using roleshare::util::proptest::Verdict;

std::string describe_value(const Value& v) { return v.dump(); }

/// What every consumer of a decoded document compares: the canonical
/// dump after JSON normalization (non-finite → null).
std::string canonical(const Value& v) {
  return roleshare::util::json::parse(v.dump()).dump();
}

}  // namespace

// decode(encode(D)) under the binary codec dumps byte-identically to
// parse(D.dump()) — the bit-identity contract that lets the CI byte-diff
// treat binary shards and JSON shards as the same artifact.
PROP_TEST_WITH_PARAMS(PropPartialCodec, BinaryMatchesJsonPathExactly, 400) {
  prop.check(
      roleshare::testgen::json_value(3),
      [](const Value& v) {
        const std::string want = canonical(v);
        const std::string bytes =
            partial_codec(PartialFormat::Binary).encode(v);
        const Value back =
            partial_codec(PartialFormat::Binary).decode(bytes, "prop");
        if (back.dump() != want)
          return Verdict{false, "binary path diverged: " + back.dump() +
                                    " vs " + want};
        // And the auto-detecting read path agrees.
        if (detect_partial_format(bytes, "prop") != PartialFormat::Binary)
          return Verdict{false, "binary frame not detected as binary"};
        if (decode_partial_document(bytes, "prop").dump() != want)
          return Verdict{false, "auto-detect decode diverged"};
        return Verdict{};
      },
      describe_value);
}

// Binary encoding is deterministic and a fixpoint under re-encode —
// the property behind byte-identical store hits.
PROP_TEST_WITH_PARAMS(PropPartialCodec, BinaryEncodeIsAFixpoint, 300) {
  prop.check(
      roleshare::testgen::json_value(3),
      [](const Value& v) {
        const auto& codec = partial_codec(PartialFormat::Binary);
        const std::string bytes = codec.encode(v);
        if (codec.encode(v) != bytes)
          return Verdict{false, "encode is not deterministic"};
        if (codec.encode(codec.decode(bytes, "prop")) != bytes)
          return Verdict{false, "re-encode of decoded doc changed bytes"};
        return Verdict{};
      },
      describe_value);
}

// EVERY proper prefix of a binary frame is rejected with a framed
// error — truncation can never silently yield a document.
PROP_TEST_WITH_PARAMS(PropPartialCodec, EveryTruncatedPrefixIsRejected,
                      60) {
  prop.check(
      roleshare::testgen::json_value(2),
      [](const Value& v) {
        const auto& codec = partial_codec(PartialFormat::Binary);
        const std::string bytes = codec.encode(v);
        for (std::size_t len = 0; len < bytes.size(); ++len) {
          try {
            codec.decode(bytes.substr(0, len), "truncated");
            return Verdict{false, "prefix of length " +
                                      std::to_string(len) + " of " +
                                      std::to_string(bytes.size()) +
                                      " bytes was accepted"};
          } catch (const roleshare::util::framed::Error&) {
            // expected
          }
        }
        return Verdict{};
      },
      describe_value);
}

// Any byte appended after a complete frame is a named error too — the
// frame must be consumed EXACTLY.
PROP_TEST_WITH_PARAMS(PropPartialCodec, TrailingBytesAreRejected, 200) {
  prop.check(
      roleshare::testgen::json_value(2),
      [](const Value& v) {
        const auto& codec = partial_codec(PartialFormat::Binary);
        const std::string bytes = codec.encode(v);
        for (const char extra : {'\0', '\n', 'x'}) {
          try {
            codec.decode(bytes + extra, "trailing");
            return Verdict{false,
                           std::string("trailing byte accepted: ") + extra};
          } catch (const roleshare::util::framed::Error& e) {
            const std::string what = e.what();
            if (what.find("trailing") == std::string::npos)
              return Verdict{false, "error does not name the origin: " +
                                        what};
          }
        }
        return Verdict{};
      },
      describe_value);
}
