// E9 — substrate microbenchmarks (google-benchmark): the primitives whose
// throughput bounds experiment wall-clock — SHA-256, VRF+sortition, gossip
// propagation, vote tallying, and a full simulated consensus round — plus
// batched-vs-scalar head-to-heads for the fixed-template hashing and
// batch sortition paths the round engine's hot loop uses. Each fixed-path
// bench self-checks its digests against the streaming path at setup: the
// template must be bit-identical, not just fast.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "consensus/votes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sortition.hpp"
#include "net/gossip.hpp"
#include "sim/round_engine.hpp"

using namespace roleshare;

namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_VrfEvaluate(benchmark::State& state) {
  const crypto::KeyPair key = crypto::KeyPair::derive(1, 1);
  const crypto::VrfInput input{7, 3, crypto::HashBuilder("b").build()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::vrf_evaluate(key, input));
  }
}
BENCHMARK(BM_VrfEvaluate);

void BM_Sortition(benchmark::State& state) {
  const crypto::KeyPair key = crypto::KeyPair::derive(1, 1);
  const crypto::SortitionParams params{
      1000, static_cast<std::int64_t>(state.range(0))};
  std::uint64_t round = 0;
  for (auto _ : state) {
    const crypto::VrfInput input{++round, 1, crypto::Hash256::zero()};
    benchmark::DoNotOptimize(
        crypto::sortition(key, input, state.range(0) / 100, params));
  }
}
BENCHMARK(BM_Sortition)->Arg(10'000)->Arg(1'000'000);

// -- Batched vs scalar head-to-heads ---------------------------------------
//
// The round engine hashes many same-shape messages per step (one sign +
// one output hash per node). The scalar path streams each message through
// HashBuilder; the fixed path seals the layout into a Sha256Fixed
// template once and only rewrites the 32-byte variable slot per item.

/// 256 cycling slot values so the per-iteration work is just the hash
/// under test, not input generation.
std::vector<crypto::Hash256> make_slot_values() {
  std::vector<crypto::Hash256> values;
  for (std::uint64_t i = 0; i < 256; ++i)
    values.push_back(crypto::HashBuilder("slot").add_u64(i).build());
  return values;
}

void BM_HashSigLayout_Scalar(benchmark::State& state) {
  const std::vector<crypto::Hash256> slots = make_slot_values();
  const crypto::Hash256 msg = crypto::HashBuilder("m").build();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HashBuilder("roleshare.sig")
                                 .add(slots[i++ & 255])
                                 .add(msg)
                                 .build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashSigLayout_Scalar);

void BM_HashSigLayout_FixedTemplate(benchmark::State& state) {
  const std::vector<crypto::Hash256> slots = make_slot_values();
  const crypto::Hash256 msg = crypto::HashBuilder("m").build();
  crypto::FixedHasher layout("roleshare.sig");
  const std::size_t slot = layout.add_hash_slot();
  layout.add(msg);
  crypto::Sha256Fixed fixed = layout.build_template();

  // Digest self-check: the template must reproduce the streaming layout
  // bit for bit for every probe value.
  for (const crypto::Hash256& probe : slots) {
    crypto::write_hash_slot(fixed, slot, probe);
    const crypto::Hash256 expected =
        crypto::HashBuilder("roleshare.sig").add(probe).add(msg).build();
    if (crypto::Hash256(fixed.digest()) != expected) {
      std::fprintf(stderr, "FATAL: Sha256Fixed digest != HashBuilder\n");
      std::abort();
    }
  }

  std::size_t i = 0;
  for (auto _ : state) {
    crypto::write_hash_slot(fixed, slot, slots[i++ & 255]);
    benchmark::DoNotOptimize(fixed.digest());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashSigLayout_FixedTemplate);

/// Shared fixture for the sortition head-to-head: one committee draw over
/// `n` nodes with skewed stakes.
struct SortitionBatchSetup {
  std::vector<crypto::KeyPair> keys;
  std::vector<std::int64_t> stakes;
  crypto::SortitionParams params;
  crypto::VrfInput input{9, 2, crypto::Hash256::zero()};

  explicit SortitionBatchSetup(std::size_t n) {
    std::int64_t total = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      keys.push_back(crypto::KeyPair::derive(3, i));
      stakes.push_back(1 + static_cast<std::int64_t>(i % 50));
      total += stakes.back();
    }
    params = crypto::SortitionParams{40, total};
    input.prev_seed = crypto::HashBuilder("s").build();
  }
};

void BM_SortitionCommittee_Scalar(benchmark::State& state) {
  const SortitionBatchSetup setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (std::size_t i = 0; i < setup.keys.size(); ++i) {
      benchmark::DoNotOptimize(crypto::sortition(
          setup.keys[i], setup.input, setup.stakes[i], setup.params));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortitionCommittee_Scalar)->Arg(512)->Arg(4096);

void BM_SortitionCommittee_Batched(benchmark::State& state) {
  const SortitionBatchSetup setup(static_cast<std::size_t>(state.range(0)));
  std::vector<crypto::SortitionResult> results;

  // Self-check: the batched path must match per-node sortition() exactly.
  crypto::sortition_batch_into(setup.keys, setup.input, setup.stakes,
                               setup.params, results);
  for (std::size_t i = 0; i < setup.keys.size(); ++i) {
    const crypto::SortitionResult scalar = crypto::sortition(
        setup.keys[i], setup.input, setup.stakes[i], setup.params);
    if (results[i].sub_users != scalar.sub_users ||
        results[i].vrf.output != scalar.vrf.output ||
        results[i].vrf.proof != scalar.vrf.proof) {
      std::fprintf(stderr, "FATAL: sortition_batch_into != sortition\n");
      std::abort();
    }
  }

  for (auto _ : state) {
    crypto::sortition_batch_into(setup.keys, setup.input, setup.stakes,
                                 setup.params, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SortitionCommittee_Batched)->Arg(512)->Arg(4096);

void BM_GossipPropagate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng trng(5);
  const net::Topology topo = net::Topology::random_k_out(n, 5, trng);
  const net::UniformDelay delay(20, 120);
  const net::GossipEngine engine(topo, delay);
  const net::RelaySet relay = net::RelaySet::all_cooperative(n);
  util::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.propagate(0, 0.0, relay, rng));
  }
}
BENCHMARK(BM_GossipPropagate)->Arg(300)->Arg(1000);

void BM_VoteTally(benchmark::State& state) {
  // Pre-build verified votes once; measure counter throughput.
  const crypto::Hash256 seed = crypto::HashBuilder("t").build();
  const crypto::SortitionParams params{5000, 10'000};
  const crypto::Hash256 value = crypto::HashBuilder("v").build();
  std::vector<consensus::Vote> votes;
  std::uint64_t id = 0;
  while (votes.size() < 64) {
    const crypto::KeyPair key = crypto::KeyPair::derive(2, id++);
    const crypto::VrfInput input{1, 1, seed};
    const auto res = crypto::sortition(key, input, 100, params);
    if (res.selected()) {
      votes.push_back(consensus::make_vote(
          static_cast<ledger::NodeId>(id), key.public_key(), 1, 1, value,
          res));
    }
  }
  for (auto _ : state) {
    consensus::VoteCounter counter(100.0);
    for (const auto& v : votes) counter.add(v);
    benchmark::DoNotOptimize(counter.result());
  }
}
BENCHMARK(BM_VoteTally);

void BM_FullConsensusRound(benchmark::State& state) {
  sim::NetworkConfig config;
  config.node_count = static_cast<std::size_t>(state.range(0));
  config.seed = 17;
  sim::Network net(config);
  sim::RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                                   net.accounts().total_stake()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_round());
  }
}
BENCHMARK(BM_FullConsensusRound)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
