// Welfare analytics over the one-round game: what a strategy profile costs
// the players, what it costs the designer (the Foundation), and how far
// selfish play lands from the cooperative optimum. This quantifies the
// paper's efficiency claim: the role-based mechanism buys the cooperative
// outcome at the minimal designer expenditure.
#pragma once

#include "game/game_model.hpp"

namespace roleshare::game {

struct ProfileMetrics {
  /// Sum of player payoffs (µAlgos) — social welfare.
  double social_welfare = 0;
  /// Rewards actually handed out by the scheme this round (µAlgos);
  /// zero when no block is created.
  double designer_expenditure = 0;
  /// Sum of costs players incur (µAlgos).
  double total_cost = 0;
  /// Fraction of players cooperating.
  double cooperation_rate = 0;
  bool block_created = false;
};

/// Evaluates a profile. O(n).
ProfileMetrics analyze_profile(const AlgorandGame& game,
                               const Profile& profile);

/// Welfare of the all-cooperate profile — the throughput-maximizing
/// benchmark (a block is certainly created; every cost is paid).
ProfileMetrics cooperative_benchmark(const AlgorandGame& game);

/// Ratio of benchmark welfare to the welfare of the given (equilibrium)
/// profile — a price-of-anarchy-style inefficiency measure. Values > 1
/// mean selfish play destroys welfare; defined only when both welfares
/// are positive, otherwise returns +inf (total collapse) or 1 (both
/// degenerate).
double anarchy_ratio(const AlgorandGame& game, const Profile& equilibrium);

}  // namespace roleshare::game
