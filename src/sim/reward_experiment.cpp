#include "sim/reward_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "econ/foundation_schedule.hpp"
#include "sim/experiment_runner.hpp"
#include "util/alias_sampler.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

StakeSpec StakeSpec::uniform(std::int64_t lo, std::int64_t hi) {
  StakeSpec s;
  s.kind = Kind::Uniform;
  s.a = static_cast<double>(lo);
  s.b = static_cast<double>(hi);
  return s;
}

StakeSpec StakeSpec::normal(double mean, double sigma) {
  StakeSpec s;
  s.kind = Kind::Normal;
  s.a = mean;
  s.b = sigma;
  return s;
}

std::string StakeSpec::name() const { return make()->name(); }

std::unique_ptr<util::StakeDistribution> StakeSpec::make() const {
  if (kind == Kind::Uniform) {
    return util::make_uniform_stake(static_cast<std::int64_t>(a),
                                    static_cast<std::int64_t>(b));
  }
  return util::make_normal_stake(a, b);
}

namespace {

/// Draws a role's member set by sub-user sampling: `tau` stake-weighted
/// draws; distinct drawn nodes form the set. Returns the minimum stake
/// among members (0 if none).
std::int64_t sample_role_min_stake(
    const util::AliasSampler& sampler, const std::vector<std::int64_t>& stakes,
    std::uint64_t tau, util::Rng& rng,
    std::unordered_set<std::size_t>& members_out) {
  std::int64_t min_stake = 0;
  for (std::uint64_t d = 0; d < tau; ++d) {
    const std::size_t v = sampler.sample(rng);
    members_out.insert(v);
    if (min_stake == 0 || stakes[v] < min_stake) min_stake = stakes[v];
  }
  return min_stake;
}

/// One run's contribution: every per-round optimizer outcome, in round
/// order, so the reduction can replay them exactly as a serial loop would.
struct RewardRun {
  std::vector<double> bi_algos;      // feasible rounds only, round order
  std::vector<double> per_round_bi;  // length rounds_per_run, 0 = infeasible
  std::vector<double> alphas;        // feasible rounds only
  std::vector<double> betas;
  double total_stake = 0.0;
  std::size_t infeasible = 0;
};

RewardRun execute_run(const RewardExperimentConfig& config,
                      const econ::RewardOptimizer& optimizer,
                      const util::StakeDistribution& dist, util::Rng& rng,
                      const util::InnerExecutor& exec) {
  RewardRun run;
  run.per_round_bi.assign(config.rounds_per_run, 0.0);

  std::vector<std::int64_t> stakes = dist.sample_many(rng, config.node_count);
  std::int64_t total_stake = 0;
  for (const std::int64_t s : stakes) total_stake += s;

  for (std::size_t round = 0; round < config.rounds_per_run; ++round) {
    // Committee sampling (sub-user draws, alias table rebuilt per round
    // because the churn below shifts weights).
    std::vector<double> weights(stakes.begin(), stakes.end());
    const util::AliasSampler sampler(weights);

    std::unordered_set<std::size_t> leaders, committee;
    const std::int64_t min_leader = sample_role_min_stake(
        sampler, stakes, config.leader_stake, rng, leaders);
    const std::int64_t min_committee = sample_role_min_stake(
        sampler, stakes, config.committee_stake, rng, committee);

    // Others: everyone else. s*_k is the min stake among others at or
    // above the Fig-7(c) threshold; S_K excludes filtered nodes. The
    // O(node_count) scan fans out in chunks; the partials (integer sum and
    // min) merge exactly, so the result is identical for every executor.
    const std::int64_t threshold = config.min_other_stake.value_or(0);
    const std::size_t chunks = util::InnerExecutor::chunk_count(stakes.size());
    std::vector<std::int64_t> chunk_min(chunks, 0);
    std::vector<std::int64_t> chunk_sum(chunks, 0);
    exec.for_each_chunk(
        stakes.size(), [&](std::size_t c, std::size_t begin, std::size_t end) {
          for (std::size_t v = begin; v < end; ++v) {
            if (leaders.contains(v) || committee.contains(v)) continue;
            if (stakes[v] < threshold) continue;
            chunk_sum[c] += stakes[v];
            if (chunk_min[c] == 0 || stakes[v] < chunk_min[c])
              chunk_min[c] = stakes[v];
          }
        });
    std::int64_t min_other = 0;
    std::int64_t others_stake = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      others_stake += chunk_sum[c];
      if (chunk_min[c] != 0 && (min_other == 0 || chunk_min[c] < min_other))
        min_other = chunk_min[c];
    }

    econ::BoundInputs inputs;
    inputs.stake_leaders = static_cast<double>(config.leader_stake);
    inputs.stake_committee = static_cast<double>(config.committee_stake);
    inputs.stake_others = static_cast<double>(others_stake);
    inputs.min_stake_leader =
        static_cast<double>(std::max<std::int64_t>(1, min_leader));
    inputs.min_stake_committee =
        static_cast<double>(std::max<std::int64_t>(1, min_committee));
    inputs.min_stake_other =
        static_cast<double>(std::max<std::int64_t>(1, min_other));

    const econ::OptimizerResult opt = optimizer.optimize(inputs, config.costs);
    if (!opt.feasible) {
      ++run.infeasible;
    } else {
      const double bi_algos = opt.min_bi / 1e6;  // µAlgos -> Algos
      run.bi_algos.push_back(bi_algos);
      run.per_round_bi[round] = bi_algos;
      run.alphas.push_back(opt.split.alpha);
      run.betas.push_back(opt.split.beta);
    }

    // Transaction churn: stake-weighted parties exchange a few Algos.
    for (std::size_t t = 0; t < config.tx_parties; ++t) {
      const std::size_t v = sampler.sample(rng);
      const std::int64_t delta = rng.uniform_int(config.tx_lo, config.tx_hi);
      const std::int64_t updated =
          std::max<std::int64_t>(1, stakes[v] + delta);
      total_stake += updated - stakes[v];
      stakes[v] = updated;
    }
  }
  run.total_stake = static_cast<double>(total_stake);
  return run;
}

}  // namespace

RewardExperimentResult run_reward_experiment(
    const RewardExperimentConfig& config) {
  RS_REQUIRE(config.node_count > 2, "population too small");

  RewardExperimentResult result;
  result.foundation_per_round.assign(config.rounds_per_run, 0.0);
  for (std::size_t r = 0; r < config.rounds_per_run; ++r) {
    result.foundation_per_round[r] = ledger::to_algos(
        econ::FoundationSchedule::reward_for_round(r + 1));
  }

  const econ::RewardOptimizer optimizer(config.optimizer);
  const auto dist = config.stakes.make();
  util::RunningStats bi_stats;
  util::RunningStats alpha_stats;
  util::RunningStats beta_stats;
  util::RunningStats stake_stats;
  // Per-round B_i series behind the accumulator concept: the exact
  // backend reproduces the historical sum/divide bit for bit, the
  // streaming backend keeps this state O(rounds).
  const std::unique_ptr<RoundAccumulator> per_round = make_accumulator(
      config.agg, config.rounds_per_run, config.streaming);
  const bool keep_samples = config.agg == AggBackend::Exact;

  const ExperimentSpec spec{config.runs,    config.rounds_per_run,
                            config.seed,    config.threads,
                            config.inner_threads, config.shard};
  run_and_reduce(
      spec,
      [&](std::size_t, util::Rng& rng, const RunContext& ctx) {
        return execute_run(config, optimizer, *dist, rng,
                           util::InnerExecutor(ctx.inner_pool));
      },
      [&](std::size_t, RewardRun run) {
        // Replayed in run order, feeding the streaming stats in exactly
        // the sample order a serial loop would produce.
        for (const double bi : run.bi_algos) {
          if (keep_samples) result.bi_algos.push_back(bi);
          bi_stats.add(bi);
        }
        for (std::size_t r = 0; r < config.rounds_per_run; ++r)
          per_round->record(r, run.per_round_bi[r]);
        for (const double a : run.alphas) alpha_stats.add(a);
        for (const double b : run.betas) beta_stats.add(b);
        stake_stats.add(run.total_stake);
        result.infeasible_rounds += run.infeasible;
      });

  result.bi_per_round_mean = per_round->mean_series();
  result.mean_bi = bi_stats.mean();
  result.mean_total_stake = stake_stats.mean();
  result.mean_alpha = alpha_stats.mean();
  result.mean_beta = beta_stats.mean();
  result.accumulator_bytes = per_round->memory_bytes() +
                             result.bi_algos.capacity() * sizeof(double);
  return result;
}

}  // namespace roleshare::sim
