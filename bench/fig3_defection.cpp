// E1 — Figure 3 (a)-(f): percentage of nodes extracting final / tentative /
// no blocks per round, for defection rates 5%..30%.
//
// Workload: N nodes, stakes U(1,50), gossip fan-out 5, defectors chosen
// uniformly at random, trimmed-mean (20%) aggregation over independent runs
// — the paper's §III-C methodology. Expected shape: low defection leaves
// most nodes on final blocks; >=15% pushes the network into tentative /
// no-block regimes; ~30% collapses consensus within the first rounds.
//
// Runs execute on the shared ExperimentRunner engine: --threads=N spreads
// the Monte-Carlo runs across N cores (0 = all) with bit-identical output.
// --inner-threads=N instead parallelizes each run's per-node round-engine
// loops — the knob for single-run latency at large --nodes; also
// bit-identical, and forced serial while --threads is parallel.
//
// Panel layout, seeds and config construction live in
// bench/bench_drivers.hpp (make_fig3_driver) — shared with the
// orchestrate coordinator/worker pair, so an orchestrated run cannot
// drift from this binary's config.
//
// Aggregation / sharding / checkpoint knobs (DESIGN.md §6):
//   --agg={exact,streaming}   reduction backend; streaming caps the
//                             accumulator state at O(rounds) memory.
//   --run-begin=B --run-end=E execute only global runs [B, E) — one shard
//                             of a multi-process sweep.
//   --partial-out=FILE        write the shard's mergeable partial (JSON)
//                             instead of a figure; feed the files from
//                             all shards to merge_partials.
//   --checkpoint-every=R      rewrite the partial every R runs with a
//                             resume cursor, so a crashed shard loses at
//                             most R runs of work.
//   --partial-in=FILE         resume a checkpoint: execute the remainder
//                             of its window and keep checkpointing.
//   --stop-after=N            stop (with a checkpoint) after N runs —
//                             deterministic crash injection for tests.
//   --series-out=FILE         also write the deterministic series
//                             snapshot the CI shard-smoke job diffs
//                             against a merged run.
#include <cstdio>
#include <string>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/defection_experiment.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const bench::Fig3Driver d = bench::make_fig3_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Figure 3", "block extraction vs. defection rate");
  std::printf("nodes=%zu runs=%zu rounds=%zu threads=%zu inner-threads=%zu "
              "agg=%s stakes=U(1,50) fanout=5 (override with "
              "--nodes/--runs/--rounds/--threads/--inner-threads/--agg; "
              "shard with --run-begin/--run-end + --partial-out, resume "
              "with --checkpoint-every + --partial-in)\n",
              d.nodes, d.runs, d.rounds, d.threads, d.inner_threads,
              sim::to_string(d.agg));

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::DefectionPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  // Shard-worker mode ends here: the partial is on disk, merge_partials
  // folds the shards into the figure.
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(d.nodes)},
      {"runs", static_cast<double>(d.runs)},
      {"rounds", static_cast<double>(d.rounds)},
      {"threads", static_cast<double>(d.threads)},
      {"inner_threads", static_cast<double>(d.inner_threads)},
      {"agg", sim::to_string(d.agg)}};

  std::size_t accumulator_bytes = 0;
  util::json::Value series_panels = util::json::Value::array();
  for (std::size_t i = 0; i < d.panels.panel_count; ++i) {
    const sim::DefectionSeries series =
        exec.partials[i].finalize(bench::fig3::kTrim);
    accumulator_bytes += series.accumulator_bytes;

    std::printf("\n--- Fig 3(%c): defection rate %.0f%% ---\n",
                bench::fig3::kPanels[i], bench::fig3::kRates[i] * 100);
    bench::print_defection_table(series);
    const double mean_final = bench::mean_final_pct(series);
    std::printf("mean final%% = %.1f | runs with chain progress = %.0f%%\n",
                mean_final, series.runs_with_progress * 100);
    json_fields.emplace_back(
        "mean_final_pct_" +
            std::to_string(static_cast<int>(bench::fig3::kRates[i] * 100)),
        mean_final);

    util::json::Value panel = d.panels.panel_meta(i);
    panel.set("series", bench::defection_series_json(series));
    series_panels.push_back(std::move(panel));
  }

  if (!series_out.empty()) {
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  json_fields.emplace_back("accumulator_bytes",
                           static_cast<double>(accumulator_bytes));
  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("fig3_defection", json_fields);

  std::printf("\nShape check: mean final%% must fall monotonically with the\n"
              "defection rate, with collapse (<50%% final) by 25-30%%.\n");
  return 0;
}
