// Failure-injection suite: malicious and faulty behaviours, degraded
// synchrony, and adversarial parameter corners — the protocol must degrade
// (liveness) without ever violating safety (two honest nodes finalizing
// different blocks in one round).
#include <gtest/gtest.h>

#include "sim/round_engine.hpp"

namespace roleshare::sim {
namespace {

NetworkConfig base(std::uint64_t seed, std::size_t nodes = 100) {
  NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  return config;
}

consensus::ConsensusParams params_for(const Network& net) {
  return consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
}

void make_malicious(Network& net, double fraction, util::Rng& rng) {
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(net.node_count()));
  for (const std::size_t v :
       rng.sample_without_replacement(net.node_count(), count)) {
    net.set_behavior(static_cast<ledger::NodeId>(v), BehaviorType::Malicious);
  }
}

TEST(FaultInjection, MaliciousMinorityDoesNotBreakSafety) {
  // 20% malicious (randomly cooperating/defecting per round): the chain
  // must stay a single hash-linked history; rounds may degrade.
  Network net(base(501));
  util::Rng rng(1);
  make_malicious(net, 0.2, rng);
  util::Rng decide = rng.split("decide");
  RoundEngine engine(net, params_for(net));
  for (int r = 1; r <= 6; ++r) {
    net.decide_strategies(econ::CostModel{}, 0.0, decide);
    // Honest nodes must still cooperate after re-deciding.
    for (std::size_t v = 0; v < net.node_count(); ++v) {
      if (net.behavior(static_cast<ledger::NodeId>(v)) ==
          BehaviorType::Honest) {
        ASSERT_EQ(net.strategies()[v], game::Strategy::Cooperate);
      }
    }
    const RoundResult result = engine.run_round();
    EXPECT_EQ(result.round, static_cast<ledger::Round>(r));
  }
  // Chain integrity end to end.
  for (std::size_t i = 1; i < net.chain().height(); ++i) {
    EXPECT_EQ(net.chain().at(i).prev_hash(), net.chain().at(i - 1).hash());
  }
}

TEST(FaultInjection, MassFaultsStallButNeverCorrupt) {
  NetworkConfig config = base(502);
  config.faulty_rate = 0.5;
  Network net(config);
  RoundEngine engine(net, params_for(net));
  for (int r = 0; r < 3; ++r) {
    const RoundResult result = engine.run_round();
    // Offline half contributes NoBlock outcomes; fractions stay coherent.
    EXPECT_GE(result.none_fraction, 0.45);
    EXPECT_NEAR(result.final_fraction + result.tentative_fraction +
                    result.none_fraction,
                1.0, 1e-9);
  }
  EXPECT_EQ(net.chain().height(), 4u);  // chain always advances
}

TEST(FaultInjection, CombinedDefectionAndFaultsCompound) {
  NetworkConfig healthy_config = base(503);
  NetworkConfig mixed_config = base(503);
  mixed_config.defection_rate = 0.2;
  mixed_config.faulty_rate = 0.2;
  Network healthy(healthy_config);
  Network mixed(mixed_config);
  RoundEngine e1(healthy, params_for(healthy));
  RoundEngine e2(mixed, params_for(mixed));
  double f1 = 0, f2 = 0;
  for (int r = 0; r < 4; ++r) {
    f1 += e1.run_round().final_fraction;
    f2 += e2.run_round().final_fraction;
  }
  EXPECT_LT(f2, f1);
}

TEST(FaultInjection, RecoveryAfterDegradedRounds) {
  // Force weak synchrony for a bounded run, then strong again: final
  // consensus must recover — the paper's Fig-3(c) pattern.
  NetworkConfig config = base(504);
  config.synchrony.degrade_probability = 1.0;
  config.synchrony.degraded_delay_factor = 300.0;
  config.synchrony.max_degraded_rounds = 2;
  Network net(config);
  RoundEngine engine(net, params_for(net));

  std::vector<double> finals;
  for (int r = 0; r < 6; ++r) finals.push_back(engine.run_round().final_fraction);
  // With max_degraded_rounds = 2 and p = 1, state alternates; at least one
  // round must be degraded-poor and at least one strong-healthy.
  const double worst = *std::min_element(finals.begin(), finals.end());
  const double best = *std::max_element(finals.begin(), finals.end());
  EXPECT_LT(worst, 0.5);
  EXPECT_GT(best, 0.9);
}

TEST(FaultInjection, WhaleDefectionHurtsMoreThanMinnows) {
  // The paper's observation: defecting *rich* nodes amplify the damage
  // (they are more likely to hold roles). Compare defecting the top-stake
  // decile vs the bottom decile.
  auto run_with_defectors = [](bool whales) {
    Network net(base(505, 120));
    // Rank nodes by stake.
    std::vector<std::pair<std::int64_t, ledger::NodeId>> ranked;
    for (std::size_t v = 0; v < net.node_count(); ++v)
      ranked.emplace_back(net.accounts().stake(static_cast<ledger::NodeId>(v)),
                          static_cast<ledger::NodeId>(v));
    std::sort(ranked.begin(), ranked.end());
    const std::size_t tenth = net.node_count() / 10;
    for (std::size_t i = 0; i < 3 * tenth; ++i) {
      const auto idx = whales ? ranked.size() - 1 - i : i;
      net.set_behavior(ranked[idx].second, BehaviorType::ScriptedDefect);
    }
    util::Rng rng(9);
    net.decide_strategies(econ::CostModel{}, 0.0, rng);
    RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                                net.accounts().total_stake()));
    double final_sum = 0;
    for (int r = 0; r < 4; ++r) final_sum += engine.run_round().final_fraction;
    return final_sum / 4;
  };
  EXPECT_LT(run_with_defectors(true), run_with_defectors(false) + 1e-9);
}

TEST(FaultInjection, SingleOnlineNodeDegenerateNetwork) {
  // Everyone offline except a handful: no quorum is reachable, no crash.
  NetworkConfig config = base(506, 50);
  config.faulty_rate = 0.9;
  Network net(config);
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  EXPECT_LT(result.final_fraction, 0.2);
  EXPECT_EQ(net.chain().height(), 2u);
}

}  // namespace
}  // namespace roleshare::sim
