#include "econ/bi_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace roleshare::econ {
namespace {

// The paper's §V-A numerical setting: S_L = 26, S_M = 13k, s*_l = s*_m = 1,
// s*_k = 10, costs c_L=16, c_M=12, c_K=6, c_so=5 µAlgos, S_N ~ 50M Algos.
BoundInputs paper_inputs() {
  BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.stake_others = 50'000'000.0 - 26 - 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  in.min_stake_other = 10;
  return in;
}

TEST(BiBounds, PaperPointEstimate) {
  // At (alpha, beta) = (0.02, 0.03) the paper reports B_i ~ 5.2 Algos.
  const BiBounds b =
      compute_bi_bounds(RewardSplit(0.02, 0.03), paper_inputs(), CostModel{});
  ASSERT_TRUE(b.feasible);
  const double required_algos = b.required() / 1e6;
  EXPECT_NEAR(required_algos, 5.26, 0.15);
  // The third (online-node) bound dominates because S_K >> S_L, S_M.
  EXPECT_DOUBLE_EQ(b.required(), b.online_bound);
}

TEST(BiBounds, OnlineBoundFormula) {
  // online bound = (c_K - c_so) * S_K / (s*_k * gamma).
  const BoundInputs in = paper_inputs();
  const RewardSplit split(0.02, 0.03);
  const BiBounds b = compute_bi_bounds(split, in, CostModel{});
  const double expected =
      (6.0 - 5.0) * in.stake_others / (10.0 * split.gamma());
  EXPECT_NEAR(b.online_bound, expected, 1e-6);
}

TEST(BiBounds, LeaderBoundFormula) {
  const BoundInputs in = paper_inputs();
  const RewardSplit split(0.02, 0.03);
  const BiBounds b = compute_bi_bounds(split, in, CostModel{});
  const double margin = 0.02 / in.stake_leaders -
                        split.gamma() / (in.stake_others + 1.0);
  EXPECT_NEAR(b.leader_bound, (16.0 - 5.0) / (margin * 1.0), 1e-6);
}

TEST(BiBounds, CommitteeBoundFormula) {
  const BoundInputs in = paper_inputs();
  const RewardSplit split(0.02, 0.03);
  const BiBounds b = compute_bi_bounds(split, in, CostModel{});
  const double margin = 0.03 / in.stake_committee -
                        split.gamma() / (in.stake_others + 1.0);
  EXPECT_NEAR(b.committee_bound, (12.0 - 5.0) / (margin * 1.0), 1e-4);
}

TEST(BiBounds, InfeasibleWhenAlphaTooSmall) {
  // Eq (8): alpha/S_L must exceed gamma/(S_K + s*_l). Tiny alpha with a
  // small S_K violates it.
  BoundInputs in = paper_inputs();
  in.stake_others = 30;  // tiny online population
  const BiBounds b =
      compute_bi_bounds(RewardSplit(1e-6, 0.3), in, CostModel{});
  EXPECT_FALSE(b.feasible);
  EXPECT_TRUE(std::isinf(b.required()));
}

TEST(BiBounds, RequiredIsMaxOfThree) {
  const BiBounds b =
      compute_bi_bounds(RewardSplit(0.1, 0.1), paper_inputs(), CostModel{});
  ASSERT_TRUE(b.feasible);
  EXPECT_DOUBLE_EQ(
      b.required(),
      std::max({b.leader_bound, b.committee_bound, b.online_bound}));
}

TEST(BiBounds, OnlineBoundDecreasesWithGamma) {
  // More gamma -> cheaper to keep online nodes cooperative.
  const BoundInputs in = paper_inputs();
  const BiBounds small_gamma =
      compute_bi_bounds(RewardSplit(0.3, 0.3), in, CostModel{});
  const BiBounds large_gamma =
      compute_bi_bounds(RewardSplit(0.02, 0.02), in, CostModel{});
  ASSERT_TRUE(small_gamma.feasible);
  ASSERT_TRUE(large_gamma.feasible);
  EXPECT_GT(small_gamma.online_bound, large_gamma.online_bound);
}

TEST(BiBounds, HigherMinOtherStakeLowersRequiredReward) {
  // The Fig-7(c) effect: excluding tiny stakes (raising s*_k) shrinks B_i.
  BoundInputs in = paper_inputs();
  const RewardSplit split(0.02, 0.03);
  const double base = compute_bi_bounds(split, in, CostModel{}).required();
  in.min_stake_other = 30;
  const BiBounds fb = compute_bi_bounds(split, in, CostModel{});
  const double filtered = fb.required();
  EXPECT_LT(filtered, base);
  // The online bound scales exactly by 10/30; the overall requirement can
  // only be held up by the (unchanged) leader/committee bounds.
  EXPECT_NEAR(fb.online_bound, base * 10.0 / 30.0, base * 0.01);
  EXPECT_GE(filtered, fb.online_bound);
}

TEST(BiBounds, LargerStakePoolNeedsProportionallyMoreReward) {
  BoundInputs small = paper_inputs();
  BoundInputs large = paper_inputs();
  large.stake_others *= 20;
  const RewardSplit split(0.02, 0.03);
  const double b_small =
      compute_bi_bounds(split, small, CostModel{}).required();
  const double b_large =
      compute_bi_bounds(split, large, CostModel{}).required();
  EXPECT_NEAR(b_large / b_small, 20.0, 0.5);
}

TEST(BiBounds, SnapshotExtraction) {
  using consensus::Role;
  const RoleSnapshot snap(
      {Role::Leader, Role::Committee, Role::Other, Role::Other}, {4, 6, 8, 2});
  const BoundInputs in = BoundInputs::from_snapshot(snap);
  EXPECT_DOUBLE_EQ(in.stake_leaders, 4);
  EXPECT_DOUBLE_EQ(in.stake_committee, 6);
  EXPECT_DOUBLE_EQ(in.stake_others, 10);
  EXPECT_DOUBLE_EQ(in.min_stake_leader, 4);
  EXPECT_DOUBLE_EQ(in.min_stake_committee, 6);
  EXPECT_DOUBLE_EQ(in.min_stake_other, 2);
}

TEST(BiBounds, ValidateRejectsNonPositiveAggregates) {
  BoundInputs in = paper_inputs();
  in.stake_leaders = 0;
  EXPECT_THROW(in.validate(), std::invalid_argument);
  in = paper_inputs();
  in.min_stake_other = 0;
  EXPECT_THROW(in.validate(), std::invalid_argument);
}

// Sweep across splits: whenever feasible, all three bounds are positive
// (rewards must always be positive to offset positive net costs).
class SplitSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SplitSweep, FeasibleBoundsArePositive) {
  const auto [alpha, beta] = GetParam();
  const BiBounds b =
      compute_bi_bounds(RewardSplit(alpha, beta), paper_inputs(),
                        CostModel{});
  if (b.feasible) {
    EXPECT_GT(b.leader_bound, 0.0);
    EXPECT_GT(b.committee_bound, 0.0);
    EXPECT_GT(b.online_bound, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, SplitSweep,
    ::testing::Values(std::pair{0.01, 0.01}, std::pair{0.02, 0.03},
                      std::pair{0.1, 0.2}, std::pair{0.3, 0.3},
                      std::pair{0.45, 0.45}, std::pair{0.8, 0.1}));

}  // namespace
}  // namespace roleshare::econ
