#include "ledger/blockchain.hpp"

#include <gtest/gtest.h>

namespace roleshare::ledger {
namespace {

crypto::KeyPair key_of(std::uint64_t id) {
  return crypto::KeyPair::derive(2000, id);
}

Transaction sample_txn(std::uint64_t nonce) {
  return Transaction::create(key_of(0), key_of(1).public_key(), algos(1), 10,
                             nonce);
}

TEST(Block, MakeCarriesContent) {
  const auto proposer = key_of(2);
  const Block b = Block::make(3, crypto::Hash256::zero(),
                              crypto::Hash256::zero(), proposer.public_key(),
                              {sample_txn(1), sample_txn(2)});
  EXPECT_EQ(b.round(), 3u);
  EXPECT_FALSE(b.is_empty());
  EXPECT_EQ(b.transactions().size(), 2u);
  EXPECT_EQ(b.total_fees(), 20);
  EXPECT_EQ(b.proposer(), proposer.public_key());
}

TEST(Block, EmptyBlockHasNoFees) {
  const Block b = Block::empty(1, crypto::Hash256::zero(),
                               crypto::Hash256::zero());
  EXPECT_TRUE(b.is_empty());
  EXPECT_EQ(b.total_fees(), 0);
  EXPECT_TRUE(b.transactions().empty());
}

TEST(Block, HashDependsOnContent) {
  const auto proposer = key_of(2);
  const Block a = Block::make(1, crypto::Hash256::zero(),
                              crypto::Hash256::zero(), proposer.public_key(),
                              {sample_txn(1)});
  const Block b = Block::make(1, crypto::Hash256::zero(),
                              crypto::Hash256::zero(), proposer.public_key(),
                              {sample_txn(2)});
  const Block e = Block::empty(1, crypto::Hash256::zero(),
                               crypto::Hash256::zero());
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), e.hash());
}

TEST(Block, EmptyBlockHashIsCanonical) {
  // Every node derives the identical empty block for (round, prev, seed).
  const Block a = Block::empty(4, crypto::Hash256::zero(),
                               crypto::Hash256::zero());
  const Block b = Block::empty(4, crypto::Hash256::zero(),
                               crypto::Hash256::zero());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Blockchain, GenesisState) {
  const Blockchain chain(7);
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.next_round(), 1u);
  EXPECT_TRUE(chain.tip().is_empty());
  EXPECT_FALSE(chain.current_seed().is_zero());
}

TEST(Blockchain, GenesisSeedDependsOnSeedValue) {
  EXPECT_NE(Blockchain(1).current_seed(), Blockchain(2).current_seed());
}

TEST(Blockchain, AppendValidBlock) {
  Blockchain chain(7);
  const Block next = Block::make(chain.next_round(), chain.tip().hash(),
                                 chain.next_seed(), key_of(0).public_key(),
                                 {sample_txn(1)});
  EXPECT_TRUE(chain.append(next));
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.non_empty_count(), 1u);
}

TEST(Blockchain, RejectsWrongRound) {
  Blockchain chain(7);
  const Block bad = Block::make(5, chain.tip().hash(), chain.next_seed(),
                                key_of(0).public_key(), {});
  EXPECT_FALSE(chain.append(bad));
  EXPECT_EQ(chain.height(), 1u);
}

TEST(Blockchain, RejectsWrongPrevHash) {
  Blockchain chain(7);
  const Block bad = Block::make(chain.next_round(), crypto::Hash256::zero(),
                                chain.next_seed(), key_of(0).public_key(), {});
  EXPECT_FALSE(chain.append(bad));
}

TEST(Blockchain, RejectsWrongSeed) {
  Blockchain chain(7);
  const Block bad =
      Block::make(chain.next_round(), chain.tip().hash(),
                  crypto::HashBuilder("bogus").build(),
                  key_of(0).public_key(), {});
  EXPECT_FALSE(chain.append(bad));
}

TEST(Blockchain, SeedEvolvesEveryRound) {
  Blockchain chain(7);
  const crypto::Hash256 seed0 = chain.current_seed();
  ASSERT_TRUE(chain.append(Block::empty(chain.next_round(),
                                        chain.tip().hash(),
                                        chain.next_seed())));
  const crypto::Hash256 seed1 = chain.current_seed();
  ASSERT_TRUE(chain.append(Block::empty(chain.next_round(),
                                        chain.tip().hash(),
                                        chain.next_seed())));
  EXPECT_NE(seed0, seed1);
  EXPECT_NE(seed1, chain.current_seed());
}

TEST(Blockchain, LongChainStaysConsistent) {
  Blockchain chain(3);
  for (int i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(chain.append(Block::make(
          chain.next_round(), chain.tip().hash(), chain.next_seed(),
          key_of(0).public_key(), {sample_txn(static_cast<std::uint64_t>(i))})));
    } else {
      ASSERT_TRUE(chain.append(Block::empty(
          chain.next_round(), chain.tip().hash(), chain.next_seed())));
    }
  }
  EXPECT_EQ(chain.height(), 51u);
  EXPECT_EQ(chain.non_empty_count(), 17u);
  // Hash-link integrity along the whole chain.
  for (std::size_t i = 1; i < chain.height(); ++i) {
    EXPECT_EQ(chain.at(i).prev_hash(), chain.at(i - 1).hash());
    EXPECT_EQ(chain.at(i).round(), i);
  }
}

TEST(Blockchain, AtRejectsOutOfRange) {
  const Blockchain chain(1);
  EXPECT_THROW(chain.at(5), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::ledger
