// Theorem-3 lower bounds on the per-round reward B_i.
//
// For reward shares (α, β, γ = 1 − α − β), cooperation is a Nash
// equilibrium (on the Theorem-3 strategy profile) iff B_i exceeds all of:
//
//   leader bound     (c_L − c_so) / ((α/S_L − γ/(S_K + s*_l)) · s*_l)
//   committee bound  (c_M − c_so) / ((β/S_M − γ/(S_K + s*_m)) · s*_m)
//   online bound     (c_K − c_so) · S_K / (s*_k · γ)
//
// with the feasibility conditions Eq (8)/(9): both leader and committee
// denominators must be positive. All currency values here are µAlgos.
#pragma once

#include <string>

#include "econ/cost_model.hpp"
#include "econ/role_snapshot.hpp"

namespace roleshare::econ {

/// Reward split across roles. γ is derived; constructor enforces
/// α, β > 0, α + β < 1 (so γ > 0), as the mechanism requires every role to
/// get a positive share.
struct RewardSplit {
  double alpha;
  double beta;

  RewardSplit(double a, double b);
  double gamma() const { return 1.0 - alpha - beta; }
};

/// Inputs to the bound computation, decoupled from RoleSnapshot so the
/// numerical analysis (Fig 5) can sweep synthetic populations.
struct BoundInputs {
  double stake_leaders = 0;        // S_L
  double stake_committee = 0;      // S_M
  double stake_others = 0;         // S_K
  double min_stake_leader = 0;     // s*_l
  double min_stake_committee = 0;  // s*_m
  double min_stake_other = 0;      // s*_k

  /// Extracts the aggregates from a concrete round snapshot.
  static BoundInputs from_snapshot(const RoleSnapshot& snapshot);

  /// Throws std::invalid_argument when any aggregate is non-positive.
  void validate() const;
};

struct BiBounds {
  double leader_bound = 0;     // µAlgos
  double committee_bound = 0;  // µAlgos
  double online_bound = 0;     // µAlgos
  bool feasible = false;       // Eq (8) and (9) hold

  /// max of the three bounds; +inf when infeasible.
  double required() const;
};

/// Evaluates the Theorem-3 bounds for a split and population.
BiBounds compute_bi_bounds(const RewardSplit& split, const BoundInputs& in,
                           const CostModel& costs);

}  // namespace roleshare::econ
