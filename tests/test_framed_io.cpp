// util::framed — the byte-level frame layer under the binary partial
// codec and the result store. The tests here pin the wire format
// (little-endian scalars, u32 magic, u16 version, per-section FNV-1a
// checksums) and the rejection discipline: truncation at any byte,
// trailing bytes, wrong magic/version/section name, unread payload and
// corrupt checksums are all named errors, never silent tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/framed_io.hpp"

namespace {

using roleshare::util::framed::Error;
using roleshare::util::framed::fnv1a_64;
using roleshare::util::framed::magic4;
using roleshare::util::framed::Reader;
using roleshare::util::framed::starts_with_magic;
using roleshare::util::framed::Writer;

constexpr std::uint32_t kMagic = magic4('T', 'E', 'S', 'T');
constexpr std::uint16_t kVersion = 1;

std::string sample_frame() {
  Writer w(kMagic, kVersion);
  w.begin_section("head");
  w.put_u8(7);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(0.1);
  w.put_string(std::string("hello \0 world", 13));  // embedded NUL
  w.end_section();
  w.begin_section("cols");
  w.put_f64_column({1.5, -0.0, std::numeric_limits<double>::infinity(),
                    std::nan("")});
  w.end_section();
  return w.finish();
}

TEST(FramedIo, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a_64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a_64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a_64("foobar"), 0x85944171f73967e8ULL);
}

TEST(FramedIo, Magic4IsLittleEndianAscii) {
  const std::string bytes = sample_frame();
  ASSERT_GE(bytes.size(), 6u);
  // First four bytes on disk read "TEST"; then the version u16 LE.
  EXPECT_EQ(bytes.substr(0, 4), "TEST");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), kVersion);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 0);
  EXPECT_TRUE(starts_with_magic(bytes, kMagic));
  EXPECT_FALSE(starts_with_magic(bytes, magic4('R', 'S', 'B', 'P')));
  EXPECT_FALSE(starts_with_magic("TE", kMagic));
}

TEST(FramedIo, TypedScalarsRoundTrip) {
  const std::string bytes = sample_frame();  // Reader views, not copies
  Reader r(bytes, kMagic, kVersion, "unit test");
  EXPECT_EQ(r.version(), kVersion);
  r.begin_section("head");
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f64(), 0.1);
  EXPECT_EQ(r.get_string(), std::string("hello \0 world", 13));
  r.end_section();
  r.begin_section("cols");
  const std::vector<double> col = r.get_f64_column();
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col[0], 1.5);
  EXPECT_EQ(col[1], 0.0);
  EXPECT_TRUE(std::signbit(col[1]));  // -0.0 bit pattern preserved
  EXPECT_TRUE(std::isinf(col[2]));
  EXPECT_TRUE(std::isnan(col[3]));
  r.end_section();
  r.finish();
}

TEST(FramedIo, HasSectionSeesRemainingSections) {
  const std::string bytes = sample_frame();
  Reader r(bytes, kMagic, kVersion, "unit test");
  EXPECT_TRUE(r.has_section());
  r.begin_section("head");
  r.get_u8();
  r.get_u16();
  r.get_u32();
  r.get_u64();
  r.get_i64();
  r.get_f64();
  r.get_string();
  r.end_section();
  EXPECT_TRUE(r.has_section());
  r.begin_section("cols");
  r.get_f64_column();
  r.end_section();
  EXPECT_FALSE(r.has_section());
}

TEST(FramedIo, WrongMagicNamesOriginAndExpectation) {
  const std::string bytes = sample_frame();
  try {
    Reader r(bytes, magic4('R', 'S', 'B', 'P'), kVersion,
             "frame-under-test");
    FAIL() << "wrong magic accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frame-under-test"), std::string::npos) << what;
    EXPECT_NE(what.find("magic"), std::string::npos) << what;
  }
}

TEST(FramedIo, WrongVersionRejected) {
  const std::string bytes = sample_frame();
  EXPECT_THROW(Reader(bytes, kMagic, 2, "unit test"), Error);
}

TEST(FramedIo, WrongSectionNameNamesBothSides) {
  const std::string bytes = sample_frame();
  Reader r(bytes, kMagic, kVersion, "unit test");
  try {
    r.begin_section("cols");  // actual first section is "head"
    FAIL() << "wrong section name accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cols"), std::string::npos) << what;
    EXPECT_NE(what.find("head"), std::string::npos) << what;
  }
}

TEST(FramedIo, EveryTruncatedPrefixIsRejected) {
  const std::string bytes = sample_frame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    EXPECT_THROW(
        {
          Reader r(prefix, kMagic, kVersion, "truncated");
          r.begin_section("head");
          r.get_u8();
          r.get_u16();
          r.get_u32();
          r.get_u64();
          r.get_i64();
          r.get_f64();
          r.get_string();
          r.end_section();
          r.begin_section("cols");
          r.get_f64_column();
          r.end_section();
          r.finish();
        },
        Error)
        << "prefix of length " << len << " was accepted";
  }
}

TEST(FramedIo, TrailingBytesRejectedByFinish) {
  const std::string bytes = sample_frame() + "x";
  Reader r(bytes, kMagic, kVersion, "trailing");
  r.begin_section("head");
  r.get_u8();
  r.get_u16();
  r.get_u32();
  r.get_u64();
  r.get_i64();
  r.get_f64();
  r.get_string();
  r.end_section();
  r.begin_section("cols");
  r.get_f64_column();
  r.end_section();
  EXPECT_THROW(r.finish(), Error);
}

TEST(FramedIo, SingleByteCorruptionAnywhereIsCaught) {
  const std::string bytes = sample_frame();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    bool rejected = false;
    try {
      Reader r(bad, kMagic, kVersion, "flipped");
      r.begin_section("head");
      r.get_u8();
      r.get_u16();
      r.get_u32();
      r.get_u64();
      r.get_i64();
      r.get_f64();
      r.get_string();
      r.end_section();
      r.begin_section("cols");
      r.get_f64_column();
      r.end_section();
      r.finish();
    } catch (const Error&) {
      rejected = true;
    }
    // A flip inside a payload changes decoded VALUES without breaking
    // the frame only if it dodges the checksum — FNV-1a of the payload
    // makes that impossible for one-byte flips. Everything structural
    // (header, lengths, names, checksums themselves) must also reject.
    EXPECT_TRUE(rejected) << "flip at byte " << i << " was accepted";
  }
}

TEST(FramedIo, UnreadPayloadBytesAreAnError) {
  const std::string bytes = sample_frame();
  Reader r(bytes, kMagic, kVersion, "unit test");
  r.begin_section("head");
  r.get_u8();  // leave the rest of the payload unread
  EXPECT_THROW(r.end_section(), Error);
}

TEST(FramedIo, ReadingPastSectionEndIsAnError) {
  Writer w(kMagic, kVersion);
  w.begin_section("tiny");
  w.put_u8(1);
  w.end_section();
  const std::string bytes = w.finish();
  Reader r(bytes, kMagic, kVersion, "unit test");
  r.begin_section("tiny");
  EXPECT_EQ(r.get_u8(), 1);
  EXPECT_THROW(r.get_u8(), Error);  // would cross into the checksum
}

TEST(FramedIo, EmptyFrameAndEmptySectionAreValid) {
  Writer w(kMagic, kVersion);
  const std::string empty = w.finish();
  Reader r(empty, kMagic, kVersion, "empty");
  EXPECT_FALSE(r.has_section());
  r.finish();

  Writer w2(kMagic, kVersion);
  w2.begin_section("void");
  w2.end_section();
  const std::string one_section = w2.finish();
  Reader r2(one_section, kMagic, kVersion, "empty section");
  r2.begin_section("void");
  r2.end_section();
  r2.finish();
}

TEST(FramedIo, WriterMisuseIsLogicError) {
  Writer w(kMagic, kVersion);
  EXPECT_THROW(w.put_u8(1), std::logic_error);  // outside any section
  w.begin_section("a");
  EXPECT_THROW(w.begin_section("b"), std::logic_error);  // no nesting
  w.end_section();
  EXPECT_THROW(w.end_section(), std::logic_error);
  w.finish();
  EXPECT_THROW(w.finish(), std::logic_error);  // spent
}

TEST(FramedIo, ColumnCountBeyondPayloadRejectedBeforeAllocation) {
  // A corrupt frame claiming 2^61 column entries must fail the bounds
  // check, not attempt a 16-exabyte allocation. Build a valid frame,
  // then rewrite the column count inside the payload — and its checksum
  // — so only the count lies.
  Writer w(kMagic, kVersion);
  w.begin_section("cols");
  w.put_f64_column({1.0});
  w.end_section();
  std::string bytes = w.finish();
  // Layout: 4 magic + 2 version + 2 name_len + 4 name + 8 payload_len,
  // then the payload (u64 count + 8 bytes) then the checksum.
  const std::size_t payload_at = 4 + 2 + 2 + 4 + 8;
  for (std::size_t i = 0; i < 8; ++i)
    bytes[payload_at + i] = static_cast<char>(0xff);
  const std::uint64_t sum = roleshare::util::framed::fnv1a_64(
      std::string_view(bytes).substr(payload_at, 16));
  for (std::size_t i = 0; i < 8; ++i)
    bytes[payload_at + 16 + i] = static_cast<char>((sum >> (8 * i)) & 0xff);
  Reader r(bytes, kMagic, kVersion, "hostile count");
  r.begin_section("cols");
  EXPECT_THROW(r.get_f64_column(), Error);
}

}  // namespace
