#include "game/game_model.hpp"

#include "util/require.hpp"

namespace roleshare::game {

Profile all_cooperate(std::size_t n) {
  return Profile(n, Strategy::Cooperate);
}

Profile all_defect(std::size_t n) { return Profile(n, Strategy::Defect); }

AlgorandGame::AlgorandGame(GameConfig config) : config_(std::move(config)) {
  RS_REQUIRE(config_.bi >= 0.0, "B_i must be non-negative");
  RS_REQUIRE(config_.committee_threshold > 0.5 &&
                 config_.committee_threshold < 1.0,
             "committee threshold in (0.5, 1)");
  RS_REQUIRE(config_.sync_set.empty() ||
                 config_.sync_set.size() == config_.snapshot.node_count(),
             "sync set size mismatch");
}

bool AlgorandGame::in_sync_set(ledger::NodeId player) const {
  return !config_.sync_set.empty() && config_.sync_set[player];
}

AlgorandGame::Aggregates AlgorandGame::aggregate(
    const Profile& profile) const {
  RS_REQUIRE(profile.size() == player_count(), "profile size mismatch");
  Aggregates agg;
  const econ::RoleSnapshot& snap = config_.snapshot;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto v = static_cast<ledger::NodeId>(i);
    const double stake = static_cast<double>(snap.stake(v));
    const Strategy s = profile[i];
    const consensus::Role role = snap.role(v);

    if (role == consensus::Role::Committee)
      agg.committee_total_stake += stake;

    if (s == Strategy::Offline) {
      if (in_sync_set(v)) ++agg.sync_defectors;
      continue;
    }
    agg.online_stake += stake;

    if (s == Strategy::Cooperate) {
      switch (role) {
        case consensus::Role::Leader:
          agg.coop_leader_stake += stake;
          ++agg.coop_leader_count;
          break;
        case consensus::Role::Committee:
          agg.coop_committee_stake += stake;
          break;
        case consensus::Role::Other:
          agg.gamma_pool_stake += stake;
          break;
      }
    } else {
      // Online defector: hides its role, appears as a plain online node.
      agg.gamma_pool_stake += stake;
      if (in_sync_set(v)) ++agg.sync_defectors;
    }
  }
  return agg;
}

bool AlgorandGame::block_created(const Aggregates& agg) const {
  if (agg.coop_leader_count == 0) return false;
  if (agg.committee_total_stake > 0.0 &&
      agg.coop_committee_stake <
          config_.committee_threshold * agg.committee_total_stake)
    return false;
  if (agg.sync_defectors > 0) return false;
  return true;
}

bool AlgorandGame::block_created(const Profile& profile) const {
  return block_created(aggregate(profile));
}

double AlgorandGame::reward_of(const Aggregates& agg, ledger::NodeId player,
                               Strategy strategy) const {
  if (strategy == Strategy::Offline) return 0.0;
  const econ::RoleSnapshot& snap = config_.snapshot;
  const double stake = static_cast<double>(snap.stake(player));
  if (stake <= 0.0) return 0.0;

  if (config_.scheme == SchemeKind::StakeProportional) {
    // Eq (3): r_i = B_i / S_N for every online node, role-blind.
    if (agg.online_stake <= 0.0) return 0.0;
    return config_.bi * stake / agg.online_stake;
  }

  // Role-based (Eq 5): cooperators draw from their role's pot; online
  // defectors draw from the γ pot.
  const double alpha = config_.split.alpha;
  const double beta = config_.split.beta;
  const double gamma = config_.split.gamma();
  const consensus::Role role = snap.role(player);

  if (strategy == Strategy::Cooperate) {
    switch (role) {
      case consensus::Role::Leader:
        return agg.coop_leader_stake > 0.0
                   ? alpha * config_.bi * stake / agg.coop_leader_stake
                   : 0.0;
      case consensus::Role::Committee:
        return agg.coop_committee_stake > 0.0
                   ? beta * config_.bi * stake / agg.coop_committee_stake
                   : 0.0;
      case consensus::Role::Other:
        return agg.gamma_pool_stake > 0.0
                   ? gamma * config_.bi * stake / agg.gamma_pool_stake
                   : 0.0;
    }
  }
  // Online defector (any role) is paid from the γ pot.
  return agg.gamma_pool_stake > 0.0
             ? gamma * config_.bi * stake / agg.gamma_pool_stake
             : 0.0;
}

double AlgorandGame::payoff_of(const Aggregates& agg, ledger::NodeId player,
                               Strategy strategy) const {
  double cost = 0.0;
  switch (strategy) {
    case Strategy::Cooperate:
      cost = config_.costs.cooperation_cost(config_.snapshot.role(player));
      break;
    case Strategy::Defect:
    case Strategy::Offline:
      cost = config_.costs.defection_cost();
      break;
  }
  const double reward =
      block_created(agg) ? reward_of(agg, player, strategy) : 0.0;
  return reward - cost;
}

double AlgorandGame::payoff(const Profile& profile,
                            ledger::NodeId player) const {
  RS_REQUIRE(player < player_count(), "player id out of range");
  const Aggregates agg = aggregate(profile);
  return payoff_of(agg, player, profile[player]);
}

std::vector<double> AlgorandGame::payoffs(const Profile& profile) const {
  const Aggregates agg = aggregate(profile);
  std::vector<double> out(player_count());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = payoff_of(agg, static_cast<ledger::NodeId>(i), profile[i]);
  return out;
}

}  // namespace roleshare::game
