#include "net/topology.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace roleshare::net {

Topology Topology::random_k_out(std::size_t n, std::size_t k,
                                util::Rng& rng) {
  RS_REQUIRE(n > 0, "topology needs nodes");
  RS_REQUIRE(k < n, "fan-out must be smaller than node count");
  Topology t;
  t.fan_out_ = k;
  t.out_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    // Sample k distinct targets != v: sample from n-1 logical slots and
    // shift indices >= v by one.
    auto picks = rng.sample_without_replacement(n - 1, k);
    auto& row = t.out_[v];
    row.reserve(k);
    for (const std::size_t p : picks) {
      const std::size_t target = (p >= v) ? p + 1 : p;
      row.push_back(static_cast<ledger::NodeId>(target));
    }
    std::sort(row.begin(), row.end());
  }
  t.build_reverse();
  return t;
}

Topology Topology::from_adjacency(
    std::vector<std::vector<ledger::NodeId>> adjacency) {
  Topology t;
  t.out_ = std::move(adjacency);
  const std::size_t n = t.out_.size();
  for (const auto& row : t.out_) {
    t.fan_out_ = std::max(t.fan_out_, row.size());
    for (const ledger::NodeId to : row)
      RS_REQUIRE(to < n, "adjacency target out of range");
  }
  t.build_reverse();
  return t;
}

std::span<const ledger::NodeId> Topology::out_neighbors(
    ledger::NodeId v) const {
  RS_REQUIRE(v < out_.size(), "node id out of range");
  return out_[v];
}

std::span<const ledger::NodeId> Topology::in_neighbors(
    ledger::NodeId v) const {
  RS_REQUIRE(v < in_.size(), "node id out of range");
  return in_[v];
}

void Topology::build_reverse() {
  in_.assign(out_.size(), {});
  for (std::size_t v = 0; v < out_.size(); ++v)
    for (const ledger::NodeId to : out_[v])
      in_[to].push_back(static_cast<ledger::NodeId>(v));
}

}  // namespace roleshare::net
