#include "gen/domain_gen.hpp"

#include <algorithm>
#include <cstring>

namespace roleshare::testgen {

namespace pgen = util::proptest::gen;
using util::proptest::Shrinkable;
using util::proptest::shrinkable_leaf;

Gen<crypto::Hash256> hash256() {
  return Gen<crypto::Hash256>([](util::Rng& rng) {
    crypto::Digest d;
    for (std::size_t w = 0; w < 4; ++w) {
      const std::uint64_t bits = rng();
      std::memcpy(d.data() + w * 8, &bits, 8);
    }
    Shrinkable<crypto::Hash256> s;
    s.value = crypto::Hash256(d);
    if (!s.value.is_zero()) {
      s.children = []() {
        return std::vector<Shrinkable<crypto::Hash256>>{
            shrinkable_leaf(crypto::Hash256::zero())};
      };
    }
    return s;
  });
}

Gen<crypto::PublicKey> public_key() {
  return hash256().map(
      [](const crypto::Hash256& h) { return crypto::PublicKey{h}; });
}

Gen<std::string> byte_string(std::size_t max_len) {
  // Weighted toward the bytes that exercise the JSON escaper: quotes,
  // backslashes, control characters (NUL included) and high bytes.
  auto byte = pgen::one_of<std::int64_t>({
      pgen::int_range(0x20, 0x7e),                        // printable ASCII
      pgen::element_of<std::int64_t>({'"', '\\', '/', '\n', '\r', '\t',
                                      '\b', '\f', 0x00, 0x01, 0x1f, 0x7f,
                                      0x80, 0xc3, 0xe2, 0xff}),
  });
  return pgen::vector_of(std::move(byte), 0, max_len)
      .map([](const std::vector<std::int64_t>& bytes) {
        std::string s;
        s.reserve(bytes.size());
        for (const std::int64_t b : bytes)
          s.push_back(static_cast<char>(static_cast<unsigned char>(b)));
        return s;
      });
}

Gen<ledger::Transaction> transaction() {
  return pgen::tuple_of(pgen::int_range(0, 1'000'000'000),  // sender seed
                        pgen::int_range(0, 10'000),         // sender node id
                        pgen::int_range(0, 1'000'000'000),  // receiver seed
                        pgen::int_range(1, 1'000'000'000),  // amount (> 0)
                        pgen::int_range(0, 1'000'000),      // fee
                        pgen::int_range(0, 1'000'000))      // nonce
      .map([](const auto& t) {
        const auto& [sseed, sid, rseed, amount, fee, nonce] = t;
        const crypto::KeyPair sender = crypto::KeyPair::derive(
            static_cast<std::uint64_t>(sseed), static_cast<std::uint64_t>(sid));
        const crypto::KeyPair receiver =
            crypto::KeyPair::derive(static_cast<std::uint64_t>(rseed), 0);
        return ledger::Transaction::create(sender, receiver.public_key(),
                                           amount, fee,
                                           static_cast<std::uint64_t>(nonce));
      });
}

Gen<ledger::Block> block() {
  return pgen::tuple_of(pgen::int_range(0, 1'000'000),  // round
                        hash256(),                      // prev_hash
                        hash256(),                      // seed
                        pgen::int_range(0, 1'000'000),  // proposer seed
                        pgen::vector_of(transaction(), 0, 4),
                        pgen::boolean())  // empty-block variant
      .map([](const auto& t) {
        const auto& [round, prev, seed, pseed, txns, is_empty] = t;
        const auto r = static_cast<ledger::Round>(round);
        if (is_empty) return ledger::Block::empty(r, prev, seed);
        const crypto::KeyPair proposer =
            crypto::KeyPair::derive(static_cast<std::uint64_t>(pseed), 0);
        return ledger::Block::make(r, prev, seed, proposer.public_key(), txns);
      });
}

namespace {

Gen<crypto::SortitionResult> sortition_result(std::int64_t min_subs) {
  return pgen::tuple_of(pgen::int_range(min_subs, 100'000),  // sub_users
                        hash256(), hash256())
      .map([](const auto& t) {
        const auto& [subs, output, proof] = t;
        crypto::SortitionResult r;
        r.sub_users = static_cast<std::uint64_t>(subs);
        r.vrf.output = output;
        r.vrf.proof = crypto::Signature{proof};
        return r;
      });
}

}  // namespace

Gen<consensus::Vote> vote() {
  // Wire validity: the decoder rejects zero-weight votes and any weight
  // that disagrees with the sortition proof, so weight := sub_users >= 1.
  return pgen::tuple_of(pgen::int_range(0, 1'000'000),  // voter
                        public_key(),
                        pgen::int_range(0, 1'000'000),  // round
                        pgen::int_range(0, 30),         // step
                        hash256(),                      // value
                        sortition_result(/*min_subs=*/1))
      .map([](const auto& t) {
        const auto& [voter, key, round, step, value, sort] = t;
        consensus::Vote v;
        v.voter = static_cast<ledger::NodeId>(voter);
        v.voter_key = key;
        v.round = static_cast<std::uint64_t>(round);
        v.step = static_cast<std::uint32_t>(step);
        v.value = value;
        v.weight = sort.sub_users;
        v.sortition = sort;
        return v;
      });
}

Gen<consensus::BlockProposal> block_proposal() {
  // Wire validity: a proposal must carry a winning sortition (>= 1).
  return pgen::tuple_of(pgen::int_range(0, 1'000'000),  // proposer
                        public_key(), block(),
                        sortition_result(/*min_subs=*/1),
                        pgen::int_range(0, 1'000'000'000))  // priority
      .map([](const auto& t) {
        const auto& [proposer, key, blk, sort, priority] = t;
        consensus::BlockProposal p;
        p.proposer = static_cast<ledger::NodeId>(proposer);
        p.proposer_key = key;
        p.block = blk;
        p.sortition = sort;
        p.priority = static_cast<std::uint64_t>(priority);
        return p;
      });
}

Gen<consensus::Credential> credential() {
  return pgen::tuple_of(pgen::int_range(0, 1'000'000),  // proposer
                        public_key(),
                        pgen::int_range(0, 1'000'000),  // round
                        sortition_result(/*min_subs=*/0),
                        pgen::int_range(0, 1'000'000'000))  // priority
      .map([](const auto& t) {
        const auto& [proposer, key, round, sort, priority] = t;
        consensus::Credential c;
        c.proposer = static_cast<ledger::NodeId>(proposer);
        c.proposer_key = key;
        c.round = static_cast<std::uint64_t>(round);
        c.sortition = sort;
        c.priority = static_cast<std::uint64_t>(priority);
        return c;
      });
}

Gen<consensus::ConsensusParams> consensus_params() {
  return pgen::tuple_of(pgen::int_range(1, 40),        // tau_proposer
                        pgen::int_range(8, 2'000),     // tau_step
                        pgen::int_range(20, 20'000),   // tau_final
                        pgen::real_range(0.55, 0.95),  // step threshold
                        pgen::real_range(0.55, 0.95),  // final threshold
                        pgen::int_range(1, 12),        // max binary iters
                        pgen::real_range(1'000.0, 30'000.0),  // proposal ms
                        pgen::real_range(1'000.0, 30'000.0))  // step ms
      .map([](const auto& t) {
        const auto& [tp, ts, tf, st, ft, iters, pms, sms] = t;
        consensus::ConsensusParams p;
        p.expected_proposer_stake = static_cast<std::uint64_t>(tp);
        p.expected_step_stake = static_cast<std::uint64_t>(ts);
        p.expected_final_stake = static_cast<std::uint64_t>(tf);
        p.step_threshold = st;
        p.final_threshold = ft;
        p.max_binary_iterations = static_cast<std::uint32_t>(iters);
        p.proposal_timeout_ms = pms;
        p.step_timeout_ms = sms;
        p.validate();
        return p;
      });
}

Gen<std::vector<std::int64_t>> stake_vector(std::size_t min_n,
                                            std::size_t max_n) {
  // ~1 in 8 nodes holds zero stake — the "pays nothing to the stakeless"
  // edge the conservation properties must keep exercising.
  auto stake = pgen::one_of<std::int64_t>({
      pgen::int_range(1, 100),
      pgen::constant<std::int64_t>(0),
      pgen::int_range(1, 100),
      pgen::int_range(1, 100),
      pgen::int_range(100, 10'000),
      pgen::int_range(1, 100),
      pgen::int_range(1, 100),
      pgen::int_range(1, 100),
  });
  return pgen::vector_of(std::move(stake), min_n, max_n);
}

Gen<econ::RoleSnapshot> role_snapshot(std::size_t min_n, std::size_t max_n) {
  auto node = pgen::tuple_of(pgen::int_range(0, 10'000),  // stake (0 allowed)
                             pgen::int_range(0, 19));     // role tag
  return pgen::vector_of(std::move(node), min_n, max_n)
      .map([](const std::vector<std::tuple<std::int64_t, std::int64_t>>& v) {
        std::vector<consensus::Role> roles;
        std::vector<std::int64_t> stakes;
        roles.reserve(v.size());
        stakes.reserve(v.size());
        for (const auto& [stake, tag] : v) {
          roles.push_back(tag == 0 ? consensus::Role::Leader
                          : tag <= 3 ? consensus::Role::Committee
                                     : consensus::Role::Other);
          stakes.push_back(stake);
        }
        return econ::RoleSnapshot(std::move(roles), std::move(stakes));
      });
}

Gen<sim::NetworkConfig> network_config(std::size_t min_nodes,
                                       std::size_t max_nodes) {
  return pgen::tuple_of(
             pgen::size_range(min_nodes, max_nodes),  // node_count
             pgen::int_range(1, 1'000'000'000),       // seed
             pgen::int_range(2, 6),                   // fan_out
             pgen::int_range(1, 5),                   // stake_lo
             pgen::int_range(10, 100),                // stake_hi
             pgen::real_range(0.0, 0.35),             // defection_rate
             pgen::real_range(0.0, 0.15),             // faulty_rate
             pgen::boolean(),                         // selfish_residual
             pgen::real_range(5.0, 40.0),             // delay_lo_ms
             pgen::real_range(60.0, 200.0),           // delay_hi_ms
             pgen::real_range(0.0, 0.3))              // degrade prob
      .map([](const auto& t) {
        const auto& [nodes, seed, fan, slo, shi, defect, faulty, selfish,
                     dlo, dhi, degrade] = t;
        sim::NetworkConfig c;
        c.node_count = nodes;
        c.seed = static_cast<std::uint64_t>(seed);
        c.fan_out = static_cast<std::size_t>(fan);
        c.stake_lo = slo;
        c.stake_hi = shi;
        c.defection_rate = defect;
        c.faulty_rate = faulty;
        c.selfish_residual = selfish;
        c.delay_lo_ms = dlo;
        c.delay_hi_ms = dhi;
        c.synchrony.degrade_probability = degrade;
        return c;
      });
}

Gen<sim::ChurnSchedule> churn_schedule() {
  return pgen::tuple_of(pgen::real_range(0.0, 0.25),  // leave
                        pgen::real_range(0.0, 0.5),   // join
                        pgen::int_range(4, 8))        // min_live
      .map([](const auto& t) {
        const auto& [leave, join, min_live] = t;
        sim::ChurnSchedule s;
        s.leave_probability = leave;
        s.join_probability = join;
        s.min_live = static_cast<std::size_t>(min_live);
        return s;
      });
}

Gen<sim::ScenarioPolicyConfig> scenario_policy() {
  return pgen::tuple_of(
             pgen::element_of<sim::PolicyKind>(
                 {sim::PolicyKind::Scripted, sim::PolicyKind::AdaptiveDefect,
                  sim::PolicyKind::StakeCorrelatedDefect}),
             pgen::real_range(0.0, 0.5),  // defect_at_bottom
             pgen::real_range(0.0, 0.5),  // defect_at_top
             churn_schedule())
      .map([](const auto& t) {
        const auto& [kind, bottom, top, churn] = t;
        sim::ScenarioPolicyConfig c;
        c.kind = kind;
        c.defect_at_bottom = bottom;
        c.defect_at_top = top;
        c.churn = churn;
        return c;
      });
}

Gen<std::vector<std::pair<std::size_t, std::size_t>>> shard_tiling(
    std::size_t runs_total) {
  RS_REQUIRE(runs_total >= 1, "shard_tiling requires at least one run");
  const std::size_t max_cuts = std::min<std::size_t>(4, runs_total - 1);
  return pgen::vector_of(pgen::size_range(1, std::max<std::size_t>(
                                                 1, runs_total - 1)),
                         0, max_cuts)
      .map([runs_total](std::vector<std::size_t> cuts) {
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        std::vector<std::pair<std::size_t, std::size_t>> windows;
        std::size_t begin = 0;
        for (const std::size_t c : cuts) {
          windows.emplace_back(begin, c);
          begin = c;
        }
        windows.emplace_back(begin, runs_total);
        return windows;
      });
}

namespace {

Gen<util::json::Value> json_number() {
  return pgen::one_of<util::json::Value>({
      pgen::real_range(-1e9, 1e9).map(
          [](double v) { return util::json::Value(v); }),
      pgen::int_range(-1'000'000'000'000'000, 1'000'000'000'000'000)
          .map([](std::int64_t v) {
            return util::json::Value(static_cast<double>(v));
          }),
      pgen::element_of<double>({0.0, -0.0, 1e308, -1e308, 5e-324,
                                2.2250738585072014e-308, 0.1, 1.0 / 3.0,
                                6.02214076e23, -1.7976931348623157e308})
          .map([](double v) { return util::json::Value(v); }),
  });
}

}  // namespace

Gen<util::json::Value> json_value(std::size_t max_depth) {
  using util::json::Value;
  std::vector<Gen<Value>> alts = {
      pgen::constant(Value()),
      pgen::boolean().map([](bool b) { return Value(b); }),
      json_number(),
      byte_string(12).map([](const std::string& s) { return Value(s); }),
  };
  if (max_depth > 0) {
    alts.push_back(pgen::vector_of(json_value(max_depth - 1), 0, 4)
                       .map([](const std::vector<Value>& elems) {
                         Value arr = Value::array();
                         for (const Value& e : elems) arr.push_back(e);
                         return arr;
                       }));
    alts.push_back(
        pgen::vector_of(
            pgen::pair_of(byte_string(6), json_value(max_depth - 1)), 0, 4)
            .map([](const std::vector<std::pair<std::string, Value>>& kvs) {
              Value obj = Value::object();
              for (std::size_t i = 0; i < kvs.size(); ++i)
                // Index suffix keeps keys unique (the parser rejects
                // duplicate keys by contract).
                obj.set(kvs[i].first + "#" + std::to_string(i),
                        kvs[i].second);
              return obj;
            }));
  }
  return pgen::one_of(std::move(alts));
}

}  // namespace roleshare::testgen
