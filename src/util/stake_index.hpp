// Incremental stake-weighted sampling index (Fenwick tree over integer
// stakes).
//
// The sampled committee model draws tau seats per step with replacement,
// each seat landing on node v with probability stake[v] / total. A fresh
// alias table would make every draw O(1) but costs an O(N) rebuild the
// moment any stake changes — and under compounding rewards stakes change
// every round, which would put an O(N) wall right back into the sparse
// round path. The Fenwick tree instead absorbs each stake delta in
// O(log N) and serves each draw in O(log N), so a round's election work
// is O(committee · log N) regardless of population size.
//
// Determinism contract (what makes sparse == dense bit-identical): the
// tree stores exact int64 stakes, every internal node is a plain integer
// sum, and a draw consumes exactly one rng.uniform_int(0, total - 1)
// before a deterministic descent. A freshly rebuilt index and an
// incrementally updated one holding the same leaf stakes are therefore
// indistinguishable — same totals, same cumulative sums, same draw for
// the same rng state. tests/prop/prop_sparse.cpp locks this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {

class StakeIndex {
 public:
  StakeIndex() = default;
  /// Builds the index over `stakes` (all must be >= 0). O(n).
  explicit StakeIndex(std::span<const std::int64_t> stakes);

  /// Rebuilds over a new stake vector, reusing storage. O(n).
  void rebuild(std::span<const std::int64_t> stakes);

  std::size_t size() const { return stake_.size(); }
  /// Sum of all stakes currently in the index.
  std::int64_t total() const { return total_; }
  /// Current stake of node v.
  std::int64_t stake_of(std::size_t v) const { return stake_[v]; }

  /// Sets node v's stake to `new_stake` (>= 0). O(log n).
  void update(std::size_t v, std::int64_t new_stake);

  /// Sum of stakes of nodes [0, v). O(log n).
  std::int64_t prefix_sum(std::size_t v) const;

  /// The node owning stake-offset `target` in [0, total): the smallest v
  /// with prefix_sum(v + 1) > target. Zero-stake nodes own no offsets and
  /// are never returned. O(log n).
  std::size_t find(std::int64_t target) const;

  /// Draws a node with probability stake / total. Consumes exactly one
  /// uniform_int(0, total - 1) from `rng`. Requires total() > 0.
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<std::int64_t> tree_;   // 1-based Fenwick partial sums
  std::vector<std::int64_t> stake_;  // leaf values
  std::int64_t total_ = 0;
  std::size_t descent_mask_ = 0;  // highest power of two <= size()
};

}  // namespace roleshare::util
