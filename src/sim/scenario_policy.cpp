#include "sim/scenario_policy.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "game/best_response.hpp"
#include "game/game_model.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

void require_probability(double p, const char* what) {
  RS_REQUIRE(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

util::Rng scenario_policy_root(std::uint64_t network_seed) {
  return util::Rng(network_seed).split("scenario-policy");
}

std::size_t apply_churn(Network& net, const ChurnSchedule& schedule,
                        const util::Rng& policy_root,
                        std::size_t round_index) {
  require_probability(schedule.leave_probability, "leave probability");
  require_probability(schedule.join_probability, "join probability");
  RS_REQUIRE(schedule.min_live >= 1,
             "churn floor must keep at least one live node");
  const util::Rng round_root =
      policy_root.split("churn").split(round_index);
  const std::size_t n = net.node_count();
  for (std::size_t v = 0; v < n; ++v) {
    util::Rng rng = round_root.split(v);
    const auto id = static_cast<ledger::NodeId>(v);
    if (net.live(id)) {
      // The floor gate reads the running live count, so which candidate
      // leaves are suppressed depends on node-id order — fixed, hence
      // still deterministic.
      if (net.live_count() > schedule.min_live &&
          rng.bernoulli(schedule.leave_probability))
        net.set_live(id, false);
    } else if (rng.bernoulli(schedule.join_probability)) {
      net.set_live(id, true);
    }
  }
  return net.live_count();
}

ScenarioPolicy::ScenarioPolicy(const ScenarioPolicyConfig& config,
                               Network& net)
    : config_(config),
      net_(&net),
      policy_root_(scenario_policy_root(net.config().seed)),
      profile_(net.strategies()) {
  require_probability(config_.defect_at_bottom,
                      "stake-correlated defection probability (bottom)");
  require_probability(config_.defect_at_top,
                      "stake-correlated defection probability (top)");
  const std::size_t n = net.node_count();
  switch (config_.kind) {
    case PolicyKind::Scripted:
      break;
    case PolicyKind::AdaptiveDefect:
      // The scripted defectors become adaptive: the Fig-3 cohort selection
      // is reused unchanged, but each member now decides per round via a
      // best response instead of a script.
      for (std::size_t v = 0; v < n; ++v) {
        const auto id = static_cast<ledger::NodeId>(v);
        if (net.behavior(id) == BehaviorType::ScriptedDefect)
          net.set_behavior(id, BehaviorType::AdaptiveDefect);
      }
      break;
    case PolicyKind::StakeCorrelatedDefect: {
      // Every non-scripted, non-faulty node becomes a stake-correlated
      // defector; percentiles are ranks over the full population's initial
      // stakes (ties broken by node id, so the ranking is deterministic).
      for (std::size_t v = 0; v < n; ++v) {
        const auto id = static_cast<ledger::NodeId>(v);
        if (net.behavior(id) == BehaviorType::Honest ||
            net.behavior(id) == BehaviorType::Selfish)
          net.set_behavior(id, BehaviorType::StakeCorrelatedDefect);
      }
      const std::vector<std::int64_t> stakes = net.accounts().stakes();
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return stakes[a] < stakes[b];
                       });
      stake_percentile_.assign(n, 0.0);
      for (std::size_t rank = 0; rank < n; ++rank) {
        stake_percentile_[order[rank]] =
            n > 1 ? static_cast<double>(rank) / static_cast<double>(n - 1)
                  : 1.0;
      }
      break;
    }
  }
}

double ScenarioPolicy::defect_probability(std::size_t v) const {
  if (config_.kind != PolicyKind::StakeCorrelatedDefect) return 0.0;
  const double pct = stake_percentile_[v];
  return config_.defect_at_bottom +
         (config_.defect_at_top - config_.defect_at_bottom) * pct;
}

std::size_t ScenarioPolicy::begin_round(std::size_t round_index,
                                        const RoundResult* last,
                                        const util::InnerExecutor& exec) {
  Network& net = *net_;
  const std::size_t n = net.node_count();
  if (config_.churn.enabled())
    apply_churn(net, config_.churn, policy_root_, round_index);

  // Observed per-stake reward rate of the previous round — what the
  // Foundation schedule paid, spread over the live stake (µAlgos/Algo) —
  // plus, for adaptive candidates, the full one-round game it induces.
  double last_rate = 0.0;
  std::optional<game::AlgorandGame> game;
  if (last != nullptr && last->roles_true.has_value()) {
    const econ::RoleSnapshot& snap = *last->roles_true;
    const double bi = static_cast<double>(
        foundation_.required_budget(last->round, snap));
    const std::int64_t snap_stake = snap.total_stake();
    if (last->non_empty_block && snap_stake > 0)
      last_rate = bi / static_cast<double>(snap_stake);
    if (config_.kind == PolicyKind::AdaptiveDefect) {
      // The split only matters for the role-based game G_Al+; the
      // stake-proportional game adaptive candidates play ignores it.
      game::GameConfig game_config{snap,
                                   config_.costs,
                                   game::SchemeKind::StakeProportional,
                                   bi,
                                   econ::RewardSplit(0.02, 0.03),
                                   {},
                                   config_.committee_threshold};
      game.emplace(std::move(game_config));
    }
  }

  // Per-node strategy decisions. Every draw comes from the independent
  // stream strategy_root.split(node), and adaptive best responses read
  // only the frozen previous profile and write their own slot — so the
  // executor's scheduling cannot change a single decision.
  const util::Rng strategy_root =
      policy_root_.split("strategies").split(round_index);
  // Election-probability estimates run against *live* stake — the pool
  // the round engine actually measures sortition over once departed
  // stakes are zeroed.
  std::int64_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<ledger::NodeId>(v);
    if (net.live(id)) total += net.accounts().stake(id);
  }
  const game::Profile& prev = profile_;
  game::Profile next(n, game::Strategy::Offline);
  exec.for_each_chunk(n, [&](std::size_t, std::size_t begin,
                             std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      const auto id = static_cast<ledger::NodeId>(v);
      if (!net.live(id)) continue;  // departed nodes stay Offline
      const BehaviorType behavior = net.behavior(id);
      if (behavior == BehaviorType::AdaptiveDefect) {
        // Cooperate until there is a round to react to; afterwards play
        // the best response in the game the last round induced.
        next[v] = game ? game::best_response(*game, prev, id)
                       : game::Strategy::Cooperate;
        continue;
      }
      util::Rng rng = strategy_root.split(v);
      SelfishContext ctx;
      ctx.stake = net.accounts().stake(id);
      ctx.last_reward_per_stake = last_rate;
      if (total > 0) {
        // Same cheap upper estimates as Network::decide_strategies
        // (paper committee expectations tau_L = 26, tau_M = 13,000).
        const double w = static_cast<double>(total);
        ctx.p_leader =
            std::min(1.0, 26.0 * static_cast<double>(ctx.stake) / w);
        ctx.p_committee =
            std::min(1.0, 13'000.0 * static_cast<double>(ctx.stake) / w);
      }
      ctx.defect_probability = defect_probability(v);
      next[v] = choose_strategy(behavior, config_.costs, ctx, rng);
    }
  });
  profile_ = std::move(next);
  net.set_strategies(profile_);
  return net.live_count();
}

}  // namespace roleshare::sim
