// The Algorand Foundation's proposed reward sharing (baseline, Eq 3):
// every online node — regardless of role or of whether it actually
// cooperated — receives B_i * s_j / S_N, with B_i = R_i following the
// Table-III emission schedule.
#pragma once

#include "econ/foundation_schedule.hpp"
#include "econ/reward_scheme.hpp"

namespace roleshare::econ {

class StakeProportionalScheme final : public RewardScheme {
 public:
  StakeProportionalScheme() = default;

  std::string name() const override { return "foundation-stake-proportional"; }

  /// R_i from the Table-III schedule.
  ledger::MicroAlgos required_budget(ledger::Round round,
                                     const RoleSnapshot& snapshot) override;

  Payouts distribute(ledger::Round round, const RoleSnapshot& snapshot,
                     ledger::MicroAlgos budget) override;
};

}  // namespace roleshare::econ
