#include "game/welfare.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "game/best_response.hpp"

namespace roleshare::game {
namespace {

using consensus::Role;
using econ::CostModel;
using econ::RoleSnapshot;

GameConfig config(SchemeKind scheme, double bi_algos) {
  return GameConfig{
      RoleSnapshot({Role::Leader, Role::Committee, Role::Committee,
                    Role::Other, Role::Other},
                   {5, 10, 12, 20, 30}),
      CostModel{},
      scheme,
      bi_algos * 1e6,
      econ::RewardSplit(0.2, 0.3),
      {},
      0.685};
}

TEST(Welfare, AllCooperateAccounting) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  const ProfileMetrics m = cooperative_benchmark(game);
  EXPECT_TRUE(m.block_created);
  EXPECT_DOUBLE_EQ(m.cooperation_rate, 1.0);
  // Costs: c_L + 2 c_M + 2 c_K = 16 + 24 + 12 = 52 µAlgos.
  EXPECT_NEAR(m.total_cost, 52.0, 1e-9);
  // Stake-proportional distributes the whole B_i: expenditure = 10 Algos.
  EXPECT_NEAR(m.designer_expenditure, 10e6, 1e-3);
  EXPECT_NEAR(m.social_welfare, 10e6 - 52.0, 1e-3);
}

TEST(Welfare, AllDefectAccounting) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  const ProfileMetrics m =
      analyze_profile(game, all_defect(game.player_count()));
  EXPECT_FALSE(m.block_created);
  EXPECT_DOUBLE_EQ(m.cooperation_rate, 0.0);
  EXPECT_NEAR(m.total_cost, 25.0, 1e-9);  // 5 x c_so
  EXPECT_NEAR(m.designer_expenditure, 0.0, 1e-9);
  EXPECT_NEAR(m.social_welfare, -25.0, 1e-9);
}

TEST(Welfare, RoleBasedExpenditureEqualsBiWhenBlockCreated) {
  const AlgorandGame game(config(SchemeKind::RoleBased, 3));
  const ProfileMetrics m = cooperative_benchmark(game);
  ASSERT_TRUE(m.block_created);
  // alpha+beta+gamma pots all paid out in full under all-C.
  EXPECT_NEAR(m.designer_expenditure, 3e6, 1.0);
}

TEST(Welfare, MixedProfileCountsCooperators) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  Profile p = all_cooperate(game.player_count());
  p[3] = Strategy::Defect;
  p[4] = Strategy::Offline;
  const ProfileMetrics m = analyze_profile(game, p);
  EXPECT_DOUBLE_EQ(m.cooperation_rate, 0.6);
  // Costs: 16 + 12 + 12 + 5 + 5 = 50.
  EXPECT_NEAR(m.total_cost, 50.0, 1e-9);
}

TEST(Welfare, AnarchyRatioCollapseIsInfinite) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  EXPECT_TRUE(std::isinf(
      anarchy_ratio(game, all_defect(game.player_count()))));
}

TEST(Welfare, AnarchyRatioOfBenchmarkIsOne) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  EXPECT_NEAR(anarchy_ratio(game, all_cooperate(game.player_count())), 1.0,
              1e-12);
}

TEST(Welfare, AnarchyRatioDegenerateBothNonPositive) {
  // With no reward even all-C has negative welfare; ratio defined as 1.
  const AlgorandGame game(config(SchemeKind::StakeProportional, 0));
  EXPECT_DOUBLE_EQ(anarchy_ratio(game, all_defect(game.player_count())),
                   1.0);
}

TEST(Welfare, UnraveledEquilibriumEconomics) {
  // The free-riding paradox of no-punishment reward sharing: the
  // best-response fixpoint from all-C either (a) keeps the block alive via
  // a pivotal rump, in which case defectors' saved costs make welfare
  // *no lower* than the benchmark — the designer funds free-riders — or
  // (b) kills the block, destroying all welfare.
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  const DynamicsResult dyn =
      best_response_dynamics(game, all_cooperate(game.player_count()));
  ASSERT_TRUE(dyn.converged);
  const ProfileMetrics eq = analyze_profile(game, dyn.profile);
  const ProfileMetrics best = cooperative_benchmark(game);
  EXPECT_LT(eq.cooperation_rate, 1.0);  // all-C never survives (Thm 2)
  if (eq.block_created) {
    EXPECT_GE(eq.social_welfare + 1e-9, best.social_welfare);
    EXPECT_LT(eq.total_cost, best.total_cost);  // costs dodged, not saved
  } else {
    EXPECT_LT(eq.social_welfare, 0.0);
  }
}

TEST(Welfare, SizeMismatchRejected) {
  const AlgorandGame game(config(SchemeKind::StakeProportional, 10));
  EXPECT_THROW(analyze_profile(game, Profile(2, Strategy::Cooperate)),
               std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::game
