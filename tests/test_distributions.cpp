#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace roleshare::util {
namespace {

TEST(UniformStake, StaysInRange) {
  Rng rng(1);
  UniformStake dist(1, 50);
  for (int i = 0; i < 5000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 50);
  }
}

TEST(UniformStake, MeanMatches) {
  Rng rng(2);
  UniformStake dist(1, 200);
  const auto samples = dist.sample_many(rng, 50000);
  double sum = 0;
  for (const auto s : samples) sum += static_cast<double>(s);
  EXPECT_NEAR(sum / 50000.0, 100.5, 1.5);
}

TEST(UniformStake, Name) {
  EXPECT_EQ(UniformStake(1, 200).name(), "U(1,200)");
}

TEST(UniformStake, RejectsNonPositive) {
  EXPECT_THROW(UniformStake(0, 10), std::invalid_argument);
  EXPECT_THROW(UniformStake(5, 4), std::invalid_argument);
}

TEST(NormalStake, MeanAndClamp) {
  Rng rng(3);
  NormalStake dist(100, 10);
  const auto samples = dist.sample_many(rng, 50000);
  double sum = 0;
  for (const auto s : samples) {
    EXPECT_GE(s, 1);
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(sum / 50000.0, 100.0, 0.5);
}

TEST(NormalStake, ClampsAtMinStake) {
  Rng rng(4);
  NormalStake dist(0.0, 1.0, 5);  // almost every draw clamps
  for (int i = 0; i < 1000; ++i) EXPECT_GE(dist.sample(rng), 5);
}

TEST(NormalStake, NameFormatsIntegers) {
  EXPECT_EQ(NormalStake(100, 20).name(), "N(100,20)");
  EXPECT_EQ(NormalStake(2000, 25).name(), "N(2000,25)");
}

TEST(ConstantStake, AlwaysSame) {
  Rng rng(5);
  ConstantStake dist(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng), 42);
  EXPECT_EQ(dist.name(), "Const(42)");
}

TEST(Factories, ProduceCorrectTypes) {
  Rng rng(6);
  EXPECT_EQ(make_uniform_stake(1, 5)->name(), "U(1,5)");
  EXPECT_EQ(make_normal_stake(10, 2)->name(), "N(10,2)");
  EXPECT_EQ(make_constant_stake(3)->sample(rng), 3);
}

TEST(SampleMany, ReturnsRequestedCount) {
  Rng rng(7);
  UniformStake dist(1, 10);
  EXPECT_EQ(dist.sample_many(rng, 123).size(), 123u);
  EXPECT_TRUE(dist.sample_many(rng, 0).empty());
}

// Paper-parameterized sweep: the four Fig-6 stake distributions all produce
// strictly positive stakes and plausible means.
struct DistCase {
  const char* name;
  double expected_mean;
  double tolerance;
};

class PaperDistributions : public ::testing::TestWithParam<int> {};

TEST_P(PaperDistributions, PositiveStakesAndExpectedMean) {
  Rng rng(100 + GetParam());
  std::unique_ptr<StakeDistribution> dist;
  double expected = 0, tol = 0;
  switch (GetParam()) {
    case 0:
      dist = make_uniform_stake(1, 200);
      expected = 100.5;
      tol = 2;
      break;
    case 1:
      dist = make_normal_stake(100, 20);
      expected = 100;
      tol = 1;
      break;
    case 2:
      dist = make_normal_stake(100, 10);
      expected = 100;
      tol = 1;
      break;
    case 3:
      dist = make_normal_stake(2000, 25);
      expected = 2000;
      tol = 2;
      break;
  }
  const auto samples = dist->sample_many(rng, 20000);
  double sum = 0;
  for (const auto s : samples) {
    ASSERT_GE(s, 1);
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(sum / 20000.0, expected, tol);
}

INSTANTIATE_TEST_SUITE_P(Fig6Distros, PaperDistributions,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace roleshare::util
