// Statistical aggregation used by the experiment runner.
//
// The paper reports 20%-trimmed means over 100 simulation runs (§III-C);
// `trimmed_mean` implements exactly that: drop the top and bottom
// `trim_fraction` of the sorted sample and average the rest.
#pragma once

#include <cstddef>
#include <vector>

namespace roleshare::util {

/// Arithmetic mean; 0 for an empty sample (callers that must distinguish
/// "no samples" from a true zero guard before calling — see
/// sim::PerRoundSamples' empty-round semantics).
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Mean after discarding the lowest and highest trim_fraction of samples.
/// trim_fraction in [0, 0.5); the sample must be non-empty. The paper
/// uses 0.2.
double trimmed_mean(std::vector<double> xs, double trim_fraction);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Convenience bundle for benchmark output rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// Streaming mean/variance accumulator (Welford). Useful when per-sample
/// storage is too large, e.g. 500k-node stake sweeps. Mergeable (Chan et
/// al. pairwise combine), so per-shard partials fold exactly.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance, 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Folds `other` in as if its samples had been added here too. count,
  /// min and max combine exactly; mean and variance combine by the Chan
  /// et al. update — algebraically exact, though not bit-identical to
  /// having added the samples one by one.
  void merge(const RunningStats& other);

  /// Raw second moment (sum of squared deviations) — with count/mean/
  /// min/max this is the full serializable state (shard partials).
  double m2() const { return m2_; }
  static RunningStats from_state(std::size_t n, double mean, double m2,
                                 double min, double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace roleshare::util
