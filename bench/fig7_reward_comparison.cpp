// E6/E7 — Figure 7 (a, b, c):
//  (a) per-round reward distributed by our adaptive role-based mechanism
//      versus the Algorand Foundation schedule, per stake distribution;
//  (b) accumulated rewards over the horizon;
//  (c) accumulated rewards under the U_w(1,200) filters that exclude
//      Other-nodes with stakes below w in {3, 5, 7}.
//
// Expected shape: the Foundation pays a flat-then-rising 20+ Algos per
// round; our mechanism pays a (much smaller) stake-distribution-dependent
// amount and does not grow over the horizon; excluding small stakes cuts
// the required reward further (~1/w).
#include <cstdio>

#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/reward_experiment.hpp"

using namespace roleshare;

namespace {

struct RunKnobs {
  std::size_t threads = 1;
  std::size_t inner_threads = 1;
  sim::AggBackend agg = sim::AggBackend::Exact;
  sim::RunShard shard{};
};

sim::RewardExperimentResult run_for(const sim::StakeSpec& spec,
                                    std::size_t nodes, std::size_t runs,
                                    std::size_t rounds,
                                    std::optional<std::int64_t> min_stake,
                                    std::uint64_t seed,
                                    const RunKnobs& knobs) {
  sim::RewardExperimentConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.stakes = spec;
  config.runs = runs;
  config.rounds_per_run = rounds;
  config.threads = knobs.threads;
  config.inner_threads = knobs.inner_threads;
  config.agg = knobs.agg;
  config.shard = knobs.shard;
  config.min_other_stake = min_stake;
  return sim::run_reward_experiment(config);
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 100'000));
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 30));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 10));
  RunKnobs knobs;
  knobs.threads = bench::arg_threads(argc, argv);
  knobs.inner_threads = bench::arg_inner_threads(argc, argv);
  knobs.agg = bench::arg_agg(argc, argv);
  knobs.shard = bench::arg_run_shard(argc, argv, runs);

  bench::print_header("Figure 7", "our adaptive reward vs Foundation schedule");
  std::printf("nodes=%zu runs=%zu rounds/run=%zu threads=%zu "
              "inner-threads=%zu agg=%s (shard with --run-begin/--run-end)\n",
              nodes, runs, rounds, knobs.threads, knobs.inner_threads,
              sim::to_string(knobs.agg));
  const bench::WallTimer timer;

  const sim::StakeSpec specs[] = {
      sim::StakeSpec::uniform(1, 200), sim::StakeSpec::normal(100, 20),
      sim::StakeSpec::normal(100, 10)};

  // (a) per-round rewards.
  std::printf("\n--- Fig 7(a): distributed reward per round (Algos) ---\n");
  std::printf("%6s %12s", "round", "Foundation");
  for (const auto& spec : specs) std::printf(" %12s", spec.name().c_str());
  std::printf("\n");
  std::vector<sim::RewardExperimentResult> results;
  for (std::size_t i = 0; i < 3; ++i)
    results.push_back(run_for(specs[i], nodes, runs, rounds, std::nullopt,
                              2000 + i, knobs));
  for (std::size_t r = 0; r < rounds; ++r) {
    std::printf("%6zu %12.1f", r + 1, results[0].foundation_per_round[r]);
    for (const auto& result : results)
      std::printf(" %12.2f", result.bi_per_round_mean[r]);
    std::printf("\n");
  }

  // (b) accumulated rewards.
  std::printf("\n--- Fig 7(b): accumulated rewards (Algos) ---\n");
  std::printf("%6s %12s", "round", "Foundation");
  for (const auto& spec : specs) std::printf(" %12s", spec.name().c_str());
  std::printf("\n");
  double acc_foundation = 0;
  std::vector<double> acc(3, 0.0);
  for (std::size_t r = 0; r < rounds; ++r) {
    acc_foundation += results[0].foundation_per_round[r];
    std::printf("%6zu %12.1f", r + 1, acc_foundation);
    for (std::size_t i = 0; i < 3; ++i) {
      acc[i] += results[i].bi_per_round_mean[r];
      std::printf(" %12.2f", acc[i]);
    }
    std::printf("\n");
  }

  // (c) the U_w(1,200) small-stake filters.
  std::printf("\n--- Fig 7(c): accumulated reward with stakes < w excluded, "
              "U(1,200) ---\n");
  const std::int64_t filters[] = {3, 5, 7};
  std::vector<sim::RewardExperimentResult> filtered;
  for (std::size_t i = 0; i < 3; ++i)
    filtered.push_back(run_for(specs[0], nodes, runs, rounds, filters[i],
                               3000 + i, knobs));
  std::printf("%6s %12s %12s %12s %12s\n", "round", "U(1,200)", "U3", "U5",
              "U7");
  double acc_base = 0;
  std::vector<double> acc_f(3, 0.0);
  for (std::size_t r = 0; r < rounds; ++r) {
    acc_base += results[0].bi_per_round_mean[r];
    std::printf("%6zu %12.2f", r + 1, acc_base);
    for (std::size_t i = 0; i < 3; ++i) {
      acc_f[i] += filtered[i].bi_per_round_mean[r];
      std::printf(" %12.2f", acc_f[i]);
    }
    std::printf("\n");
  }

  std::size_t accumulator_bytes = 0;
  for (const auto& result : results) accumulator_bytes += result.accumulator_bytes;
  for (const auto& result : filtered) accumulator_bytes += result.accumulator_bytes;
  bench::emit_json(
      "fig7_reward_comparison",
      {{"nodes", static_cast<double>(nodes)},
       {"runs", static_cast<double>(runs)},
       {"rounds", static_cast<double>(rounds)},
       {"threads", static_cast<double>(knobs.threads)},
       {"inner_threads", static_cast<double>(knobs.inner_threads)},
       {"agg", sim::to_string(knobs.agg)},
       {"accumulator_bytes", static_cast<double>(accumulator_bytes)},
       {"mean_bi_u1_200", results[0].mean_bi},
       {"mean_bi_n100_20", results[1].mean_bi},
       {"mean_bi_n100_10", results[2].mean_bi},
       {"mean_bi_u1_200_w7", filtered[2].mean_bi},
       {"wall_ms", timer.elapsed_ms()}});

  std::printf("\nShape check: ours << Foundation and flat across the\n"
              "horizon; U7 < U5 < U3 < U(1,200) (higher w, smaller B_i).\n");
  return 0;
}
