// The Algorand Foundation's projected emission schedule (Table III):
// twelve reward periods of 500,000 blocks each, with per-period projected
// rewards of 10, 13, 16, ..., 38 million Algos. The per-round reward R_i is
// the period's projection divided by the blocks per period (period 1:
// 10M / 500k = 20 Algos per round).
#pragma once

#include <array>
#include <cstdint>

#include "ledger/types.hpp"

namespace roleshare::econ {

class FoundationSchedule {
 public:
  static constexpr std::size_t kPeriods = 12;
  static constexpr std::uint64_t kBlocksPerPeriod = 500'000;

  /// Projected reward per period, in millions of Algos (Table III).
  static constexpr std::array<std::uint64_t, kPeriods> kProjectedMillions = {
      10, 13, 16, 19, 22, 25, 28, 31, 34, 36, 38, 38};

  /// 1-based reward period containing `round` (rounds count from 1).
  /// Rounds past period 12 stay in period 12, matching the flat tail.
  static std::size_t period_for_round(ledger::Round round);

  /// Projected total reward of a 1-based period, µAlgos.
  static ledger::MicroAlgos period_total(std::size_t period);

  /// Per-round Foundation reward R_i for `round`, µAlgos.
  static ledger::MicroAlgos reward_for_round(ledger::Round round);

  /// Cumulative projected emission through `round`, µAlgos.
  static ledger::MicroAlgos cumulative_through(ledger::Round round);
};

}  // namespace roleshare::econ
