#include "ledger/block.hpp"

namespace roleshare::ledger {

Block Block::make(Round round, const crypto::Hash256& prev_hash,
                  const crypto::Hash256& seed,
                  const crypto::PublicKey& proposer,
                  std::vector<Transaction> txns) {
  Block b;
  b.round_ = round;
  b.prev_hash_ = prev_hash;
  b.seed_ = seed;
  b.proposer_ = proposer;
  b.txns_ = std::move(txns);
  b.empty_ = false;
  return b;
}

Block Block::empty(Round round, const crypto::Hash256& prev_hash,
                   const crypto::Hash256& seed) {
  Block b;
  b.round_ = round;
  b.prev_hash_ = prev_hash;
  b.seed_ = seed;
  b.empty_ = true;
  return b;
}

Block Block::from_parts(Round round, const crypto::Hash256& prev_hash,
                        const crypto::Hash256& seed, bool is_empty,
                        const crypto::PublicKey& proposer,
                        std::vector<Transaction> txns) {
  if (is_empty) return Block::empty(round, prev_hash, seed);
  return Block::make(round, prev_hash, seed, proposer, std::move(txns));
}

MicroAlgos Block::total_fees() const {
  MicroAlgos fees = 0;
  for (const Transaction& t : txns_) fees += t.fee();
  return fees;
}

crypto::Hash256 Block::hash() const {
  crypto::HashBuilder h("roleshare.block");
  h.add_u64(round_).add(prev_hash_).add(seed_).add_u64(empty_ ? 1 : 0);
  if (!empty_) {
    h.add(proposer_.value);
    h.add_u64(txns_.size());
    for (const Transaction& t : txns_) h.add(t.id());
  }
  return h.build();
}

}  // namespace roleshare::ledger
