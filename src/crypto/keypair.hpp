// Simulated signature scheme.
//
// SUBSTITUTION (see DESIGN.md): real Algorand uses Ed25519. For a
// discrete-event simulation with honest-but-selfish (never forging) players,
// we replace it with a keyed-hash scheme that preserves the properties the
// protocol logic relies on — determinism, per-key uniqueness, verifiability
// by recomputation — while being orders of magnitude cheaper. It is NOT
// unforgeable and must never be used outside simulation.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/hash.hpp"

namespace roleshare::crypto {

/// Public key: an opaque 32-byte value derived from the secret key.
struct PublicKey {
  Hash256 value;
  auto operator<=>(const PublicKey&) const = default;
  std::string short_hex() const { return value.short_hex(); }
};

/// Signature over a message hash.
struct Signature {
  Hash256 value;
  auto operator<=>(const Signature&) const = default;
};

/// A key pair deterministically derived from (experiment seed, node id).
class KeyPair {
 public:
  /// Derives a key pair for `node_id` under `seed`.
  static KeyPair derive(std::uint64_t seed, std::uint64_t node_id);

  const PublicKey& public_key() const { return public_key_; }

  /// Signs a message hash. Deterministic.
  Signature sign(const Hash256& message) const;

 private:
  KeyPair(Hash256 secret, PublicKey pub);

  Hash256 secret_;
  PublicKey public_key_;
};

/// Verifies a signature. In this simulated scheme the verifier recomputes
/// the keyed hash from the public key (see header comment for the security
/// caveat); the call signature mirrors a real scheme's so consensus code is
/// substitution-agnostic.
bool verify(const PublicKey& pk, const Hash256& message, const Signature& sig);

}  // namespace roleshare::crypto
