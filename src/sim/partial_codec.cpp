#include "sim/partial_codec.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/framed_io.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

using util::json::Value;
namespace framed = util::framed;

constexpr std::uint32_t kBinaryMagic = framed::magic4('R', 'S', 'B', 'P');
constexpr std::uint16_t kBinaryVersion = 1;

// Structural tags of the "tree" section. A new tag is a format-version
// bump: old readers must reject frames they cannot decode exactly.
enum Tag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kNumber = 3,
  kString = 4,
  kArray = 5,
  kObject = 6,
  kColumnRef = 7,  // u32 index into the "columns" section
};

/// Containers nested deeper than this are refused on decode — the same
/// stack-bounding guard util::json::parse applies to untrusted text.
constexpr std::size_t kMaxDepth = 96;

/// An array encodes as an f64 column iff it is non-empty and every
/// element is a finite number. (Non-finite numbers have no JSON literal
/// and dump as null, so they take the generic path as kNull — exactly
/// the dump()/parse() normalization.)
bool is_columnar(const Value& v) {
  if (!v.is_array() || v.as_array().empty()) return false;
  for (const Value& elem : v.as_array()) {
    if (!elem.is_number() || !std::isfinite(elem.as_number())) return false;
  }
  return true;
}

/// Pass 1 of encode: hoists every columnar array, in DFS order, into
/// `columns`. Pass 2 (encode_tree) re-walks in the same order, so the
/// k-th columnar array it meets references column k.
void collect_columns(const Value& v,
                     std::vector<std::vector<double>>& columns) {
  if (v.is_array()) {
    if (is_columnar(v)) {
      std::vector<double> column;
      column.reserve(v.as_array().size());
      for (const Value& elem : v.as_array())
        column.push_back(elem.as_number());
      columns.push_back(std::move(column));
      return;
    }
    for (const Value& elem : v.as_array()) collect_columns(elem, columns);
  } else if (v.is_object()) {
    for (const auto& [key, elem] : v.as_object())
      collect_columns(elem, columns);
  }
}

void encode_tree(const Value& v, framed::Writer& w,
                 std::size_t& column_cursor) {
  switch (v.kind()) {
    case Value::Kind::Null:
      w.put_u8(kNull);
      return;
    case Value::Kind::Bool:
      w.put_u8(v.as_bool() ? kTrue : kFalse);
      return;
    case Value::Kind::Number:
      // Mirror dump(): non-finite numbers become null on every path.
      if (!std::isfinite(v.as_number())) {
        w.put_u8(kNull);
      } else {
        w.put_u8(kNumber);
        w.put_f64(v.as_number());
      }
      return;
    case Value::Kind::String:
      w.put_u8(kString);
      w.put_string(v.as_string());
      return;
    case Value::Kind::Array: {
      if (is_columnar(v)) {
        w.put_u8(kColumnRef);
        w.put_u32(static_cast<std::uint32_t>(column_cursor++));
        return;
      }
      w.put_u8(kArray);
      w.put_u32(static_cast<std::uint32_t>(v.as_array().size()));
      for (const Value& elem : v.as_array())
        encode_tree(elem, w, column_cursor);
      return;
    }
    case Value::Kind::Object:
      w.put_u8(kObject);
      w.put_u32(static_cast<std::uint32_t>(v.as_object().size()));
      for (const auto& [key, elem] : v.as_object()) {
        w.put_string(key);
        encode_tree(elem, w, column_cursor);
      }
      return;
  }
  throw std::logic_error("partial_codec: unreachable value kind");
}

Value decode_tree(framed::Reader& r,
                  const std::vector<std::vector<double>>& columns,
                  std::size_t depth) {
  if (depth > kMaxDepth) {
    throw framed::Error(
        "binary partial document nests containers deeper than " +
        std::to_string(kMaxDepth) + " — refusing the frame");
  }
  const std::uint8_t tag = r.get_u8();
  switch (tag) {
    case kNull:
      return Value();
    case kFalse:
      return Value(false);
    case kTrue:
      return Value(true);
    case kNumber:
      return Value(r.get_f64());
    case kString:
      return Value(r.get_string());
    case kArray: {
      const std::uint32_t n = r.get_u32();
      Value out = Value::array();
      for (std::uint32_t i = 0; i < n; ++i)
        out.push_back(decode_tree(r, columns, depth + 1));
      return out;
    }
    case kObject: {
      const std::uint32_t n = r.get_u32();
      Value out = Value::object();
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string key = r.get_string();
        out.set(std::move(key), decode_tree(r, columns, depth + 1));
      }
      return out;
    }
    case kColumnRef: {
      const std::uint32_t index = r.get_u32();
      if (index >= columns.size()) {
        throw framed::Error(
            "binary partial document references column " +
            std::to_string(index) + " but the frame carries only " +
            std::to_string(columns.size()) + " columns");
      }
      Value out = Value::array();
      for (const double x : columns[index]) out.push_back(x);
      return out;
    }
    default:
      throw framed::Error("binary partial document has unknown value tag " +
                          std::to_string(tag) +
                          " — produced by a newer build?");
  }
}

class JsonCodec final : public PartialCodec {
 public:
  PartialFormat format() const override { return PartialFormat::Json; }

  std::string encode(const Value& doc) const override {
    return doc.dump() + "\n";
  }

  Value decode(std::string_view bytes,
               std::string_view origin) const override {
    try {
      return util::json::parse(bytes);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string(origin) + ": " + e.what());
    }
  }
};

class BinaryCodec final : public PartialCodec {
 public:
  PartialFormat format() const override { return PartialFormat::Binary; }

  std::string encode(const Value& doc) const override {
    // Columns go first so the reader resolves references in file order;
    // the second walk assigns indices in the same DFS order the first
    // walk hoisted them.
    std::vector<std::vector<double>> columns;
    collect_columns(doc, columns);

    framed::Writer w(kBinaryMagic, kBinaryVersion);
    w.begin_section("columns");
    w.put_u32(static_cast<std::uint32_t>(columns.size()));
    for (const std::vector<double>& column : columns)
      w.put_f64_column(column);
    w.end_section();
    w.begin_section("tree");
    std::size_t column_cursor = 0;
    encode_tree(doc, w, column_cursor);
    RS_REQUIRE(column_cursor == columns.size(),
               "partial_codec: column passes disagree — encoder bug");
    w.end_section();
    return w.finish();
  }

  Value decode(std::string_view bytes,
               std::string_view origin) const override {
    framed::Reader r(bytes, kBinaryMagic, kBinaryVersion,
                     std::string(origin));
    r.begin_section("columns");
    const std::uint32_t column_count = r.get_u32();
    std::vector<std::vector<double>> columns;
    columns.reserve(column_count);
    for (std::uint32_t i = 0; i < column_count; ++i)
      columns.push_back(r.get_f64_column());
    r.end_section();
    r.begin_section("tree");
    Value doc = decode_tree(r, columns, 0);
    r.end_section();
    r.finish();
    return doc;
  }
};

const JsonCodec kJsonCodec;
const BinaryCodec kBinaryCodec;

}  // namespace

const char* to_string(PartialFormat format) {
  switch (format) {
    case PartialFormat::Json:
      return "json";
    case PartialFormat::Binary:
      return "bin";
  }
  throw std::invalid_argument("unknown PartialFormat value " +
                              std::to_string(static_cast<int>(format)));
}

PartialFormat parse_partial_format(std::string_view name) {
  if (name == "json") return PartialFormat::Json;
  if (name == "bin" || name == "binary") return PartialFormat::Binary;
  throw std::invalid_argument("unknown partial format \"" +
                              std::string(name) +
                              "\" (expected \"json\" or \"bin\")");
}

const PartialCodec& partial_codec(PartialFormat format) {
  switch (format) {
    case PartialFormat::Json:
      return kJsonCodec;
    case PartialFormat::Binary:
      return kBinaryCodec;
  }
  throw std::invalid_argument("unknown PartialFormat value " +
                              std::to_string(static_cast<int>(format)));
}

PartialFormat detect_partial_format(std::string_view bytes,
                                    std::string_view origin) {
  if (framed::starts_with_magic(bytes, kBinaryMagic))
    return PartialFormat::Binary;
  for (const char c : bytes) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    if (c == '{' || c == '[') return PartialFormat::Json;
    break;
  }
  throw std::invalid_argument(
      std::string(origin) +
      ": neither a binary partial frame (magic \"RSBP\") nor a JSON "
      "document — unrecognized format");
}

util::json::Value decode_partial_document(std::string_view bytes,
                                          std::string_view origin) {
  const PartialFormat format = detect_partial_format(bytes, origin);
  return partial_codec(format).decode(bytes, origin);
}

}  // namespace roleshare::sim
