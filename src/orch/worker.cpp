#include "orch/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "orch/spawn.hpp"
#include "orch/wire.hpp"

namespace roleshare::orch {

namespace {

/// Blocking read of the next message; nullopt on orderly coordinator
/// EOF, throws on a read error or a corrupt stream.
std::optional<Message> read_message(int fd, MessageBuffer& buffer) {
  while (true) {
    if (auto msg = buffer.next()) return msg;
    char chunk[65536];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("orch worker: read(): ") +
                               std::strerror(errno));
    }
    if (got == 0) {
      if (buffer.pending_bytes() > 0)
        throw std::runtime_error(
            "orch worker: coordinator closed mid-message");
      return std::nullopt;
    }
    buffer.feed(std::string_view(chunk, static_cast<std::size_t>(got)));
  }
}

}  // namespace

int run_worker(const WorkerOptions& options, const WindowRunner& runner) {
  // A coordinator that died mid-job must surface as an EPIPE exception
  // (clean worker exit), not a SIGPIPE kill. send_message also passes
  // MSG_NOSIGNAL; this covers any other fd.
  ::signal(SIGPIPE, SIG_IGN);
  const int fd = connect_unix(options.socket_path);
  MessageBuffer buffer("coordinator");
  send_message(fd, hello(options.worker_id, runner.config_echo));

  std::size_t executed_total = 0;
  std::size_t drops_left = options.drop_assignments;
  while (true) {
    const auto msg = read_message(fd, buffer);
    if (!msg) {
      // Coordinator went away: the job is finished or aborted without
      // us; either way there is nothing useful left to do.
      ::close(fd);
      return 0;
    }
    switch (msg->type) {
      case MsgType::Shutdown:
        if (options.verbose)
          std::printf("[worker %u] shutdown: %s\n", options.worker_id,
                      msg->reason.c_str());
        ::close(fd);
        return 0;
      case MsgType::Assign:
        break;  // handled below
      default:
        throw std::runtime_error(
            std::string("orch worker: unexpected ") + to_string(msg->type) +
            " message — coordinators only send ASSIGN and SHUTDOWN");
    }

    if (drops_left > 0) {
      // Injected assignment drop: never run it, never answer. The
      // coordinator's lease must notice and re-issue the window.
      drops_left--;
      std::printf("[worker %u] dropping ASSIGN for window %u (fault "
                  "injection, %zu drops left)\n",
                  options.worker_id, msg->window_index, drops_left);
      continue;
    }

    WindowAssignment assignment;
    assignment.window_index = msg->window_index;
    assignment.attempt = msg->attempt;
    assignment.run_begin = static_cast<std::size_t>(msg->run_begin);
    assignment.run_end = static_cast<std::size_t>(msg->run_end);
    assignment.spool_path = msg->spool_path;
    assignment.resume_path = msg->resume_path;

    // The kill budget maps onto the runner's stop_after knob: the runner
    // checkpoints and stops once the budget is spent, so the _exit below
    // always leaves a resumable (or finished-and-published) spool.
    std::size_t stop_after = 0;
    if (options.kill_after_runs > 0) {
      if (executed_total >= options.kill_after_runs) {
        hard_exit(9);
      }
      stop_after = options.kill_after_runs - executed_total;
    }

    const auto on_checkpoint = [&](std::size_t cursor) {
      send_message(fd, progress(assignment.window_index, assignment.attempt,
                                static_cast<std::uint64_t>(cursor)));
    };

    WindowOutcome outcome;
    try {
      outcome = runner.run(assignment, stop_after, on_checkpoint);
    } catch (const std::exception& e) {
      send_message(fd, fail(assignment.window_index, assignment.attempt,
                            e.what()));
      continue;
    }
    executed_total += outcome.executed;

    if (options.kill_after_runs > 0 &&
        executed_total >= options.kill_after_runs) {
      // Injected crash: die BEFORE the message we owe. A mid-window kill
      // leaves the checkpoint (PROGRESS already sent); a window-boundary
      // kill leaves the finished partial published to the store, so the
      // retry is a cache hit.
      std::printf("[worker %u] injected kill after %zu runs (window %u at "
                  "run %zu)\n",
                  options.worker_id, executed_total, assignment.window_index,
                  outcome.cursor);
      hard_exit(9);
    }

    if (!outcome.complete) {
      // Without a kill budget the runner must finish its window; a
      // short outcome means the bench wiring is wrong.
      send_message(fd, fail(assignment.window_index, assignment.attempt,
                            "runner stopped at run " +
                                std::to_string(outcome.cursor) +
                                " without finishing the window"));
      continue;
    }
    send_message(fd, done(assignment.window_index, assignment.attempt,
                          outcome.store_hit,
                          static_cast<std::uint64_t>(outcome.partial_bytes),
                          assignment.spool_path));
  }
}

}  // namespace roleshare::orch
