// The one-round Algorand game.
//
// G_Al  — rewards shared stake-proportionally (Eq 3/4), the Foundation
//         baseline.
// G_Al+ — rewards shared by role with split (α, β, γ) (Eq 5).
//
// Payoff rules (§III-C, §IV):
//  * A cooperator pays its role cost c_L / c_M / c_K; a defector stays
//    online and pays only c_so; an offline player pays c_so and can never
//    earn a reward (Lemma 1 setup).
//  * Rewards are paid only if the round produces a block. A block requires
//    at least one cooperating leader, cooperating committee stake above the
//    step threshold T of the total committee stake, and — the Theorem-3
//    liveness condition — every Other node of the strong-synchrony set Y
//    cooperating.
//  * There is no punishment: online defectors are indistinguishable from
//    role-less nodes, so they are paid from the stake pool they appear to
//    belong to. Under G_Al+ a defecting leader/committee member hides its
//    role and is paid from the γ pot with its stake joining S_K — exactly
//    the γB_i/(S_K + s_j) deviation payoff of Lemma 2.
#pragma once

#include <optional>
#include <vector>

#include "econ/bi_bounds.hpp"
#include "econ/cost_model.hpp"
#include "econ/role_snapshot.hpp"
#include "game/strategy.hpp"

namespace roleshare::game {

enum class SchemeKind : std::uint8_t { StakeProportional, RoleBased };

struct GameConfig {
  econ::RoleSnapshot snapshot;
  econ::CostModel costs;
  SchemeKind scheme = SchemeKind::StakeProportional;
  /// Reward B_i distributed when a block is created, µAlgos.
  double bi = 0;
  /// Role split for G_Al+ (ignored for G_Al).
  econ::RewardSplit split{0.02, 0.03};
  /// sync_set[v] — v belongs to the strong-synchrony set Y. Only
  /// meaningful for Other nodes; empty means Y = ∅ (no Other node is
  /// pivotal for liveness, the G_Al baseline analysis).
  std::vector<bool> sync_set;
  /// Committee vote threshold T used in the block-success predicate.
  double committee_threshold = 0.685;
};

class AlgorandGame {
 public:
  explicit AlgorandGame(GameConfig config);

  const GameConfig& config() const { return config_; }
  std::size_t player_count() const { return config_.snapshot.node_count(); }

  /// Whether the profile produces a block this round.
  bool block_created(const Profile& profile) const;

  /// Payoff of one player under the profile, µAlgos.
  double payoff(const Profile& profile, ledger::NodeId player) const;

  /// Payoffs of all players (single O(n) pass).
  std::vector<double> payoffs(const Profile& profile) const;

 private:
  /// Aggregates the payoff computation depends on; O(n) to build,
  /// O(1) to adjust for a unilateral deviation (see equilibrium.cpp).
  struct Aggregates {
    double coop_leader_stake = 0;     // effective S_L
    std::size_t coop_leader_count = 0;
    double coop_committee_stake = 0;  // effective S_M
    double committee_total_stake = 0;
    double gamma_pool_stake = 0;      // effective S_K (others + hidden defectors)
    double online_stake = 0;          // S_N over online players (C or D)
    std::size_t sync_defectors = 0;   // Y members not cooperating
  };

  friend class DeviationScanner;

  Aggregates aggregate(const Profile& profile) const;
  bool block_created(const Aggregates& agg) const;
  double reward_of(const Aggregates& agg, ledger::NodeId player,
                   Strategy strategy) const;
  double payoff_of(const Aggregates& agg, ledger::NodeId player,
                   Strategy strategy) const;
  bool in_sync_set(ledger::NodeId player) const;

  GameConfig config_;
};

}  // namespace roleshare::game
