// Shared ledger-level scalar types.
//
// All currency amounts are integer micro-Algos (1 Algo = 10^6 µAlgo) so that
// pool accounting is exact; see DESIGN.md §4. Stakes in the paper are quoted
// in whole Algos — helpers convert explicitly.
#pragma once

#include <cstdint>

namespace roleshare::ledger {

using NodeId = std::uint32_t;
using Round = std::uint64_t;

/// Integer micro-Algos. Signed so that payoffs (reward − cost) are
/// representable.
using MicroAlgos = std::int64_t;

inline constexpr MicroAlgos kMicroPerAlgo = 1'000'000;

constexpr MicroAlgos algos(std::int64_t whole) {
  return whole * kMicroPerAlgo;
}

constexpr double to_algos(MicroAlgos m) {
  return static_cast<double>(m) / static_cast<double>(kMicroPerAlgo);
}

}  // namespace roleshare::ledger
