#include "sim/strategic_loop.hpp"

#include <optional>

#include "econ/foundation_schedule.hpp"
#include "econ/optimizer.hpp"
#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"
#include "game/best_response.hpp"
#include "sim/experiment_runner.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config) {
  const std::size_t threads =
      util::ThreadPool::resolve_thread_count(config.threads);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  return run_strategic_loop(config, pool ? &*pool : nullptr);
}

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config,
                                       util::ThreadPool* inner_pool) {
  RS_REQUIRE(config.rounds > 0, "at least one round");
  Network net(config.network);
  // The round engine's per-node loops and the best-response sweep below
  // share the one caller-owned pool — never two pools in one run.
  RoundEngine engine(net,
                     consensus::ConsensusParams::scaled_for(
                         net.accounts().total_stake()),
                     inner_pool);

  econ::StakeProportionalScheme foundation;
  econ::RoleBasedScheme role_based(config.costs);

  game::Profile profile(net.node_count(), config.initial);
  StrategicLoopResult result;
  // Churn state: per-(round, node) streams off the shared scenario-policy
  // root, so a strategic loop and a policy-driven defection run with the
  // same seed see the same join/leave pattern.
  const util::Rng policy_root = scenario_policy_root(config.network.seed);
  std::vector<std::uint8_t> was_live(net.node_count(), 1);

  for (std::size_t t = 0; t < config.rounds; ++t) {
    if (config.churn.enabled()) {
      apply_churn(net, config.churn, policy_root, t);
      for (std::size_t v = 0; v < profile.size(); ++v) {
        const auto id = static_cast<ledger::NodeId>(v);
        if (!net.live(id)) {
          profile[v] = game::Strategy::Offline;
        } else if (!was_live[v]) {
          profile[v] = config.initial;  // rejoined: restart from the seed
        }
        was_live[v] = net.live(id) ? 1 : 0;
      }
    }
    net.set_strategies(profile);
    const RoundResult round = engine.run_round();

    StrategicRoundStats stats;
    stats.round = round.round;
    stats.final_fraction = round.final_fraction;
    stats.non_empty_block = round.non_empty_block;
    stats.live = round.live_count;
    std::size_t coop = 0;
    for (const game::Strategy s : profile)
      if (s == game::Strategy::Cooperate) ++coop;
    stats.cooperation_fraction =
        static_cast<double>(coop) / static_cast<double>(round.live_count);

    // Rewards for this round, and the induced one-round game. Nodes know
    // their *true* roles when reasoning about deviations.
    const econ::RoleSnapshot& snap = *round.roles_true;
    game::GameConfig game_config{snap,
                                 config.costs,
                                 game::SchemeKind::StakeProportional,
                                 0.0,
                                 econ::RewardSplit(0.02, 0.03),
                                 {},
                                 0.685};

    if (config.scheme == SchemeChoice::FoundationStakeProportional) {
      game_config.bi = static_cast<double>(
          foundation.required_budget(round.round, snap));
      stats.bi_algos = round.non_empty_block
                           ? ledger::to_algos(static_cast<ledger::MicroAlgos>(
                                 game_config.bi))
                           : 0.0;
    } else {
      game_config.scheme = game::SchemeKind::RoleBased;
      const ledger::MicroAlgos bi =
          role_based.required_budget(round.round, snap);
      game_config.bi = static_cast<double>(bi);
      game_config.split = role_based.last_split();
      // Liveness set Y: every online Other is needed to relay — the
      // conservative assumption the Theorem-3 bounds were derived under.
      game_config.sync_set.assign(snap.node_count(), false);
      for (std::size_t v = 0; v < snap.node_count(); ++v) {
        if (snap.role(static_cast<ledger::NodeId>(v)) ==
                consensus::Role::Other &&
            snap.stake(static_cast<ledger::NodeId>(v)) > 0)
          game_config.sync_set[v] = true;
      }
      stats.bi_algos =
          round.non_empty_block ? ledger::to_algos(bi) : 0.0;
    }
    result.total_reward_algos += stats.bi_algos;
    result.rounds.push_back(stats);

    // Myopic best responses for the next round (one sweep). Each node's
    // response reads only the frozen previous profile and writes its own
    // slot, so the population iteration fans out across the pool.
    const game::AlgorandGame game(game_config);
    game::Profile next = profile;
    // Per-index claiming, not chunks: each best response is a heavy game
    // evaluation, and populations are often smaller than a single chunk.
    engine.executor().for_each_index(profile.size(), [&](std::size_t v) {
      const auto id = static_cast<ledger::NodeId>(v);
      if (!net.live(id)) return;  // departed nodes stay Offline
      next[v] = game::best_response(game, profile, id);
    });
    profile = std::move(next);
  }

  std::size_t coop = 0;
  for (const game::Strategy s : profile)
    if (s == game::Strategy::Cooperate) ++coop;
  result.final_cooperation =
      static_cast<double>(coop) / static_cast<double>(net.live_count());
  return result;
}

StrategicEnsembleResult run_strategic_ensemble(
    const StrategicEnsembleConfig& config) {
  RS_REQUIRE(config.base.rounds > 0, "at least one round");
  const ExperimentSpec spec{config.runs,    config.base.rounds,
                            config.base.network.seed, config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const std::size_t executed = resolve_shard(spec).count();

  // The three per-round series behind the accumulator concept: exact
  // reproduces the historical sum/divide reduction bit for bit,
  // streaming keeps the state O(rounds) for paper-scale ensembles.
  const auto coop = make_accumulator(config.agg, config.base.rounds,
                                     config.streaming);
  const auto final_acc = make_accumulator(config.agg, config.base.rounds,
                                          config.streaming);
  const auto reward = make_accumulator(config.agg, config.base.rounds,
                                       config.streaming);

  StrategicEnsembleResult out;
  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        StrategicLoopConfig run_config = config.base;
        run_config.network.seed = rng.seed_material();
        // The engine already applied the no-oversubscription policy:
        // ctx.inner_pool is the (possibly null) shared within-run pool.
        return run_strategic_loop(run_config, ctx.inner_pool);
      },
      [&](std::size_t, StrategicLoopResult run) {
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          coop->record(r, run.rounds[r].cooperation_fraction);
          final_acc->record(r, run.rounds[r].final_fraction);
          reward->record(r, run.rounds[r].bi_algos);
        }
        out.mean_total_reward_algos += run.total_reward_algos;
        out.mean_final_cooperation += run.final_cooperation;
      });

  out.cooperation_series = coop->mean_series();
  out.final_series = final_acc->mean_series();
  out.reward_series = reward->mean_series();
  out.mean_total_reward_algos /= static_cast<double>(executed);
  out.mean_final_cooperation /= static_cast<double>(executed);
  out.accumulator_bytes = coop->memory_bytes() + final_acc->memory_bytes() +
                          reward->memory_bytes();
  return out;
}

}  // namespace roleshare::sim
