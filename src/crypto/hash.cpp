#include "crypto/hash.hpp"

#include <algorithm>
#include <cstring>

#include "util/hex.hpp"
#include "util/require.hpp"

namespace roleshare::crypto {

bool Hash256::is_zero() const {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::uint64_t Hash256::prefix_u64() const {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | bytes_[i];
  return value;
}

double Hash256::ratio() const {
  // Top 53 bits to stay exactly representable in a double.
  return static_cast<double>(prefix_u64() >> 11) * 0x1.0p-53;
}

std::string Hash256::to_hex() const { return util::to_hex(bytes_); }

std::string Hash256::short_hex() const { return to_hex().substr(0, 8); }

HashBuilder::HashBuilder(std::string_view domain_tag) {
  ctx_.update_u64(domain_tag.size());
  ctx_.update(domain_tag);
}

HashBuilder& HashBuilder::add(std::span<const std::uint8_t> bytes) {
  ctx_.update_u64(bytes.size());
  ctx_.update(bytes);
  return *this;
}

HashBuilder& HashBuilder::add(std::string_view text) {
  ctx_.update_u64(text.size());
  ctx_.update(text);
  return *this;
}

HashBuilder& HashBuilder::add(const Hash256& hash) {
  return add(hash.span());
}

HashBuilder& HashBuilder::add_u64(std::uint64_t value) {
  ctx_.update_u64(8);
  ctx_.update_u64(value);
  return *this;
}

HashBuilder& HashBuilder::add_i64(std::int64_t value) {
  return add_u64(static_cast<std::uint64_t>(value));
}

Hash256 HashBuilder::build() { return Hash256(ctx_.finalize()); }

FixedHasher::FixedHasher(std::string_view domain_tag) {
  append_u64_le(domain_tag.size());
  append_bytes(reinterpret_cast<const std::uint8_t*>(domain_tag.data()),
               domain_tag.size());
}

void FixedHasher::append_u64_le(std::uint64_t value) {
  RS_REQUIRE(len_ + 8 <= bytes_.size(), "FixedHasher layout too long");
  for (int i = 0; i < 8; ++i)
    bytes_[len_++] = static_cast<std::uint8_t>(value >> (8 * i));
}

void FixedHasher::append_bytes(const std::uint8_t* bytes,
                               std::size_t count) {
  RS_REQUIRE(len_ + count <= bytes_.size(), "FixedHasher layout too long");
  std::memcpy(bytes_.data() + len_, bytes, count);
  len_ += count;
}

FixedHasher& FixedHasher::add(const Hash256& hash) {
  append_u64_le(32);
  append_bytes(hash.bytes().data(), 32);
  return *this;
}

FixedHasher& FixedHasher::add_u64(std::uint64_t value) {
  append_u64_le(8);
  append_u64_le(value);
  return *this;
}

std::size_t FixedHasher::add_hash_slot() {
  append_u64_le(32);
  const std::size_t offset = len_;
  len_ += 32;  // slot bytes stay zero until the loop overwrites them
  RS_REQUIRE(len_ <= bytes_.size(), "FixedHasher layout too long");
  return offset;
}

Sha256Fixed FixedHasher::build_template() const {
  Sha256Fixed fixed(len_);
  fixed.write(0, bytes_.data(), len_);
  return fixed;
}

}  // namespace roleshare::crypto
