#include "consensus/votes.hpp"

#include <gtest/gtest.h>

namespace roleshare::consensus {
namespace {

struct VoterSetup {
  std::vector<crypto::KeyPair> keys;
  std::vector<std::int64_t> stakes;
  std::int64_t total = 0;
  crypto::Hash256 seed = crypto::HashBuilder("vseed").add_u64(1).build();
  std::uint64_t round = 2;
  std::uint32_t step = 1;
  crypto::SortitionParams params{0, 0};
};

// Builds voters that are guaranteed committee members by searching node ids
// until sortition selects them (deterministic, test-only).
VoterSetup make_voters(std::size_t count) {
  VoterSetup s;
  s.total = 10'000;
  s.params = crypto::SortitionParams{2'000, s.total};
  std::uint64_t id = 0;
  while (s.keys.size() < count) {
    const crypto::KeyPair key = crypto::KeyPair::derive(555, id++);
    const crypto::VrfInput input{s.round, s.step, s.seed};
    const auto res = crypto::sortition(key, input, 100, s.params);
    if (res.selected()) {
      s.keys.push_back(key);
      s.stakes.push_back(100);
    }
  }
  return s;
}

Vote vote_for(const VoterSetup& s, std::size_t idx,
              const crypto::Hash256& value) {
  const crypto::VrfInput input{s.round, s.step, s.seed};
  const auto res =
      crypto::sortition(s.keys[idx], input, s.stakes[idx], s.params);
  return make_vote(static_cast<ledger::NodeId>(idx),
                   s.keys[idx].public_key(), s.round, s.step, value, res);
}

TEST(Votes, MakeAndVerify) {
  const VoterSetup s = make_voters(3);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(1).build();
  const Vote v = vote_for(s, 0, value);
  EXPECT_GT(v.weight, 0u);
  EXPECT_TRUE(verify_vote(v, s.seed, s.stakes[0], s.params));
}

TEST(Votes, VerifyRejectsWrongSeed) {
  const VoterSetup s = make_voters(1);
  const Vote v = vote_for(s, 0, crypto::Hash256::zero());
  const auto other_seed = crypto::HashBuilder("other").build();
  EXPECT_FALSE(verify_vote(v, other_seed, s.stakes[0], s.params));
}

TEST(Votes, VerifyRejectsInflatedWeight) {
  const VoterSetup s = make_voters(1);
  Vote v = vote_for(s, 0, crypto::Hash256::zero());
  v.weight += 5;  // claim more sub-users than sortition granted
  EXPECT_FALSE(verify_vote(v, s.seed, s.stakes[0], s.params));
}

TEST(VoteCounter, ReachesQuorum) {
  const VoterSetup s = make_voters(4);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(2).build();
  VoteCounter counter(1.0);  // tiny quorum: any verified weight wins
  for (std::size_t i = 0; i < 4; ++i) counter.add(vote_for(s, i, value));
  const TallyResult r = counter.result();
  ASSERT_TRUE(r.winner.has_value());
  EXPECT_EQ(*r.winner, value);
  EXPECT_EQ(r.winner_weight, counter.weight_for(value));
  EXPECT_EQ(r.total_weight, counter.total_weight());
}

TEST(VoteCounter, BelowQuorumNoWinner) {
  const VoterSetup s = make_voters(2);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(3).build();
  VoteCounter counter(1e9);  // unreachable quorum
  counter.add(vote_for(s, 0, value));
  counter.add(vote_for(s, 1, value));
  EXPECT_FALSE(counter.result().winner.has_value());
}

TEST(VoteCounter, DuplicateVoterCountedOnce) {
  const VoterSetup s = make_voters(1);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(4).build();
  VoteCounter counter(0.5);
  const Vote v = vote_for(s, 0, value);
  EXPECT_TRUE(counter.add(v));
  EXPECT_FALSE(counter.add(v));
  EXPECT_EQ(counter.total_weight(), v.weight);
}

TEST(VoteCounter, SplitVoteHighestWins) {
  const VoterSetup s = make_voters(5);
  const crypto::Hash256 a = crypto::HashBuilder("blk").add_u64(5).build();
  const crypto::Hash256 b = crypto::HashBuilder("blk").add_u64(6).build();
  VoteCounter counter(0.5);
  std::uint64_t weight_a = 0, weight_b = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const Vote v = vote_for(s, i, i < 3 ? a : b);
    counter.add(v);
    (i < 3 ? weight_a : weight_b) += v.weight;
  }
  const TallyResult r = counter.result();
  ASSERT_TRUE(r.winner.has_value());
  EXPECT_EQ(*r.winner, weight_a >= weight_b ? a : b);
}

TEST(VoteCounter, CommonCoinIsDeterministicAndBinary) {
  const VoterSetup s = make_voters(3);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(7).build();
  VoteCounter c1(0.5), c2(0.5);
  for (std::size_t i = 0; i < 3; ++i) {
    c1.add(vote_for(s, i, value));
    c2.add(vote_for(s, i, value));
  }
  ASSERT_TRUE(c1.common_coin().has_value());
  EXPECT_EQ(c1.common_coin(), c2.common_coin());
}

TEST(VoteCounter, CommonCoinEmptyWhenNoVotes) {
  VoteCounter counter(0.5);
  EXPECT_FALSE(counter.common_coin().has_value());
}

TEST(VoteCounter, RejectsNonPositiveQuorum) {
  EXPECT_THROW(VoteCounter(0.0), std::invalid_argument);
  EXPECT_THROW(VoteCounter(-1.0), std::invalid_argument);
}

TEST(Votes, TallyVotesConvenience) {
  const VoterSetup s = make_voters(3);
  const crypto::Hash256 value = crypto::HashBuilder("blk").add_u64(8).build();
  std::vector<Vote> votes;
  for (std::size_t i = 0; i < 3; ++i) votes.push_back(vote_for(s, i, value));
  const TallyResult r = tally_votes(votes, 0.5);
  ASSERT_TRUE(r.winner.has_value());
  EXPECT_EQ(*r.winner, value);
}

}  // namespace
}  // namespace roleshare::consensus
