#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace roleshare::util::json {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, DoublesRoundTripBitwise) {
  // %.17g must reproduce every finite binary64 exactly — the property
  // the exact-backend shard workflow's bit-identity rests on.
  const double values[] = {0.1 + 0.2,
                           1.0 / 3.0,
                           6.02214076e23,
                           -5e-324,  // min subnormal
                           std::numeric_limits<double>::max(),
                           83.333333333333329};
  for (const double v : values) {
    const Value round_tripped = parse(Value(v).dump());
    EXPECT_EQ(round_tripped.as_number(), v);  // bitwise for finite doubles
  }
}

TEST(Json, NonFiniteDumpsAsNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, NestedDocumentRoundTrips) {
  Value doc = Value::object();
  doc.set("name", "fig3");
  doc.set("runs", 8);
  Value rows = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value row = Value::array();
    row.push_back(i * 1.5);
    row.push_back(Value());  // null (empty-round NaN convention)
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));
  doc.set("flags", Value(true));

  const Value parsed = parse(doc.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "fig3");
  EXPECT_EQ(parsed.at("runs").as_size(), 8u);
  const auto& parsed_rows = parsed.at("rows").as_array();
  ASSERT_EQ(parsed_rows.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed_rows[2].as_array()[0].as_number(), 3.0);
  EXPECT_TRUE(parsed_rows[0].as_array()[1].is_null());
  EXPECT_TRUE(parsed.at("flags").as_bool());
  // Insertion order is preserved, so dumps are deterministic.
  EXPECT_EQ(parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, StringEscapesRoundTrip) {
  const Value v(std::string("a\"b\\c\nd\te\x01"));
  const Value parsed = parse(v.dump());
  EXPECT_EQ(parsed.as_string(), v.as_string());
}

TEST(Json, WhitespaceTolerated) {
  const Value v = parse("  {\n  \"a\" : [ 1 , 2 ] ,\n \"b\": {} }\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
  EXPECT_TRUE(v.at("b").as_object().empty());
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("nul"), std::invalid_argument);
  EXPECT_THROW(parse("1 2"), std::invalid_argument);  // trailing token
  EXPECT_THROW(parse("{\"a\" 1}"), std::invalid_argument);
}

TEST(Json, AccessorsRejectKindMismatch) {
  const Value v = parse("{\"a\": 1}");
  EXPECT_THROW(v.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(v.as_array(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(parse("-1").as_size(), std::invalid_argument);
  EXPECT_THROW(parse("1.5").as_size(), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::util::json
