// Worker agent of the shard orchestration service (DESIGN.md §11): dials
// the coordinator's socket, HELLOs with its config echo, then executes
// ASSIGNed run windows through a bench-supplied WindowRunner until it is
// told to SHUTDOWN. The runner wraps bench::run_sharded_panels, so a
// window execution inherits the whole checkpoint/resume/store machinery:
// checkpoints surface as PROGRESS messages, a finished window is spooled
// (and store-published) before DONE is sent, and a re-issued window that
// the store already holds is a cache hit, not a recompute.
//
// Deterministic fault injection lives HERE, as first-class tested code:
//   kill_after_runs  N  -> the process _exit(9)s the moment it has
//                          executed N runs, before sending the message
//                          it owes. Landing mid-window exercises
//                          checkpoint-resume on another worker; landing
//                          exactly at a window boundary exercises the
//                          retry-hits-the-store path (the partial was
//                          published before the kill).
//   drop_assignments N  -> silently swallow the first N ASSIGNs (never
//                          run them, never reply) — the coordinator's
//                          lease must expire and re-issue elsewhere.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace roleshare::orch {

struct WindowAssignment {
  std::uint32_t window_index = 0;
  std::uint32_t attempt = 0;
  std::size_t run_begin = 0;
  std::size_t run_end = 0;
  std::string spool_path;   // this attempt's private checkpoint/result
  std::string resume_path;  // empty = fresh start
};

struct WindowOutcome {
  std::size_t cursor = 0;        // first run NOT executed
  std::size_t executed = 0;      // runs executed by THIS attempt
  bool complete = false;         // cursor reached run_end
  bool store_hit = false;        // served from the result store
  std::size_t partial_bytes = 0; // spooled document size
};

/// The bench-specific half of a worker: `config_echo` is the shard
/// document header dump (must match the coordinator's, byte for byte);
/// `run` executes one window, honouring `stop_after` (max runs to
/// execute this attempt, 0 = unlimited — the kill-injection budget) and
/// calling `on_checkpoint(cursor)` after each durable checkpoint write.
struct WindowRunner {
  std::string config_echo;
  std::function<WindowOutcome(
      const WindowAssignment& assignment, std::size_t stop_after,
      const std::function<void(std::size_t)>& on_checkpoint)>
      run;
};

struct WorkerOptions {
  std::string socket_path;
  std::uint32_t worker_id = 0;
  /// Fault injection: _exit(9) once this many runs have been executed
  /// (across assignments), before the next protocol message. 0 = off.
  std::size_t kill_after_runs = 0;
  /// Fault injection: swallow this many ASSIGNs silently. 0 = off.
  std::size_t drop_assignments = 0;
  bool verbose = false;
};

/// Runs the agent loop until SHUTDOWN (returns 0), coordinator EOF
/// (returns 0 — the job is over without us), or a fatal local error
/// (returns nonzero). Runner exceptions become FAIL messages; the worker
/// survives them and waits for its next assignment.
int run_worker(const WorkerOptions& options, const WindowRunner& runner);

}  // namespace roleshare::orch
