#include "sim/network.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace roleshare::sim {

namespace {

net::Topology build_topology(std::size_t n, std::size_t fan_out,
                             util::Rng& rng) {
  return net::Topology::random_k_out(n, std::min(fan_out, n - 1), rng);
}

}  // namespace

Network::Network(const NetworkConfig& config)
    : config_(config),
      master_rng_(config.seed),
      chain_(config.seed),
      topology_(build_topology(config.node_count, config.fan_out,
                               master_rng_)),
      delays_(net::make_uniform_delay(config.delay_lo_ms, config.delay_hi_ms)),
      synchrony_(config.synchrony) {
  RS_REQUIRE(config.node_count >= 4, "network needs at least 4 nodes");
  RS_REQUIRE(config.defection_rate >= 0.0 && config.defection_rate <= 1.0,
             "defection rate");
  RS_REQUIRE(config.faulty_rate >= 0.0 &&
                 config.defection_rate + config.faulty_rate <= 1.0,
             "faulty rate");

  // Keys and stake-funded accounts.
  util::Rng stake_rng = master_rng_.split("stakes");
  const util::UniformStake dist(config.stake_lo, config.stake_hi);
  keys_.reserve(config.node_count);
  for (std::size_t v = 0; v < config.node_count; ++v) {
    keys_.push_back(crypto::KeyPair::derive(config.seed, v));
    const std::int64_t stake = dist.sample(stake_rng);
    accounts_.add_account(keys_.back().public_key(), ledger::algos(stake));
  }

  // Behaviour assignment: a random subset defects, a random subset is
  // faulty, the rest honest (or selfish when selfish_residual).
  behaviors_.assign(config.node_count, config.selfish_residual
                                           ? BehaviorType::Selfish
                                           : BehaviorType::Honest);
  util::Rng behavior_rng = master_rng_.split("behaviors");
  const auto n_defect = static_cast<std::size_t>(
      config.defection_rate * static_cast<double>(config.node_count) + 0.5);
  const auto n_faulty = static_cast<std::size_t>(
      config.faulty_rate * static_cast<double>(config.node_count) + 0.5);
  const auto picks = behavior_rng.sample_without_replacement(
      config.node_count, std::min(config.node_count, n_defect + n_faulty));
  for (std::size_t i = 0; i < picks.size(); ++i) {
    behaviors_[picks[i]] = i < n_defect ? BehaviorType::ScriptedDefect
                                        : BehaviorType::Faulty;
  }

  strategies_.assign(config.node_count, game::Strategy::Cooperate);
  live_mask_.assign(config.node_count, 1);
  live_count_ = config.node_count;
  util::Rng init_rng = master_rng_.split("initial-strategies");
  decide_strategies(econ::CostModel{}, 0.0, init_rng);
}

void Network::set_behavior(ledger::NodeId v, BehaviorType b) {
  RS_REQUIRE(v < behaviors_.size(), "node id out of range");
  behaviors_[v] = b;
}

void Network::set_live(ledger::NodeId v, bool is_live) {
  RS_REQUIRE(v < live_mask_.size(), "node id out of range");
  const std::uint8_t next = is_live ? 1 : 0;
  if (live_mask_[v] == next) return;
  live_mask_[v] = next;
  if (is_live) {
    ++live_count_;
  } else {
    --live_count_;
  }
}

void Network::decide_strategies(const econ::CostModel& costs,
                                double last_reward_per_stake,
                                util::Rng& rng) {
  const std::int64_t total = accounts_.total_stake();
  for (std::size_t v = 0; v < behaviors_.size(); ++v) {
    SelfishContext ctx;
    ctx.stake = accounts_.stake(static_cast<ledger::NodeId>(v));
    ctx.last_reward_per_stake = last_reward_per_stake;
    if (total > 0) {
      // P(at least one sub-user selected) = 1 - (1 - tau/W)^stake; a cheap
      // upper estimate tau*s/W suffices for the decision rule.
      const double w = static_cast<double>(total);
      ctx.p_leader = std::min(1.0, 26.0 * static_cast<double>(ctx.stake) / w);
      ctx.p_committee =
          std::min(1.0, 13'000.0 * static_cast<double>(ctx.stake) / w);
    }
    strategies_[v] = choose_strategy(behaviors_[v], costs, ctx, rng);
  }
}

void Network::set_strategies(std::vector<game::Strategy> strategies) {
  RS_REQUIRE(strategies.size() == behaviors_.size(),
             "strategy vector size mismatch");
  strategies_ = std::move(strategies);
}

util::Rng Network::round_rng(ledger::Round round) const {
  return master_rng_.split(0x726f756e64ULL ^ round);  // "round" ^ r
}

}  // namespace roleshare::sim
