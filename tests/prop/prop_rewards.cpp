// Property suite: reward-conservation invariants for every scheme and
// exact pool accounting, over randomized populations and budgets
// (seeding contract in DESIGN.md §8).
//
// The paper's economic layer promises integer µAlgo conservation: a
// scheme never disburses more than its budget (floor rounding leaves
// dust in the pool, never mints), pays nothing to zero-stake nodes, and
// the Foundation pool's ledger identity emitted == balance + disbursed
// holds after any operation sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "econ/cost_model.hpp"
#include "econ/foundation_schedule.hpp"
#include "econ/reward_pool.hpp"
#include "econ/role_based.hpp"
#include "econ/role_snapshot.hpp"
#include "econ/stake_proportional.hpp"
#include "gen/domain_gen.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::econ::CostModel;
using roleshare::econ::FoundationPool;
using roleshare::econ::Payouts;
using roleshare::econ::RewardScheme;
using roleshare::econ::RewardSplit;
using roleshare::econ::RoleBasedScheme;
using roleshare::econ::RoleSnapshot;
using roleshare::econ::StakeProportionalScheme;
using roleshare::ledger::MicroAlgos;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

std::string describe_snapshot(const RoleSnapshot& snap) {
  std::string out = "snapshot{";
  for (std::size_t v = 0; v < snap.node_count(); ++v) {
    if (v > 0) out += ", ";
    const auto id = static_cast<roleshare::ledger::NodeId>(v);
    switch (snap.role(id)) {
      case roleshare::consensus::Role::Leader: out += "L:"; break;
      case roleshare::consensus::Role::Committee: out += "M:"; break;
      case roleshare::consensus::Role::Other: out += "K:"; break;
    }
    out += std::to_string(snap.stake(id));
  }
  return out + "}";
}

// The conservation contract every scheme must satisfy for any
// (snapshot, budget) pair, whether or not the budget is the one the
// scheme asked for.
Verdict conservation_holds(RewardScheme& scheme, const RoleSnapshot& snap,
                           MicroAlgos budget) {
  const MicroAlgos required =
      scheme.required_budget(/*round=*/1, snap);
  if (required < 0)
    return Verdict{false, scheme.name() + ": negative required budget " +
                              std::to_string(required)};
  const Payouts payouts = scheme.distribute(/*round=*/1, snap, budget);
  if (payouts.amounts.size() != snap.node_count())
    return Verdict{false, scheme.name() + ": payout vector has " +
                              std::to_string(payouts.amounts.size()) +
                              " entries for " +
                              std::to_string(snap.node_count()) + " nodes"};
  MicroAlgos sum = 0;
  for (std::size_t v = 0; v < payouts.amounts.size(); ++v) {
    const MicroAlgos a = payouts.amounts[v];
    if (a < 0)
      return Verdict{false, scheme.name() + ": negative payout " +
                                std::to_string(a) + " to node " +
                                std::to_string(v)};
    if (snap.stake(static_cast<roleshare::ledger::NodeId>(v)) == 0 && a != 0)
      return Verdict{false, scheme.name() + ": zero-stake node " +
                                std::to_string(v) + " paid " +
                                std::to_string(a)};
    sum += a;
  }
  if (sum != payouts.total)
    return Verdict{false, scheme.name() + ": total " +
                              std::to_string(payouts.total) +
                              " != sum of amounts " + std::to_string(sum)};
  if (payouts.total > budget)
    return Verdict{false, scheme.name() + ": disbursed " +
                              std::to_string(payouts.total) +
                              " from a budget of " + std::to_string(budget)};
  return Verdict{};
}

auto snapshot_and_budget() {
  return pgen::tuple_of(roleshare::testgen::role_snapshot(1, 24),
                        pgen::int_range(0, 2'000'000'000));
}

auto snapshot_budget_printer() {
  return [](const std::tuple<RoleSnapshot, std::int64_t>& t) {
    return describe_snapshot(std::get<0>(t)) +
           " budget=" + std::to_string(std::get<1>(t));
  };
}

}  // namespace

// ISSUE acceptance: reward conservation at >= 1000 randomized cases for
// every scheme. Each check draws an independent (population, budget).
PROP_TEST_WITH_PARAMS(PropRewards, StakeProportionalConservesBudget, 1000) {
  prop.check(
      snapshot_and_budget(),
      [](const std::tuple<RoleSnapshot, std::int64_t>& t) {
        StakeProportionalScheme scheme;
        return conservation_holds(scheme, std::get<0>(t), std::get<1>(t));
      },
      snapshot_budget_printer());
}

PROP_TEST_WITH_PARAMS(PropRewards, RoleBasedAdaptiveConservesBudget, 1000) {
  prop.check(
      snapshot_and_budget(),
      [](const std::tuple<RoleSnapshot, std::int64_t>& t) {
        RoleBasedScheme scheme(CostModel{});
        return conservation_holds(scheme, std::get<0>(t), std::get<1>(t));
      },
      snapshot_budget_printer());
}

PROP_TEST_WITH_PARAMS(PropRewards, RoleBasedFixedSplitConservesBudget, 1000) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::role_snapshot(1, 24),
                     pgen::int_range(0, 2'000'000'000),
                     pgen::real_range(0.01, 0.45),   // alpha
                     pgen::real_range(0.01, 0.45)),  // beta
      [](const std::tuple<RoleSnapshot, std::int64_t, double, double>& t) {
        const auto& [snap, budget, alpha, beta] = t;
        RoleBasedScheme scheme(CostModel{}, RewardSplit(alpha, beta));
        return conservation_holds(scheme, snap, budget);
      },
      [](const std::tuple<RoleSnapshot, std::int64_t, double, double>& t) {
        return describe_snapshot(std::get<0>(t)) +
               " budget=" + std::to_string(std::get<1>(t)) + " split=(" +
               std::to_string(std::get<2>(t)) + ", " +
               std::to_string(std::get<3>(t)) + ")";
      });
}

// Fig-7(c)'s U_w filter must not break conservation: filtered Others get
// nothing, everyone else still shares at most the budget.
PROP_TEST_WITH_PARAMS(PropRewards, MinStakeFilterStillConserves, 1000) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::role_snapshot(1, 24),
                     pgen::int_range(0, 2'000'000'000),
                     pgen::int_range(0, 5'000)),  // min_other_stake
      [](const std::tuple<RoleSnapshot, std::int64_t, std::int64_t>& t) {
        const auto& [snap, budget, threshold] = t;
        RoleBasedScheme scheme(CostModel{},
                               roleshare::econ::OptimizerConfig{}, threshold);
        Verdict v = conservation_holds(scheme, snap, budget);
        if (!v.ok) return v;
        const Payouts payouts = scheme.distribute(1, snap, budget);
        for (std::size_t i = 0; i < payouts.amounts.size(); ++i) {
          const auto id = static_cast<roleshare::ledger::NodeId>(i);
          if (snap.role(id) == roleshare::consensus::Role::Other &&
              snap.stake(id) < threshold && payouts.amounts[i] != 0)
            return Verdict{false,
                           "filtered node " + std::to_string(i) + " (stake " +
                               std::to_string(snap.stake(id)) +
                               " < threshold " + std::to_string(threshold) +
                               ") was paid " +
                               std::to_string(payouts.amounts[i])};
        }
        return Verdict{};
      });
}

// The Foundation pool ledger identity under arbitrary operation
// sequences: emitted never exceeds the ceiling, balance never goes
// negative, and emitted == balance + disbursed at every step.
PROP_TEST_WITH_PARAMS(PropRewards, FoundationPoolAccountingIdentity, 1000) {
  prop.check(
      pgen::tuple_of(
          pgen::int_range(0, 1'000'000'000),  // ceiling
          pgen::vector_of(
              pgen::pair_of(pgen::boolean(),  // true = inject
                            pgen::int_range(0, 500'000'000)),
              0, 32)),
      [](const std::tuple<std::int64_t,
                          std::vector<std::pair<bool, std::int64_t>>>& t) {
        const auto& [ceiling, ops] = t;
        FoundationPool pool(ceiling);
        for (const auto& [is_inject, amount] : ops) {
          if (is_inject) {
            const MicroAlgos injected = pool.inject(amount);
            if (injected < 0 || injected > amount)
              return Verdict{false, "inject returned " +
                                        std::to_string(injected) +
                                        " for request " +
                                        std::to_string(amount)};
          } else {
            const MicroAlgos taken = pool.withdraw(amount);
            if (taken < 0 || taken > amount)
              return Verdict{false, "withdraw returned " +
                                        std::to_string(taken) +
                                        " for request " +
                                        std::to_string(amount)};
          }
          if (pool.balance() < 0)
            return Verdict{false,
                           "balance went negative: " +
                               std::to_string(pool.balance())};
          if (pool.emitted() > pool.ceiling())
            return Verdict{false, "emitted " + std::to_string(pool.emitted()) +
                                      " past ceiling " +
                                      std::to_string(pool.ceiling())};
          if (pool.emitted() != pool.balance() + pool.disbursed())
            return Verdict{false,
                           "identity broken: emitted=" +
                               std::to_string(pool.emitted()) + " balance=" +
                               std::to_string(pool.balance()) +
                               " disbursed=" +
                               std::to_string(pool.disbursed())};
        }
        return Verdict{};
      });
}

// End-to-end round loop: schedule emission -> pool -> scheme budget ->
// distribution. Whatever the scheme does, µAlgos are conserved globally:
// emitted == balance + disbursed and payouts never exceed withdrawals.
PROP_TEST_WITH_PARAMS(PropRewards, PoolSchemeLoopConservesMicroAlgos, 300) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::role_snapshot(1, 24),
                     pgen::int_range(1, 40),      // rounds
                     pgen::boolean()),            // scheme pick
      [](const std::tuple<RoleSnapshot, std::int64_t, bool>& t) {
        const auto& [snap, rounds, role_based] = t;
        std::unique_ptr<RewardScheme> scheme;
        if (role_based)
          scheme = std::make_unique<RoleBasedScheme>(CostModel{});
        else
          scheme = std::make_unique<StakeProportionalScheme>();
        FoundationPool pool;
        MicroAlgos paid_out = 0;
        MicroAlgos withdrawn = 0;
        for (std::int64_t r = 1; r <= rounds; ++r) {
          pool.inject(
              roleshare::econ::FoundationSchedule::reward_for_round(r));
          const MicroAlgos want = scheme->required_budget(r, snap);
          const MicroAlgos got = pool.withdraw(want);
          withdrawn += got;
          const Payouts payouts = scheme->distribute(r, snap, got);
          if (payouts.total > got)
            return Verdict{false, "round " + std::to_string(r) +
                                      " disbursed " +
                                      std::to_string(payouts.total) +
                                      " of " + std::to_string(got)};
          paid_out += payouts.total;
        }
        if (pool.emitted() != pool.balance() + pool.disbursed())
          return Verdict{false, "pool identity broken after " +
                                    std::to_string(rounds) + " rounds"};
        if (paid_out > withdrawn)
          return Verdict{false, "paid " + std::to_string(paid_out) +
                                    " but only withdrew " +
                                    std::to_string(withdrawn)};
        return Verdict{};
      });
}
