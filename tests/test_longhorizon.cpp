#include "sim/longhorizon.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "econ/cost_model.hpp"
#include "econ/role_based.hpp"
#include "econ/role_snapshot.hpp"
#include "econ/sparse_payout.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {
namespace {

LongHorizonConfig tiny_config() {
  LongHorizonConfig config;
  config.node_count = 200;
  config.seed = 17;
  config.runs = 3;
  config.rounds_per_run = 6;
  config.defection_rate = 0.10;
  return config;
}

// distribute_touched's digit-for-digit contract against the paper scheme:
// over a full-population snapshot, the Leader/Committee amounts must match
// RoleBasedScheme::distribute exactly, and they must be invariant to
// restricting the touched set to just the elected nodes.
TEST(SparsePayout, MatchesRoleBasedSchemeForElectedRoles) {
  util::Rng rng(31);
  const std::size_t n = 400;
  std::vector<consensus::Role> roles(n, consensus::Role::Other);
  std::vector<std::int64_t> stakes(n);
  for (std::size_t v = 0; v < n; ++v) {
    stakes[v] = rng.uniform_int(1, 80);
    const double p = rng.uniform01();
    if (p < 0.02) {
      roles[v] = consensus::Role::Leader;
    } else if (p < 0.15) {
      roles[v] = consensus::Role::Committee;
    }
  }
  const econ::RoleSnapshot snapshot(roles, stakes);
  const econ::RewardSplit split(0.30, 0.30);
  const ledger::MicroAlgos budget = 26'000'000;

  econ::RoleBasedScheme scheme(econ::CostModel{}, split);
  const econ::Payouts dense = scheme.distribute(1, snapshot, budget);

  // Full-population touched set.
  std::vector<ledger::MicroAlgos> amounts(n, 0);
  const auto totals = econ::distribute_touched(
      split, budget, roles, stakes, snapshot.total_stake(), amounts);
  EXPECT_EQ(totals.leader_stake, snapshot.stake_of(consensus::Role::Leader));
  EXPECT_EQ(totals.committee_stake,
            snapshot.stake_of(consensus::Role::Committee));
  EXPECT_EQ(totals.other_stake, snapshot.stake_of(consensus::Role::Other));
  ledger::MicroAlgos paid = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (roles[v] == consensus::Role::Other) {
      EXPECT_EQ(amounts[v], 0) << v;  // γ pot reported, not paid
    } else {
      EXPECT_EQ(amounts[v], dense.amounts[v]) << v;
      paid += amounts[v];
    }
  }
  EXPECT_EQ(totals.paid, paid);
  EXPECT_LE(totals.paid + totals.others_pot, budget);

  // Elected-only touched set (the sparse round's actual shape) pays the
  // same amounts given the same online_stake.
  std::vector<consensus::Role> elected_roles;
  std::vector<std::int64_t> elected_stakes;
  std::vector<std::size_t> elected_ids;
  for (std::size_t v = 0; v < n; ++v) {
    if (roles[v] == consensus::Role::Other) continue;
    elected_roles.push_back(roles[v]);
    elected_stakes.push_back(stakes[v]);
    elected_ids.push_back(v);
  }
  std::vector<ledger::MicroAlgos> elected_amounts(elected_roles.size(), 0);
  const auto elected_totals = econ::distribute_touched(
      split, budget, elected_roles, elected_stakes, snapshot.total_stake(),
      elected_amounts);
  EXPECT_EQ(elected_totals.paid, totals.paid);
  EXPECT_EQ(elected_totals.other_stake, totals.other_stake);
  for (std::size_t i = 0; i < elected_ids.size(); ++i)
    EXPECT_EQ(elected_amounts[i], dense.amounts[elected_ids[i]]);
}

TEST(SparsePayout, GuardsAndDegenerateBudgets) {
  const econ::RewardSplit split(0.30, 0.30);
  std::vector<consensus::Role> roles{consensus::Role::Leader};
  std::vector<std::int64_t> stakes{10};
  std::vector<ledger::MicroAlgos> amounts(1, 0);
  // Zero budget pays nothing.
  const auto zero =
      econ::distribute_touched(split, 0, roles, stakes, 10, amounts);
  EXPECT_EQ(zero.paid, 0);
  // Touched stakes exceeding the online stake is a caller bug.
  EXPECT_THROW(econ::distribute_touched(split, 100, roles, stakes, 5, amounts),
               std::invalid_argument);
  // Mismatched spans are rejected.
  std::vector<ledger::MicroAlgos> wrong(2, 0);
  EXPECT_THROW(econ::distribute_touched(split, 100, roles, stakes, 10, wrong),
               std::invalid_argument);
}

TEST(LongHorizon, SmokeRunProducesCoherentSeries) {
  const LongHorizonConfig config = tiny_config();
  const LongHorizonResult result = run_longhorizon(config);
  ASSERT_EQ(result.gini_per_round.size(), config.rounds_per_run);
  ASSERT_EQ(result.top_share_per_round.size(), config.rounds_per_run);
  ASSERT_EQ(result.defector_corr_per_round.size(), config.rounds_per_run);
  ASSERT_EQ(result.final_pct_per_round.size(), config.rounds_per_run);
  for (std::size_t r = 0; r < config.rounds_per_run; ++r) {
    EXPECT_GE(result.gini_per_round[r], 0.0);
    EXPECT_LE(result.gini_per_round[r], 1.0);
    EXPECT_GT(result.top_share_per_round[r], 0.0);
    EXPECT_LE(result.top_share_per_round[r], 1.0);
    EXPECT_GE(result.defector_corr_per_round[r], -1.0);
    EXPECT_LE(result.defector_corr_per_round[r], 1.0);
    EXPECT_GE(result.final_pct_per_round[r], 0.0);
    EXPECT_LE(result.final_pct_per_round[r], 100.0);
  }
  EXPECT_GE(result.mean_end_gini, 0.0);
  EXPECT_LE(result.mean_end_gini, 1.0);
  EXPECT_GT(result.mean_paid_algos, 0.0);
  EXPECT_GT(result.accumulator_bytes, 0u);
}

TEST(LongHorizon, DeterministicInSeedAndThreads) {
  LongHorizonConfig config = tiny_config();
  const LongHorizonResult a = run_longhorizon(config);
  config.threads = 3;
  const LongHorizonResult b = run_longhorizon(config);
  EXPECT_EQ(a.gini_per_round, b.gini_per_round);
  EXPECT_EQ(a.top_share_per_round, b.top_share_per_round);
  EXPECT_EQ(a.defector_corr_per_round, b.defector_corr_per_round);
  EXPECT_EQ(a.final_pct_per_round, b.final_pct_per_round);
  EXPECT_EQ(a.mean_end_gini, b.mean_end_gini);
  EXPECT_EQ(a.mean_paid_algos, b.mean_paid_algos);

  LongHorizonConfig reseeded = tiny_config();
  reseeded.seed = 18;
  const LongHorizonResult c = run_longhorizon(reseeded);
  EXPECT_NE(a.gini_per_round, c.gini_per_round);
}

TEST(LongHorizon, PartialJsonRoundTrips) {
  const LongHorizonConfig config = tiny_config();
  const LongHorizonPartial partial = run_longhorizon_partial(config);
  EXPECT_EQ(partial.envelope().kind, "longhorizon");
  EXPECT_TRUE(partial.complete());
  const LongHorizonPartial restored =
      LongHorizonPartial::from_json(util::json::parse(partial.to_json().dump()));
  EXPECT_EQ(restored.to_json().dump(), partial.to_json().dump());
}

// The acceptance-criterion property in miniature: contiguous shards merged
// in window order are bit-identical to the single-process partial.
TEST(LongHorizon, ShardedMergeMatchesSingleProcess) {
  const LongHorizonConfig config = tiny_config();
  const LongHorizonPartial whole = run_longhorizon_partial(config);

  auto shard = [&](std::size_t begin, std::size_t end) {
    LongHorizonConfig c = config;
    c.shard = RunShard{begin, end};
    return run_longhorizon_partial(c);
  };
  LongHorizonPartial merged = shard(0, 1);
  merged.merge(shard(1, 2));
  merged.merge(shard(2, 3));
  EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());

  const LongHorizonResult a = whole.finalize();
  const LongHorizonResult b = merged.finalize();
  EXPECT_EQ(a.gini_per_round, b.gini_per_round);
  EXPECT_EQ(a.mean_end_gini, b.mean_end_gini);
  EXPECT_EQ(a.mean_paid_algos, b.mean_paid_algos);
}

TEST(LongHorizon, CompoundingDriftsTheStakeDistribution) {
  // With rewards flowing back into stake, the end-of-run concentration
  // must differ from the round-1 concentration — the series is alive.
  LongHorizonConfig config = tiny_config();
  config.runs = 1;
  config.rounds_per_run = 40;
  const LongHorizonResult result = run_longhorizon(config);
  EXPECT_NE(result.gini_per_round.front(), result.gini_per_round.back());
}

TEST(LongHorizon, RejectsInvalidConfig) {
  LongHorizonConfig bad = tiny_config();
  bad.node_count = 2;
  EXPECT_THROW(run_longhorizon(bad), std::invalid_argument);
  LongHorizonConfig bad_top = tiny_config();
  bad_top.top_fraction = 0.0;
  EXPECT_THROW(run_longhorizon(bad_top), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::sim
