#include "sim/behavior.hpp"

#include "util/require.hpp"

namespace roleshare::sim {

namespace {

/// The honest-but-selfish decision rule (§III-C): cooperate iff the reward
/// at stake strictly exceeds the expected extra cost of cooperating.
game::Strategy selfish_rule(const econ::CostModel& costs,
                            const SelfishContext& ctx) {
  // Expected extra cost of cooperating over defecting this round.
  const double expected_cost =
      (costs.other_cost() - costs.defection_cost()) +
      ctx.p_leader * (costs.leader_cost() - costs.other_cost()) +
      ctx.p_committee * (costs.committee_cost() - costs.other_cost());
  // Under no-punishment schemes defection keeps the stake reward, so a
  // purely myopic node would always defect; but defection risks the
  // block (and thus the reward) failing. The node cooperates when the
  // reward at stake exceeds the cost of cooperating.
  const double reward_at_stake =
      ctx.last_reward_per_stake * static_cast<double>(ctx.stake);
  return reward_at_stake > expected_cost ? game::Strategy::Cooperate
                                         : game::Strategy::Defect;
}

}  // namespace

game::Strategy choose_strategy(BehaviorType behavior,
                               const econ::CostModel& costs,
                               const SelfishContext& ctx, util::Rng& rng) {
  switch (behavior) {
    case BehaviorType::Honest:
      return game::Strategy::Cooperate;
    case BehaviorType::ScriptedDefect:
      return game::Strategy::Defect;
    case BehaviorType::Faulty:
      return game::Strategy::Offline;
    case BehaviorType::Malicious:
      return rng.bernoulli(0.5) ? game::Strategy::Cooperate
                                : game::Strategy::Defect;
    case BehaviorType::Selfish:
      return selfish_rule(costs, ctx);
    case BehaviorType::AdaptiveDefect:
      // Standalone fallback only — ScenarioPolicy::begin_round overrides
      // this with a game::best_response once a round has been observed.
      return selfish_rule(costs, ctx);
    case BehaviorType::StakeCorrelatedDefect:
      RS_REQUIRE(ctx.defect_probability >= 0.0 &&
                     ctx.defect_probability <= 1.0,
                 "stake-correlated defection probability in [0, 1]");
      return rng.bernoulli(ctx.defect_probability) ? game::Strategy::Defect
                                                   : game::Strategy::Cooperate;
  }
  // Unreachable for valid enumerators; fail loudly on a corrupted value.
  util::ensure_failed("valid BehaviorType", __FILE__, __LINE__,
                      "choose_strategy: invalid BehaviorType value");
}

}  // namespace roleshare::sim
