// Scenario-diversity policy layer: makes node behaviour *reactive*
// instead of scripted, so the Fig-3 machinery can answer "what if nodes
// respond to incentives / correlate with stake / come and go?" without
// new experiment plumbing.
//
// A ScenarioPolicy sits between the run setup and the round engine. Once
// per round, before run_round(), it
//   1. applies the churn schedule (nodes leave/join on deterministic
//      per-(round, node) RNG streams — the network's live mask),
//   2. re-decides every live node's strategy from its behaviour type:
//      - AdaptiveDefect candidates play game::best_response against the
//        previous round's observed one-round game (true roles, the
//        Foundation's stake-proportional reward) — the §III-C unraveling
//        driven by actual payoffs instead of a scripted rate;
//      - StakeCorrelatedDefect nodes defect with a probability
//        interpolated over their stake percentile (the paper's claim that
//        large stakeholders have the most to lose from a failed block);
//      - the legacy types (Honest / ScriptedDefect / Malicious / Selfish /
//        Faulty) keep their §III-C rules, now re-drawn per round.
//
// Every draw comes from the per-(round, node) stream
// scenario_policy_root(seed).split(purpose).split(round).split(node), so
// the layer is bit-identical for every threads / inner_threads setting —
// it slots into existing ExperimentRunner run bodies unchanged
// (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "econ/cost_model.hpp"
#include "econ/stake_proportional.hpp"
#include "game/strategy.hpp"
#include "sim/network.hpp"
#include "sim/round_engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::sim {

enum class PolicyKind : std::uint8_t {
  Scripted,               // PR-1 semantics: behaviours as configured, no
                          // per-round re-decision beyond the network's own
  AdaptiveDefect,         // defect candidates best-respond to rewards
  StakeCorrelatedDefect,  // P(defect) interpolated over stake percentile
};

inline constexpr std::size_t kPolicyKindCount = 3;

constexpr std::string_view to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::Scripted:
      return "scripted";
    case PolicyKind::AdaptiveDefect:
      return "adaptive";
    case PolicyKind::StakeCorrelatedDefect:
      return "stake-correlated";
  }
  throw std::invalid_argument("to_string: invalid PolicyKind value");
}
static_assert(static_cast<std::size_t>(PolicyKind::StakeCorrelatedDefect) +
                      1 ==
                  kPolicyKindCount,
              "kPolicyKindCount is out of sync with PolicyKind");

/// Join/leave schedule applied before every round. All draws come from
/// per-(round, node) streams, so a schedule is one deterministic function
/// of (seed, round, node) — independent of thread counts and of the order
/// other components consume randomness in.
struct ChurnSchedule {
  /// Probability that a live node leaves before the round.
  double leave_probability = 0.0;
  /// Probability that a departed node rejoins before the round.
  double join_probability = 0.0;
  /// Live-population floor: leaves that would drop the network below this
  /// are suppressed (node-id order decides which candidate leaves stay).
  /// The round engine requires live stake, so the floor must be >= 1.
  std::size_t min_live = 4;

  bool enabled() const {
    return leave_probability > 0.0 || join_probability > 0.0;
  }
};

struct ScenarioPolicyConfig {
  PolicyKind kind = PolicyKind::Scripted;
  /// StakeCorrelatedDefect: P(defect) at the bottom / top of the stake
  /// percentile ranking, interpolated linearly in between. The paper's
  /// incentive claim corresponds to defect_at_top < defect_at_bottom.
  double defect_at_bottom = 0.0;
  double defect_at_top = 0.0;
  /// Cost matrix behind the adaptive / selfish decision rules.
  econ::CostModel costs{};
  /// Committee vote threshold T of the one-round game adaptive candidates
  /// best-respond in. Experiment drivers overwrite it with the consensus
  /// params the round engine actually runs under (ConsensusParams
  /// .step_threshold), so the policy reasons about the same game.
  double committee_threshold = 0.685;
  ChurnSchedule churn{};

  /// Whether the policy layer changes anything relative to the frozen
  /// PR-1 run setup. When false, consumers skip the layer entirely and
  /// stay bit-identical to their pre-policy output.
  bool enabled() const {
    return kind != PolicyKind::Scripted || churn.enabled();
  }
};

/// Root of the policy layer's RNG streams for a network seeded with
/// `network_seed`: Rng(seed).split("scenario-policy"). Independent of the
/// network's own master streams by construction (DESIGN.md §4).
util::Rng scenario_policy_root(std::uint64_t network_seed);

/// Applies one round of the churn schedule to `net`'s live mask and
/// returns the live count afterwards. Draws one Bernoulli per node from
/// policy_root.split("churn").split(round_index).split(node); the
/// min_live floor is enforced in node-id order. Exposed separately so the
/// strategic loop can churn without adopting the full policy layer.
std::size_t apply_churn(Network& net, const ChurnSchedule& schedule,
                        const util::Rng& policy_root,
                        std::size_t round_index);

class ScenarioPolicy {
 public:
  /// Binds the policy to `net` (borrowed; must outlive the policy) and
  /// re-labels behaviours for the chosen kind: AdaptiveDefect converts
  /// the network's scripted defectors into adaptive ones (same cohort,
  /// reactive decision), StakeCorrelatedDefect converts the honest /
  /// selfish residual and precomputes stake percentiles.
  ScenarioPolicy(const ScenarioPolicyConfig& config, Network& net);

  const ScenarioPolicyConfig& config() const { return config_; }

  /// Prepares round `round_index` (0-based): applies churn, then
  /// re-decides every node's strategy from its behaviour, the previous
  /// round's result (`last`, nullptr before the first round) and
  /// per-(round, node) streams, and installs the profile on the network.
  /// Departed nodes play Offline. Bit-identical for every executor
  /// width. Returns the live count the round will run with.
  std::size_t begin_round(std::size_t round_index, const RoundResult* last,
                          const util::InnerExecutor& exec);

 private:
  double defect_probability(std::size_t v) const;

  ScenarioPolicyConfig config_;
  Network* net_;
  util::Rng policy_root_;
  std::vector<double> stake_percentile_;  // per node, in [0, 1]
  /// Observed-reward source for the adaptive rule (Table-III schedule).
  econ::StakeProportionalScheme foundation_;
  /// Strategies installed for the upcoming round; the "previous profile"
  /// adaptive nodes best-respond against.
  game::Profile profile_;
};

}  // namespace roleshare::sim
