// Equilibrium explorer: the paper's game theory, hands on.
//  * G_Al (Foundation's stake-proportional rewards): All-D is a NE
//    (Theorem 1), All-C is not (Theorem 2) — watch cooperation unravel
//    under best-response dynamics.
//  * G_Al+ (role-based rewards): with B_i from Theorem 3's bounds, the
//    cooperative profile is a NE and a best-response fixpoint.
//
//   $ ./equilibrium_explorer
#include <cstdio>

#include "econ/optimizer.hpp"
#include "game/best_response.hpp"
#include "game/equilibrium.hpp"

using namespace roleshare;

namespace {

econ::RoleSnapshot demo_snapshot() {
  using consensus::Role;
  return econ::RoleSnapshot(
      {Role::Leader, Role::Leader, Role::Committee, Role::Committee,
       Role::Committee, Role::Other, Role::Other, Role::Other, Role::Other,
       Role::Other},
      {5, 8, 10, 12, 9, 20, 15, 30, 25, 40});
}

void print_profile(const char* label, const game::Profile& profile) {
  std::printf("%-34s [", label);
  for (const game::Strategy s : profile)
    std::printf("%s", std::string(game::to_string(s)).c_str());
  std::printf("]\n");
}

}  // namespace

int main() {
  const econ::RoleSnapshot snap = demo_snapshot();
  const econ::CostModel costs;
  std::printf("Population: 2 leaders, 3 committee, 5 others "
              "(S_N = %lld Algos)\n\n",
              static_cast<long long>(snap.total_stake()));

  // ---- G_Al: the Foundation's proposal.
  const game::AlgorandGame gal(game::GameConfig{
      snap, costs, game::SchemeKind::StakeProportional, 20e6,
      econ::RewardSplit(0.02, 0.03), {}, 0.685});

  std::printf("== G_Al (stake-proportional, B_i = 20 Algos) ==\n");
  const auto thm1 = game::verify_theorem1(gal);
  std::printf("Theorem 1 — All-D is a NE: %s\n",
              thm1.holds ? "HOLDS" : "FAILS");
  const auto thm2 = game::verify_theorem2(gal);
  std::printf("Theorem 2 — All-C is not a NE: %s", thm2.holds ? "HOLDS" : "FAILS");
  if (thm2.witness) {
    std::printf("  (player %u gains %.2f uAlgos by defecting)",
                thm2.witness->player, thm2.witness->gain());
  }
  std::printf("\n");

  const auto unravel = game::best_response_dynamics(
      gal, game::all_cooperate(gal.player_count()));
  print_profile("best-response from All-C settles at",
                unravel.profile);
  std::printf("  (%zu strategy switches over %zu sweeps; Nash: %s)\n\n",
              unravel.total_moves, unravel.sweeps,
              game::is_nash(gal, unravel.profile) ? "yes" : "no");

  // ---- G_Al+: the paper's mechanism with Algorithm-1 rewards.
  std::vector<bool> sync_set(snap.node_count(), false);
  for (std::size_t v = 5; v < 8; ++v) sync_set[v] = true;  // Y = 3 others

  // Bounds need s*_k over the sync set, and the optimizer the same.
  econ::BoundInputs in = econ::BoundInputs::from_snapshot(snap);
  in.min_stake_other = 15;  // min stake within Y = {20, 15, 30}
  const econ::RewardOptimizer optimizer;
  const econ::OptimizerResult opt = optimizer.optimize(in, costs);
  std::printf("== G_Al+ (role-based, Algorithm-1 B_i = %.4f Algos, "
              "a=%.3f b=%.3f) ==\n",
              opt.min_bi / 1e6, opt.split.alpha, opt.split.beta);

  const game::AlgorandGame galplus(game::GameConfig{
      snap, costs, game::SchemeKind::RoleBased, opt.min_bi, opt.split,
      sync_set, 0.685});
  const game::Profile target = game::theorem3_profile(galplus);
  print_profile("Theorem-3 profile", target);
  const auto thm3 = game::verify_theorem3(galplus);
  std::printf("Theorem 3 — profile is a NE: %s\n",
              thm3.holds ? "HOLDS" : "FAILS");

  const auto dyn = game::best_response_dynamics(galplus, target);
  std::printf("best-response fixpoint: %s (%zu moves)\n",
              dyn.total_moves == 0 ? "yes" : "no", dyn.total_moves);

  // Starve the reward and watch the equilibrium break.
  game::GameConfig starved_config{
      snap, costs, game::SchemeKind::RoleBased, opt.min_bi * 0.2, opt.split,
      sync_set, 0.685};
  const game::AlgorandGame starved(starved_config);
  const auto broken = game::verify_theorem3(starved);
  std::printf("same profile at 20%% of B_i: %s",
              broken.holds ? "still a NE (!)" : "not a NE");
  if (broken.witness) {
    std::printf(" — player %u (%s) deviates %s -> %s",
                broken.witness->player,
                std::string(consensus::to_string(
                    snap.role(broken.witness->player))).c_str(),
                std::string(game::to_string(broken.witness->from)).c_str(),
                std::string(game::to_string(broken.witness->to)).c_str());
  }
  std::printf("\n\nReading: role-based splits make cooperation the best\n"
              "response exactly when B_i clears the Theorem-3 bounds — and\n"
              "Algorithm 1 pays not one Algo more than that.\n");
  return 0;
}
