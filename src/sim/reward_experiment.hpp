// The Fig-6 / Fig-7 economic experiment (§V-B): a population of hundreds of
// thousands of accounts with a configurable stake distribution, per-round
// committee sampling (sub-user draws, exactly Algorand's committee-stake
// accounting where S_L = tau_proposer and S_M = 3*tau_step + tau_final),
// per-round transaction churn among stake-weighted parties, and per-round
// computation of the minimal incentive-compatible reward B_i via
// Algorithm 1 — compared against the Foundation's Table-III schedule.
//
// Sharded execution rides the shared sim::ExperimentPartial envelope
// (sim/partial.hpp): run_reward_partial executes the config's shard
// window into a mergeable RewardPartial, and run_reward_experiment is
// partial + finalize — so N exact-backend shards merged in window order
// reproduce the single-process result bit for bit.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "econ/optimizer.hpp"
#include "sim/aggregators.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/partial.hpp"
#include "util/distributions.hpp"

namespace roleshare::sim {

/// Copyable description of a stake distribution (the paper's U(1,200),
/// N(100,20), N(100,10), N(2000,25)).
struct StakeSpec {
  enum class Kind : std::uint8_t { Uniform, Normal };
  Kind kind = Kind::Uniform;
  double a = 1;  // Uniform: lo; Normal: mean
  double b = 50; // Uniform: hi; Normal: sigma

  static StakeSpec uniform(std::int64_t lo, std::int64_t hi);
  static StakeSpec normal(double mean, double sigma);

  std::string name() const;
  std::unique_ptr<util::StakeDistribution> make() const;
};

struct RewardExperimentConfig {
  std::size_t node_count = 100'000;
  /// Root seed; run k draws from the independent stream root.split(k).
  std::uint64_t seed = 7;
  StakeSpec stakes = StakeSpec::uniform(1, 200);
  std::size_t runs = 200;
  std::size_t rounds_per_run = 10;
  /// Worker threads for the run fan-out (0 = all hardware threads).
  /// Aggregates are bit-identical for every thread count.
  std::size_t threads = 1;
  /// Worker threads for each run's per-node scans (the O(node_count)
  /// role-partition pass each round); 0 = all hardware threads. Forced
  /// serial while the run fan-out is parallel. The per-chunk partials are
  /// integer sums and minima, so the merged result is exact and identical
  /// for every inner thread count.
  std::size_t inner_threads = 1;
  econ::CostModel costs{};
  econ::OptimizerConfig optimizer{};
  /// Committee-stake expectations (paper: S_L = 26, S_M = 13,000).
  std::uint64_t leader_stake = 26;
  std::uint64_t committee_stake = 13'000;
  /// Per-round transaction churn: `tx_parties` stake-weighted draws, each
  /// moving U(tx_lo, tx_hi) Algos (negative = send, positive = receive).
  std::size_t tx_parties = 1000;
  std::int64_t tx_lo = -4;
  std::int64_t tx_hi = 4;
  /// Fig-7(c): Other nodes with stake < w are excluded from the reward set.
  std::optional<std::int64_t> min_other_stake;
  /// Reduction backend for the per-round B_i series and the run-scalar
  /// banks. Exact is the bit-identical baseline; Streaming keeps the
  /// series state at O(rounds) memory. (The raw `bi_algos` sample list is
  /// only materialized under Exact — the Fig-6 histogram input; Streaming
  /// leaves it empty, which is the point.)
  AggBackend agg = AggBackend::Exact;
  StreamingAggConfig streaming{};
  /// Run window THIS process executes (default: all runs); all result
  /// means are over the executed window.
  RunShard shard{};
};

struct RewardExperimentResult {
  /// Every computed per-round B_i (runs x rounds values), in Algos.
  /// Materialized only under the Exact backend (see config.agg).
  std::vector<double> bi_algos;
  /// Per-round means across runs (length rounds_per_run), Algos.
  std::vector<double> bi_per_round_mean;
  /// Per-round Foundation schedule rewards for the same rounds, Algos.
  std::vector<double> foundation_per_round;
  double mean_bi = 0.0;    // overall mean, Algos
  double mean_total_stake = 0.0;  // mean S_N across runs, Algos
  std::size_t infeasible_rounds = 0;
  /// Chosen splits observed (mean alpha/beta across rounds).
  double mean_alpha = 0.0;
  double mean_beta = 0.0;
  /// Bytes held by the per-round reduction accumulator plus the raw
  /// sample list — the exact-vs-streaming memory story.
  std::size_t accumulator_bytes = 0;
};

/// The experiment-specific half of a RewardPartial: the per-round B_i
/// accumulator plus the flat banks of feasible-round samples and per-run
/// scalars, all in record order so exact-backend merges replay a serial
/// execution exactly.
class RewardPayload {
 public:
  static constexpr std::string_view kKind = "reward";

  RewardPayload(std::size_t rounds, AggBackend backend,
                const StreamingAggConfig& streaming);

  /// One feasible round's optimizer outcome, in round order within the
  /// run: the B_i sample and the chosen split.
  void record_feasible(double bi_algos, double alpha, double beta);
  /// The per-round B_i series entry (0 for infeasible rounds, matching
  /// the historical Fig-7 semantics).
  void record_round_bi(std::size_t round_index, double bi_algos);
  /// One run's trailing scalars.
  void record_run(double total_stake, std::size_t infeasible_rounds);

  void merge(const RewardPayload& next);

  RewardExperimentResult finalize(const PartialEnvelope& envelope) const;

  std::size_t accumulator_bytes() const;

  util::json::Value to_json() const;
  static RewardPayload from_json(const util::json::Value& value,
                                 const PartialEnvelope& envelope);

 private:
  /// Deserialization path: adopts already-built state instead of
  /// constructing (and discarding) fresh accumulators.
  RewardPayload(std::unique_ptr<RoundAccumulator> per_round, ScalarBank bi,
                ScalarBank alpha, ScalarBank beta, ScalarBank stake,
                std::size_t infeasible);

  std::unique_ptr<RoundAccumulator> per_round_;
  ScalarBank bi_;
  ScalarBank alpha_;
  ScalarBank beta_;
  ScalarBank stake_;
  std::size_t infeasible_ = 0;
};

using RewardPartial = ExperimentPartial<RewardPayload>;

/// Canonical echo of every result-affecting config field — the spec-hash
/// input shared by all partials of one reward experiment.
util::json::Value reward_spec_echo(const RewardExperimentConfig& config);

/// Executes config.shard's run window and reduces it into a mergeable
/// partial. Deterministic in config.seed, independent of thread knobs.
RewardPartial run_reward_partial(const RewardExperimentConfig& config);

/// run_reward_partial + finalize — the historical single-process
/// experiment, bit-identical under the exact backend.
RewardExperimentResult run_reward_experiment(
    const RewardExperimentConfig& config);

}  // namespace roleshare::sim
