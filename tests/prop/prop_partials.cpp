// Property suite: the mergeable accumulator / shard-partial layer under
// randomized sample matrices and shard tilings (DESIGN.md §8).
//
// The sharding workflow's core promise: executing a run range in one
// process and executing it as contiguous shards merged in order are the
// SAME computation — byte-identical JSON for the exact backend, within
// documented tolerance for the streaming backend. These properties check
// that promise at the accumulator level for thousands of random
// (matrix, tiling) pairs, and end-to-end through run_defection_partial
// for a smaller number of real experiment executions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gen/domain_gen.hpp"
#include "sim/aggregators.hpp"
#include "sim/defection_experiment.hpp"
#include "util/json.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::sim::AggBackend;
using roleshare::sim::RoundAccumulator;
using roleshare::sim::make_accumulator;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

// A randomized experiment surrogate: samples[run][round] holds 0..3
// values. Cheap enough for thousands of cases, rich enough to hit
// empty rounds, uneven counts and negative/fractional values.
using SampleMatrix = std::vector<std::vector<std::vector<double>>>;
using Tiling = std::vector<std::pair<std::size_t, std::size_t>>;

roleshare::util::proptest::Gen<SampleMatrix> sample_matrix(
    std::size_t runs, std::size_t rounds) {
  auto cell = pgen::vector_of(pgen::real_range(-100.0, 100.0), 0, 3);
  auto run = pgen::vector_of(std::move(cell), rounds, rounds);
  return pgen::vector_of(std::move(run), runs, runs);
}

void record_runs(RoundAccumulator& acc, const SampleMatrix& samples,
                 std::size_t run_begin, std::size_t run_end) {
  for (std::size_t r = run_begin; r < run_end; ++r)
    for (std::size_t round = 0; round < samples[r].size(); ++round)
      for (const double v : samples[r][round]) acc.record(round, v);
}

std::string describe_case(const SampleMatrix& samples, const Tiling& tiling) {
  std::string out = "tiling=[";
  for (std::size_t i = 0; i < tiling.size(); ++i) {
    if (i > 0) out += ",";
    out += "(" + std::to_string(tiling[i].first) + "," +
           std::to_string(tiling[i].second) + ")";
  }
  out += "] samples=[";
  for (std::size_t r = 0; r < samples.size(); ++r) {
    if (r > 0) out += "; ";
    out += "run" + std::to_string(r) + ":";
    for (std::size_t round = 0; round < samples[r].size(); ++round)
      out += std::to_string(samples[r][round].size());
  }
  return out + "]";
}

constexpr std::size_t kRuns = 6;
constexpr std::size_t kRounds = 4;

auto matrix_and_tiling() {
  return pgen::tuple_of(sample_matrix(kRuns, kRounds),
                        roleshare::testgen::shard_tiling(kRuns));
}

}  // namespace

// ISSUE acceptance: random shard-split == single-process, >= 1000 cases.
// Exact backend: byte-identical serialized state and series.
PROP_TEST_WITH_PARAMS(PropPartials, ExactShardSplitIsByteIdentical, 1000) {
  prop.check(
      matrix_and_tiling(),
      [](const std::tuple<SampleMatrix, Tiling>& t) {
        const auto& [samples, tiling] = t;
        auto whole = make_accumulator(AggBackend::Exact, kRounds);
        record_runs(*whole, samples, 0, kRuns);

        auto merged = make_accumulator(AggBackend::Exact, kRounds);
        for (const auto& [begin, end] : tiling) {
          auto shard = make_accumulator(AggBackend::Exact, kRounds);
          record_runs(*shard, samples, begin, end);
          merged->merge(*shard);
        }

        const std::string a = whole->to_json().dump();
        const std::string b = merged->to_json().dump();
        if (a != b)
          return Verdict{false,
                         "serialized state diverged:\n  whole:  " + a +
                             "\n  merged: " + b};
        return Verdict{};
      },
      [](const std::tuple<SampleMatrix, Tiling>& t) {
        return describe_case(std::get<0>(t), std::get<1>(t));
      });
}

// Merging contiguous shards is associative: ((A+B)+C) == (A+(B+C)),
// byte-identical under the exact backend.
PROP_TEST_WITH_PARAMS(PropPartials, ExactMergeIsAssociative, 1000) {
  prop.check(
      pgen::tuple_of(sample_matrix(kRuns, kRounds),
                     pgen::size_range(1, kRuns - 1),
                     pgen::size_range(1, kRuns - 1)),
      [](const std::tuple<SampleMatrix, std::size_t, std::size_t>& t) {
        const auto& [samples, cut_a, cut_b] = t;
        const std::size_t c1 = std::min(cut_a, cut_b);
        const std::size_t c2 = std::max(cut_a, cut_b);
        // Windows [0,c1), [c1,c2), [c2,kRuns) — middle may be empty.
        const auto shard = [&](std::size_t begin, std::size_t end) {
          auto acc = make_accumulator(AggBackend::Exact, kRounds);
          record_runs(*acc, samples, begin, end);
          return acc;
        };
        auto left = shard(0, c1);
        left->merge(*shard(c1, c2));
        left->merge(*shard(c2, kRuns));

        auto mid = shard(c1, c2);
        mid->merge(*shard(c2, kRuns));
        auto right = shard(0, c1);
        right->merge(*mid);

        return left->to_json().dump() == right->to_json().dump();
      });
}

// The streaming backend must agree with exact on the Welford-carried
// statistics (per-round means) for any shard split — merging is allowed
// to reorder floating-point reductions, so the comparison is tolerance-
// based, not bitwise.
PROP_TEST_WITH_PARAMS(PropPartials, StreamingShardMeansMatchExact, 1000) {
  prop.check(
      matrix_and_tiling(),
      [](const std::tuple<SampleMatrix, Tiling>& t) {
        const auto& [samples, tiling] = t;
        auto exact = make_accumulator(AggBackend::Exact, kRounds);
        record_runs(*exact, samples, 0, kRuns);

        auto merged = make_accumulator(AggBackend::Streaming, kRounds);
        for (const auto& [begin, end] : tiling) {
          auto shard = make_accumulator(AggBackend::Streaming, kRounds);
          record_runs(*shard, samples, begin, end);
          merged->merge(*shard);
        }

        const std::vector<double> want = exact->mean_series();
        const std::vector<double> got = merged->mean_series();
        if (want.size() != got.size())
          return Verdict{false, "series length mismatch"};
        for (std::size_t i = 0; i < want.size(); ++i) {
          if (std::isnan(want[i]) != std::isnan(got[i]))
            return Verdict{false,
                           "round " + std::to_string(i) +
                               ": NaN disagreement (exact " +
                               std::to_string(want[i]) + ", streaming " +
                               std::to_string(got[i]) + ")"};
          if (!std::isnan(want[i]) && std::abs(want[i] - got[i]) > 1e-9)
            return Verdict{false, "round " + std::to_string(i) + ": " +
                                      std::to_string(want[i]) + " vs " +
                                      std::to_string(got[i])};
        }
        return Verdict{};
      },
      [](const std::tuple<SampleMatrix, Tiling>& t) {
        return describe_case(std::get<0>(t), std::get<1>(t));
      });
}

// Empty-round semantics: rounds nobody recorded into reduce to NaN in
// every series, on both backends, whatever else the matrix holds.
PROP_TEST_WITH_PARAMS(PropPartials, EmptyRoundsReduceToNaN, 500) {
  prop.check(
      pgen::tuple_of(sample_matrix(kRuns, kRounds),
                     pgen::size_range(0, kRounds - 1),
                     pgen::boolean()),
      [](const std::tuple<SampleMatrix, std::size_t, bool>& t) {
        auto [samples, hole, streaming] = t;
        for (auto& run : samples) run[hole].clear();
        auto acc = make_accumulator(
            streaming ? AggBackend::Streaming : AggBackend::Exact, kRounds);
        record_runs(*acc, samples, 0, kRuns);
        if (!acc->empty_round(hole))
          return Verdict{false, "cleared round not reported empty"};
        if (!std::isnan(acc->mean_series()[hole]))
          return Verdict{false, "mean of an empty round is not NaN"};
        if (!std::isnan(acc->trimmed_mean_series(0.2)[hole]))
          return Verdict{false, "trimmed mean of an empty round is not NaN"};
        if (!std::isnan(acc->percentile_series(50.0)[hole]))
          return Verdict{false, "median of an empty round is not NaN"};
        return Verdict{};
      });
}

// Serialization is lossless for both backends: accumulator -> JSON ->
// text -> JSON -> accumulator -> JSON is byte-stable.
PROP_TEST_WITH_PARAMS(PropPartials, AccumulatorJsonRoundTrips, 500) {
  prop.check(
      pgen::tuple_of(sample_matrix(kRuns, kRounds), pgen::boolean()),
      [](const std::tuple<SampleMatrix, bool>& t) {
        const auto& [samples, streaming] = t;
        auto acc = make_accumulator(
            streaming ? AggBackend::Streaming : AggBackend::Exact, kRounds);
        record_runs(*acc, samples, 0, kRuns);
        const std::string text = acc->to_json().dump();
        const std::unique_ptr<RoundAccumulator> back =
            roleshare::sim::accumulator_from_json(
                roleshare::util::json::parse(text));
        if (back->backend() != acc->backend())
          return Verdict{false, "backend changed across round-trip"};
        const std::string again = back->to_json().dump();
        if (again != text)
          return Verdict{false, "serialization not a fixpoint:\n  " + text +
                                    "\n  " + again};
        return Verdict{};
      });
}

// End-to-end: a real Fig-3 experiment executed as a random contiguous
// tiling of run shards, merged in order, is byte-identical (exact
// backend) to the single-process execution. Much heavier than the
// accumulator-level properties, so the default count stays small; the
// nightly ROLESHARE_PROP_SCALE sweep multiplies it.
PROP_TEST_WITH_PARAMS(PropPartials, DefectionExperimentShardsMergeExactly, 5) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::shard_tiling(4),
                     pgen::int_range(1, 1'000'000),      // network seed
                     pgen::real_range(0.0, 0.3)),        // defection rate
      [](const std::tuple<Tiling, std::int64_t, double>& t) {
        const auto& [tiling, seed, rate] = t;
        roleshare::sim::DefectionExperimentConfig config;
        config.network.node_count = 40;
        config.network.seed = static_cast<std::uint64_t>(seed);
        config.network.defection_rate = rate;
        config.runs = 4;
        config.rounds = 2;
        config.agg = AggBackend::Exact;

        auto whole = config;
        whole.shard = roleshare::sim::RunShard{0, config.runs};
        const auto single = roleshare::sim::run_defection_partial(whole);

        auto shard_config = config;
        shard_config.shard =
            roleshare::sim::RunShard{tiling[0].first, tiling[0].second};
        auto merged = roleshare::sim::run_defection_partial(shard_config);
        for (std::size_t i = 1; i < tiling.size(); ++i) {
          shard_config.shard =
              roleshare::sim::RunShard{tiling[i].first, tiling[i].second};
          merged.merge(roleshare::sim::run_defection_partial(shard_config));
        }

        const std::string a = single.to_json().dump();
        const std::string b = merged.to_json().dump();
        if (a != b)
          return Verdict{false, "sharded execution diverged from "
                                "single-process (exact backend)"};
        return Verdict{};
      });
}
