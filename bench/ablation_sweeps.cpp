// Ablations for the design choices DESIGN.md calls out:
//  A) committee size (expected step stake tau) vs resilience to defection
//     — the quorum-variance / committee-coverage trade-off behind
//     ConsensusParams::scaled_for;
//  B) gossip fan-out vs defection resilience — why the paper's fan-out of
//     5 suffices under cooperation but amplifies defection damage;
//  C) step threshold T vs liveness at fixed defection.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/round_engine.hpp"

using namespace roleshare;

namespace {

std::size_t g_threads = 1;  // --threads knob, shared by every cell

struct Cell {
  double final_pct = 0;
  double none_pct = 0;
};

Cell run_cell(std::size_t nodes, std::size_t fan_out, double defection,
              std::uint64_t tau_step, double threshold, std::size_t rounds,
              std::uint64_t seed) {
  constexpr std::size_t kSeeds = 4;  // average out run-to-run variance
  const sim::ExperimentSpec spec{kSeeds, rounds, seed, g_threads};
  Cell cell;
  sim::run_and_reduce(
      spec,
      [&](std::size_t, util::Rng& rng) {
        sim::NetworkConfig config;
        config.node_count = nodes;
        config.seed = rng.seed_material();
        config.fan_out = fan_out;
        config.defection_rate = defection;
        sim::Network net(config);

        consensus::ConsensusParams params =
            consensus::ConsensusParams::scaled_for(
                net.accounts().total_stake());
        if (tau_step != 0) {
          params.expected_step_stake = tau_step;
          params.expected_final_stake = tau_step * 2;
        }
        if (threshold > 0) params.step_threshold = threshold;

        sim::RoundEngine engine(net, params);
        Cell partial;
        for (std::size_t r = 0; r < rounds; ++r) {
          const sim::RoundResult result = engine.run_round();
          partial.final_pct += result.final_fraction * 100;
          partial.none_pct += result.none_fraction * 100;
        }
        return partial;
      },
      [&](std::size_t, Cell partial) {
        cell.final_pct += partial.final_pct;
        cell.none_pct += partial.none_pct;
      });
  cell.final_pct /= static_cast<double>(rounds * kSeeds);
  cell.none_pct /= static_cast<double>(rounds * kSeeds);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 250));
  const auto rounds = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "rounds", 8));
  g_threads = bench::arg_threads(argc, argv);

  bench::print_header("Ablations", "committee size, fan-out, threshold");
  std::printf("nodes=%zu rounds=%zu threads=%zu stakes=U(1,50)\n", nodes,
              rounds, g_threads);
  const bench::WallTimer timer;

  std::printf("\n--- A) expected step-committee stake (tau) vs defection ---\n");
  std::printf("%8s", "tau\\def");
  for (const double d : {0.0, 0.10, 0.20}) std::printf("   %5.0f%%  ", d * 100);
  std::printf("   (mean final%%)\n");
  for (const std::uint64_t tau : {10ull, 20ull, 40ull, 80ull, 160ull}) {
    std::printf("%8llu", static_cast<unsigned long long>(tau));
    for (const double d : {0.0, 0.10, 0.20}) {
      const Cell c = run_cell(nodes, 5, d, tau, 0, rounds, 11 + tau);
      std::printf("   %7.1f ", c.final_pct);
    }
    std::printf("\n");
  }
  std::printf("Trade-off: tiny committees miss quorums even without\n"
              "defection (variance); larger ones tolerate more defection\n"
              "but recruit most of the network (no Others left).\n");

  std::printf("\n--- B) gossip fan-out vs defection ---\n");
  std::printf("%8s", "k\\def");
  for (const double d : {0.0, 0.15, 0.30}) std::printf("   %5.0f%%  ", d * 100);
  std::printf("   (mean final%%)\n");
  for (const std::size_t k : {2u, 3u, 5u, 8u, 12u}) {
    std::printf("%8zu", k);
    for (const double d : {0.0, 0.15, 0.30}) {
      const Cell c = run_cell(nodes, k, d, 0, 0, rounds, 23 + k);
      std::printf("   %7.1f ", c.final_pct);
    }
    std::printf("\n");
  }
  std::printf("Higher fan-out buys redundancy against non-relaying\n"
              "defectors at the price of message load.\n");

  std::printf("\n--- C) step threshold T vs liveness at 15%% defection ---\n");
  std::printf("%8s %14s %12s\n", "T", "mean final%", "mean none%");
  for (const double t : {0.55, 0.60, 0.685, 0.80, 0.90}) {
    const Cell c = run_cell(nodes, 5, 0.15, 0, t, rounds, 31);
    std::printf("%8.3f %14.1f %12.1f\n", t, c.final_pct, c.none_pct);
  }
  std::printf("Algorand's T=0.685 balances safety margin against liveness\n"
              "under partial defection; higher T starves quorums.\n");

  bench::emit_json("ablation_sweeps",
                   {{"nodes", static_cast<double>(nodes)},
                    {"rounds", static_cast<double>(rounds)},
                    {"threads", static_cast<double>(g_threads)},
                    {"wall_ms", timer.elapsed_ms()}});
  return 0;
}
