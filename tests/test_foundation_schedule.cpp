#include "econ/foundation_schedule.hpp"

#include <gtest/gtest.h>

namespace roleshare::econ {
namespace {

using ledger::algos;

TEST(Schedule, TableThreeValues) {
  // Table III: 10, 13, 16, 19, 22, 25, 28, 31, 34, 36, 38, 38 M Algos.
  const std::array<std::uint64_t, 12> expected = {10, 13, 16, 19, 22, 25,
                                                  28, 31, 34, 36, 38, 38};
  for (std::size_t p = 1; p <= 12; ++p) {
    EXPECT_EQ(FoundationSchedule::period_total(p),
              algos(static_cast<std::int64_t>(expected[p - 1]) * 1'000'000))
        << "period " << p;
  }
}

TEST(Schedule, PeriodBoundaries) {
  EXPECT_EQ(FoundationSchedule::period_for_round(1), 1u);
  EXPECT_EQ(FoundationSchedule::period_for_round(500'000), 1u);
  EXPECT_EQ(FoundationSchedule::period_for_round(500'001), 2u);
  EXPECT_EQ(FoundationSchedule::period_for_round(1'000'000), 2u);
  EXPECT_EQ(FoundationSchedule::period_for_round(6'000'000), 12u);
}

TEST(Schedule, FlatTailAfterPeriodTwelve) {
  EXPECT_EQ(FoundationSchedule::period_for_round(6'000'001), 12u);
  EXPECT_EQ(FoundationSchedule::period_for_round(100'000'000), 12u);
  EXPECT_EQ(FoundationSchedule::reward_for_round(100'000'000),
            FoundationSchedule::reward_for_round(6'000'000));
}

TEST(Schedule, PerRoundRewardPeriodOneIsTwentyAlgos) {
  // 10M Algos / 500k blocks = 20 Algos per round (paper §III-B).
  EXPECT_EQ(FoundationSchedule::reward_for_round(1), algos(20));
  EXPECT_EQ(FoundationSchedule::reward_for_round(499'999), algos(20));
}

TEST(Schedule, PerRoundRewardIsNondecreasing) {
  ledger::MicroAlgos prev = 0;
  for (std::size_t p = 1; p <= 12; ++p) {
    const ledger::Round round = (p - 1) * 500'000 + 1;
    const auto r = FoundationSchedule::reward_for_round(round);
    EXPECT_GE(r, prev) << "period " << p;
    prev = r;
  }
}

TEST(Schedule, CumulativeAcrossPeriodBoundary) {
  // Through round 500,001: all of period 1 (10M) + one round of period 2.
  const auto cumulative = FoundationSchedule::cumulative_through(500'001);
  EXPECT_EQ(cumulative,
            algos(10'000'000) + FoundationSchedule::reward_for_round(500'001));
}

TEST(Schedule, CumulativeWholeScheduleBelowPoolCeiling) {
  // Total projected emission over 12 periods: 310M Algos (the Table-III
  // row sums to 310), well inside the 1.75B ceiling.
  const auto total = FoundationSchedule::cumulative_through(6'000'000);
  EXPECT_EQ(total, algos(310'000'000));
  EXPECT_LT(total, algos(1'750'000'000));
}

TEST(Schedule, RejectsRoundZero) {
  EXPECT_THROW(FoundationSchedule::period_for_round(0),
               std::invalid_argument);
  EXPECT_THROW(FoundationSchedule::cumulative_through(0),
               std::invalid_argument);
}

TEST(Schedule, RejectsBadPeriod) {
  EXPECT_THROW(FoundationSchedule::period_total(0), std::invalid_argument);
  EXPECT_THROW(FoundationSchedule::period_total(13), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::econ
