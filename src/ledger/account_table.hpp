// Account and stake bookkeeping.
//
// One account per network node. Balances are µAlgos; the stake used for
// sortition and reward proportionality is the whole-Algo part of the
// balance, matching the paper's whole-Algo stake vectors.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/keypair.hpp"
#include "ledger/transaction.hpp"
#include "ledger/types.hpp"

namespace roleshare::ledger {

struct Account {
  NodeId id = 0;
  crypto::PublicKey key;
  MicroAlgos balance = 0;

  /// Stake in whole Algos (floor of balance).
  std::int64_t stake_algos() const { return balance / kMicroPerAlgo; }
};

class AccountTable {
 public:
  /// Registers an account with the given starting balance. The public key
  /// must be unique. Returns the assigned node id (dense, starting at 0).
  NodeId add_account(const crypto::PublicKey& key, MicroAlgos balance);

  std::size_t size() const { return accounts_.size(); }
  const Account& account(NodeId id) const;
  std::optional<NodeId> find(const crypto::PublicKey& key) const;

  MicroAlgos balance(NodeId id) const { return account(id).balance; }
  std::int64_t stake(NodeId id) const { return account(id).stake_algos(); }

  /// Sum of all whole-Algo stakes (S_N of the paper).
  std::int64_t total_stake() const;

  /// Snapshot of all stakes, indexed by node id.
  std::vector<std::int64_t> stakes() const;

  /// Same snapshot written into a reused vector (capacity kept).
  void stakes_into(std::vector<std::int64_t>& out) const;

  /// Credits a reward (µAlgos >= 0).
  void credit(NodeId id, MicroAlgos amount);

  /// Validates a transaction against current balances: signature, known
  /// sender/receiver, and sender balance >= amount + fee.
  bool validate(const Transaction& txn) const;

  /// Applies a validated transaction; returns false (no state change) if
  /// validation fails. The fee is *removed* from circulation here and must
  /// be forwarded to the fee pool by the caller.
  bool apply(const Transaction& txn);

 private:
  std::vector<Account> accounts_;
  std::unordered_map<crypto::Hash256, NodeId, crypto::Hash256Hasher>
      by_key_;
};

}  // namespace roleshare::ledger
