// Incentive loop: the paper's thesis in one experiment. Networks of fully
// rational nodes play myopic best responses round after round:
//  * under the Foundation's stake-proportional rewards, cooperation
//    unravels (Theorem 2) and consensus collapses with it (Fig 3);
//  * under the role-based scheme with Algorithm-1 rewards, cooperation is
//    self-enforcing (Theorem 3) — at a fraction of the cost.
//
//   $ ./incentive_loop [--runs=3] [--rounds=12] [--threads=1] \
//                      [--inner-threads=1]
//
// A Monte-Carlo ensemble of independent loops on the shared
// ExperimentRunner engine; --threads=N fans the runs out across cores,
// --inner-threads=N instead parallelizes each run's per-node loops (round
// engine + best-response sweep). Both keep aggregates bit-identical.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/strategic_loop.hpp"

using namespace roleshare;

namespace {

void run_and_print(const char* title, sim::SchemeChoice scheme,
                   std::size_t runs, std::size_t rounds, std::size_t threads,
                   std::size_t inner_threads) {
  sim::StrategicEnsembleConfig config;
  config.base.network.node_count = 150;
  config.base.network.seed = 99;
  config.base.rounds = rounds;
  config.base.scheme = scheme;
  config.runs = runs;
  config.threads = threads;
  config.inner_threads = inner_threads;

  const sim::StrategicEnsembleResult result =
      sim::run_strategic_ensemble(config);
  std::printf("\n== %s ==\n", title);
  std::printf("%6s %14s %10s %14s\n", "round", "cooperating%", "final%",
              "reward(Algos)");
  for (std::size_t r = 0; r < rounds; ++r) {
    std::printf("%6zu %14.1f %10.1f %14.4f\n", r + 1,
                result.cooperation_series[r] * 100,
                result.final_series[r] * 100, result.reward_series[r]);
  }
  std::printf("mean total paid: %.4f Algos | cooperation at horizon: "
              "%.0f%%\n",
              result.mean_total_reward_algos,
              result.mean_final_cooperation * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 3));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 12));
  const std::size_t threads = bench::arg_threads(argc, argv);
  const std::size_t inner_threads = bench::arg_inner_threads(argc, argv);

  std::printf("150 rational nodes, stakes U(1,50), myopic best-response\n"
              "updates between rounds; everyone starts cooperative.\n"
              "%zu independent runs per scheme (threads=%zu, "
              "inner-threads=%zu).\n",
              runs, threads, inner_threads);

  run_and_print("Foundation stake-proportional rewards (Eq 3)",
                sim::SchemeChoice::FoundationStakeProportional, runs, rounds,
                threads, inner_threads);
  run_and_print("Role-based rewards + Algorithm 1 (Eq 5)",
                sim::SchemeChoice::RoleBasedAdaptive, runs, rounds, threads,
                inner_threads);

  std::printf("\nReading: the Foundation pays 20 Algos per round and still\n"
              "loses the network; the role-based mechanism pays orders of\n"
              "magnitude less and keeps every role incentive-compatible.\n");
  return 0;
}
