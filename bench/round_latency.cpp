// P1 — single-run round-engine latency: the within-run parallelism bench.
//
// Unlike the figure benches (many runs fanned out with --threads), this
// measures what the inner executor buys on ONE run at paper-scale node
// counts: the same network simulated for --rounds rounds, once with the
// per-node loops serial (inner-threads=1) and once across the inner pool
// (--inner-threads, default 0 = all hardware threads). The two passes must
// produce bit-identical per-round results — the determinism contract —
// and the JSON records both wall times plus the speedup for the perf
// trajectory. On a 4+-core machine at >=100k nodes the expected speedup
// is >1.5x (sortition VRFs, vote verification, per-node tallies and the
// gossip fan-out all scale; the serial remainder is the committee scan and
// chain append).
//
// The serial pass runs on a reused RoundWorkspace with the global
// allocation counter bracketing each round, so the JSON also tracks heap
// allocations per steady-state round — the reusable-workspace contract's
// regression gate — plus the workspace's resident capacity.
//
// --sparse=1 switches to the CommitteeModel::Sampled comparison
// (DESIGN.md §10): the sparse O(committee · log N) path vs the dense
// Sampled evaluation of the same rounds, both compounding role rewards
// into stake every round so the stake index absorbs real deltas. The
// sparse pass reports allocations per round (gated by --self-check
// against the sparse-touch contract: nothing beyond the chain append and
// the proposal transaction lists), the sparse workspace + context bytes,
// and per-node peak RSS; --sparse --sweep runs the 100k/1M ladder whose
// ms/round ratio is the sublinearity evidence.
//
//   $ ./round_latency --nodes=100000 --rounds=3 --inner-threads=0
//   $ ./round_latency --sweep=1 --rounds=3        # 1000/3000/10000 nodes
//   $ ./round_latency --nodes=3000 --self-check=1 # CI determinism gate
//   $ ./round_latency --sparse=1 --sweep=1        # 100k/1M sparse ladder
//   $ ./round_latency --sparse=1 --nodes=3000 --self-check=1  # alloc gate
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "econ/foundation_schedule.hpp"
#include "econ/sparse_payout.hpp"
#include "sim/aggregators.hpp"
#include "sim/round_engine.hpp"
#include "sim/sampled_round.hpp"
#include "util/thread_pool.hpp"

using namespace roleshare;

namespace {

struct PassResult {
  std::vector<double> final_fractions;
  std::vector<double> none_fractions;
  /// Full per-node outcome vectors and proposal counts, kept so the
  /// determinism gate compares the complete round result, not just the
  /// derived fractions.
  std::vector<std::vector<sim::NodeOutcome>> outcomes;
  std::vector<std::size_t> proposals;
  /// Heap allocations performed inside each run_round_into call.
  std::vector<std::uint64_t> allocs_per_round;
  /// Bytes reserved across the workspace's buffers after the last round.
  std::size_t workspace_bytes = 0;
  double wall_ms = 0.0;

  double ms_per_round() const {
    return allocs_per_round.empty()
               ? 0.0
               : wall_ms / static_cast<double>(allocs_per_round.size());
  }
  double rounds_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 *
                               static_cast<double>(allocs_per_round.size()) /
                               wall_ms
                         : 0.0;
  }
  /// Steady-state allocations: the minimum over rounds after the first
  /// (the first round grows every buffer to its high-water mark).
  std::uint64_t steady_allocs() const {
    if (allocs_per_round.empty()) return 0;
    std::uint64_t best = allocs_per_round.back();
    for (std::size_t r = 1; r < allocs_per_round.size(); ++r)
      best = std::min(best, allocs_per_round[r]);
    return best;
  }
};

PassResult run_pass(std::size_t nodes, std::size_t rounds,
                    std::uint64_t seed, double defection_rate,
                    std::size_t inner_threads) {
  sim::NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  sim::Network net(config);

  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  sim::RoundEngine engine(net,
                          consensus::ConsensusParams::scaled_for(
                              net.accounts().total_stake()),
                          pool ? &*pool : nullptr);

  PassResult pass;
  sim::RoundWorkspace ws;
  sim::RoundResult result;
  const bench::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t allocs_before = bench::alloc_count();
    engine.run_round_into(result, ws);
    pass.allocs_per_round.push_back(bench::alloc_count() - allocs_before);
    pass.final_fractions.push_back(result.final_fraction);
    pass.none_fractions.push_back(result.none_fraction);
    pass.outcomes.push_back(result.outcomes);
    pass.proposals.push_back(result.proposals);
  }
  pass.wall_ms = timer.elapsed_ms();
  pass.workspace_bytes = ws.capacity_bytes();
  return pass;
}

/// The determinism gate: the parallel pass must reproduce the serial pass
/// bit for bit — per-node outcomes and proposal counts included, not just
/// the derived fractions — or the speedup is meaningless.
bool passes_identical(const PassResult& serial, const PassResult& parallel) {
  return serial.final_fractions == parallel.final_fractions &&
         serial.none_fractions == parallel.none_fractions &&
         serial.proposals == parallel.proposals &&
         serial.outcomes == parallel.outcomes;
}

struct Measurement {
  PassResult serial;
  PassResult parallel;
  bool identical = false;
  double speedup = 0.0;
};

/// One serial + parallel measurement at a node count; appends the fields
/// under `prefix` to the BENCH JSON.
Measurement measure_size(std::size_t nodes, std::size_t rounds,
                         std::uint64_t seed, std::size_t inner_threads,
                         std::size_t workers, const std::string& prefix,
                         bench::JsonFields& fields) {
  Measurement m;
  std::printf("\nserial pass (%zu nodes, inner-threads=1)...\n", nodes);
  m.serial = run_pass(nodes, rounds, seed, 0.05, 1);
  std::printf("  wall: %.0f ms (%.1f ms/round, %.2f rounds/s)\n",
              m.serial.wall_ms, m.serial.ms_per_round(),
              m.serial.rounds_per_sec());
  std::printf("  allocations/round: first %llu, steady %llu | "
              "workspace %.1f KiB\n",
              static_cast<unsigned long long>(
                  m.serial.allocs_per_round.front()),
              static_cast<unsigned long long>(m.serial.steady_allocs()),
              static_cast<double>(m.serial.workspace_bytes) / 1024.0);

  std::printf("parallel pass (%zu workers)...\n", workers);
  m.parallel = run_pass(nodes, rounds, seed, 0.05, inner_threads);
  std::printf("  wall: %.0f ms (%.1f ms/round, %.2f rounds/s)\n",
              m.parallel.wall_ms, m.parallel.ms_per_round(),
              m.parallel.rounds_per_sec());

  m.identical = passes_identical(m.serial, m.parallel);
  m.speedup = m.parallel.wall_ms > 0.0
                  ? m.serial.wall_ms / m.parallel.wall_ms
                  : 0.0;
  std::printf("bit-identical results: %s | speedup: %.2fx\n",
              m.identical ? "yes" : "NO — BUG", m.speedup);

  fields.emplace_back(prefix + "wall_ms_serial", m.serial.wall_ms);
  fields.emplace_back(prefix + "wall_ms_parallel", m.parallel.wall_ms);
  fields.emplace_back(prefix + "ms_per_round_serial",
                      m.serial.ms_per_round());
  fields.emplace_back(prefix + "rounds_per_sec_serial",
                      m.serial.rounds_per_sec());
  fields.emplace_back(prefix + "rounds_per_sec_parallel",
                      m.parallel.rounds_per_sec());
  fields.emplace_back(prefix + "speedup", m.speedup);
  fields.emplace_back(prefix + "allocs_per_round_first",
                      m.serial.allocs_per_round.front());
  fields.emplace_back(prefix + "allocs_per_round_steady",
                      m.serial.steady_allocs());
  fields.emplace_back(prefix + "workspace_bytes", m.serial.workspace_bytes);
  fields.emplace_back(prefix + "bit_identical",
                      m.identical ? "yes" : "no");
  return m;
}

// ---- Sampled-model comparison (--sparse) --------------------------------

/// The sparse-touch allocation contract (DESIGN.md §10): a steady-state
/// sparse round may allocate only for the chain append and the proposal
/// transaction lists — a handful per round, independent of N. The gate
/// leaves headroom over the measured ~6 so stdlib differences don't trip
/// it while an O(committee) or O(N) allocation regression still does.
constexpr std::uint64_t kSparseSteadyAllocGate = 64;

/// One pass over the Sampled round model, dense or sparse evaluation,
/// with the fixed-split role payouts compounded into stake every round —
/// the long-horizon workload, so the sparse pass exercises the O(log N)
/// stake-index deltas and not just static elections.
struct SparsePassResult {
  std::vector<double> final_fractions;
  std::vector<std::size_t> proposals;
  std::vector<std::uint64_t> allocs_per_round;
  std::size_t workspace_bytes = 0;
  /// Mean touched-set size (sparse pass only): the committee-neighborhood
  /// node count a round actually visits.
  double touched_mean = 0.0;
  crypto::Hash256 tip{};
  double wall_ms = 0.0;

  double ms_per_round() const {
    return allocs_per_round.empty()
               ? 0.0
               : wall_ms / static_cast<double>(allocs_per_round.size());
  }
  std::uint64_t steady_allocs() const {
    if (allocs_per_round.empty()) return 0;
    std::uint64_t best = allocs_per_round.back();
    for (std::size_t r = 1; r < allocs_per_round.size(); ++r)
      best = std::min(best, allocs_per_round[r]);
    return best;
  }
};

sim::Network make_sampled_net(std::size_t nodes, std::uint64_t seed,
                              double defection_rate) {
  sim::NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  return sim::Network(config);
}

consensus::ConsensusParams sampled_params(const sim::Network& net) {
  consensus::ConsensusParams params =
      consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
  params.committee_model = consensus::CommitteeModel::Sampled;
  return params;
}

/// Credits the round's fixed-split role payouts (Foundation budget,
/// α = β = 0.30) from the touched-set spans and reports each credited
/// node through `on_credit`. Shared by the sparse and dense passes so
/// both compound the exact same µAlgos and stay bit-identical.
template <typename OnCredit>
void compound_payouts(sim::Network& net, ledger::Round round,
                      const std::vector<ledger::NodeId>& ids,
                      const std::vector<consensus::Role>& roles,
                      const std::vector<std::int64_t>& stakes,
                      std::int64_t online_stake,
                      std::vector<ledger::MicroAlgos>& amounts,
                      OnCredit&& on_credit) {
  const econ::RewardSplit split(0.30, 0.30);
  const ledger::MicroAlgos budget = econ::FoundationSchedule::reward_for_round(
      std::max<ledger::Round>(round, 1));
  amounts.assign(ids.size(), 0);
  econ::distribute_touched(split, budget, roles, stakes, online_stake,
                           amounts);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (amounts[i] == 0) continue;
    net.accounts().credit(ids[i], amounts[i]);
    on_credit(ids[i]);
  }
}

/// The sparse evaluation: one O(N) context build, then every round is
/// O(committee · log N) — elections off the incremental stake index,
/// payout deltas folded back via refresh_node. The allocation counter
/// brackets run_round_sparse_into only; the payout loop reuses its
/// buffers and allocates nothing once warm.
SparsePassResult run_sparse_pass(std::size_t nodes, std::size_t rounds,
                                 std::uint64_t seed, double defection_rate) {
  sim::Network net = make_sampled_net(nodes, seed, defection_rate);
  sim::RoundEngine engine(net, sampled_params(net));

  sim::SparseRoundContext ctx;
  ctx.init_from(net);
  sim::SparseRoundWorkspace ws;
  sim::SparseRoundResult sparse;

  std::vector<ledger::NodeId> ids;
  std::vector<consensus::Role> roles;
  std::vector<std::int64_t> stakes;
  std::vector<ledger::MicroAlgos> amounts;

  SparsePassResult pass;
  std::size_t touched_total = 0;
  const bench::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t allocs_before = bench::alloc_count();
    engine.run_round_sparse_into(sparse, ctx, ws);
    pass.allocs_per_round.push_back(bench::alloc_count() - allocs_before);
    pass.final_fractions.push_back(sparse.final_fraction);
    pass.proposals.push_back(sparse.proposals);
    touched_total += sparse.touched.size();

    ids.clear();
    roles.clear();
    stakes.clear();
    for (const sim::SparseNodeRole& t : sparse.touched) {
      ids.push_back(t.node);
      roles.push_back(t.role_observed);
      stakes.push_back(t.reward_stake);
    }
    compound_payouts(net, sparse.round, ids, roles, stakes,
                     sparse.online_stake, amounts,
                     [&](ledger::NodeId v) { ctx.refresh_node(net, v); });
  }
  pass.wall_ms = timer.elapsed_ms();
  pass.workspace_bytes = ws.capacity_bytes();
  pass.touched_mean = rounds == 0 ? 0.0
                                  : static_cast<double>(touched_total) /
                                        static_cast<double>(rounds);
  pass.tip = net.chain().tip().hash();
  return pass;
}

/// The dense evaluation of the same Sampled rounds: run_round_into
/// rebuilds the stake index and materializes full per-node vectors each
/// round (O(N)), and the payout gather walks the full role snapshot. By
/// the sparse-payout contract the credited set and amounts match the
/// sparse pass exactly, so the two chains stay bit-identical.
SparsePassResult run_dense_sampled_pass(std::size_t nodes, std::size_t rounds,
                                        std::uint64_t seed,
                                        double defection_rate) {
  sim::Network net = make_sampled_net(nodes, seed, defection_rate);
  sim::RoundEngine engine(net, sampled_params(net));

  sim::RoundWorkspace ws;
  sim::RoundResult result;
  std::vector<ledger::NodeId> ids;
  std::vector<consensus::Role> roles;
  std::vector<std::int64_t> stakes;
  std::vector<ledger::MicroAlgos> amounts;

  SparsePassResult pass;
  const bench::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t allocs_before = bench::alloc_count();
    engine.run_round_into(result, ws);
    pass.allocs_per_round.push_back(bench::alloc_count() - allocs_before);
    pass.final_fractions.push_back(result.final_fraction);
    pass.proposals.push_back(result.proposals);

    const econ::RoleSnapshot& snapshot = *result.roles;
    ids.clear();
    roles.clear();
    stakes.clear();
    for (std::size_t v = 0; v < snapshot.node_count(); ++v) {
      const consensus::Role role =
          snapshot.role(static_cast<ledger::NodeId>(v));
      if (role == consensus::Role::Other) continue;
      ids.push_back(static_cast<ledger::NodeId>(v));
      roles.push_back(role);
      stakes.push_back(snapshot.stake(static_cast<ledger::NodeId>(v)));
    }
    compound_payouts(net, result.round, ids, roles, stakes,
                     snapshot.total_stake(), amounts, [](ledger::NodeId) {});
  }
  pass.wall_ms = timer.elapsed_ms();
  pass.workspace_bytes = ws.capacity_bytes();
  pass.tip = net.chain().tip().hash();
  return pass;
}

struct SparseMeasurement {
  SparsePassResult sparse;
  SparsePassResult dense;
  bool identical = false;
  double speedup = 0.0;
};

/// One sparse + dense-reference measurement at a node count. The dense
/// pass may run fewer rounds (it is the O(N) path being amortized away);
/// identity is then checked over the common prefix and the tip hashes are
/// only compared on equal-length chains.
SparseMeasurement measure_sparse_size(std::size_t nodes,
                                      std::size_t sparse_rounds,
                                      std::size_t dense_rounds,
                                      std::uint64_t seed,
                                      const std::string& prefix,
                                      bench::JsonFields& fields) {
  SparseMeasurement m;
  std::printf("\nsparse pass (%zu nodes, %zu rounds, compounding)...\n",
              nodes, sparse_rounds);
  m.sparse = run_sparse_pass(nodes, sparse_rounds, seed, 0.05);
  std::printf("  wall: %.0f ms (%.3f ms/round) | touched/round: %.0f\n",
              m.sparse.wall_ms, m.sparse.ms_per_round(),
              m.sparse.touched_mean);
  std::printf("  allocations/round: first %llu, steady %llu | "
              "sparse workspace %.1f KiB\n",
              static_cast<unsigned long long>(
                  m.sparse.allocs_per_round.front()),
              static_cast<unsigned long long>(m.sparse.steady_allocs()),
              static_cast<double>(m.sparse.workspace_bytes) / 1024.0);

  std::printf("dense reference (%zu rounds)...\n", dense_rounds);
  m.dense = run_dense_sampled_pass(nodes, dense_rounds, seed, 0.05);
  std::printf("  wall: %.0f ms (%.2f ms/round)\n", m.dense.wall_ms,
              m.dense.ms_per_round());

  const std::size_t common = std::min(sparse_rounds, dense_rounds);
  m.identical =
      std::equal(m.dense.final_fractions.begin(),
                 m.dense.final_fractions.begin() + common,
                 m.sparse.final_fractions.begin()) &&
      std::equal(m.dense.proposals.begin(),
                 m.dense.proposals.begin() + common,
                 m.sparse.proposals.begin()) &&
      (sparse_rounds != dense_rounds || m.sparse.tip == m.dense.tip);
  m.speedup = m.sparse.ms_per_round() > 0.0
                  ? m.dense.ms_per_round() / m.sparse.ms_per_round()
                  : 0.0;
  std::printf("sparse == dense over %zu common rounds: %s | "
              "per-round speedup: %.1fx\n",
              common, m.identical ? "yes" : "NO — BUG", m.speedup);

  const double rss = bench::peak_rss_bytes();
  fields.emplace_back(prefix + "sparse_wall_ms", m.sparse.wall_ms);
  fields.emplace_back(prefix + "sparse_ms_per_round",
                      m.sparse.ms_per_round());
  fields.emplace_back(prefix + "sparse_rounds", sparse_rounds);
  fields.emplace_back(prefix + "dense_ms_per_round", m.dense.ms_per_round());
  fields.emplace_back(prefix + "dense_rounds", dense_rounds);
  fields.emplace_back(prefix + "sparse_speedup_vs_dense", m.speedup);
  fields.emplace_back(prefix + "sparse_allocs_per_round_first",
                      m.sparse.allocs_per_round.front());
  fields.emplace_back(prefix + "sparse_allocs_per_round_steady",
                      m.sparse.steady_allocs());
  fields.emplace_back(prefix + "sparse_workspace_bytes",
                      m.sparse.workspace_bytes);
  fields.emplace_back(prefix + "sparse_touched_mean", m.sparse.touched_mean);
  fields.emplace_back(prefix + "peak_rss_mb", rss / (1024.0 * 1024.0));
  fields.emplace_back(prefix + "rss_per_node_bytes",
                      rss / static_cast<double>(nodes));
  fields.emplace_back(prefix + "sparse_bit_identical",
                      m.identical ? "yes" : "no");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 100'000));
  const bool sparse = bench::arg_int(argc, argv, "sparse", 0) != 0;
  const bool sweep = bench::arg_int(argc, argv, "sweep", 0) != 0;
  // Sparse rounds are sub-millisecond, so the sparse default runs many
  // more of them for a stable ms/round reading; in a combined
  // --sweep --sparse run the dense ladder keeps the short default and
  // only the sparse ladder stretches.
  const long long rounds_arg = bench::arg_int(argc, argv, "rounds", -1);
  const auto rounds = static_cast<std::size_t>(
      rounds_arg >= 0 ? rounds_arg : (sparse && !sweep ? 256 : 3));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "seed", 404));
  // Unlike the figure benches, the parallel pass defaults to all hardware
  // threads — measuring the speedup is this binary's whole point.
  const auto inner_threads = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "inner-threads", 0));
  const bool self_check = bench::arg_int(argc, argv, "self-check", 0) != 0;
  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);

  bench::print_header("Round latency",
                      sparse ? "Sampled rounds, sparse vs dense evaluation"
                             : "single-run wall time, serial vs "
                               "inner-parallel");
  std::printf("nodes=%zu rounds=%zu defection=5%% inner-threads=%zu "
              "(%zu workers; override with --nodes/--rounds/"
              "--inner-threads; --sweep=1 for the node ladder; "
              "--sparse=1 for the Sampled sparse-vs-dense comparison; "
              "--self-check=1 for the CI gates)\n",
              nodes, rounds, inner_threads, workers);

  // The dense reference is the O(N) path being amortized away; a short
  // prefix is enough for a stable ms/round and the identity check.
  const auto dense_rounds = static_cast<std::size_t>(bench::arg_int(
      argc, argv, "dense-rounds",
      static_cast<long long>(std::min<std::size_t>(rounds, 8))));

  if (sparse && !sweep) {
    // Single-size sparse measurement — the CI alloc/identity gate shape:
    //   ./round_latency --sparse=1 --nodes=3000 --self-check=1
    bench::JsonFields fields{{"nodes", nodes},
                             {"rounds", rounds},
                             {"dense_rounds", dense_rounds},
                             {"sparse_alloc_gate", kSparseSteadyAllocGate}};
    const SparseMeasurement m = measure_sparse_size(
        nodes, rounds, dense_rounds, seed, "", fields);
    bench::emit_json("round_latency_sparse", fields);

    if (!m.identical) {
      std::fprintf(stderr,
                   "ERROR: sparse results diverged from the dense "
                   "Sampled evaluation\n");
      return 1;
    }
    if (self_check && m.sparse.steady_allocs() > kSparseSteadyAllocGate) {
      std::fprintf(stderr,
                   "ERROR: sparse steady-state allocations regressed: "
                   "%llu/round > gate %llu (contract: chain append + "
                   "proposal transaction lists only)\n",
                   static_cast<unsigned long long>(m.sparse.steady_allocs()),
                   static_cast<unsigned long long>(kSparseSteadyAllocGate));
      return 1;
    }
    if (self_check) {
      std::printf("\nself-check OK: sparse == dense and steady-state "
                  "allocations %llu/round within the gate (%llu)\n",
                  static_cast<unsigned long long>(m.sparse.steady_allocs()),
                  static_cast<unsigned long long>(kSparseSteadyAllocGate));
    }
    return 0;
  }

  if (sweep) {
    // Fixed size ladder for the perf trajectory: one BENCH file with the
    // per-size fields prefixed n<size>_, diffable by bench_compare.py.
    // --sparse=1 appends the population-scale sparse-vs-dense ladder to
    // the same document, so BENCH_round_latency.json carries both the
    // dense inner-parallel trajectory and the sparse sublinearity
    // evidence.
    const std::size_t sizes[] = {1000, 3000, 10000};
    bench::JsonFields fields{{"rounds", rounds}, {"workers", workers}};
    bool all_identical = true;
    double total_ms = 0.0;
    for (const std::size_t size : sizes) {
      const std::string prefix = "n" + std::to_string(size) + "_";
      const Measurement m = measure_size(size, rounds, seed, inner_threads,
                                         workers, prefix, fields);
      all_identical = all_identical && m.identical;
      total_ms += m.serial.wall_ms + m.parallel.wall_ms;
    }

    std::uint64_t worst_steady = 0;
    if (sparse) {
      // Sparse rounds are sub-millisecond; run enough for a stable
      // reading even when the dense ladder above used --rounds=3.
      const std::size_t sparse_rounds =
          rounds_arg >= 0 ? rounds : std::max<std::size_t>(rounds, 256);
      // Ascending so each size's peak-RSS snapshot is dominated by its
      // own footprint (getrusage peaks are monotone).
      const std::size_t sparse_sizes[] = {100'000, 1'000'000};
      double ms_100k = 0.0;
      double ratio_1m_vs_100k = 0.0;
      fields.emplace_back("sparse_rounds", sparse_rounds);
      fields.emplace_back("sparse_alloc_gate", kSparseSteadyAllocGate);
      for (const std::size_t size : sparse_sizes) {
        const std::string prefix = "n" + std::to_string(size) + "_";
        const SparseMeasurement m = measure_sparse_size(
            size, sparse_rounds, dense_rounds, seed, prefix, fields);
        all_identical = all_identical && m.identical;
        worst_steady = std::max(worst_steady, m.sparse.steady_allocs());
        total_ms += m.sparse.wall_ms + m.dense.wall_ms;
        if (size == 100'000) ms_100k = m.sparse.ms_per_round();
        if (size == 1'000'000 && ms_100k > 0.0)
          ratio_1m_vs_100k = m.sparse.ms_per_round() / ms_100k;
      }
      fields.emplace_back("sparse_ms_ratio_1m_vs_100k", ratio_1m_vs_100k);
      std::printf("\nsublinearity: 1M-node sparse ms/round is %.2fx the "
                  "100k-node cost (3x budget at fixed committee size)\n",
                  ratio_1m_vs_100k);
    }

    fields.emplace_back("wall_ms", total_ms);
    bench::emit_json("round_latency", fields);
    if (!all_identical) {
      std::fprintf(stderr, "ERROR: results diverged across evaluations\n");
      return 1;
    }
    if (self_check && sparse && worst_steady > kSparseSteadyAllocGate) {
      std::fprintf(stderr,
                   "ERROR: sparse steady-state allocations regressed: "
                   "%llu/round > gate %llu\n",
                   static_cast<unsigned long long>(worst_steady),
                   static_cast<unsigned long long>(kSparseSteadyAllocGate));
      return 1;
    }
    return 0;
  }

  bench::JsonFields fields{{"nodes", nodes},
                           {"rounds", rounds},
                           {"inner_threads", inner_threads},
                           {"workers", workers}};
  const Measurement m = measure_size(nodes, rounds, seed, inner_threads,
                                     workers, "", fields);

  if (!self_check) {
    // Accumulator memory story at this node count: record every per-node
    // outcome of the serial pass into both reduction backends. The exact
    // matrix grows with nodes x rounds; the streaming sketch must stay at
    // O(rounds) — the state a paper-scale sharded sweep ships per shard.
    const auto exact = sim::make_accumulator(sim::AggBackend::Exact, rounds);
    const auto streaming =
        sim::make_accumulator(sim::AggBackend::Streaming, rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const sim::NodeOutcome outcome : m.serial.outcomes[r]) {
        const double sample = static_cast<double>(outcome);
        exact->record(r, sample);
        streaming->record(r, sample);
      }
    }
    const double mem_ratio =
        static_cast<double>(exact->memory_bytes()) /
        static_cast<double>(streaming->memory_bytes());
    std::printf("accumulator memory (%zu samples/round): exact %.1f KiB, "
                "streaming %.1f KiB (%.1fx smaller)\n",
                nodes, static_cast<double>(exact->memory_bytes()) / 1024.0,
                static_cast<double>(streaming->memory_bytes()) / 1024.0,
                mem_ratio);
    fields.emplace_back("exact_accum_bytes", exact->memory_bytes());
    fields.emplace_back("streaming_accum_bytes", streaming->memory_bytes());
    fields.emplace_back("accum_memory_ratio", mem_ratio);
  }
  fields.emplace_back("wall_ms", m.serial.wall_ms + m.parallel.wall_ms);
  bench::emit_json("round_latency", fields);

  if (!m.identical) {
    std::fprintf(stderr,
                 "ERROR: inner-parallel results diverged from serial\n");
    return 1;
  }
  if (self_check) {
    std::printf("\nself-check OK: serial and inner-parallel rounds are "
                "bit-identical\n");
  } else {
    std::printf("\nShape check: speedup > 1.5x expected at >=100k nodes on\n"
                "4+ cores; ~1.0x on a single-core machine is normal.\n");
  }
  return 0;
}
