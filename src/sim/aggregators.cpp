#include "sim/aggregators.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {

namespace {

/// The deterministic reduction of a round nobody recorded a sample for.
constexpr double empty_round_value() {
  return std::numeric_limits<double>::quiet_NaN();
}

/// Root of the streaming backend's private reservoir streams: round r's
/// reservoir is seeded with Rng(kReservoirSeedRoot).derive_seed(r), so
/// every StreamingAccumulator of the same shape replaces samples
/// identically — determinism across processes and shards.
constexpr std::uint64_t kReservoirSeedRoot = 0x5ee4ac0c0de5eedULL;

std::uint64_t reservoir_seed_for_round(std::size_t round_index) {
  return util::Rng(kReservoirSeedRoot).derive_seed(round_index);
}

}  // namespace

PerRoundSamples::PerRoundSamples(std::size_t rounds) : samples_(rounds) {
  RS_REQUIRE(rounds > 0, "aggregator needs at least one round");
}

std::size_t PerRoundSamples::count(std::size_t round_index) const {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  return samples_[round_index].size();
}

bool PerRoundSamples::empty_round(std::size_t round_index) const {
  return count(round_index) == 0;
}

const std::vector<double>& PerRoundSamples::samples(
    std::size_t round_index) const {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  return samples_[round_index];
}

void PerRoundSamples::record(std::size_t round_index, double value) {
  RS_REQUIRE(round_index < samples_.size(),
             "round index past the aggregator's round count");
  samples_[round_index].push_back(value);
}

void PerRoundSamples::merge(const PerRoundSamples& other) {
  // Shard merges hit this check first when partials disagree, so the
  // message must name both counts — "which shard is malformed" is
  // undiagnosable from a bare mismatch report.
  RS_REQUIRE(other.samples_.size() == samples_.size(),
             "merging aggregators with different round counts: this has " +
                 std::to_string(samples_.size()) + " rounds, other has " +
                 std::to_string(other.samples_.size()));
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    samples_[r].insert(samples_[r].end(), other.samples_[r].begin(),
                       other.samples_[r].end());
  }
}

std::vector<double> PerRoundSamples::trimmed_mean_series(
    double trim_fraction) const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] = samples_[r].empty()
                 ? empty_round_value()
                 : util::trimmed_mean(samples_[r], trim_fraction);
  }
  return out;
}

std::vector<double> PerRoundSamples::mean_series() const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] =
        samples_[r].empty() ? empty_round_value() : util::mean(samples_[r]);
  }
  return out;
}

std::vector<double> PerRoundSamples::percentile_series(double p) const {
  std::vector<double> out(samples_.size());
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    out[r] = samples_[r].empty() ? empty_round_value()
                                 : util::percentile(samples_[r], p);
  }
  return out;
}

// ---------------------------------------------------------------------

const char* to_string(AggBackend backend) {
  switch (backend) {
    case AggBackend::Exact:
      return "exact";
    case AggBackend::Streaming:
      return "streaming";
  }
  RS_ENSURE(false, "unhandled AggBackend value " +
                       std::to_string(static_cast<int>(backend)));
}

AggBackend parse_agg_backend(std::string_view name) {
  if (name == "exact") return AggBackend::Exact;
  if (name == "streaming") return AggBackend::Streaming;
  throw std::invalid_argument("unknown aggregator backend \"" +
                              std::string(name) +
                              "\" (expected \"exact\" or \"streaming\")");
}

std::unique_ptr<RoundAccumulator> make_accumulator(
    AggBackend backend, std::size_t rounds,
    const StreamingAggConfig& streaming) {
  switch (backend) {
    case AggBackend::Exact:
      return std::make_unique<ExactAccumulator>(rounds);
    case AggBackend::Streaming:
      return std::make_unique<StreamingAccumulator>(rounds, streaming);
  }
  RS_ENSURE(false, "unhandled AggBackend value " +
                       std::to_string(static_cast<int>(backend)));
}

namespace {

/// Every cross-backend or cross-shape merge failure reports both sides.
void check_merge_shapes(const RoundAccumulator& self,
                        const RoundAccumulator& other) {
  RS_REQUIRE(self.backend() == other.backend(),
             std::string("merging accumulators of different backends: "
                         "this is ") +
                 to_string(self.backend()) + ", other is " +
                 to_string(other.backend()));
  RS_REQUIRE(self.rounds() == other.rounds(),
             "merging accumulators with different round counts: this has " +
                 std::to_string(self.rounds()) + " rounds, other has " +
                 std::to_string(other.rounds()));
}

}  // namespace

// ---------------------------------------------------------------------
// ExactAccumulator

void ExactAccumulator::merge(const RoundAccumulator& other) {
  check_merge_shapes(*this, other);
  samples_.merge(static_cast<const ExactAccumulator&>(other).samples_);
}

std::size_t ExactAccumulator::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (std::size_t r = 0; r < samples_.rounds(); ++r)
    bytes += sizeof(std::vector<double>) +
             samples_.samples(r).capacity() * sizeof(double);
  return bytes;
}

util::json::Value ExactAccumulator::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("backend", to_string(backend()));
  v.set("rounds", samples_.rounds());
  util::json::Value matrix = util::json::Value::array();
  for (std::size_t r = 0; r < samples_.rounds(); ++r) {
    util::json::Value row = util::json::Value::array();
    for (const double x : samples_.samples(r)) row.push_back(x);
    matrix.push_back(std::move(row));
  }
  v.set("samples", std::move(matrix));
  return v;
}

// ---------------------------------------------------------------------
// StreamingAccumulator

StreamingAccumulator::StreamingAccumulator(std::size_t rounds,
                                           StreamingAggConfig config)
    : config_(std::move(config)) {
  RS_REQUIRE(rounds > 0, "aggregator needs at least one round");
  RS_REQUIRE(config_.reservoir_capacity >= 1, "reservoir capacity >= 1");
  for (const double q : config_.p2_grid)
    RS_REQUIRE(q > 0.0 && q < 100.0, "P2 grid quantiles in (0, 100)");
  rounds_.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    RoundStat stat{
        util::RunningStats{},
        util::ReservoirSample(config_.reservoir_capacity,
                              reservoir_seed_for_round(r)),
        {},
        true};
    stat.p2.reserve(config_.p2_grid.size());
    for (const double q : config_.p2_grid)
      stat.p2.emplace_back(q / 100.0);
    rounds_.push_back(std::move(stat));
  }
}

const StreamingAccumulator::RoundStat& StreamingAccumulator::round_at(
    std::size_t round_index) const {
  RS_REQUIRE(round_index < rounds_.size(),
             "round index past the accumulator's round count");
  return rounds_[round_index];
}

std::size_t StreamingAccumulator::count(std::size_t round_index) const {
  return round_at(round_index).stats.count();
}

void StreamingAccumulator::record(std::size_t round_index, double value) {
  RS_REQUIRE(round_index < rounds_.size(),
             "round index past the accumulator's round count");
  RoundStat& stat = rounds_[round_index];
  stat.stats.add(value);
  stat.reservoir.add(value);
  for (util::P2Quantile& p2 : stat.p2) p2.add(value);
}

void StreamingAccumulator::merge(const RoundAccumulator& other_base) {
  check_merge_shapes(*this, other_base);
  const auto& other = static_cast<const StreamingAccumulator&>(other_base);
  RS_REQUIRE(
      other.config_.reservoir_capacity == config_.reservoir_capacity,
      "merging streaming accumulators with different reservoir capacities: "
      "this has " +
          std::to_string(config_.reservoir_capacity) + ", other has " +
          std::to_string(other.config_.reservoir_capacity));
  RS_REQUIRE(other.config_.p2_grid == config_.p2_grid,
             "merging streaming accumulators with different P2 grids");
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    RoundStat& mine = rounds_[r];
    const RoundStat& theirs = other.rounds_[r];
    if (theirs.stats.count() == 0) continue;
    if (mine.stats.count() == 0) {
      // Wholesale adoption keeps the sequential P² state valid.
      mine = theirs;
      continue;
    }
    mine.stats.merge(theirs.stats);
    mine.reservoir.merge(theirs.reservoir);
    // P² is a sequential algorithm with no merge; percentile queries on
    // this round now fall back to the (mergeable) reservoir.
    mine.p2_live = false;
  }
}

std::vector<double> StreamingAccumulator::trimmed_mean_series(
    double trim_fraction) const {
  std::vector<double> out(rounds_.size());
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    const RoundStat& stat = rounds_[r];
    out[r] = stat.stats.count() == 0
                 ? empty_round_value()
                 : util::trimmed_mean(stat.reservoir.samples(), trim_fraction);
  }
  return out;
}

std::vector<double> StreamingAccumulator::mean_series() const {
  std::vector<double> out(rounds_.size());
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    out[r] = rounds_[r].stats.count() == 0 ? empty_round_value()
                                           : rounds_[r].stats.mean();
  }
  return out;
}

std::vector<double> StreamingAccumulator::percentile_series(double p) const {
  RS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile in [0, 100]");
  const auto estimate = [&](const RoundStat& stat) {
    if (stat.stats.count() == 0) return empty_round_value();
    if (p == 0.0) return stat.stats.min();    // extremes are tracked
    if (p == 100.0) return stat.stats.max();  // exactly by RunningStats
    // The reservoir still holding every sample answers exactly; past
    // capacity, a live on-grid P² estimator beats the subsample.
    if (!stat.reservoir.exact() && stat.p2_live) {
      for (std::size_t i = 0; i < config_.p2_grid.size(); ++i)
        if (std::abs(config_.p2_grid[i] - p) < 1e-9)
          return stat.p2[i].estimate();
    }
    return util::percentile(stat.reservoir.samples(), p);
  };
  std::vector<double> out(rounds_.size());
  for (std::size_t r = 0; r < rounds_.size(); ++r) out[r] = estimate(rounds_[r]);
  return out;
}

std::size_t StreamingAccumulator::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const RoundStat& stat : rounds_) {
    bytes += sizeof(RoundStat);
    bytes += stat.reservoir.samples().capacity() * sizeof(double);
    bytes += stat.p2.capacity() * sizeof(util::P2Quantile);
  }
  bytes += config_.p2_grid.capacity() * sizeof(double);
  return bytes;
}

util::json::Value StreamingAccumulator::to_json() const {
  using util::json::Value;
  Value v = Value::object();
  v.set("backend", to_string(backend()));
  v.set("rounds", rounds_.size());
  v.set("reservoir_capacity", config_.reservoir_capacity);
  Value grid = Value::array();
  for (const double q : config_.p2_grid) grid.push_back(q);
  v.set("p2_grid", std::move(grid));
  Value stats = Value::array();
  for (const RoundStat& stat : rounds_) {
    Value s = Value::object();
    s.set("n", stat.stats.count());
    s.set("mean", stat.stats.mean());
    s.set("m2", stat.stats.m2());
    s.set("min", stat.stats.min());
    s.set("max", stat.stats.max());
    s.set("seen", stat.reservoir.seen());
    s.set("rng_draws", stat.reservoir.draws());
    Value samples = Value::array();
    for (const double x : stat.reservoir.samples()) samples.push_back(x);
    s.set("reservoir", std::move(samples));
    s.set("p2_live", stat.p2_live);
    Value p2s = Value::array();
    for (const util::P2Quantile& p2 : stat.p2) {
      const util::P2Quantile::State st = p2.state();
      Value p = Value::object();
      p.set("q", st.q);
      p.set("count", st.count);
      Value h = Value::array(), pos = Value::array(), des = Value::array();
      for (std::size_t i = 0; i < 5; ++i) {
        h.push_back(st.heights[i]);
        pos.push_back(st.positions[i]);
        des.push_back(st.desired[i]);
      }
      p.set("heights", std::move(h));
      p.set("positions", std::move(pos));
      p.set("desired", std::move(des));
      p2s.push_back(std::move(p));
    }
    s.set("p2", std::move(p2s));
    stats.push_back(std::move(s));
  }
  v.set("round_stats", std::move(stats));
  return v;
}

// ---------------------------------------------------------------------
// Deserialization

std::unique_ptr<RoundAccumulator> accumulator_from_json(
    const util::json::Value& value) {
  const AggBackend backend =
      parse_agg_backend(value.at("backend").as_string());
  const std::size_t rounds = value.at("rounds").as_size();
  RS_REQUIRE(rounds > 0, "accumulator JSON with zero rounds");

  if (backend == AggBackend::Exact) {
    auto acc = std::make_unique<ExactAccumulator>(rounds);
    const auto& matrix = value.at("samples").as_array();
    RS_REQUIRE(matrix.size() == rounds,
               "accumulator JSON sample matrix has " +
                   std::to_string(matrix.size()) + " rows for " +
                   std::to_string(rounds) + " rounds");
    for (std::size_t r = 0; r < rounds; ++r)
      for (const util::json::Value& x : matrix[r].as_array())
        acc->record(r, x.as_number());
    return acc;
  }

  StreamingAggConfig config;
  config.reservoir_capacity = value.at("reservoir_capacity").as_size();
  config.p2_grid.clear();
  for (const util::json::Value& q : value.at("p2_grid").as_array())
    config.p2_grid.push_back(q.as_number());
  auto acc = std::make_unique<StreamingAccumulator>(rounds, config);
  const auto& stats = value.at("round_stats").as_array();
  RS_REQUIRE(stats.size() == rounds,
             "accumulator JSON round_stats has " +
                 std::to_string(stats.size()) + " entries for " +
                 std::to_string(rounds) + " rounds");
  for (std::size_t r = 0; r < rounds; ++r) {
    const util::json::Value& s = stats[r];
    StreamingAccumulator::RoundStat& stat = acc->rounds_[r];
    stat.stats = util::RunningStats::from_state(
        s.at("n").as_size(), s.at("mean").as_number(), s.at("m2").as_number(),
        s.at("min").as_number(), s.at("max").as_number());
    std::vector<double> samples;
    for (const util::json::Value& x : s.at("reservoir").as_array())
      samples.push_back(x.as_number());
    stat.reservoir = util::ReservoirSample::from_state(
        config.reservoir_capacity, reservoir_seed_for_round(r),
        s.at("seen").as_size(), s.at("rng_draws").as_size(),
        std::move(samples));
    stat.p2_live = s.at("p2_live").as_bool();
    const auto& p2s = s.at("p2").as_array();
    RS_REQUIRE(p2s.size() == config.p2_grid.size(),
               "accumulator JSON P2 bank size mismatch");
    stat.p2.clear();
    for (const util::json::Value& p : p2s) {
      util::P2Quantile::State st;
      st.q = p.at("q").as_number();
      st.count = p.at("count").as_size();
      const auto& h = p.at("heights").as_array();
      const auto& pos = p.at("positions").as_array();
      const auto& des = p.at("desired").as_array();
      RS_REQUIRE(h.size() == 5 && pos.size() == 5 && des.size() == 5,
                 "accumulator JSON P2 marker arrays must have 5 entries");
      for (std::size_t i = 0; i < 5; ++i) {
        st.heights[i] = h[i].as_number();
        st.positions[i] = pos[i].as_number();
        st.desired[i] = des[i].as_number();
      }
      stat.p2.push_back(util::P2Quantile::from_state(st));
    }
  }
  return acc;
}

}  // namespace roleshare::sim
