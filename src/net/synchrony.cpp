#include "net/synchrony.hpp"

#include "util/require.hpp"

namespace roleshare::net {

SynchronyController::SynchronyController(SynchronyConfig config)
    : config_(config) {
  RS_REQUIRE(config.degrade_probability >= 0.0 &&
                 config.degrade_probability <= 1.0,
             "degrade probability");
  RS_REQUIRE(config.degraded_delay_factor >= 1.0, "degraded delay factor");
}

SynchronyState SynchronyController::advance_round(util::Rng& rng) {
  if (state_ == SynchronyState::Degraded) {
    ++degraded_run_;
    if (degraded_run_ >= config_.max_degraded_rounds) {
      // Weak synchrony guarantee: the asynchronous period is bounded.
      state_ = SynchronyState::Strong;
      degraded_run_ = 0;
    }
  } else if (rng.bernoulli(config_.degrade_probability)) {
    state_ = SynchronyState::Degraded;
    degraded_run_ = 0;
  }
  return state_;
}

double SynchronyController::delay_factor() const {
  return state_ == SynchronyState::Degraded ? config_.degraded_delay_factor
                                            : 1.0;
}

void SynchronyController::force(SynchronyState s) {
  state_ = s;
  degraded_run_ = 0;
}

}  // namespace roleshare::net
