// Fixed-size worker pool used by the experiment runner to spread
// independent simulation runs across cores, plus the InnerExecutor view
// that the round engine's per-node loops use for within-run parallelism.
//
// The pool is deliberately minimal: tasks are plain std::function<void()>,
// there is no work stealing, and `parallel_for_indexed` is the only
// batching primitive — experiments need exactly "run body(i) for every i,
// wait for all, surface failures deterministically" and nothing more.
//
// Nested-parallelism contract (DESIGN.md §3): a process owns at most one
// level of parallelism at a time. Either the outer run fan-out holds the
// cores (ExperimentSpec.threads > 1) and every inner loop runs serial, or
// the runs execute serially and a single shared inner pool
// (ExperimentSpec.inner_threads) fans each run's node loops out. Never
// both — the experiment runner enforces this resolution in one place.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace roleshare::util {

class ThreadPool {
 public:
  /// Resolves a user-facing `threads=` knob: 0 means "all hardware
  /// threads" (never less than 1), any other value is taken as-is.
  static std::size_t resolve_thread_count(std::size_t requested);

  /// Starts `threads` workers (>= 1). A single-worker pool executes
  /// `parallel_for_indexed` inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not outlive the pool; the destructor
  /// drains the queue before joining the workers.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all indices have finished. Every index is
  /// attempted even when earlier ones throw; afterwards the exception of
  /// the *lowest* failing index is rethrown, so the surfaced error does
  /// not depend on scheduling order.
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  bool stopping_ = false;
};

/// Borrowed, copyable view of a ThreadPool for *within-run* (inner)
/// parallelism: the round engine's per-node loops run through this so the
/// same code path serves both the serial and the parallel configuration.
///
/// A default-constructed (or nullptr-wrapped) executor runs every loop
/// inline on the calling thread. Determinism contract: both primitives are
/// bit-identical to their serial equivalents —
///  * `for_each_index` writes results at fixed indices, so scheduling
///    order cannot matter;
///  * `for_each_chunk` boundaries depend only on `n` (never on the worker
///    count), so reductions that fold per-chunk partials in chunk order
///    are bit-identical for every worker count, including exact float
///    reductions.
class InnerExecutor {
 public:
  /// Serial executor.
  InnerExecutor() = default;
  /// Executor over `pool`; nullptr (or a 1-worker pool) means serial.
  explicit InnerExecutor(ThreadPool* pool) : pool_(pool) {}

  /// Worker count this executor fans out to (1 when serial).
  std::size_t workers() const {
    return pool_ == nullptr ? 1 : pool_->size();
  }
  bool parallel() const { return workers() > 1; }
  ThreadPool* pool() const { return pool_; }

  /// Runs body(i) for every i in [0, n) with dynamic per-index claiming —
  /// the right shape for few, heavy, irregular items (e.g. one gossip
  /// propagation per vote). Blocks until all indices finish; rethrows the
  /// lowest failing index's exception.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& body) const;

  /// Runs body(chunk, begin, end) over contiguous chunks covering [0, n)
  /// — the right shape for many light items (per-node tallies, sortition
  /// batches). Chunk boundaries are a pure function of n; see chunk_count.
  /// `chunk` is the chunk's index in [0, chunk_count(n)) — reductions that
  /// keep per-chunk partials index them with it rather than re-deriving
  /// boundaries.
  void for_each_chunk(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body)
      const;

  /// Number of chunks for_each_chunk splits [0, n) into. Depends only on
  /// n: ~kTargetChunks chunks, but never smaller than kMinChunk indices
  /// (except the last), so tiny loops do not drown in dispatch overhead.
  static std::size_t chunk_count(std::size_t n);

  /// Length of every chunk except possibly the last; chunk boundaries are
  /// begin = c * chunk_length(n). Callers that keep per-chunk partials can
  /// recover the chunk index as begin / chunk_length(n).
  static std::size_t chunk_length(std::size_t n);

  static constexpr std::size_t kTargetChunks = 64;
  static constexpr std::size_t kMinChunk = 256;

 private:
  ThreadPool* pool_ = nullptr;
};

}  // namespace roleshare::util
