#include "sim/partial.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/network.hpp"
#include "util/framed_io.hpp"

namespace roleshare::sim {

util::json::Value network_spec_echo(const NetworkConfig& config) {
  util::json::Value net = util::json::Value::object();
  net.set("node_count", config.node_count);
  net.set("seed", config.seed);
  net.set("fan_out", config.fan_out);
  net.set("stake_lo", config.stake_lo);
  net.set("stake_hi", config.stake_hi);
  net.set("defection_rate", config.defection_rate);
  net.set("faulty_rate", config.faulty_rate);
  net.set("selfish_residual", util::json::Value(config.selfish_residual));
  net.set("delay_lo_ms", config.delay_lo_ms);
  net.set("delay_hi_ms", config.delay_hi_ms);
  net.set("degrade_probability", config.synchrony.degrade_probability);
  net.set("degraded_delay_factor", config.synchrony.degraded_delay_factor);
  net.set("max_degraded_rounds", config.synchrony.max_degraded_rounds);
  return net;
}

std::string spec_hash_hex(const util::json::Value& spec_echo) {
  // FNV-1a 64 over the canonical dump: deterministic across processes
  // (insertion-ordered members, %.17g doubles), collision-resistant
  // enough for "did two shards run the same experiment". The same digest
  // (util::framed::fnv1a_64) checksums binary-frame sections and derives
  // result-store entry names, so one hash discipline covers the whole
  // partial pipeline.
  const std::uint64_t h = util::framed::fnv1a_64(spec_echo.dump());
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

void PartialEnvelope::validate() const {
  RS_REQUIRE(!kind.empty(), "partial envelope has no experiment kind");
  RS_REQUIRE(!spec_hash.empty(), "partial envelope has no spec hash");
  RS_REQUIRE(rounds > 0, "partial envelope has zero rounds");
  RS_REQUIRE(run_begin < run_end, "partial run window is empty");
  RS_REQUIRE(run_end <= window_end,
             "partial covers runs up to " + std::to_string(run_end) +
                 " past its declared window end " +
                 std::to_string(window_end));
  RS_REQUIRE(window_end <= runs_total,
             "partial window ends at " + std::to_string(window_end) +
                 " but the experiment has only " +
                 std::to_string(runs_total) + " runs");
}

void PartialEnvelope::extend_window(std::size_t target_end) {
  RS_REQUIRE(target_end >= run_end,
             "checkpoint window end " + std::to_string(target_end) +
                 " is before the covered runs, which reach " +
                 std::to_string(run_end));
  RS_REQUIRE(target_end <= runs_total,
             "checkpoint window ends at " + std::to_string(target_end) +
                 " but the experiment has only " +
                 std::to_string(runs_total) + " runs");
  window_end = std::max(window_end, target_end);
}

void PartialEnvelope::check_merge(const PartialEnvelope& next) const {
  RS_REQUIRE(next.kind == kind,
             "merging partials of different experiment kinds: this is \"" +
                 kind + "\", next is \"" + next.kind + "\"");
  RS_REQUIRE(next.spec_hash == spec_hash,
             "merging partials of different experiments: this has spec "
             "hash " + spec_hash + ", next has " + next.spec_hash);
  RS_REQUIRE(next.backend == backend,
             std::string("merging partials of different accumulator "
                         "backends: this is ") +
                 to_string(backend) + ", next is " +
                 to_string(next.backend));
  RS_REQUIRE(next.runs_total == runs_total,
             "merging partials of different experiments: this has " +
                 std::to_string(runs_total) + " total runs, next has " +
                 std::to_string(next.runs_total));
  RS_REQUIRE(next.rounds == rounds,
             "merging partials with different round counts: this has " +
                 std::to_string(rounds) + " rounds, next has " +
                 std::to_string(next.rounds));
  RS_REQUIRE(next.run_begin == run_end,
             "merging non-contiguous run windows: this ends at run " +
                 std::to_string(run_end) + ", next begins at run " +
                 std::to_string(next.run_begin));
}

void PartialEnvelope::absorb(const PartialEnvelope& next) {
  run_end = next.run_end;
  window_end = std::max(window_end, next.window_end);
}

util::json::Value PartialEnvelope::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("kind", kind);
  v.set("spec_hash", spec_hash);
  v.set("backend", to_string(backend));
  v.set("runs_total", runs_total);
  v.set("rounds", rounds);
  v.set("run_begin", run_begin);
  v.set("run_end", run_end);
  v.set("window_end", window_end);
  return v;
}

PartialEnvelope PartialEnvelope::from_json(const util::json::Value& value) {
  PartialEnvelope envelope;
  envelope.kind = value.at("kind").as_string();
  envelope.spec_hash = value.at("spec_hash").as_string();
  envelope.backend = parse_agg_backend(value.at("backend").as_string());
  envelope.runs_total = value.at("runs_total").as_size();
  envelope.rounds = value.at("rounds").as_size();
  envelope.run_begin = value.at("run_begin").as_size();
  envelope.run_end = value.at("run_end").as_size();
  envelope.window_end = value.at("window_end").as_size();
  envelope.validate();
  return envelope;
}

void check_shard_tiling(std::vector<ShardWindow> windows,
                        std::size_t runs_total) {
  RS_REQUIRE(!windows.empty(), "no shard windows to merge");
  for (const ShardWindow& w : windows) {
    RS_REQUIRE(w.run_end == w.window_end,
               "shard " + w.label + " is an unfinished checkpoint: it "
               "covers runs [" + std::to_string(w.run_begin) + ", " +
                   std::to_string(w.run_end) + ") of its window [" +
                   std::to_string(w.run_begin) + ", " +
                   std::to_string(w.window_end) +
                   ") — resume it before merging");
  }
  std::sort(windows.begin(), windows.end(),
            [](const ShardWindow& a, const ShardWindow& b) {
              return a.run_begin != b.run_begin ? a.run_begin < b.run_begin
                                                : a.run_end < b.run_end;
            });
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const ShardWindow& prev = windows[i - 1];
    const ShardWindow& cur = windows[i];
    RS_REQUIRE(cur.run_begin >= prev.run_end,
               "shard windows overlap: " + prev.label + " covers runs [" +
                   std::to_string(prev.run_begin) + ", " +
                   std::to_string(prev.run_end) + "), " + cur.label +
                   " covers runs [" + std::to_string(cur.run_begin) + ", " +
                   std::to_string(cur.run_end) + ")");
    RS_REQUIRE(cur.run_begin <= prev.run_end,
               "shard windows leave a gap: " + prev.label +
                   " ends at run " + std::to_string(prev.run_end) + ", " +
                   cur.label + " begins at run " +
                   std::to_string(cur.run_begin));
  }
  RS_REQUIRE(
      windows.front().run_begin == 0 && windows.back().run_end == runs_total,
      "merged shards cover runs [" +
          std::to_string(windows.front().run_begin) + ", " +
          std::to_string(windows.back().run_end) + ") of " +
          std::to_string(runs_total) + " — the shard set is incomplete");
}

// ---------------------------------------------------------------------
// ScalarBank

ScalarBank::ScalarBank(AggBackend backend) : backend_(backend) {}

std::size_t ScalarBank::count() const {
  return backend_ == AggBackend::Exact ? samples_.size() : stats_.count();
}

void ScalarBank::record(double value) {
  if (backend_ == AggBackend::Exact) {
    samples_.push_back(value);
  } else {
    stats_.add(value);
  }
}

void ScalarBank::merge(const ScalarBank& other) {
  RS_REQUIRE(other.backend_ == backend_,
             std::string("merging scalar banks of different backends: "
                         "this is ") +
                 to_string(backend_) + ", other is " +
                 to_string(other.backend_));
  if (backend_ == AggBackend::Exact) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  } else if (other.stats_.count() > 0) {
    if (stats_.count() == 0) {
      stats_ = other.stats_;
    } else {
      stats_.merge(other.stats_);
    }
  }
}

double ScalarBank::mean() const {
  if (count() == 0) return std::numeric_limits<double>::quiet_NaN();
  if (backend_ == AggBackend::Streaming) return stats_.mean();
  // Sequential Welford replay: bit-identical to feeding the samples into
  // a RunningStats one by one, which is what the single-process
  // experiments historically did.
  util::RunningStats replay;
  for (const double x : samples_) replay.add(x);
  return replay.mean();
}

double ScalarBank::sum() const {
  if (backend_ == AggBackend::Streaming)
    return stats_.mean() * static_cast<double>(stats_.count());
  double total = 0.0;
  for (const double x : samples_) total += x;
  return total;
}

const std::vector<double>& ScalarBank::samples() const {
  if (backend_ != AggBackend::Exact)
    throw std::logic_error(
        "ScalarBank::samples(): the streaming backend does not keep raw "
        "samples");
  return samples_;
}

std::size_t ScalarBank::memory_bytes() const {
  return sizeof(*this) + samples_.capacity() * sizeof(double);
}

util::json::Value ScalarBank::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("backend", to_string(backend_));
  if (backend_ == AggBackend::Exact) {
    util::json::Value xs = util::json::Value::array();
    for (const double x : samples_) xs.push_back(x);
    v.set("samples", std::move(xs));
  } else {
    v.set("n", stats_.count());
    v.set("mean", stats_.mean());
    v.set("m2", stats_.m2());
    v.set("min", stats_.min());
    v.set("max", stats_.max());
  }
  return v;
}

ScalarBank ScalarBank::from_json(const util::json::Value& value) {
  ScalarBank bank(parse_agg_backend(value.at("backend").as_string()));
  if (bank.backend_ == AggBackend::Exact) {
    for (const util::json::Value& x : value.at("samples").as_array())
      bank.samples_.push_back(x.as_number());
  } else {
    bank.stats_ = util::RunningStats::from_state(
        value.at("n").as_size(), value.at("mean").as_number(),
        value.at("m2").as_number(), value.at("min").as_number(),
        value.at("max").as_number());
  }
  return bank;
}

}  // namespace roleshare::sim
