// The property-testing framework's own unit tests (util/proptest.hpp):
// generator determinism, greedy shrinking toward minimal
// counterexamples, filter soundness, environment knob resolution and
// the failure-report/replay contract. These run in the main test binary
// (not under the `prop` label) because they are ordinary example-based
// tests *about* the framework.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "util/proptest.hpp"
#include "util/rng.hpp"

namespace roleshare::util::proptest {
namespace {

// Fixed parameters — the framework tests must not themselves react to
// ROLESHARE_PROP_* overrides.
PropParams fixed_params(std::size_t cases) {
  PropParams p;
  p.cases = cases;
  p.root_seed = kDefaultSeed;
  return p;
}

TEST(Proptest, GeneratorsAreDeterministicInTheSeed) {
  const auto g = gen::tuple_of(gen::int_range(-50, 50),
                               gen::real_range(0.0, 1.0),
                               gen::vector_of(gen::boolean(), 0, 8));
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    Rng a(seed);
    Rng b(seed);
    EXPECT_EQ(describe(g.generate(a).value), describe(g.generate(b).value))
        << "seed " << seed;
  }
}

TEST(Proptest, PassingPropertyRunsEveryCase) {
  Checker prop("Proptest.PassingPropertyRunsEveryCase", fixed_params(64));
  std::size_t runs = 0;
  EXPECT_TRUE(prop.check(gen::int_range(0, 100), [&](std::int64_t) {
    ++runs;
    return true;
  }));
  EXPECT_EQ(runs, 64u);
  EXPECT_FALSE(prop.failed());
}

TEST(Proptest, IntCounterexampleShrinksToTheBoundary) {
  Checker prop("Proptest.IntShrink", fixed_params(200));
  // Fails for v >= 500; the unique minimal counterexample is 500.
  EXPECT_FALSE(prop.check(gen::int_range(0, 10'000),
                          [](std::int64_t v) { return v < 500; }));
  ASSERT_TRUE(prop.failed());
  EXPECT_NE(prop.failure_message().find("minimal counterexample:\n    500\n"),
            std::string::npos)
      << prop.failure_message();
}

TEST(Proptest, VectorShrinksToMinimalLengthAndElements) {
  Checker prop("Proptest.VectorShrink", fixed_params(200));
  // Fails when the vector has >= 3 elements; chunk removal should reach
  // exactly 3, and element shrinking should zero them all.
  EXPECT_FALSE(prop.check(
      gen::vector_of(gen::int_range(0, 100), 0, 10),
      [](const std::vector<std::int64_t>& v) { return v.size() < 3; }));
  ASSERT_TRUE(prop.failed());
  EXPECT_NE(prop.failure_message().find("[0, 0, 0]"), std::string::npos)
      << prop.failure_message();
}

TEST(Proptest, TupleShrinksComponentwise) {
  Checker prop("Proptest.TupleShrink", fixed_params(200));
  // Fails when the first component is >= 10; the second is irrelevant
  // and must shrink to its origin 0.
  EXPECT_FALSE(
      prop.check(gen::tuple_of(gen::int_range(0, 1'000),
                               gen::int_range(0, 1'000)),
                 [](const std::tuple<std::int64_t, std::int64_t>& t) {
                   return std::get<0>(t) < 10;
                 }));
  ASSERT_TRUE(prop.failed());
  EXPECT_NE(prop.failure_message().find("(10, 0)"), std::string::npos)
      << prop.failure_message();
}

TEST(Proptest, FilterNeverPresentsViolatingValuesOrShrinks) {
  const auto even = gen::int_range(0, 1'000).filter(
      [](const std::int64_t& v) { return v % 2 == 0; });
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Shrinkable<std::int64_t> s = even.generate(rng);
    ASSERT_EQ(s.value % 2, 0);
    // The whole first level of the shrink tree honors the predicate too
    // (deeper levels are pruned by the same wrapper, recursively).
    for (const auto& child : s.shrinks()) {
      ASSERT_EQ(child.value % 2, 0) << "shrink of " << s.value;
      for (const auto& grandchild : child.shrinks())
        ASSERT_EQ(grandchild.value % 2, 0);
    }
  }
}

TEST(Proptest, FilterThrowsOnImpossiblePredicate) {
  const auto none = gen::int_range(0, 10).filter(
      [](const std::int64_t&) { return false; }, /*max_tries=*/10);
  Rng rng(1);
  EXPECT_THROW((void)none.generate(rng), std::runtime_error);
  // Through check(), the throw is reported as a failure, not a crash.
  Checker prop("Proptest.FilterExhaustion", fixed_params(5));
  EXPECT_FALSE(prop.check(none, [](std::int64_t) { return true; }));
  EXPECT_NE(prop.failure_message().find("generator exception"),
            std::string::npos);
}

TEST(Proptest, VerdictNoteAndReplayLineReachTheReport) {
  Checker prop("Suite.Case", fixed_params(20));
  EXPECT_FALSE(prop.check(gen::int_range(0, 10), [](std::int64_t) {
    return Verdict{false, "diagnostic detail travels"};
  }));
  const std::string& msg = prop.failure_message();
  EXPECT_NE(msg.find("diagnostic detail travels"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ROLESHARE_PROP_CASE_SEED="), std::string::npos) << msg;
  EXPECT_NE(msg.find("--gtest_filter=Suite.Case"), std::string::npos) << msg;
}

TEST(Proptest, ThrowingPropertyBecomesACounterexample) {
  Checker prop("Proptest.Throwing", fixed_params(20));
  EXPECT_FALSE(prop.check(gen::int_range(0, 10), [](std::int64_t v) -> bool {
    if (v >= 0) throw std::runtime_error("boom");
    return true;
  }));
  EXPECT_NE(prop.failure_message().find("exception: boom"),
            std::string::npos);
}

TEST(Proptest, ReplayCaseSeedReproducesTheExactCase) {
  // First run: find a failing case and remember its seed (parsed from
  // the report's "case seed :" line).
  Checker first("Proptest.Replay", fixed_params(200));
  EXPECT_FALSE(first.check(gen::int_range(0, 100'000),
                           [](std::int64_t v) { return v < 1'000; }));
  const std::string msg = first.failure_message();
  const auto pos = msg.find("case seed : ");
  ASSERT_NE(pos, std::string::npos);
  const std::uint64_t case_seed =
      std::strtoull(msg.c_str() + pos + 12, nullptr, 10);

  // Replay mode: exactly one case, drawn from that seed, same shrunk
  // counterexample (1000, the boundary).
  PropParams replay = fixed_params(200);
  replay.replay_case_seed = case_seed;
  Checker second("Proptest.Replay", replay);
  std::size_t cases_run = 0;
  EXPECT_FALSE(second.check(gen::int_range(0, 100'000), [&](std::int64_t v) {
    ++cases_run;
    return v < 1'000;
  }));
  EXPECT_NE(second.failure_message().find("minimal counterexample:\n    1000"),
            std::string::npos)
      << second.failure_message();
}

TEST(Proptest, LaterChecksStillRunAfterAFailure) {
  Checker prop("Proptest.TwoChecks", fixed_params(10));
  EXPECT_FALSE(prop.check(gen::int_range(0, 10),
                          [](std::int64_t) { return false; }));
  EXPECT_TRUE(prop.check(gen::int_range(0, 10),
                         [](std::int64_t) { return true; }));
  EXPECT_TRUE(prop.failed());  // first failure is retained
  EXPECT_NE(prop.failure_message().find("check #0"), std::string::npos);
}

TEST(Proptest, EnvKnobsResolveCasesSeedsAndScale) {
  // Absolute count wins over everything.
  ASSERT_EQ(setenv("ROLESHARE_PROP_CASES", "7", 1), 0);
  EXPECT_EQ(resolve_params(100).cases, 7u);
  ASSERT_EQ(unsetenv("ROLESHARE_PROP_CASES"), 0);

  // Scale multiplies the per-test default.
  ASSERT_EQ(setenv("ROLESHARE_PROP_SCALE", "3", 1), 0);
  EXPECT_EQ(resolve_params(100).cases, 300u);
  ASSERT_EQ(unsetenv("ROLESHARE_PROP_SCALE"), 0);

  // Root seed override.
  ASSERT_EQ(setenv("ROLESHARE_PROP_SEED", "12345", 1), 0);
  EXPECT_EQ(resolve_params(100).root_seed, 12345u);
  ASSERT_EQ(unsetenv("ROLESHARE_PROP_SEED"), 0);

  // Defaults.
  const PropParams p = resolve_params(100);
  EXPECT_EQ(p.cases, 100u);
  EXPECT_EQ(p.root_seed, kDefaultSeed);
  EXPECT_FALSE(p.replay_case_seed.has_value());
}

TEST(Proptest, ElementOfShrinksTowardEarlierEntries) {
  // element_of shrinks toward index 0, so a failing pick from the back
  // of the table lands on the earliest entry that still fails.
  Checker prop("Proptest.ElementOf", fixed_params(100));
  EXPECT_FALSE(prop.check(
      gen::element_of<std::string>({"safe", "bad-a", "bad-b", "bad-c"}),
      [](const std::string& s) { return s == "safe"; }));
  EXPECT_NE(prop.failure_message().find("\"bad-a\""), std::string::npos)
      << prop.failure_message();
}

TEST(Proptest, DescribePrintsReadableValues) {
  EXPECT_EQ(describe(true), "true");
  EXPECT_EQ(describe(std::string("hi")), "\"hi\"");
  EXPECT_EQ(describe(std::vector<std::int64_t>{1, 2, 3}), "[1, 2, 3]");
  EXPECT_EQ(describe(std::make_tuple(std::int64_t{1}, false)), "(1, false)");
  EXPECT_EQ(describe(0.5), "0.5");
  // %.17g round-trip precision for awkward doubles.
  EXPECT_EQ(describe(0.1), "0.10000000000000001");
}

}  // namespace
}  // namespace roleshare::util::proptest
