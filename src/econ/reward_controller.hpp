// Reward controller — the full Fig-2 money flow, plus the paper's stated
// future-work extension (§VI): once the Foundation Reward Pool hits its
// 1.75B ceiling and drains, per-round rewards continue out of the
// Transaction Fee Pool, still sized by the scheme (for the role-based
// scheme: the minimal incentive-compatible B_i from Algorithm 1).
//
// Per round:
//   1. inject R_i (Table-III schedule) into the Foundation pool, clipped
//      at the ceiling;
//   2. deposit the round's transaction fees into the fee pool;
//   3. ask the scheme for its required budget B_i;
//   4. withdraw B_i from the Foundation pool first, topping up from the
//      fee pool only when the Foundation side is exhausted;
//   5. distribute and credit.
#pragma once

#include <memory>

#include "econ/foundation_schedule.hpp"
#include "econ/reward_pool.hpp"
#include "econ/reward_scheme.hpp"
#include "ledger/account_table.hpp"

namespace roleshare::econ {

struct RoundRewardReport {
  ledger::Round round = 0;
  ledger::MicroAlgos injected = 0;        // R_i actually emitted
  ledger::MicroAlgos requested = 0;       // scheme's B_i
  ledger::MicroAlgos from_foundation = 0; // part paid by the Foundation pool
  ledger::MicroAlgos from_fees = 0;       // part paid by the fee pool
  ledger::MicroAlgos distributed = 0;     // sum actually credited
  bool fee_pool_tapped = false;
};

class RewardController {
 public:
  /// Takes ownership of the scheme. `use_fee_pool_after_exhaustion`
  /// enables the future-work fee-funded phase; when false the controller
  /// reproduces the launch-phase behaviour (fees only accumulate).
  RewardController(std::unique_ptr<RewardScheme> scheme,
                   bool use_fee_pool_after_exhaustion = true,
                   ledger::MicroAlgos foundation_ceiling =
                       ledger::algos(1'750'000'000));

  const FoundationPool& foundation_pool() const { return foundation_; }
  const TransactionFeePool& fee_pool() const { return fees_; }
  RewardScheme& scheme() { return *scheme_; }

  /// Runs one round's reward step: injects the scheduled R_i, deposits
  /// `round_fees`, funds the scheme's B_i from the pools, and credits the
  /// payouts into `accounts` (whose ids must align with the snapshot).
  RoundRewardReport settle_round(ledger::Round round,
                                 const RoleSnapshot& snapshot,
                                 ledger::MicroAlgos round_fees,
                                 ledger::AccountTable& accounts);

 private:
  std::unique_ptr<RewardScheme> scheme_;
  FoundationPool foundation_;
  TransactionFeePool fees_;
  bool use_fee_pool_;
};

}  // namespace roleshare::econ
