// Property suite: util::json serialization invariants under randomized
// value trees (see DESIGN.md §8 for the seeding/shrinking contract).
//
// The shard-partial interchange relies on dump() being a deterministic,
// lossless encoding of finite trees: dump∘parse must be the identity on
// dump's image (byte-for-byte), and parse must reproduce the original
// tree structurally. These properties sweep value trees the handwritten
// cases in tests/test_json.cpp never reach: NUL and high bytes in
// strings, -0.0, subnormals, huge magnitudes, deep mixed nesting.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gen/domain_gen.hpp"
#include "util/json.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::util::json::Value;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

// Structural equality, treating numbers as bit-comparable doubles (the
// %.17g contract: every finite binary64 round-trips exactly; -0.0 and
// 0.0 compare equal here because dump() prints "-0" for -0.0 and strtod
// restores the sign — the dump-equality check below covers the sign).
bool same_tree(const Value& a, const Value& b, std::string& why) {
  if (a.kind() != b.kind()) {
    why = "kind mismatch";
    return false;
  }
  switch (a.kind()) {
    case Value::Kind::Null:
      return true;
    case Value::Kind::Bool:
      if (a.as_bool() != b.as_bool()) {
        why = "bool mismatch";
        return false;
      }
      return true;
    case Value::Kind::Number: {
      const double x = a.as_number();
      const double y = b.as_number();
      if (!(x == y) || std::signbit(x) != std::signbit(y)) {
        why = "number mismatch: " + a.dump() + " vs " + b.dump();
        return false;
      }
      return true;
    }
    case Value::Kind::String:
      if (a.as_string() != b.as_string()) {
        why = "string mismatch";
        return false;
      }
      return true;
    case Value::Kind::Array: {
      const auto& xs = a.as_array();
      const auto& ys = b.as_array();
      if (xs.size() != ys.size()) {
        why = "array size mismatch";
        return false;
      }
      for (std::size_t i = 0; i < xs.size(); ++i)
        if (!same_tree(xs[i], ys[i], why)) return false;
      return true;
    }
    case Value::Kind::Object: {
      const auto& xs = a.as_object();
      const auto& ys = b.as_object();
      if (xs.size() != ys.size()) {
        why = "object size mismatch";
        return false;
      }
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].first != ys[i].first) {
          why = "object key mismatch at index " + std::to_string(i);
          return false;
        }
        if (!same_tree(xs[i].second, ys[i].second, why)) return false;
      }
      return true;
    }
  }
  why = "unreachable kind";
  return false;
}

std::string describe_value(const Value& v) { return v.dump(); }

}  // namespace

// parse(dump(v)) reproduces v structurally, and re-dumping the parsed
// tree is byte-identical — dump is a fixpoint encoding.
PROP_TEST_WITH_PARAMS(PropJson, DumpParseRoundTripIsLossless, 1000) {
  prop.check(
      roleshare::testgen::json_value(3),
      [](const Value& v) {
        const std::string text = v.dump();
        const Value back = roleshare::util::json::parse(text);
        std::string why;
        if (!same_tree(v, back, why))
          return Verdict{false, "structural: " + why};
        const std::string again = back.dump();
        if (again != text)
          return Verdict{false, "dump not a fixpoint: " + text +
                                    " reparsed to " + again};
        return Verdict{};
      },
      describe_value);
}

// Any byte string survives escaping: quotes, backslashes, control bytes
// (NUL included) and raw high bytes all round-trip through dump/parse.
PROP_TEST_WITH_PARAMS(PropJson, StringEscapingRoundTripsEveryByte, 2000) {
  prop.check(roleshare::testgen::byte_string(24), [](const std::string& s) {
    const Value v(s);
    const Value back = roleshare::util::json::parse(v.dump());
    return back.is_string() && back.as_string() == s;
  });
}

// %.17g round-trips every finite double exactly, sign of zero included.
PROP_TEST_WITH_PARAMS(PropJson, FiniteNumbersRoundTripExactly, 4000) {
  prop.check(
      pgen::one_of<double>({
          pgen::real_range(-1e18, 1e18),
          pgen::real_range(-1.0, 1.0),
          pgen::element_of<double>({0.0, -0.0, 5e-324, -5e-324, 1e308,
                                    -1e308, 2.2250738585072014e-308,
                                    1.7976931348623157e308, 0.1, 1.0 / 3.0}),
      }),
      [](double x) {
        const Value back = roleshare::util::json::parse(Value(x).dump());
        if (!back.is_number()) return Verdict{false, "not a number"};
        const double y = back.as_number();
        if (!(x == y) || std::signbit(x) != std::signbit(y))
          return Verdict{false, "reparsed as " + back.dump()};
        return Verdict{};
      });
}

// Non-finite numbers have no JSON literal: they must dump as null (the
// accumulator layer depends on this to ferry empty-round NaNs).
PROP_TEST_WITH_PARAMS(PropJson, NonFiniteDumpsAsNull, 200) {
  prop.check(
      pgen::element_of<double>({std::nan(""), -std::nan(""),
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity()}),
      [](double x) {
        const std::string text = Value(x).dump();
        return text == "null" &&
               roleshare::util::json::parse(text).is_null();
      });
}
