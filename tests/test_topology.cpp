#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace roleshare::net {
namespace {

TEST(Topology, KOutDegreesAndNoSelfLoops) {
  util::Rng rng(1);
  const Topology t = Topology::random_k_out(50, 5, rng);
  EXPECT_EQ(t.node_count(), 50u);
  EXPECT_EQ(t.fan_out(), 5u);
  for (ledger::NodeId v = 0; v < 50; ++v) {
    const auto out = t.out_neighbors(v);
    EXPECT_EQ(out.size(), 5u);
    std::set<ledger::NodeId> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), 5u) << "duplicate edge at node " << v;
    EXPECT_FALSE(unique.contains(v)) << "self loop at node " << v;
    for (const auto to : out) EXPECT_LT(to, 50u);
  }
}

TEST(Topology, ReverseAdjacencyIsConsistent) {
  util::Rng rng(2);
  const Topology t = Topology::random_k_out(30, 4, rng);
  // v in in_neighbors(w)  <=>  w in out_neighbors(v)
  std::size_t forward_edges = 0, reverse_edges = 0;
  for (ledger::NodeId v = 0; v < 30; ++v) {
    forward_edges += t.out_neighbors(v).size();
    reverse_edges += t.in_neighbors(v).size();
    for (const auto w : t.out_neighbors(v)) {
      const auto in = t.in_neighbors(w);
      EXPECT_NE(std::find(in.begin(), in.end(), v), in.end());
    }
  }
  EXPECT_EQ(forward_edges, reverse_edges);
}

TEST(Topology, DeterministicForSameSeed) {
  util::Rng rng1(3), rng2(3);
  const Topology a = Topology::random_k_out(20, 3, rng1);
  const Topology b = Topology::random_k_out(20, 3, rng2);
  for (ledger::NodeId v = 0; v < 20; ++v) {
    const auto oa = a.out_neighbors(v);
    const auto ob = b.out_neighbors(v);
    EXPECT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()));
  }
}

TEST(Topology, RejectsFanOutTooLarge) {
  util::Rng rng(4);
  EXPECT_THROW(Topology::random_k_out(5, 5, rng), std::invalid_argument);
  EXPECT_THROW(Topology::random_k_out(0, 0, rng), std::invalid_argument);
}

TEST(Topology, FromAdjacencyPreservesEdges) {
  const Topology t = Topology::from_adjacency({{1, 2}, {2}, {0}});
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.out_neighbors(0).size(), 2u);
  EXPECT_EQ(t.out_neighbors(1).size(), 1u);
  EXPECT_EQ(t.in_neighbors(2).size(), 2u);
}

TEST(Topology, FromAdjacencyRejectsOutOfRange) {
  EXPECT_THROW(Topology::from_adjacency({{5}}), std::invalid_argument);
}

TEST(Topology, NodeIdBoundsChecked) {
  const Topology t = Topology::from_adjacency({{1}, {0}});
  EXPECT_THROW(t.out_neighbors(2), std::invalid_argument);
  EXPECT_THROW(t.in_neighbors(9), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::net
