// Shared pieces of the sharded-figure workflow: the --agg /
// --run-begin/--run-end / --partial-out / --partial-in /
// --checkpoint-every knob vocabulary, the universal shard-partial
// document format, the checkpointed shard driver every figure bench
// runs its panels through, and the deterministic "series snapshot" JSON
// that the benches and the merge_partials tool both emit — the files
// the CI shard-smoke jobs diff byte-for-byte between a single-process
// run and an N-shard merge (and between a resumed and an uninterrupted
// shard).
//
// Document shapes (all via util::json, so dumps are deterministic):
//
//   partial file   {"kind": ..., "bench": ..., config echo...,
//                   "run_begin", "run_end", "window_end",
//                   "panels": [{panel id fields...,
//                               "partial": ExperimentPartial JSON}]}
//   series file    {"kind": ..., "bench": ..., config echo...,
//                   "run_begin", "run_end", "window_end",
//                   "panels": [{panel id fields..., "series": {...}}]}
//
// Partial files travel through a sim::PartialCodec: --format=json (the
// historical text form) or --format=bin (framed binary columnar,
// DESIGN.md §9). Reads always auto-detect from the leading bytes, so
// resume and merge interoperate across formats; series files stay JSON
// text (they are the byte-diff artifact). Resuming a checkpoint whose
// on-disk format differs from --format is audited up front
// (audit_resume_format): an explicit --format that disagrees fails
// naming both formats, no explicit flag inherits the checkpoint's
// format with a note — either way the rewritten file is re-encoded
// whole in exactly one format, never a mix. With --store=DIR a finished
// window is also published to (and served from) a content-addressed
// sim::ResultStore keyed by spec hash + backend + window — re-running
// an identical (config, window) becomes a cache hit, not a recompute.
//
// A partial file with run_end < window_end is an *unfinished
// checkpoint*: the writer intended to execute up to window_end but
// stopped (crash, --stop-after). Feed it back through --partial-in to
// resume; merge_partials refuses it loudly.
//
// The series snapshot deliberately excludes volatile fields (wall time,
// git SHA, accumulator byte counts): everything in it is a pure function
// of (config, seeds), which is what makes the byte-diff meaningful.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/defection_experiment.hpp"
#include "sim/longhorizon.hpp"
#include "sim/partial.hpp"
#include "sim/partial_codec.hpp"
#include "sim/result_store.hpp"
#include "sim/reward_experiment.hpp"
#include "sim/strategic_loop.hpp"
#include "util/json.hpp"

namespace roleshare::bench {

/// --agg={exact,streaming}; defaults to exact, fails loudly on anything
/// else.
inline sim::AggBackend arg_agg(int argc, char** argv) {
  return sim::parse_agg_backend(arg_string(argc, argv, "agg", "exact"));
}

/// --format={json,bin}: the partial-file encoding this process WRITES
/// (reads always auto-detect). Defaults to json, fails loudly otherwise.
inline sim::PartialFormat arg_partial_format(int argc, char** argv) {
  return sim::parse_partial_format(
      arg_string(argc, argv, "format", "json"));
}

/// --run-begin=B / --run-end=E select the global run window [B, E) this
/// process executes; either side defaults (to 0 / `runs`) when only the
/// other is given, and the whole range when neither is. An explicitly
/// empty window is rejected here: RunShard{0, 0} is the whole-range
/// sentinel, so mapping a script's `--run-end=0` onto it would silently
/// execute every run instead of failing.
inline sim::RunShard arg_run_shard(int argc, char** argv, std::size_t runs) {
  const long long begin = arg_int(argc, argv, "run-begin", -1);
  const long long end = arg_int(argc, argv, "run-end", -1);
  if (begin < 0 && end < 0) return {};
  sim::RunShard shard;
  shard.begin = begin < 0 ? 0 : static_cast<std::size_t>(begin);
  shard.end = end < 0 ? runs : static_cast<std::size_t>(end);
  if (shard.begin >= shard.end) {
    throw std::invalid_argument(
        "--run-begin/--run-end window [" + std::to_string(shard.begin) +
        ", " + std::to_string(shard.end) + ") is empty");
  }
  return shard;
}

/// The full shard-worker knob set of a figure bench. --checkpoint-every,
/// --stop-after and --partial-in only make sense when the executed state
/// is persisted, so they require --partial-out.
struct ShardKnobs {
  std::size_t runs = 0;              // the experiment's total run count
  sim::RunShard shard{};             // CLI window (whole range by default)
  std::size_t checkpoint_every = 0;  // rewrite the partial every N runs
  std::size_t stop_after = 0;        // stop (checkpointing) after N runs
  std::string partial_in;            // resume from this checkpoint file
  std::string partial_out;           // shard-worker mode when non-empty
  /// Encoding of everything this process writes (reads auto-detect).
  sim::PartialFormat format = sim::PartialFormat::Json;
  /// True when --format was passed on the command line (as opposed to
  /// the json default applying). Decides how a resume reacts to a
  /// checkpoint in the other format — see audit_resume_format.
  bool format_explicit = false;
  /// Content-addressed result store directory; empty = no store.
  std::string store_dir;
  /// Invoked with the resume cursor after every mid-window checkpoint
  /// write (NOT after the final complete document) — the orchestrator
  /// worker's PROGRESS hook. Null = no observer.
  std::function<void(std::size_t)> on_checkpoint;
};

/// Resume-format audit. Rewrites re-encode the FULL document through
/// knobs.format, so a resumed chain can never emit a half-and-half
/// file — but it CAN silently flip a bin checkpoint chain back to json
/// (the default), inflating every subsequent checkpoint and confusing
/// the partial_bytes trend. So: an explicit --format that disagrees
/// with the checkpoint's detected on-disk format is an error naming
/// both formats; no explicit flag inherits the checkpoint's format,
/// with a printed note. No-op when there is nothing to resume.
inline void audit_resume_format(ShardKnobs& knobs) {
  if (knobs.partial_in.empty()) return;
  const sim::PartialFormat on_disk = sim::detect_partial_format(
      read_text_file(knobs.partial_in), knobs.partial_in);
  if (on_disk == knobs.format) return;
  if (knobs.format_explicit) {
    throw std::invalid_argument(
        "--format=" + std::string(sim::to_string(knobs.format)) +
        " conflicts with --partial-in checkpoint " + knobs.partial_in +
        ", which is " + sim::to_string(on_disk) +
        " — drop --format to continue the chain in " +
        sim::to_string(on_disk) + ", or re-encode the checkpoint first");
  }
  std::printf("[resume] inheriting %s format from %s (no explicit "
              "--format; the chain stays in one encoding)\n",
              sim::to_string(on_disk), knobs.partial_in.c_str());
  knobs.format = on_disk;
}

inline ShardKnobs arg_shard_knobs(int argc, char** argv, std::size_t runs) {
  ShardKnobs knobs;
  knobs.runs = runs;
  knobs.shard = arg_run_shard(argc, argv, runs);
  knobs.checkpoint_every = static_cast<std::size_t>(
      arg_int(argc, argv, "checkpoint-every", 0));
  knobs.stop_after =
      static_cast<std::size_t>(arg_int(argc, argv, "stop-after", 0));
  knobs.partial_in = arg_string(argc, argv, "partial-in", "");
  knobs.partial_out = arg_string(argc, argv, "partial-out", "");
  knobs.format = arg_partial_format(argc, argv);
  knobs.format_explicit = !arg_string(argc, argv, "format", "").empty();
  knobs.store_dir = arg_string(argc, argv, "store", "");
  if (knobs.partial_out.empty() &&
      (knobs.checkpoint_every > 0 || knobs.stop_after > 0 ||
       !knobs.partial_in.empty())) {
    throw std::invalid_argument(
        "--checkpoint-every / --stop-after / --partial-in require "
        "--partial-out (the executed state must be persisted somewhere)");
  }
  audit_resume_format(knobs);
  return knobs;
}

/// The config-echo header both document kinds share. `kind` is the
/// experiment family ("defection" / "reward" / "strategic") merge_partials
/// dispatches on; `echo` is the bench's own config summary and must be a
/// pure function of the knobs (no wall time, no git SHA).
inline util::json::Value shard_document_header(
    const std::string& kind, const std::string& bench,
    std::vector<std::pair<std::string, util::json::Value>> echo) {
  util::json::Value v = util::json::Value::object();
  v.set("kind", kind);
  v.set("bench", bench);
  for (auto& [key, value] : echo) v.set(key, std::move(value));
  return v;
}

/// Builds the partial document for `partials` covering runs
/// [run_begin, run_end) of window [run_begin, window_end).
template <typename PartialT>
util::json::Value partial_document(
    const util::json::Value& header, std::size_t run_begin,
    std::size_t run_end, std::size_t window_end,
    const std::vector<PartialT>& partials,
    const std::function<util::json::Value(std::size_t)>& panel_meta) {
  util::json::Value doc = header;
  doc.set("run_begin", run_begin);
  doc.set("run_end", run_end);
  doc.set("window_end", window_end);
  util::json::Value panels = util::json::Value::array();
  for (std::size_t i = 0; i < partials.size(); ++i) {
    util::json::Value panel = panel_meta(i);
    panel.set("partial", partials[i].to_json());
    panels.push_back(std::move(panel));
  }
  doc.set("panels", std::move(panels));
  return doc;
}

/// Encodes + writes a partial document through the chosen codec;
/// returns the byte size on disk (the BENCH_*.json size-win field).
template <typename PartialT>
std::size_t write_partial_document(
    const std::string& path, const util::json::Value& header,
    std::size_t run_begin, std::size_t run_end, std::size_t window_end,
    const std::vector<PartialT>& partials,
    const std::function<util::json::Value(std::size_t)>& panel_meta,
    sim::PartialFormat format = sim::PartialFormat::Json) {
  const std::string bytes = sim::partial_codec(format).encode(
      partial_document(header, run_begin, run_end, window_end, partials,
                       panel_meta));
  write_text_file(path, bytes);
  return bytes.size();
}

/// The result-store key of one (header, window): the spec hash digests
/// the full config echo, so two runs share an entry only when every
/// result-affecting knob agrees (the header-echo re-check on load is the
/// digest-collision guard).
inline sim::ResultKey store_key_of(const util::json::Value& header,
                                   std::size_t run_begin,
                                   std::size_t run_end) {
  sim::ResultKey key;
  key.kind = header.at("kind").as_string();
  key.bench = header.at("bench").as_string();
  key.spec_hash = sim::spec_hash_hex(header);
  key.backend = sim::parse_agg_backend(header.at("agg").as_string());
  key.run_begin = run_begin;
  key.run_end = run_end;
  return key;
}

/// Writes a series document: same header/window layout, panels carry
/// "series" objects instead of partials.
inline void write_series_document(const std::string& path,
                                  const util::json::Value& header,
                                  std::size_t run_begin, std::size_t run_end,
                                  util::json::Value panels) {
  util::json::Value doc = header;
  doc.set("run_begin", run_begin);
  doc.set("run_end", run_end);
  doc.set("window_end", run_end);
  doc.set("panels", std::move(panels));
  write_text_file(path, doc.dump() + "\n");
}

/// What a checkpointed shard execution produced. `complete` is false only
/// when --stop-after cut the window short (the checkpoint was written).
template <typename PartialT>
struct ShardExecution {
  std::vector<PartialT> partials;
  std::size_t window_begin = 0;
  std::size_t cursor = 0;      // first run NOT executed
  std::size_t window_end = 0;
  /// Bytes of the last partial document persisted (file or store) —
  /// the per-format size-win field of BENCH_*_shard.json.
  std::size_t partial_bytes = 0;
  /// True when the window was served from the result store instead of
  /// being recomputed.
  bool store_hit = false;
  /// Runs actually executed by THIS invocation (resumed or cached runs
  /// excluded) — the orchestrator's kill-budget accounting unit.
  std::size_t executed = 0;
  bool complete() const { return cursor == window_end; }
};

/// Validates a decoded partial document against this invocation's header
/// and panel layout, then adopts its partials and window into `exec`.
/// `origin` names the byte source ("--partial-in file X", "store entry
/// Y") in every refusal. Shared by the resume and cache-hit paths.
template <typename PartialT>
void load_partial_document(const util::json::Value& doc,
                           const std::string& origin,
                           const util::json::Value& header,
                           std::size_t panel_count,
                           ShardExecution<PartialT>& exec) {
  const std::string& doc_kind = doc.at("kind").as_string();
  const std::string& kind = header.at("kind").as_string();
  if (doc_kind != kind) {
    throw std::invalid_argument(origin + " is kind \"" + doc_kind +
                                "\" but this bench produces \"" + kind +
                                "\" partials");
  }
  // The document's config echo must match this invocation BEFORE any run
  // executes or any cached result is adopted — resuming (or serving) a
  // 10k-run shard under the wrong knobs must not burn or fake a
  // sub-window of compute. (The envelope's spec hash re-checks on merge
  // as the authoritative guard.)
  for (const auto& [key, value] : header.as_object()) {
    const util::json::Value* other = doc.find(key);
    if (other == nullptr || other->dump() != value.dump()) {
      throw std::invalid_argument(
          origin + " was produced under a different config: \"" + key +
          "\" is " + (other ? other->dump() : std::string("absent")) +
          " there, this invocation has " + value.dump());
    }
  }
  const auto& panels = doc.at("panels").as_array();
  if (panels.size() != panel_count) {
    throw std::invalid_argument(origin + " has " +
                                std::to_string(panels.size()) +
                                " panels, this bench produces " +
                                std::to_string(panel_count));
  }
  exec.partials.clear();
  for (const util::json::Value& panel : panels)
    exec.partials.push_back(PartialT::from_json(panel.at("partial")));
  exec.window_begin = doc.at("run_begin").as_size();
  exec.cursor = doc.at("run_end").as_size();
  exec.window_end = doc.at("window_end").as_size();
}

/// The checkpointed shard driver every figure bench runs its panels
/// through. Executes the CLI window (or resumes the --partial-in
/// checkpoint) in sub-windows of --checkpoint-every runs, merging each
/// sub-window's partials in window order — which is why a
/// checkpointed-then-resumed shard is bit-identical (exact backend) to
/// an uninterrupted one — and rewriting --partial-out at every
/// checkpoint with the resume cursor in the envelope.
///
///   run_panel(panel_index, sub_window) -> PartialT executes one panel's
///   runs for one sub-window; panel_meta(panel_index) -> the panel's id
///   fields for the document.
template <typename PartialT, typename RunPanelFn>
ShardExecution<PartialT> run_sharded_panels(
    const ShardKnobs& knobs, std::size_t panel_count,
    const util::json::Value& header,
    const std::function<util::json::Value(std::size_t)>& panel_meta,
    RunPanelFn&& run_panel) {
  ShardExecution<PartialT> exec;
  exec.window_begin = knobs.shard.whole() ? 0 : knobs.shard.begin;
  exec.window_end = knobs.shard.whole() ? knobs.runs : knobs.shard.end;
  exec.cursor = exec.window_begin;

  if (!knobs.partial_in.empty()) {
    const util::json::Value doc = sim::decode_partial_document(
        read_text_file(knobs.partial_in), knobs.partial_in);
    load_partial_document(doc, "--partial-in file " + knobs.partial_in,
                          header, panel_count, exec);
    // The window comes from the file; an explicit CLI window that
    // disagrees must not be silently overridden.
    if (!knobs.shard.whole() && (knobs.shard.begin != exec.window_begin ||
                                 knobs.shard.end != exec.window_end)) {
      throw std::invalid_argument(
          "--run-begin/--run-end window [" +
          std::to_string(knobs.shard.begin) + ", " +
          std::to_string(knobs.shard.end) + ") conflicts with " +
          knobs.partial_in + ", which covers window [" +
          std::to_string(exec.window_begin) + ", " +
          std::to_string(exec.window_end) +
          ") — drop the flags or fix the file");
    }
    std::printf("[resume] %s: runs [%zu, %zu) of window [%zu, %zu) already "
                "executed\n",
                knobs.partial_in.c_str(), exec.window_begin, exec.cursor,
                exec.window_begin, exec.window_end);
  } else if (!knobs.store_dir.empty()) {
    // A finished (config, window) may already be published — serve it
    // instead of recomputing. Every failure mode of an entry (corrupt
    // frame, foreign config behind a colliding digest, incomplete
    // window) downgrades to a miss with a note, never an error.
    const sim::ResultStore store(knobs.store_dir);
    const sim::ResultKey key =
        store_key_of(header, exec.window_begin, exec.window_end);
    if (const auto cached = store.lookup(key)) {
      try {
        const std::string origin = "store entry " + store.entry_path(key);
        const util::json::Value doc =
            sim::decode_partial_document(*cached, origin);
        ShardExecution<PartialT> hit;
        load_partial_document(doc, origin, header, panel_count, hit);
        if (!hit.complete() || hit.window_begin != exec.window_begin ||
            hit.window_end != exec.window_end) {
          throw std::invalid_argument(
              origin + " covers runs [" + std::to_string(hit.window_begin) +
              ", " + std::to_string(hit.cursor) + ") of window [" +
              std::to_string(hit.window_begin) + ", " +
              std::to_string(hit.window_end) +
              ") — not this invocation's finished window");
        }
        exec = std::move(hit);
        exec.store_hit = true;
        std::printf("[store] cache hit: %s — runs [%zu, %zu) served "
                    "without recomputation\n",
                    key.id().c_str(), exec.window_begin, exec.window_end);
      } catch (const std::exception& e) {
        std::printf("[store] ignoring unusable entry: %s\n", e.what());
      }
    }
  }

  while (exec.cursor < exec.window_end) {
    std::size_t step = exec.window_end - exec.cursor;
    if (knobs.checkpoint_every > 0)
      step = std::min(step, knobs.checkpoint_every);
    if (knobs.stop_after > 0)
      step = std::min(step, knobs.stop_after - exec.executed);
    const sim::RunShard sub{exec.cursor, exec.cursor + step};
    for (std::size_t i = 0; i < panel_count; ++i) {
      PartialT part = run_panel(i, sub);
      if (exec.partials.size() <= i) {
        exec.partials.push_back(std::move(part));
      } else {
        // Spec-hash / backend / contiguity checks live in the envelope:
        // resuming under a different config fails loudly here.
        exec.partials[i].merge(part);
      }
    }
    exec.cursor += step;
    exec.executed += step;
    for (PartialT& partial : exec.partials)
      partial.extend_window(exec.window_end);
    const bool hit_stop =
        knobs.stop_after > 0 && exec.executed >= knobs.stop_after;
    if (!knobs.partial_out.empty() && !exec.complete() &&
        (hit_stop || knobs.checkpoint_every > 0)) {
      exec.partial_bytes = write_partial_document(
          knobs.partial_out, header, exec.window_begin, exec.cursor,
          exec.window_end, exec.partials, panel_meta, knobs.format);
      std::printf("[checkpoint] wrote %s at run cursor %zu of window "
                  "[%zu, %zu)\n",
                  knobs.partial_out.c_str(), exec.cursor, exec.window_begin,
                  exec.window_end);
      if (knobs.on_checkpoint) knobs.on_checkpoint(exec.cursor);
    }
    if (hit_stop && !exec.complete()) {
      std::printf("[checkpoint] stopping after %zu runs; resume with "
                  "--partial-in=%s\n",
                  exec.executed, knobs.partial_out.c_str());
      return exec;
    }
  }

  // The window is complete (freshly executed, resumed to completion, or
  // a cache hit). Encode the finished document ONCE: --partial-out gets
  // it as a file, --store publishes it content-addressed. A cache hit is
  // re-encoded rather than copied so the bytes written under
  // --format=X are identical whether or not the store served the run.
  if (!knobs.partial_out.empty() || !knobs.store_dir.empty()) {
    const std::string bytes =
        sim::partial_codec(knobs.format)
            .encode(partial_document(header, exec.window_begin, exec.cursor,
                                     exec.window_end, exec.partials,
                                     panel_meta));
    exec.partial_bytes = bytes.size();
    if (!knobs.partial_out.empty()) write_text_file(knobs.partial_out, bytes);
    if (!knobs.store_dir.empty() && !exec.store_hit) {
      sim::ResultStore store(knobs.store_dir);
      const std::string path = store.insert(
          store_key_of(header, exec.window_begin, exec.window_end), bytes);
      std::printf("[store] published runs [%zu, %zu) to %s (%zu bytes, "
                  "%s)\n",
                  exec.window_begin, exec.window_end, path.c_str(),
                  bytes.size(), sim::to_string(knobs.format));
    }
  }
  return exec;
}

/// The shard-worker epilogue every figure bench shares: true means the
/// invocation is done (either --stop-after checkpointed and stopped, or
/// the shard partial is on disk) and the caller should exit 0 without
/// producing a figure. Emits BENCH_<bench>_shard.json (partial byte
/// size per format, cache-hit flag, wall time) so the binary-vs-json
/// size win lands in the perf trajectory.
template <typename PartialT>
bool shard_worker_done(const ShardExecution<PartialT>& exec,
                       const ShardKnobs& knobs,
                       const util::json::Value& header, double wall_ms) {
  const bool done = !exec.complete() || !knobs.partial_out.empty();
  if (!done) return false;
  if (exec.complete()) {
    std::printf("\n[shard] wrote partial for runs [%zu, %zu) of %zu to %s "
                "(%zu bytes, %s%s)\n",
                exec.window_begin, exec.cursor, knobs.runs,
                knobs.partial_out.c_str(), exec.partial_bytes,
                sim::to_string(knobs.format),
                exec.store_hit ? ", store hit" : "");
  }
  emit_json(header.at("bench").as_string() + "_shard",
            {{"run_begin", static_cast<double>(exec.window_begin)},
             {"run_end", static_cast<double>(exec.cursor)},
             {"window_end", static_cast<double>(exec.window_end)},
             {"partial_bytes", static_cast<double>(exec.partial_bytes)},
             {"partial_format", sim::to_string(knobs.format)},
             {"store_hit", exec.store_hit ? 1.0 : 0.0},
             {"wall_ms", wall_ms}});
  return true;
}

// ---------------------------------------------------------------------
// Deterministic per-panel series snapshots (no volatile fields).

inline util::json::Value defection_series_json(
    const sim::DefectionSeries& series) {
  using util::json::Value;
  Value v = Value::object();
  Value fin = Value::array(), tent = Value::array(), none = Value::array();
  for (const sim::RoundAggregate& agg : series.rounds) {
    fin.push_back(agg.final_pct);
    tent.push_back(agg.tentative_pct);
    none.push_back(agg.none_pct);
  }
  v.set("final", std::move(fin));
  v.set("tentative", std::move(tent));
  v.set("none", std::move(none));
  Value live = Value::array(), coop = Value::array();
  for (const double x : series.live_series) live.push_back(x);
  for (const double x : series.cooperation_series) coop.push_back(x);
  v.set("live", std::move(live));
  v.set("coop", std::move(coop));
  v.set("runs_with_progress", series.runs_with_progress);
  v.set("min_live", series.min_live);
  v.set("max_live", series.max_live);
  return v;
}

inline util::json::Value reward_series_json(
    const sim::RewardExperimentResult& result) {
  using util::json::Value;
  Value v = Value::object();
  Value per_round = Value::array(), foundation = Value::array();
  for (const double x : result.bi_per_round_mean) per_round.push_back(x);
  for (const double x : result.foundation_per_round) foundation.push_back(x);
  v.set("bi_per_round_mean", std::move(per_round));
  v.set("foundation_per_round", std::move(foundation));
  v.set("mean_bi", result.mean_bi);
  v.set("mean_total_stake", result.mean_total_stake);
  v.set("mean_alpha", result.mean_alpha);
  v.set("mean_beta", result.mean_beta);
  v.set("infeasible_rounds", result.infeasible_rounds);
  return v;
}

inline util::json::Value strategic_series_json(
    const sim::StrategicEnsembleResult& result) {
  using util::json::Value;
  Value v = Value::object();
  Value coop = Value::array(), fin = Value::array(), reward = Value::array();
  for (const double x : result.cooperation_series) coop.push_back(x);
  for (const double x : result.final_series) fin.push_back(x);
  for (const double x : result.reward_series) reward.push_back(x);
  v.set("cooperation", std::move(coop));
  v.set("final", std::move(fin));
  v.set("reward", std::move(reward));
  v.set("mean_total_reward_algos", result.mean_total_reward_algos);
  v.set("mean_final_cooperation", result.mean_final_cooperation);
  return v;
}

inline util::json::Value longhorizon_series_json(
    const sim::LongHorizonResult& result) {
  using util::json::Value;
  Value v = Value::object();
  Value gini = Value::array(), top = Value::array(), corr = Value::array(),
        fin = Value::array();
  for (const double x : result.gini_per_round) gini.push_back(x);
  for (const double x : result.top_share_per_round) top.push_back(x);
  for (const double x : result.defector_corr_per_round) corr.push_back(x);
  for (const double x : result.final_pct_per_round) fin.push_back(x);
  v.set("gini", std::move(gini));
  v.set("top_share", std::move(top));
  v.set("defector_corr", std::move(corr));
  v.set("final_pct", std::move(fin));
  v.set("mean_end_gini", result.mean_end_gini);
  v.set("mean_end_top_share", result.mean_end_top_share);
  v.set("mean_end_defector_corr", result.mean_end_defector_corr);
  v.set("mean_paid_algos", result.mean_paid_algos);
  return v;
}

/// The fig3-style per-round outcome table.
inline void print_defection_table(const sim::DefectionSeries& series) {
  std::printf("%6s %10s %12s %10s\n", "round", "final%", "tentative%",
              "none%");
  for (std::size_t r = 0; r < series.rounds.size(); ++r) {
    const sim::RoundAggregate& agg = series.rounds[r];
    std::printf("%6zu %10.1f %12.1f %10.1f\n", r + 1, agg.final_pct,
                agg.tentative_pct, agg.none_pct);
  }
}

inline double mean_final_pct(const sim::DefectionSeries& series) {
  double mean_final = 0;
  for (const sim::RoundAggregate& agg : series.rounds)
    mean_final += agg.final_pct;
  return series.rounds.empty()
             ? 0.0
             : mean_final / static_cast<double>(series.rounds.size());
}

}  // namespace roleshare::bench
