// Cryptographic sortition (Gilad et al., SOSP'17, Algorithm 1).
//
// A node with stake w out of total stake W is selected for a role with
// expected committee *stake* tau: each of its w stake units is independently
// selected with probability p = tau / W. The number of selected sub-users j
// is found by inverting the Binomial(w, p) CDF at the VRF hash-ratio, so
// selection is deterministic, verifiable, and E[sum of j over nodes] = tau.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/vrf.hpp"
#include "util/thread_pool.hpp"

namespace roleshare::crypto {

/// Result of running sortition for one (node, round, step).
struct SortitionResult {
  std::uint64_t sub_users = 0;  // j: how many of the node's stake units won
  VrfOutput vrf;                // proof material carried in messages

  bool selected() const { return sub_users > 0; }

  /// Priority for leader election: the best (numerically highest) of the
  /// sub-user priorities H(vrf_output || sub_user_index). Zero when not
  /// selected.
  std::uint64_t priority() const;
};

/// Parameters binding a sortition call to a protocol role.
struct SortitionParams {
  std::uint64_t expected_stake = 0;  // tau for this role/step
  std::int64_t total_stake = 0;      // W: all online stake
};

/// Inverts the Binomial(stake, tau/W) CDF at `ratio` in [0,1).
/// Returns the number of selected sub-users. Exposed separately for tests.
std::uint64_t binomial_inversion(double ratio, std::int64_t stake,
                                 double p);

/// Runs sortition for the given key over `input`, with the node's stake.
/// Requires 0 < params.expected_stake and stake <= params.total_stake.
SortitionResult sortition(const KeyPair& key, const VrfInput& input,
                          std::int64_t stake, const SortitionParams& params);

/// Runs sortition for every key at once — the per-round "each node draws
/// locally" loop, batched so it can fan out across the inner executor.
/// Results are written at their node index, so the output is identical for
/// every executor (serial included). Requires keys.size() == stakes.size().
std::vector<SortitionResult> sortition_batch(
    const std::vector<KeyPair>& keys, const VrfInput& input,
    const std::vector<std::int64_t>& stakes, const SortitionParams& params,
    const util::InnerExecutor& exec = {});

/// Allocation-free batched form: writes into `results` (resized to
/// keys.size()). Hashes through fixed-layout SHA-256 templates — the VRF
/// input message is computed once per batch and the per-node sign/output
/// messages reuse a precomputed padded block, skipping the streaming
/// hasher entirely. Bit-identical to per-node sortition() calls.
void sortition_batch_into(const std::vector<KeyPair>& keys,
                          const VrfInput& input,
                          const std::vector<std::int64_t>& stakes,
                          const SortitionParams& params,
                          std::vector<SortitionResult>& results,
                          const util::InnerExecutor& exec = {});

/// Verifies a sortition proof allegedly produced by `pk` and recomputes the
/// winning sub-user count. Returns 0 sub-users if the proof is invalid.
std::uint64_t verify_sortition(const PublicKey& pk, const VrfInput& input,
                               const VrfOutput& vrf, std::int64_t stake,
                               const SortitionParams& params);

}  // namespace roleshare::crypto
