// S2 — strategic best-response ensemble: the paper's headline
// incentive-compatibility claim as a shardable Monte-Carlo sweep.
//
// Two panels, one per reward scheme:
//   foundation  stake-proportional Table-III rewards — cooperation
//               unravels (Theorem 2) and consensus degrades with it;
//   role-based  Algorithm-1 minimal B_i — the cooperative profile is
//               self-enforcing (Theorem 3) at a fraction of the cost.
//
// Scheme table, seeds and config construction live in
// bench/bench_drivers.hpp (make_strategic_driver) — shared with the
// orchestrate coordinator/worker pair.
//
// Each panel is an independent ensemble of strategic loops on the shared
// ExperimentRunner engine (run k = stream root.split(k)), reduced through
// a mergeable StrategicPartial — so the ensemble shards, checkpoints and
// resumes exactly like fig3/fig6/fig7 (DESIGN.md §6):
//
//   $ ./strategic_ensemble --runs=9 --run-begin=0 --run-end=3 \
//       --partial-out=s0.json
//   $ ./strategic_ensemble --runs=9 --run-begin=3 --run-end=9 \
//       --checkpoint-every=2 --partial-out=s1.json
//   $ ./merge_partials --series-out=merged.json s0.json s1.json
#include <cstdio>
#include <string>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/strategic_loop.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const bench::StrategicDriver d = bench::make_strategic_driver(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, d.runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Strategic ensemble",
                      "myopic best-response dynamics per reward scheme");
  std::printf("nodes=%zu runs=%zu rounds=%zu seed=%llu threads=%zu "
              "inner-threads=%zu agg=%s (shard with --run-begin/--run-end "
              "+ --partial-out, resume with --checkpoint-every + "
              "--partial-in)\n",
              d.nodes, d.runs, d.rounds,
              static_cast<unsigned long long>(d.seed), d.threads,
              d.inner_threads, sim::to_string(d.agg));

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::StrategicPartial>(
      knobs, d.panels.panel_count, d.panels.header, d.panels.panel_meta,
      d.panels.run_panel);
  if (bench::shard_worker_done(exec, knobs, d.panels.header,
                               timer.elapsed_ms()))
    return 0;

  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(d.nodes)},
      {"runs", static_cast<double>(d.runs)},
      {"rounds", static_cast<double>(d.rounds)},
      {"threads", static_cast<double>(d.threads)},
      {"inner_threads", static_cast<double>(d.inner_threads)},
      {"agg", sim::to_string(d.agg)}};
  std::size_t accumulator_bytes = 0;
  util::json::Value series_panels = util::json::Value::array();

  for (std::size_t panel = 0; panel < d.panels.panel_count; ++panel) {
    const sim::StrategicEnsembleResult result =
        exec.partials[panel].finalize();
    accumulator_bytes += result.accumulator_bytes;

    std::printf("\n--- %s rewards ---\n",
                bench::strategic::kSchemeNames[panel]);
    std::printf("%6s %14s %10s %14s\n", "round", "cooperating%", "final%",
                "reward(Algos)");
    for (std::size_t r = 0; r < d.rounds; ++r) {
      std::printf("%6zu %14.1f %10.1f %14.4f\n", r + 1,
                  result.cooperation_series[r] * 100,
                  result.final_series[r] * 100, result.reward_series[r]);
    }
    std::printf("mean total paid: %.4f Algos | cooperation at horizon: "
                "%.0f%%\n",
                result.mean_total_reward_algos,
                result.mean_final_cooperation * 100);
    json_fields.emplace_back(
        std::string("final_coop_") + bench::strategic::kSchemeNames[panel],
        result.mean_final_cooperation);
    json_fields.emplace_back(
        std::string("total_reward_") + bench::strategic::kSchemeNames[panel],
        result.mean_total_reward_algos);

    util::json::Value v = d.panels.panel_meta(panel);
    v.set("series", bench::strategic_series_json(result));
    series_panels.push_back(std::move(v));
  }

  if (!series_out.empty()) {
    bench::write_series_document(series_out, d.panels.header,
                                 exec.window_begin, exec.cursor,
                                 std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  json_fields.emplace_back("accumulator_bytes",
                           static_cast<double>(accumulator_bytes));
  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("strategic_ensemble", json_fields);

  std::printf("\nShape check: cooperation under the Foundation scheme decays\n"
              "toward free-riding while the role-based scheme holds it at\n"
              "(or near) 100%% — at a far smaller total reward.\n");
  return 0;
}
