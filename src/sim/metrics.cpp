#include "sim/metrics.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

OutcomeMetrics::OutcomeMetrics(std::size_t rounds)
    : per_round_final_(rounds),
      per_round_tentative_(rounds),
      per_round_none_(rounds) {
  RS_REQUIRE(rounds > 0, "metrics need at least one round");
}

void OutcomeMetrics::record(std::size_t round_index,
                            const RoundResult& result) {
  RS_REQUIRE(round_index < per_round_final_.size(), "round index");
  per_round_final_[round_index].push_back(result.final_fraction * 100.0);
  per_round_tentative_[round_index].push_back(result.tentative_fraction *
                                              100.0);
  per_round_none_[round_index].push_back(result.none_fraction * 100.0);
}

std::size_t OutcomeMetrics::runs_recorded(std::size_t round_index) const {
  RS_REQUIRE(round_index < per_round_final_.size(), "round index");
  return per_round_final_[round_index].size();
}

std::vector<RoundAggregate> OutcomeMetrics::aggregate(
    double trim_fraction) const {
  std::vector<RoundAggregate> out(per_round_final_.size());
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r].final_pct = util::trimmed_mean(per_round_final_[r], trim_fraction);
    out[r].tentative_pct =
        util::trimmed_mean(per_round_tentative_[r], trim_fraction);
    out[r].none_pct = util::trimmed_mean(per_round_none_[r], trim_fraction);
  }
  return out;
}

}  // namespace roleshare::sim
