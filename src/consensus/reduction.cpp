#include "consensus/reduction.hpp"

namespace roleshare::consensus {

crypto::Hash256 reduction_step1_value(
    const std::optional<crypto::Hash256>& best_proposal_hash,
    const crypto::Hash256& empty_hash) {
  return best_proposal_hash.value_or(empty_hash);
}

namespace {

crypto::Hash256 quorum_value_or_empty(std::span<const Vote> votes,
                                      double quorum,
                                      const crypto::Hash256& empty_hash) {
  const TallyResult tally = tally_votes(votes, quorum);
  return tally.winner.value_or(empty_hash);
}

}  // namespace

crypto::Hash256 reduction_step2_value(std::span<const Vote> step1_votes,
                                      double quorum,
                                      const crypto::Hash256& empty_hash) {
  return quorum_value_or_empty(step1_votes, quorum, empty_hash);
}

crypto::Hash256 reduction_output(std::span<const Vote> step2_votes,
                                 double quorum,
                                 const crypto::Hash256& empty_hash) {
  return quorum_value_or_empty(step2_votes, quorum, empty_hash);
}

}  // namespace roleshare::consensus
