#include "util/framed_io.hpp"

#include <bit>
#include <cstring>

#include "util/require.hpp"

namespace roleshare::util::framed {

std::uint64_t fnv1a_64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

void append_le(std::string& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t read_le(std::string_view bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------
// Writer

Writer::Writer(std::uint32_t magic, std::uint16_t version) {
  append_le(out_, magic, 4);
  append_le(out_, version, 2);
}

void Writer::begin_section(std::string_view name) {
  RS_REQUIRE(!finished_, "framed::Writer: begin_section after finish");
  RS_REQUIRE(!in_section_, "framed::Writer: nested section \"" +
                               std::string(name) + "\"");
  RS_REQUIRE(!name.empty() && name.size() <= 0xffff,
             "framed::Writer: section name must be 1..65535 bytes");
  append_le(out_, name.size(), 2);
  out_.append(name);
  // Length placeholder, patched by end_section once the payload is known.
  append_le(out_, 0, 8);
  section_payload_start_ = out_.size();
  in_section_ = true;
}

void Writer::end_section() {
  RS_REQUIRE(in_section_, "framed::Writer: end_section without a section");
  const std::size_t payload_len = out_.size() - section_payload_start_;
  const std::string_view payload(out_.data() + section_payload_start_,
                                 payload_len);
  const std::uint64_t checksum = fnv1a_64(payload);
  // Patch the length placeholder in place.
  std::uint64_t len = payload_len;
  for (std::size_t i = 0; i < 8; ++i) {
    out_[section_payload_start_ - 8 + i] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
  append_le(out_, checksum, 8);
  in_section_ = false;
}

void Writer::put_u8(std::uint8_t v) {
  RS_REQUIRE(in_section_, "framed::Writer: put outside a section");
  append_le(out_, v, 1);
}
void Writer::put_u16(std::uint16_t v) {
  RS_REQUIRE(in_section_, "framed::Writer: put outside a section");
  append_le(out_, v, 2);
}
void Writer::put_u32(std::uint32_t v) {
  RS_REQUIRE(in_section_, "framed::Writer: put outside a section");
  append_le(out_, v, 4);
}
void Writer::put_u64(std::uint64_t v) {
  RS_REQUIRE(in_section_, "framed::Writer: put outside a section");
  append_le(out_, v, 8);
}
void Writer::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}
void Writer::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}
void Writer::put_string(std::string_view s) {
  RS_REQUIRE(s.size() <= 0xffffffffULL,
             "framed::Writer: string longer than u32 length prefix");
  put_u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}
void Writer::put_f64_column(const std::vector<double>& column) {
  put_u64(column.size());
  for (const double v : column) put_f64(v);
}
void Writer::put_bytes(std::string_view bytes) {
  RS_REQUIRE(in_section_, "framed::Writer: put outside a section");
  out_.append(bytes);
}

std::string Writer::finish() {
  RS_REQUIRE(!in_section_, "framed::Writer: finish inside section");
  RS_REQUIRE(!finished_, "framed::Writer: finish called twice");
  finished_ = true;
  return std::move(out_);
}

// ---------------------------------------------------------------------
// Reader

Reader::Reader(std::string_view data, std::uint32_t magic,
               std::uint16_t expected_version, std::string origin)
    : data_(data), origin_(std::move(origin)) {
  if (data_.size() < 6) {
    fail("frame header needs 6 bytes (magic + version), only " +
         std::to_string(data_.size()) + " present");
  }
  const auto got_magic = static_cast<std::uint32_t>(read_le(data_.substr(0, 4)));
  if (got_magic != magic) {
    char want[5] = {static_cast<char>(magic & 0xff),
                    static_cast<char>((magic >> 8) & 0xff),
                    static_cast<char>((magic >> 16) & 0xff),
                    static_cast<char>((magic >> 24) & 0xff), '\0'};
    fail("bad magic: expected \"" + std::string(want) + "\"");
  }
  version_ = static_cast<std::uint16_t>(read_le(data_.substr(4, 2)));
  if (version_ != expected_version) {
    fail("format version " + std::to_string(version_) +
         " is not supported by this build (expected version " +
         std::to_string(expected_version) + ")");
  }
  pos_ = 6;
}

void Reader::fail(const std::string& what) const {
  std::string msg = origin_.empty() ? "framed frame" : origin_;
  if (in_section_) msg += ", section \"" + section_name_ + "\"";
  msg += ", byte " + std::to_string(pos_) + ": " + what;
  throw Error(msg);
}

std::string_view Reader::take(std::size_t n, const char* what) {
  const std::size_t limit = in_section_ ? section_end_ : data_.size();
  if (n > limit - pos_) {
    fail(std::string("truncated: need ") + std::to_string(n) +
         " bytes for " + what + ", only " + std::to_string(limit - pos_) +
         (in_section_ ? " left in section" : " left in frame"));
  }
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

bool Reader::has_section() const { return pos_ < data_.size(); }

std::string Reader::peek_section_name() const {
  RS_REQUIRE(!in_section_, "framed::Reader: peek_section_name inside a "
                           "section");
  if (!has_section()) fail("truncated: expected a section, frame ends here");
  if (data_.size() - pos_ < 2)
    fail("truncated: need 2 bytes for section name length, only " +
         std::to_string(data_.size() - pos_) + " left in frame");
  const std::size_t name_len =
      static_cast<std::size_t>(read_le(data_.substr(pos_, 2)));
  if (name_len > data_.size() - pos_ - 2)
    fail("truncated: section name declares " + std::to_string(name_len) +
         " bytes, only " + std::to_string(data_.size() - pos_ - 2) +
         " left in frame");
  return std::string(data_.substr(pos_ + 2, name_len));
}

void Reader::begin_section(std::string_view expected_name) {
  RS_REQUIRE(!in_section_, "framed::Reader: nested begin_section");
  if (!has_section()) {
    fail("truncated: expected section \"" + std::string(expected_name) +
         "\" but the frame ends here");
  }
  const std::size_t name_len =
      static_cast<std::size_t>(read_le(take(2, "section name length")));
  const std::string_view name = take(name_len, "section name");
  if (name != expected_name) {
    fail("expected section \"" + std::string(expected_name) +
         "\", found \"" + std::string(name) + "\"");
  }
  const std::uint64_t payload_len = read_le(take(8, "section length"));
  // +8 for the trailing checksum; bounds-check before trusting the length.
  if (payload_len > data_.size() - pos_ ||
      data_.size() - pos_ - static_cast<std::size_t>(payload_len) < 8) {
    fail("truncated: section \"" + std::string(expected_name) +
         "\" declares " + std::to_string(payload_len) +
         " payload bytes (+8 checksum), only " +
         std::to_string(data_.size() - pos_) + " left in frame");
  }
  const std::string_view payload =
      data_.substr(pos_, static_cast<std::size_t>(payload_len));
  const std::uint64_t stored = read_le(
      data_.substr(pos_ + static_cast<std::size_t>(payload_len), 8));
  const std::uint64_t computed = fnv1a_64(payload);
  if (stored != computed) {
    // Set section context so the error names it.
    section_name_ = std::string(expected_name);
    in_section_ = true;
    fail("checksum mismatch: section payload hashes to " +
         std::to_string(computed) + ", frame claims " +
         std::to_string(stored) + " — the frame is corrupt");
  }
  section_name_ = std::string(expected_name);
  section_end_ = pos_ + static_cast<std::size_t>(payload_len);
  in_section_ = true;
}

void Reader::end_section() {
  RS_REQUIRE(in_section_, "framed::Reader: end_section without a section");
  if (pos_ != section_end_) {
    fail("section has " + std::to_string(section_end_ - pos_) +
         " unread trailing bytes — the frame does not match this "
         "build's schema");
  }
  in_section_ = false;
  pos_ += 8;  // skip the (already verified) checksum
}

void Reader::finish() const {
  RS_REQUIRE(!in_section_, "framed::Reader: finish inside a section");
  if (pos_ != data_.size()) {
    std::string msg = origin_.empty() ? "framed frame" : origin_;
    throw Error(msg + ": " + std::to_string(data_.size() - pos_) +
                " trailing bytes after the last section — refusing the "
                "frame");
  }
}

std::uint8_t Reader::get_u8() {
  return static_cast<std::uint8_t>(read_le(take(1, "u8")));
}
std::uint16_t Reader::get_u16() {
  return static_cast<std::uint16_t>(read_le(take(2, "u16")));
}
std::uint32_t Reader::get_u32() {
  return static_cast<std::uint32_t>(read_le(take(4, "u32")));
}
std::uint64_t Reader::get_u64() { return read_le(take(8, "u64")); }
std::int64_t Reader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}
double Reader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string Reader::get_string() {
  const std::size_t n = get_u32();
  return std::string(take(n, "string payload"));
}

std::vector<double> Reader::get_f64_column() {
  const std::uint64_t n = get_u64();
  const std::size_t limit = in_section_ ? section_end_ : data_.size();
  if (n > (limit - pos_) / 8) {
    fail("truncated: f64 column declares " + std::to_string(n) +
         " values (" + std::to_string(n * 8) + " bytes), only " +
         std::to_string(limit - pos_) + " left in section");
  }
  std::vector<double> column;
  column.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) column.push_back(get_f64());
  return column;
}

std::string Reader::get_bytes(std::size_t n) {
  return std::string(take(n, "raw bytes"));
}

bool starts_with_magic(std::string_view data, std::uint32_t magic) {
  return data.size() >= 4 &&
         static_cast<std::uint32_t>(read_le(data.substr(0, 4))) == magic;
}

}  // namespace roleshare::util::framed
