// Shared pieces of the sharded-figure workflow: the --agg and
// --run-begin/--run-end knob vocabulary, the shard-partial document
// format, and the deterministic "series snapshot" JSON that fig3 and the
// merge_partials tool both emit — the file the CI shard-smoke job diffs
// byte-for-byte between a single-process run and an N-shard merge.
//
// Document shapes (all via util::json, so dumps are deterministic):
//
//   partial file   {"bench": ..., config echo..., "run_begin", "run_end",
//                   "panels": [{"rate_pct", "partial": DefectionPartial}]}
//   series file    {"bench": ..., config echo..., "run_begin", "run_end",
//                   "panels": [{"rate_pct", "final": [...], ... }]}
//
// The series snapshot deliberately excludes volatile fields (wall time,
// git SHA, accumulator byte counts): everything in it is a pure function
// of (config, seeds), which is what makes the byte-diff meaningful.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/defection_experiment.hpp"
#include "util/json.hpp"

namespace roleshare::bench {

/// --agg={exact,streaming}; defaults to exact, fails loudly on anything
/// else.
inline sim::AggBackend arg_agg(int argc, char** argv) {
  return sim::parse_agg_backend(arg_string(argc, argv, "agg", "exact"));
}

/// --run-begin=B / --run-end=E select the global run window [B, E) this
/// process executes; either side defaults (to 0 / `runs`) when only the
/// other is given, and the whole range when neither is. An explicitly
/// empty window is rejected here: RunShard{0, 0} is the whole-range
/// sentinel, so mapping a script's `--run-end=0` onto it would silently
/// execute every run instead of failing.
inline sim::RunShard arg_run_shard(int argc, char** argv, std::size_t runs) {
  const long long begin = arg_int(argc, argv, "run-begin", -1);
  const long long end = arg_int(argc, argv, "run-end", -1);
  if (begin < 0 && end < 0) return {};
  sim::RunShard shard;
  shard.begin = begin < 0 ? 0 : static_cast<std::size_t>(begin);
  shard.end = end < 0 ? runs : static_cast<std::size_t>(end);
  if (shard.begin >= shard.end) {
    throw std::invalid_argument(
        "--run-begin/--run-end window [" + std::to_string(shard.begin) +
        ", " + std::to_string(shard.end) + ") is empty");
  }
  return shard;
}

/// The deterministic per-panel series snapshot (no volatile fields).
inline util::json::Value defection_series_json(
    const sim::DefectionSeries& series) {
  using util::json::Value;
  Value v = Value::object();
  Value fin = Value::array(), tent = Value::array(), none = Value::array();
  for (const sim::RoundAggregate& agg : series.rounds) {
    fin.push_back(agg.final_pct);
    tent.push_back(agg.tentative_pct);
    none.push_back(agg.none_pct);
  }
  v.set("final", std::move(fin));
  v.set("tentative", std::move(tent));
  v.set("none", std::move(none));
  Value live = Value::array(), coop = Value::array();
  for (const double x : series.live_series) live.push_back(x);
  for (const double x : series.cooperation_series) coop.push_back(x);
  v.set("live", std::move(live));
  v.set("coop", std::move(coop));
  v.set("runs_with_progress", series.runs_with_progress);
  v.set("min_live", series.min_live);
  v.set("max_live", series.max_live);
  return v;
}

/// The config-echo header both document kinds share.
inline util::json::Value shard_document_header(
    const std::string& bench, std::size_t nodes, std::size_t runs,
    std::size_t rounds, sim::AggBackend agg, double trim,
    std::size_t run_begin, std::size_t run_end) {
  util::json::Value v = util::json::Value::object();
  v.set("bench", bench);
  v.set("nodes", nodes);
  v.set("runs", runs);
  v.set("rounds", rounds);
  v.set("agg", sim::to_string(agg));
  v.set("trim", trim);
  v.set("run_begin", run_begin);
  v.set("run_end", run_end);
  return v;
}

/// The fig3-style per-round outcome table.
inline void print_defection_table(const sim::DefectionSeries& series) {
  std::printf("%6s %10s %12s %10s\n", "round", "final%", "tentative%",
              "none%");
  for (std::size_t r = 0; r < series.rounds.size(); ++r) {
    const sim::RoundAggregate& agg = series.rounds[r];
    std::printf("%6zu %10.1f %12.1f %10.1f\n", r + 1, agg.final_pct,
                agg.tentative_pct, agg.none_pct);
  }
}

inline double mean_final_pct(const sim::DefectionSeries& series) {
  double mean_final = 0;
  for (const sim::RoundAggregate& agg : series.rounds)
    mean_final += agg.final_pct;
  return series.rounds.empty()
             ? 0.0
             : mean_final / static_cast<double>(series.rounds.size());
}

}  // namespace roleshare::bench
