#include "econ/sensitivity.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

Sensitivity compute_sensitivity(const BoundInputs& in,
                                const CostModel& costs) {
  in.validate();
  Sensitivity s;

  const double sl = in.stake_leaders;
  const double sm = in.stake_committee;
  const double sk = in.stake_others;
  const double ml = in.min_stake_leader;
  const double mm = in.min_stake_committee;
  const double mk = in.min_stake_other;

  const double a_num = (costs.leader_cost() - costs.defection_cost()) * sl / ml;
  const double b_num =
      (costs.committee_cost() - costs.defection_cost()) * sm / mm;
  const double d_num = (costs.other_cost() - costs.defection_cost()) * sk / mk;
  const double c_slope = sl / (sk + ml) + sm / (sk + mm);

  s.bi = a_num + b_num + d_num * (1.0 + c_slope);

  s.d_cost_leader = sl / ml;
  s.d_cost_committee = sm / mm;
  s.d_cost_other = sk * (1.0 + c_slope) / mk;
  s.d_cost_sortition =
      -(s.d_cost_leader + s.d_cost_committee + s.d_cost_other);

  // ∂B/∂S_K: D grows linearly in S_K while C shrinks (more dilution of the
  // hidden defectors in the gamma pot).
  const double dD_dSk = (costs.other_cost() - costs.defection_cost()) / mk;
  const double dC_dSk =
      -sl / ((sk + ml) * (sk + ml)) - sm / ((sk + mm) * (sk + mm));
  s.d_stake_others = dD_dSk * (1.0 + c_slope) + d_num * dC_dSk;

  s.d_min_stake_other = -d_num * (1.0 + c_slope) / mk;
  s.elasticity_min_stake_other =
      s.bi > 0.0 ? mk * s.d_min_stake_other / s.bi : 0.0;
  return s;
}

}  // namespace roleshare::econ
