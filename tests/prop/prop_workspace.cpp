// Property suite: RoundWorkspace dirty-reuse equivalence (DESIGN.md §8).
//
// The workspace contract (sim/round_workspace.hpp): between calls only
// buffer *capacity* matters — reusing a workspace scribbled over by a
// different network/configuration must be bit-identical to running with
// a fresh one, and the fully recycled run_round_into path must match
// both regardless of what the recycled RoundResult previously held.
// Here the "different configuration" is a random draw, not a
// handpicked one.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "consensus/params.hpp"
#include "gen/domain_gen.hpp"
#include "sim/network.hpp"
#include "sim/round_engine.hpp"
#include "sim/round_workspace.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::sim::Network;
using roleshare::sim::NetworkConfig;
using roleshare::sim::RoundEngine;
using roleshare::sim::RoundResult;
using roleshare::sim::RoundWorkspace;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

// Strict equality — the reuse contract promises bit-identical results,
// so doubles compare with ==, not a tolerance.
Verdict same_result(const RoundResult& a, const RoundResult& b,
                    const std::string& label) {
  const auto fail = [&](const std::string& what) {
    return Verdict{false, label + ": " + what};
  };
  if (a.round != b.round) return fail("round number differs");
  if (a.outcomes != b.outcomes) return fail("outcomes differ");
  if (a.live_count != b.live_count) return fail("live_count differs");
  if (a.final_fraction != b.final_fraction ||
      a.tentative_fraction != b.tentative_fraction ||
      a.none_fraction != b.none_fraction)
    return fail("fractions differ");
  if (a.non_empty_block != b.non_empty_block)
    return fail("non_empty_block differs");
  if (a.proposals != b.proposals) return fail("proposal count differs");
  if (a.synchrony != b.synchrony) return fail("synchrony state differs");
  if (a.roles.has_value() != b.roles.has_value() ||
      a.roles_true.has_value() != b.roles_true.has_value())
    return fail("role snapshot presence differs");
  if (a.roles.has_value()) {
    if (a.roles->roles() != b.roles->roles() ||
        a.roles->stakes() != b.roles->stakes())
      return fail("observed role snapshot differs");
  }
  if (a.roles_true.has_value()) {
    if (a.roles_true->roles() != b.roles_true->roles() ||
        a.roles_true->stakes() != b.roles_true->stakes())
      return fail("true role snapshot differs");
  }
  return Verdict{};
}

}  // namespace

// A workspace dirtied by a random *other* network, then reused on the
// network under test, must reproduce the fresh-path rounds exactly —
// as must run_round_into with a recycled RoundResult.
PROP_TEST_WITH_PARAMS(PropWorkspace, DirtyReuseIsBitIdentical, 8) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::network_config(24, 48),
                     roleshare::testgen::network_config(24, 48)),
      [](const std::tuple<NetworkConfig, NetworkConfig>& t) {
        const auto& [dirty_config, config] = t;
        const auto params_for = [](Network& net) {
          return roleshare::consensus::ConsensusParams::scaled_for(
              net.accounts().total_stake());
        };

        // Dirty a workspace (and a result) on an unrelated network.
        RoundWorkspace ws;
        RoundResult recycled;
        {
          Network dirty_net(dirty_config);
          RoundEngine dirty_engine(dirty_net, params_for(dirty_net));
          dirty_engine.run_round_into(recycled, ws);
        }

        // Path 1: fresh allocations every round.
        Network net_fresh(config);
        RoundEngine engine_fresh(net_fresh, params_for(net_fresh));
        // Path 2: caller-owned dirty workspace.
        Network net_ws(config);
        RoundEngine engine_ws(net_ws, params_for(net_ws));
        // Path 3: fully recycled result + workspace.
        Network net_into(config);
        RoundEngine engine_into(net_into, params_for(net_into));

        for (std::size_t r = 0; r < 2; ++r) {
          const RoundResult fresh = engine_fresh.run_round();
          const RoundResult reused = engine_ws.run_round(ws);
          engine_into.run_round_into(recycled, ws);

          Verdict v = same_result(fresh, reused,
                                  "round " + std::to_string(r) +
                                      " run_round(ws) vs fresh");
          if (!v.ok) return v;
          v = same_result(fresh, recycled,
                          "round " + std::to_string(r) +
                              " run_round_into vs fresh");
          if (!v.ok) return v;
          if (!(net_fresh.chain().tip().hash() == net_ws.chain().tip().hash()) ||
              !(net_fresh.chain().tip().hash() ==
                net_into.chain().tip().hash()))
            return Verdict{false, "round " + std::to_string(r) +
                                      ": chains diverged across paths"};
        }
        return Verdict{};
      },
      [](const std::tuple<NetworkConfig, NetworkConfig>& t) {
        const auto& [dirty, config] = t;
        return "dirty{nodes=" + std::to_string(dirty.node_count) +
               " seed=" + std::to_string(dirty.seed) + "} test{nodes=" +
               std::to_string(config.node_count) +
               " seed=" + std::to_string(config.seed) +
               " defect=" + std::to_string(config.defection_rate) + "}";
      });
}
