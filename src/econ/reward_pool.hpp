// Reward pools (Fig 2): the Foundation Reward Pool with its 1.75-billion-
// Algo lifetime ceiling, and the Transaction Fee Pool that accumulates fees
// for future use. Exact integer accounting in µAlgos.
#pragma once

#include "ledger/types.hpp"

namespace roleshare::econ {

class FoundationPool {
 public:
  /// Lifetime emission ceiling (default: the paper's 1.75B Algos).
  explicit FoundationPool(
      ledger::MicroAlgos ceiling = ledger::algos(1'750'000'000));

  ledger::MicroAlgos ceiling() const { return ceiling_; }
  ledger::MicroAlgos balance() const { return balance_; }
  /// Total ever injected (bounded by the ceiling).
  ledger::MicroAlgos emitted() const { return emitted_; }
  /// Total ever disbursed to users.
  ledger::MicroAlgos disbursed() const { return disbursed_; }

  /// Adds R_i to the pool, clipped so cumulative emission never exceeds the
  /// ceiling. Returns the amount actually injected.
  ledger::MicroAlgos inject(ledger::MicroAlgos amount);

  /// Takes B_i out for distribution, clipped to the current balance.
  /// Returns the amount actually withdrawn.
  ledger::MicroAlgos withdraw(ledger::MicroAlgos amount);

  bool exhausted() const { return emitted_ >= ceiling_ && balance_ == 0; }

 private:
  ledger::MicroAlgos ceiling_;
  ledger::MicroAlgos balance_ = 0;
  ledger::MicroAlgos emitted_ = 0;
  ledger::MicroAlgos disbursed_ = 0;
};

/// Accumulates per-block transaction fees; per the Foundation plan it is
/// not tapped until the Foundation pool's ceiling is met.
class TransactionFeePool {
 public:
  ledger::MicroAlgos balance() const { return balance_; }

  void deposit(ledger::MicroAlgos fees);

  /// Withdraws up to `amount`; returns what was actually taken.
  ledger::MicroAlgos withdraw(ledger::MicroAlgos amount);

 private:
  ledger::MicroAlgos balance_ = 0;
};

}  // namespace roleshare::econ
