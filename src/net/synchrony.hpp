// Synchrony controller — models Algorand's strong/weak synchrony states
// (paper Definitions 2 and 3).
//
// In the Strong state hop delays are unchanged. In the Degraded state every
// hop delay is multiplied by `degraded_delay_factor` (so fewer messages make
// their step deadlines, pushing nodes toward tentative blocks / no block).
// Weak synchrony is modelled as bounded runs of Degraded rounds followed by
// guaranteed Strong rounds, which produces the tentative-then-recover
// pattern the paper highlights in Fig 3(c).
#pragma once

#include <cstdint>

#include "ledger/types.hpp"
#include "net/sim_time.hpp"
#include "util/rng.hpp"

namespace roleshare::net {

enum class SynchronyState : std::uint8_t { Strong, Degraded };

struct SynchronyConfig {
  /// Per-round probability of entering a Degraded run from Strong.
  double degrade_probability = 0.0;
  /// Multiplier applied to every hop delay while Degraded (> 1).
  double degraded_delay_factor = 4.0;
  /// Maximum consecutive Degraded rounds (the "bounded period" of weak
  /// synchrony); after this many the network is forced Strong again.
  std::uint32_t max_degraded_rounds = 3;
};

class SynchronyController {
 public:
  explicit SynchronyController(SynchronyConfig config);

  /// Advances to the next round and returns its state.
  SynchronyState advance_round(util::Rng& rng);

  SynchronyState state() const { return state_; }

  /// Multiplier to apply to sampled hop delays this round.
  double delay_factor() const;

  /// Forces a state (tests and scripted scenarios).
  void force(SynchronyState s);

 private:
  SynchronyConfig config_;
  SynchronyState state_ = SynchronyState::Strong;
  std::uint32_t degraded_run_ = 0;
};

}  // namespace roleshare::net
