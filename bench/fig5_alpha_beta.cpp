// E4 — Figure 5: minimum incentive-compatible reward B_i over the (α, β)
// grid, for the paper's §V-A parameterization (s*_l = s*_m = 1, s*_k = 10,
// c_L=16, c_M=12, c_K=6, c_so=5 µAlgos, S_L=26, S_M=13k, S_N=50M).
//
// Expected shape: B_i is minimized at small (α, β) — the online-node bound
// dominates because S_K >> S_L, S_M — with a minimum around 5.2 Algos near
// (0.02, 0.03), rising as α+β grows (γ shrinks) and diverging near the
// feasibility boundary.
#include <cstdio>

#include "bench_util.hpp"
#include "econ/optimizer.hpp"

using namespace roleshare;

int main(int, char**) {
  bench::print_header("Figure 5", "minimum B_i over reward splits (alpha, beta)");

  econ::BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.stake_others = 50'000'000.0 - 26 - 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  in.min_stake_other = 10;
  const econ::CostModel costs;

  const double grid[] = {0.01, 0.02, 0.03, 0.05, 0.10,
                         0.20, 0.30, 0.40, 0.60};

  std::printf("min B_i in Algos; rows alpha, columns beta; '-' = infeasible\n\n");
  std::printf("%7s", "a\\b");
  for (const double beta : grid) std::printf("%9.2f", beta);
  std::printf("\n");
  for (const double alpha : grid) {
    std::printf("%7.2f", alpha);
    for (const double beta : grid) {
      if (alpha + beta >= 1.0) {
        std::printf("%9s", "-");
        continue;
      }
      const econ::BiBounds bounds =
          econ::compute_bi_bounds(econ::RewardSplit(alpha, beta), in, costs);
      if (!bounds.feasible) {
        std::printf("%9s", "-");
      } else {
        std::printf("%9.2f", bounds.required() / 1e6);
      }
    }
    std::printf("\n");
  }

  // Paper's highlighted point and the optimizer's global minimum.
  const econ::BiBounds paper_point =
      econ::compute_bi_bounds(econ::RewardSplit(0.02, 0.03), in, costs);
  std::printf("\nPaper point (alpha, beta) = (0.02, 0.03): B_i = %.2f Algos "
              "(paper: ~5.2)\n",
              paper_point.required() / 1e6);

  const econ::RewardOptimizer optimizer;
  const econ::OptimizerResult best = optimizer.optimize(in, costs);
  std::printf("Algorithm-1 optimum: (alpha, beta) = (%.4f, %.4f), "
              "B_i = %.2f Algos, gamma = %.3f\n",
              best.split.alpha, best.split.beta, best.min_bi / 1e6,
              best.split.gamma());
  std::printf("Binding bound: leader=%.3f committee=%.3f online=%.3f (Algos)\n",
              best.bounds.leader_bound / 1e6,
              best.bounds.committee_bound / 1e6,
              best.bounds.online_bound / 1e6);
  return 0;
}
