#include "orch/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "orch/spawn.hpp"
#include "orch/wire.hpp"

namespace roleshare::orch {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("orch: cannot read spool file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

enum class WindowState { Queued, Leased, Spooled, Folded };

struct Window {
  std::size_t begin = 0;
  std::size_t end = 0;
  WindowState state = WindowState::Queued;
  std::uint32_t attempts = 0;  // assignments issued so far
  /// Best checkpoint a dead/expired attempt left behind; the next
  /// attempt resumes from it instead of starting cold.
  std::string resume_path;
  std::uint64_t resume_cursor = 0;
  std::string result_path;  // finished document spool (state >= Spooled)
  double lease_deadline = 0.0;  // 0 = no deadline armed
  /// Attempt number the current lease was issued for. A straggler from
  /// an older attempt (late EOF, FAIL, PROGRESS) must not requeue or
  /// renew a lease that has since been re-issued to someone else.
  std::uint32_t lease_attempt = 0;
};

struct Conn {
  int fd = -1;
  MessageBuffer buffer;
  bool helloed = false;
  std::uint32_t worker_id = 0;
  long long window = -1;  // leased window index, -1 = idle
  std::uint32_t attempt = 0;  // attempt number of the current assignment
  bool reissue = false;   // current assignment is injected re-execution
  explicit Conn(int fd_, std::string origin)
      : fd(fd_), buffer(std::move(origin)) {}
};

class Job {
 public:
  Job(const JobConfig& config, const JobCallbacks& callbacks,
      const SpawnWorkerFn& spawn_worker)
      : config_(config), callbacks_(callbacks), spawn_worker_(spawn_worker) {
    if (config_.runs == 0 || config_.window == 0 || config_.workers == 0)
      throw std::invalid_argument(
          "orch: runs, window and workers must all be positive");
    if (config_.socket_path.empty() || config_.spool_dir.empty())
      throw std::invalid_argument(
          "orch: socket_path and spool_dir are required");
    for (std::size_t begin = 0; begin < config_.runs;
         begin += config_.window) {
      Window w;
      w.begin = begin;
      w.end = std::min(begin + config_.window, config_.runs);
      windows_.push_back(w);
    }
    stats_.windows = windows_.size();
  }

  JobStats run() {
    listen_fd_ = listen_unix(config_.socket_path);
    try {
      for (std::size_t i = 0; i < config_.workers; ++i) spawn(false);
      loop();
    } catch (...) {
      // Never leave orphans behind an exception: the fleet dies with
      // the job.
      for (auto& [pid, alive] : children_)
        if (alive) ::kill(pid, SIGKILL);
      cleanup(true);
      throw;
    }
    shutdown_fleet();
    cleanup(false);
    callbacks_.finalize();
    return stats_;
  }

 private:
  bool complete() const {
    return folded_ == windows_.size() && reissue_queue_.empty() &&
           outstanding_reissues_ == 0;
  }

  bool work_remains() const {
    if (!reissue_queue_.empty() || outstanding_reissues_ > 0) return true;
    for (const Window& w : windows_)
      if (w.state == WindowState::Queued || w.state == WindowState::Leased)
        return true;
    return false;
  }

  void spawn(bool is_respawn) {
    const std::uint32_t id = next_worker_id_++;
    const pid_t pid = spawn_worker_(id);
    children_[pid] = true;
    live_workers_++;
    if (is_respawn) {
      stats_.respawns++;
      std::printf("[orch] respawned worker %u (pid %d)\n", id,
                  static_cast<int>(pid));
    }
  }

  std::string spool_path_for(std::size_t index, std::uint32_t attempt) const {
    return config_.spool_dir + "/w" + std::to_string(index) + ".a" +
           std::to_string(attempt) + ".partial";
  }

  /// Requeues a leased window after a death / expiry / FAIL, but only
  /// when `attempt` still owns the lease — a straggler from a superseded
  /// attempt dying late must not yank the window away from (or inflate
  /// the attempt count of) the replacement that is actively running it.
  /// The cap is checked here: a window burning max_attempts assignments
  /// is a systemic failure, not bad luck.
  void requeue(std::size_t index, std::uint32_t attempt,
               const std::string& reason) {
    Window& w = windows_[index];
    if (w.state != WindowState::Leased) return;
    if (w.lease_attempt != attempt) return;
    if (w.attempts >= config_.max_attempts)
      throw std::runtime_error(
          "orch: window " + std::to_string(index) + " (runs [" +
          std::to_string(w.begin) + ", " + std::to_string(w.end) +
          ")) failed " + std::to_string(w.attempts) + " attempts, last: " +
          reason);
    w.state = WindowState::Queued;
    w.lease_deadline = 0.0;
    stats_.retries++;
    const std::string resume_note =
        w.resume_path.empty()
            ? std::string()
            : ", will resume from checkpoint at run " +
                  std::to_string(w.resume_cursor);
    std::printf("[orch] requeueing window %zu (runs [%zu, %zu)): %s%s\n",
                index, w.begin, w.end, reason.c_str(), resume_note.c_str());
  }

  /// A send to `conn` hit a dead peer (EPIPE): drop the connection now
  /// instead of waiting for its EOF — the fd is closed, so the EOF would
  /// never arrive. reap_children respawns a replacement while work
  /// remains.
  void drop_dead_conn(Conn& conn, const std::exception& error) {
    std::printf("[orch] worker %u unreachable, dropping connection: %s\n",
                conn.worker_id, error.what());
    ::close(conn.fd);
    conn.fd = -1;
    conn.window = -1;
    conn.reissue = false;
  }

  /// Hands `conn` its next assignment: injected re-executions first,
  /// then the lowest queued window. Returns false when nothing is
  /// assignable (the worker stays idle, blocked on its socket). A worker
  /// that died before the ASSIGN reached it is dropped and the window
  /// put back for the next idle worker — assign_idle keeps iterating.
  bool assign_to(Conn& conn) {
    if (!reissue_queue_.empty()) {
      const std::size_t index = reissue_queue_.back();
      reissue_queue_.pop_back();
      Window& w = windows_[index];
      w.attempts++;
      try {
        send_message(conn.fd,
                     assign(static_cast<std::uint32_t>(index), w.attempts,
                            w.begin, w.end, spool_path_for(index, w.attempts),
                            std::string()));
      } catch (const std::exception& e) {
        w.attempts--;
        reissue_queue_.push_back(index);
        drop_dead_conn(conn, e);
        return true;
      }
      conn.window = static_cast<long long>(index);
      conn.attempt = w.attempts;
      conn.reissue = true;
      outstanding_reissues_++;
      std::printf("[orch] re-issued already-folded window %zu to worker %u "
                  "(fault injection)\n",
                  index, conn.worker_id);
      return true;
    }
    for (std::size_t index = 0; index < windows_.size(); ++index) {
      Window& w = windows_[index];
      if (w.state != WindowState::Queued) continue;
      w.attempts++;
      try {
        send_message(conn.fd,
                     assign(static_cast<std::uint32_t>(index), w.attempts,
                            w.begin, w.end, spool_path_for(index, w.attempts),
                            w.resume_path));
      } catch (const std::exception& e) {
        w.attempts--;
        drop_dead_conn(conn, e);
        return true;
      }
      w.state = WindowState::Leased;
      w.lease_attempt = w.attempts;
      if (config_.lease_seconds > 0)
        w.lease_deadline = now_seconds() + config_.lease_seconds;
      conn.window = static_cast<long long>(index);
      conn.attempt = w.attempts;
      conn.reissue = false;
      if (config_.verbose)
        std::printf("[orch] assigned window %zu (runs [%zu, %zu), attempt "
                    "%u) to worker %u\n",
                    index, w.begin, w.end, w.attempts, conn.worker_id);
      return true;
    }
    return false;
  }

  void assign_idle() {
    for (Conn& conn : conns_) {
      if (conn.fd < 0 || !conn.helloed || conn.window >= 0) continue;
      if (!assign_to(conn)) break;
    }
  }

  /// Folds every spooled window at the fold frontier, in window order —
  /// the merge contiguity contract (sim::PartialEnvelope::check_merge)
  /// makes any other order an error.
  void try_folds() {
    while (next_fold_ < windows_.size() &&
           windows_[next_fold_].state == WindowState::Spooled) {
      Window& w = windows_[next_fold_];
      const std::string origin = "window " + std::to_string(next_fold_) +
                                 " spool " + w.result_path;
      callbacks_.fold(read_file(w.result_path), w.begin, w.end, origin);
      w.state = WindowState::Folded;
      folded_++;
      stats_.folded++;
      if (config_.reissue_window >= 0 && !reissue_armed_ &&
          static_cast<std::size_t>(config_.reissue_window) == next_fold_) {
        reissue_armed_ = true;
        reissue_queue_.push_back(next_fold_);
      }
      next_fold_++;
    }
  }

  void handle_message(Conn& conn, const Message& msg) {
    if ((msg.type == MsgType::Progress || msg.type == MsgType::Done ||
         msg.type == MsgType::Fail) &&
        msg.window_index >= windows_.size()) {
      throw std::runtime_error(
          "orch: worker " + std::to_string(conn.worker_id) + " sent " +
          orch::to_string(msg.type) + " for window " +
          std::to_string(msg.window_index) + " but the job only has " +
          std::to_string(windows_.size()));
    }
    switch (msg.type) {
      case MsgType::Hello: {
        if (msg.config_echo != callbacks_.config_echo)
          throw std::runtime_error(
              "orch: worker " + std::to_string(msg.worker_id) +
              " computed a different config than the coordinator — the "
              "worker's argv has drifted. Coordinator header: " +
              callbacks_.config_echo + " | worker echo: " + msg.config_echo);
        conn.helloed = true;
        conn.worker_id = msg.worker_id;
        if (config_.verbose)
          std::printf("[orch] worker %u connected, config echo verified\n",
                      msg.worker_id);
        assign_to(conn);
        break;
      }
      case MsgType::Progress: {
        stats_.checkpoints++;
        Window& w = windows_[msg.window_index];
        if (msg.cursor > w.resume_cursor) {
          w.resume_cursor = msg.cursor;
          w.resume_path = spool_path_for(msg.window_index, msg.attempt);
        }
        // Only the attempt that holds the lease renews it: a superseded
        // straggler that keeps checkpointing must not keep a stuck
        // replacement's lease alive forever.
        if (w.state == WindowState::Leased && w.lease_deadline > 0 &&
            msg.attempt == w.lease_attempt)
          w.lease_deadline = now_seconds() + config_.lease_seconds;
        if (config_.verbose)
          std::printf("[orch] worker %u checkpointed window %u at run "
                      "%llu\n",
                      conn.worker_id, msg.window_index,
                      static_cast<unsigned long long>(msg.cursor));
        break;
      }
      case MsgType::Done: {
        Window& w = windows_[msg.window_index];
        if (msg.store_hit) stats_.store_hits++;
        if (w.state == WindowState::Spooled ||
            w.state == WindowState::Folded) {
          // A straggler (or injected re-execution) finished a window
          // someone else already delivered — discard, never double-fold.
          stats_.duplicate_results++;
          if (conn.reissue && conn.window ==
                                  static_cast<long long>(msg.window_index))
            outstanding_reissues_--;
          std::printf("[orch] discarding duplicate result for window %u "
                      "from worker %u (attempt %u%s)\n",
                      msg.window_index, conn.worker_id, msg.attempt,
                      msg.store_hit ? ", served from store" : "");
        } else {
          w.state = WindowState::Spooled;
          w.result_path = msg.spool_path;
          w.lease_deadline = 0.0;
          if (config_.verbose)
            std::printf("[orch] window %u done by worker %u (%llu bytes%s)"
                        "\n",
                        msg.window_index, conn.worker_id,
                        static_cast<unsigned long long>(msg.partial_bytes),
                        msg.store_hit ? ", store hit" : "");
          try_folds();
        }
        conn.window = -1;
        conn.reissue = false;
        assign_to(conn);
        break;
      }
      case MsgType::Fail: {
        std::printf("[orch] worker %u FAILed window %u attempt %u: %s\n",
                    conn.worker_id, msg.window_index, msg.attempt,
                    msg.error.c_str());
        const long long idx = conn.window;
        const std::uint32_t attempt = conn.attempt;
        const bool was_reissue = conn.reissue;
        conn.window = -1;
        conn.reissue = false;
        if (was_reissue && idx >= 0) {
          // Mirror handle_eof: the injected re-execution failed, but the
          // window is already folded — nothing to requeue (it is not
          // Leased), just stop waiting for the duplicate DONE or
          // complete() never becomes true.
          outstanding_reissues_--;
        } else if (idx >= 0) {
          requeue(static_cast<std::size_t>(idx), attempt,
                  "FAIL: " + msg.error);
        }
        assign_to(conn);
        break;
      }
      case MsgType::Assign:
      case MsgType::Shutdown:
        throw std::runtime_error(
            std::string("orch: coordinator received a ") +
            orch::to_string(msg.type) + " message — workers never send it");
    }
  }

  void handle_eof(Conn& conn) {
    if (conn.buffer.pending_bytes() > 0)
      std::printf("[orch] worker %u died mid-message (%zu stray bytes)\n",
                  conn.worker_id, conn.buffer.pending_bytes());
    const long long idx = conn.window;
    ::close(conn.fd);
    conn.fd = -1;
    if (conn.reissue && idx >= 0) {
      // The injected re-execution died; nothing is lost (the window is
      // already folded) — just stop waiting for its duplicate DONE.
      outstanding_reissues_--;
    } else if (idx >= 0) {
      requeue(static_cast<std::size_t>(idx), conn.attempt,
              "worker " + std::to_string(conn.worker_id) +
                  " disconnected mid-window");
    }
  }

  void reap_children() {
    for (auto& [pid, alive] : children_) {
      if (!alive) continue;
      int status = 0;
      if (!try_reap(pid, status)) continue;
      alive = false;
      live_workers_--;
      if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
        stats_.worker_deaths++;
        std::printf("[orch] worker pid %d died (%s)\n",
                    static_cast<int>(pid), describe_exit(status).c_str());
      }
    }
    // Keep the fleet at strength while work remains. The cap bounds a
    // pathological crash loop (a worker that dies at startup forever).
    while (work_remains() && live_workers_ < config_.workers) {
      if (stats_.respawns >= config_.max_attempts * config_.workers)
        throw std::runtime_error(
            "orch: respawn cap reached (" + std::to_string(stats_.respawns) +
            " replacements) — workers are dying faster than they work");
      spawn(true);
    }
  }

  void expire_leases() {
    if (config_.lease_seconds <= 0) return;
    const double now = now_seconds();
    for (std::size_t index = 0; index < windows_.size(); ++index) {
      Window& w = windows_[index];
      if (w.state != WindowState::Leased || w.lease_deadline <= 0 ||
          now < w.lease_deadline)
        continue;
      requeue(index, w.lease_attempt,
              "lease expired after " + std::to_string(config_.lease_seconds) +
                  "s without progress (straggler keeps running; "
                  "first finished attempt wins)");
    }
  }

  void loop() {
    while (!complete()) {
      reap_children();
      expire_leases();
      assign_idle();
      if (complete()) break;

      std::vector<pollfd> fds;
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const Conn& conn : conns_)
        if (conn.fd >= 0) fds.push_back({conn.fd, POLLIN, 0});
      const int n = ::poll(fds.data(), fds.size(), 200);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("orch: poll(): ") +
                                 std::strerror(errno));
      }
      if (n == 0) continue;

      if ((fds[0].revents & POLLIN) != 0) {
        const int fd = accept_unix(listen_fd_);
        conns_.emplace_back(fd, "worker connection");
      }
      for (std::size_t i = 1; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        for (Conn& conn : conns_) {
          if (conn.fd != fds[i].fd) continue;
          char chunk[65536];
          const ssize_t got = ::read(conn.fd, chunk, sizeof(chunk));
          if (got < 0) {
            if (errno == EINTR) break;
            throw std::runtime_error(std::string("orch: read(): ") +
                                     std::strerror(errno));
          }
          if (got == 0) {
            handle_eof(conn);
            break;
          }
          conn.buffer.feed(std::string_view(chunk,
                                            static_cast<std::size_t>(got)));
          while (auto msg = conn.buffer.next()) handle_message(conn, *msg);
          break;
        }
      }
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const Conn& c) { return c.fd < 0; }),
                   conns_.end());
    }
  }

  void shutdown_fleet() {
    for (Conn& conn : conns_) {
      if (conn.fd < 0) continue;
      try {
        send_message(conn.fd, shutdown("job complete"));
      } catch (const std::exception&) {
        // A worker that died between its last message and now is fine.
      }
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  /// Reaps the whole fleet, escalating to SIGKILL after a grace period
  /// (`force` skips the grace — exception paths already killed them).
  void cleanup(bool force) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::unlink(config_.socket_path.c_str());
    for (Conn& conn : conns_)
      if (conn.fd >= 0) ::close(conn.fd);
    conns_.clear();
    const double deadline = now_seconds() + (force ? 2.0 : 10.0);
    bool killed = force;
    while (true) {
      bool any_alive = false;
      for (auto& [pid, alive] : children_) {
        if (!alive) continue;
        int status = 0;
        if (try_reap(pid, status)) {
          alive = false;
          continue;
        }
        any_alive = true;
      }
      if (!any_alive) break;
      if (now_seconds() > deadline) {
        if (killed)
          throw std::runtime_error(
              "orch: workers survived SIGKILL — giving up on reaping");
        for (auto& [pid, alive] : children_)
          if (alive) ::kill(pid, SIGKILL);
        killed = true;
      }
      ::usleep(20 * 1000);
    }
  }

  const JobConfig& config_;
  const JobCallbacks& callbacks_;
  const SpawnWorkerFn& spawn_worker_;
  JobStats stats_;
  std::vector<Window> windows_;
  std::vector<Conn> conns_;
  std::map<pid_t, bool> children_;  // pid -> still live
  std::vector<std::size_t> reissue_queue_;
  std::size_t outstanding_reissues_ = 0;
  bool reissue_armed_ = false;
  std::size_t next_fold_ = 0;
  std::size_t folded_ = 0;
  std::size_t live_workers_ = 0;
  std::uint32_t next_worker_id_ = 0;
  int listen_fd_ = -1;
};

}  // namespace

JobStats run_coordinator(const JobConfig& config,
                         const JobCallbacks& callbacks,
                         const SpawnWorkerFn& spawn_worker) {
  // A write to a worker that already exited must surface as an EPIPE
  // exception (requeue + respawn), not a fatal SIGPIPE that kills the
  // coordinator with the fleet still running and the socket file behind.
  // send_message also passes MSG_NOSIGNAL; this covers any other fd.
  ::signal(SIGPIPE, SIG_IGN);
  return Job(config, callbacks, spawn_worker).run();
}

}  // namespace roleshare::orch
