#include "net/gossip.hpp"

#include <algorithm>
#include <functional>

#include "util/require.hpp"

namespace roleshare::net {

RelaySet RelaySet::all_cooperative(std::size_t n) {
  RelaySet rs;
  rs.relays.assign(n, 1);
  rs.online.assign(n, 1);
  return rs;
}

GossipEngine::GossipEngine(const Topology& topology, const DelayModel& delays,
                           double delay_factor, double loss_probability)
    : topology_(topology),
      delays_(delays),
      delay_factor_(delay_factor),
      loss_probability_(loss_probability) {
  RS_REQUIRE(delay_factor >= 1.0, "delay factor >= 1");
  RS_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
             "loss probability in [0, 1)");
}

std::vector<TimeMs> GossipEngine::propagate(ledger::NodeId origin,
                                            TimeMs start,
                                            const RelaySet& relay_set,
                                            util::Rng& rng) const {
  std::vector<TimeMs> arrival;
  GossipScratch scratch;
  propagate_into(origin, start, relay_set, rng, arrival, scratch);
  return arrival;
}

void GossipEngine::propagate_into(ledger::NodeId origin, TimeMs start,
                                  const RelaySet& relay_set, util::Rng& rng,
                                  std::vector<TimeMs>& arrival,
                                  GossipScratch& scratch) const {
  const std::size_t n = topology_.node_count();
  RS_REQUIRE(origin < n, "origin out of range");
  RS_REQUIRE(relay_set.relays.size() == n && relay_set.online.size() == n,
             "relay set size mismatch");

  arrival.assign(n, kNever);
  if (!relay_set.online[origin]) return;

  // Min-heap over (time, node) on the scratch vector: the same binary-heap
  // algorithms priority_queue wraps, minus its per-call construction. Pop
  // order — and therefore every sample drawn from rng — is identical.
  using Entry = std::pair<TimeMs, ledger::NodeId>;
  std::vector<Entry>& frontier = scratch.frontier;
  frontier.clear();
  const std::greater<> later{};
  arrival[origin] = start;
  frontier.emplace_back(start, origin);

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), later);
    const auto [t, v] = frontier.back();
    frontier.pop_back();
    if (t > arrival[v]) continue;  // stale entry
    // The origin always transmits its own message; other nodes forward only
    // if they relay.
    if (v != origin && !relay_set.relays[v]) continue;
    for (const ledger::NodeId to : topology_.out_neighbors(v)) {
      if (!relay_set.online[to]) continue;
      if (loss_probability_ > 0.0 && rng.bernoulli(loss_probability_))
        continue;  // this hop's copy is dropped
      const TimeMs hop = delays_.sample(rng, v, to) * delay_factor_;
      const TimeMs cand = t + hop;
      if (cand < arrival[to]) {
        arrival[to] = cand;
        frontier.emplace_back(cand, to);
        std::push_heap(frontier.begin(), frontier.end(), later);
      }
    }
  }
}

double GossipEngine::reach_fraction(const std::vector<TimeMs>& arrivals,
                                    const RelaySet& relay_set,
                                    TimeMs deadline) {
  RS_REQUIRE(arrivals.size() == relay_set.online.size(),
             "arrival/online size mismatch");
  std::size_t online = 0;
  std::size_t reached = 0;
  for (std::size_t v = 0; v < arrivals.size(); ++v) {
    if (!relay_set.online[v]) continue;
    ++online;
    if (arrivals[v] <= deadline) ++reached;
  }
  if (online == 0) return 0.0;
  return static_cast<double>(reached) / static_cast<double>(online);
}

}  // namespace roleshare::net
