// Scenario tour: the behaviour-policy layer in one sitting.
//
// Runs the same 150-node network under four policies — scripted defection
// (the Fig-3 baseline), adaptive best-response defection, stake-correlated
// defection, and scripted defection under churn — and prints the per-round
// story: live population, cooperation share, and who still extracts final
// blocks. Everything rides the deterministic ExperimentRunner engine, so
// --threads only changes wall time, never a number.
//
//   $ ./churn_scenarios [--runs=4] [--rounds=10] [--threads=1]
#include <cstdio>

#include "bench_util.hpp"
#include "sim/defection_experiment.hpp"

using namespace roleshare;

namespace {

void print_series(const char* title, const sim::DefectionSeries& series) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%6s %7s %8s %8s\n", "round", "live", "coop%", "final%");
  for (std::size_t r = 0; r < series.rounds.size(); ++r) {
    std::printf("%6zu %7.1f %8.1f %8.1f\n", r + 1, series.live_series[r],
                series.cooperation_series[r], series.rounds[r].final_pct);
  }
  std::printf("live range %zu..%zu | runs with chain progress %.0f%%\n",
              series.min_live, series.max_live,
              series.runs_with_progress * 100);
}

}  // namespace

int main(int argc, char** argv) {
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 4));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 10));
  const std::size_t threads = bench::arg_threads(argc, argv);

  std::printf("Scenario tour: one 150-node network, stakes U(1,50), 15%%\n"
              "defection pressure under four behaviour policies\n"
              "(%zu runs x %zu rounds, threads=%zu).\n",
              runs, rounds, threads);

  sim::DefectionExperimentConfig base;
  base.network.node_count = 150;
  base.network.seed = 2020;
  base.runs = runs;
  base.rounds = rounds;
  base.threads = threads;

  {
    sim::DefectionExperimentConfig config = base;
    config.network.defection_rate = 0.15;
    print_series("scripted: 15% defect by script, every round",
                 sim::run_defection_experiment(config));
  }
  {
    sim::DefectionExperimentConfig config = base;
    config.network.defection_rate = 0.15;
    config.policy.kind = sim::PolicyKind::AdaptiveDefect;
    print_series("adaptive: the same 15% best-respond to observed rewards",
                 sim::run_defection_experiment(config));
  }
  {
    sim::DefectionExperimentConfig config = base;
    config.policy.kind = sim::PolicyKind::StakeCorrelatedDefect;
    config.policy.defect_at_bottom = 0.30;
    config.policy.defect_at_top = 0.0;
    print_series("stake-correlated: P(defect) 30% -> 0% by stake percentile",
                 sim::run_defection_experiment(config));
  }
  {
    sim::DefectionExperimentConfig config = base;
    config.network.defection_rate = 0.15;
    config.policy.churn.leave_probability = 0.08;
    config.policy.churn.join_probability = 0.15;
    config.policy.churn.min_live = 40;
    print_series("churn: 15% scripted defection, nodes leave/join per round",
                 sim::run_defection_experiment(config));
  }

  std::printf("\nReading: adaptive candidates defect as soon as observed\n"
              "rewards stop covering costs (the §III-C unraveling);\n"
              "stake-correlated defection spares the whales the committee\n"
              "weights depend on, so consensus degrades more gracefully;\n"
              "churn varies the live population every round while the\n"
              "engine keeps sortition, gossip and tallies on live nodes\n"
              "only — and every number above is bit-identical for any\n"
              "--threads value.\n");
  return 0;
}
