// Minimal JSON tree: enough for the shard-partial interchange files
// (sim/aggregators serialization, bench merge_partials tool) without an
// external dependency.
//
// Guarantees the shard workflow relies on:
//   - dump() prints doubles with %.17g, which round-trips every finite
//     binary64 exactly — a partial written and re-parsed reproduces the
//     accumulator state bit for bit.
//   - Non-finite numbers (JSON has no literal for them) dump as null and
//     parse back as null; the accumulator layer maps empty-round NaN to
//     and from null explicitly.
//   - Object members keep insertion order, so dump() is deterministic —
//     two bit-identical accumulators produce byte-identical files (the
//     CI shard-merge diff depends on this).
//
// parse() raises std::invalid_argument with a byte offset on malformed
// input, on duplicate object keys (a partial file carrying one is
// corrupt, not ambiguous), and on containers nested deeper than a fixed
// guard (a recursive-descent parser must bound its stack on untrusted
// input). \uXXXX escapes decode fully per RFC 8259 — BMP code points
// directly, supplementary-plane ones via high+low surrogate pairs, both
// emitted as UTF-8; lone or misordered surrogates fail with the byte
// offset (orchestrator workers echo JSON produced by foreign tooling,
// so the escape grammar cannot be a subset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <string_view>
#include <utility>
#include <vector>

namespace roleshare::util::json {

class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;  // null
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  /// Any arithmetic type lands in the number kind (one constrained
  /// template avoids overload clashes between size_t and uint64_t).
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Value(T v) : kind_(Kind::Number), num_(static_cast<double>(v)) {} // NOLINT
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {} // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::size_t as_size() const;  // non-negative integral number
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Array append (array kind only).
  void push_back(Value v);

  /// Object append / lookup. `set` appends (no duplicate check), `find`
  /// returns nullptr when absent, `at` throws naming the missing key.
  void set(std::string key, Value v);
  const Value* find(std::string_view key) const;
  const Value& at(std::string_view key) const;

  /// Compact deterministic serialization (insertion-ordered members,
  /// %.17g numbers, non-finite -> null).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::invalid_argument with a byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace roleshare::util::json
