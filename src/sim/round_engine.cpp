#include "sim/round_engine.hpp"

#include <algorithm>
#include <span>

#include "consensus/binary_ba.hpp"
#include "consensus/proposal.hpp"
#include "consensus/reduction.hpp"
#include "consensus/roles.hpp"
#include "consensus/votes.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

using consensus::Role;
using crypto::Hash256;
using game::Strategy;
using ledger::NodeId;

/// Everything one voting step needs from the round. Per-node state is
/// threaded through as contiguous arrays (structure-of-arrays): the step
/// loops index stakes/strategies/online/roles directly instead of going
/// through per-node accessor calls.
struct StepContext {
  const consensus::ConsensusParams* params = nullptr;
  const std::vector<crypto::KeyPair>* keys = nullptr;
  const std::vector<std::int64_t>* stakes = nullptr;
  std::span<const Strategy> strategies;
  std::span<const std::uint8_t> online;
  std::int64_t total_stake = 0;
  std::size_t n = 0;
  ledger::Round round = 0;
  Hash256 prev_seed;
  const net::RelaySet* relay_set = nullptr;
  const net::GossipEngine* gossip = nullptr;
  /// Root of the round's gossip randomness; each (step, origin) propagation
  /// draws from the independent stream gossip_root.split(step).split(origin)
  /// so the fan-out order cannot change any sampled delay. The engine
  /// derives the per-origin seeds chunked — one split(step) per step, one
  /// derive_seeds block per vote batch — which yields the same streams.
  const util::Rng* gossip_root = nullptr;
  const util::InnerExecutor* exec = nullptr;
  /// Marked Committee for nodes that actually vote (observed roles).
  std::span<Role> observed_roles;
  /// Marked Committee for every elected node, voting or not (true roles).
  std::span<Role> true_roles;
};

void mark_committee(std::span<Role> roles, NodeId v) {
  if (roles[v] == Role::Other) roles[v] = Role::Committee;
}

/// Runs one voting step: elects the committee for `step`, collects votes
/// from members for whom `value_of` returns a value, gossips each vote, and
/// tallies each node's delay-filtered view against `quorum`. All per-node
/// and per-vote loops fan out across ctx.exec; all working memory comes
/// from `ws` and the per-node outcomes are rebuilt in place inside `out`.
template <typename ValueOf>
void run_vote_step(const StepContext& ctx, std::uint32_t step,
                   std::uint64_t expected_stake, double quorum,
                   const ValueOf& value_of, StepWorkspace& ws,
                   std::vector<StepOutcome>& out) {
  const std::size_t n = ctx.n;

  consensus::elect_committee_into(*ctx.keys, *ctx.stakes, ctx.round, step,
                                  ctx.prev_seed, expected_stake,
                                  ctx.total_stake, ws.committee, ws.draws,
                                  *ctx.exec);

  ws.votes.clear();
  for (const consensus::CommitteeMember& m : ws.committee.members) {
    mark_committee(ctx.true_roles, m.node);
    if (ctx.strategies[m.node] != Strategy::Cooperate) continue;
    const std::optional<Hash256> value = value_of(m.node);
    if (!value.has_value()) continue;
    mark_committee(ctx.observed_roles, m.node);
    ws.votes.push_back(consensus::make_vote(
        m.node, (*ctx.keys)[m.node].public_key(), ctx.round, step, *value,
        m.sortition));
  }
  const std::size_t nv = ws.votes.size();

  // One Dijkstra per vote, each on its own (step, voter) delay stream —
  // the heavy, irregular items, claimed per index. The per-origin streams
  // are derived chunked: split(step) once, then one seed per origin.
  const util::Rng step_stream = ctx.gossip_root->split(step);
  ws.origin_labels.resize(nv);
  ws.origin_seeds.resize(nv);
  for (std::size_t i = 0; i < nv; ++i)
    ws.origin_labels[i] = ws.votes[i].voter;
  step_stream.derive_seeds(ws.origin_labels, ws.origin_seeds);
  if (ws.arrivals.size() < nv) ws.arrivals.resize(nv);
  if (ws.scratch.size() < nv) ws.scratch.resize(nv);
  ctx.exec->for_each_index(nv, [&](std::size_t i) {
    util::Rng rng(ws.origin_seeds[i]);
    ctx.gossip->propagate_into(ws.votes[i].voter, 0.0, *ctx.relay_set, rng,
                               ws.arrivals[i], ws.scratch[i]);
  });

  // Every receiving node verifies each vote's sortition proof; the check
  // is deterministic per vote, so the simulator performs it once per vote
  // and shares the verdict across receivers (the per-node *cost* of
  // verification is a model parameter, not re-simulated work).
  const crypto::SortitionParams sparams{expected_stake, ctx.total_stake};
  consensus::verify_votes_into(ws.votes, ctx.prev_seed, *ctx.stakes, sparams,
                               ws.valid, *ctx.exec);

  // Per-step tally tables, computed once instead of once per node: the
  // compacted valid-vote list with weights, value ids into the distinct
  // value set, and coin hashes (previously rehashed per receiving node).
  ws.counted.clear();
  ws.counted_rows.clear();
  ws.counted_weight.clear();
  ws.counted_value_id.clear();
  ws.counted_coin_hash.clear();
  ws.values.clear();
  crypto::FixedHasher coin_layout("roleshare.coin");
  const std::size_t coin_slot = coin_layout.add_hash_slot();
  crypto::Sha256Fixed coin_fixed = coin_layout.build_template();
  for (std::size_t i = 0; i < nv; ++i) {
    if (ws.valid[i] == 0) continue;
    std::uint32_t id = 0;
    while (id < ws.values.size() && ws.values[id] != ws.votes[i].value) ++id;
    if (id == ws.values.size()) ws.values.push_back(ws.votes[i].value);
    crypto::write_hash_slot(coin_fixed, coin_slot,
                            ws.votes[i].sortition.vrf.output);
    ws.counted.push_back(static_cast<std::uint32_t>(i));
    ws.counted_rows.push_back(ws.arrivals[i].data());
    ws.counted_weight.push_back(ws.votes[i].weight);
    ws.counted_value_id.push_back(id);
    ws.counted_coin_hash.push_back(Hash256(coin_fixed.digest()));
  }

  // Per-node tally over valid votes that arrive within the step timeout.
  // Flat accumulation over the tables above; the winner rule (weight
  // strictly above quorum, highest weight, tie toward the lower hash) and
  // the common coin (lsb of the minimum coin hash) are order-independent
  // reductions, so this matches the per-node VoteCounter it replaces.
  const net::TimeMs deadline = ctx.params->step_timeout_ms;
  const std::size_t distinct = ws.values.size();
  const std::size_t counted_n = ws.counted.size();
  const std::size_t chunks = util::InnerExecutor::chunk_count(n);
  if (ws.tally_weights.size() < chunks * distinct)
    ws.tally_weights.resize(chunks * distinct);
  out.resize(n);
  ctx.exec->for_each_chunk(
      n, [&](std::size_t c, std::size_t begin, std::size_t end) {
        std::uint64_t* w = ws.tally_weights.data() + c * distinct;
        for (std::size_t v = begin; v < end; ++v) {
          out[v].winner.reset();
          out[v].coin = false;
          if (!ctx.online[v]) continue;
          for (std::size_t k = 0; k < distinct; ++k) w[k] = 0;
          bool any = false;
          Hash256 min_hash;
          for (std::size_t j = 0; j < counted_n; ++j) {
            if (ws.counted_rows[j][v] > deadline) continue;
            w[ws.counted_value_id[j]] += ws.counted_weight[j];
            const Hash256& ch = ws.counted_coin_hash[j];
            if (!any || ch < min_hash) {
              min_hash = ch;
              any = true;
            }
          }
          int best = -1;
          for (std::size_t k = 0; k < distinct; ++k) {
            if (static_cast<double>(w[k]) <= quorum) continue;
            if (best < 0 || w[k] > w[static_cast<std::size_t>(best)] ||
                (w[k] == w[static_cast<std::size_t>(best)] &&
                 ws.values[k] < ws.values[static_cast<std::size_t>(best)])) {
              best = static_cast<int>(k);
            }
          }
          if (best >= 0) out[v].winner = ws.values[static_cast<std::size_t>(best)];
          out[v].coin = any && (min_hash.bytes().back() & 1) != 0;
        }
      });
}

}  // namespace

RoundEngine::RoundEngine(Network& network, consensus::ConsensusParams params,
                         util::ThreadPool* inner_pool)
    : network_(network), params_(params), exec_(inner_pool) {
  params_.validate();
}

RoundResult RoundEngine::run_round() {
  RoundWorkspace ws;
  return run_round(ws);
}

RoundResult RoundEngine::run_round(RoundWorkspace& ws) {
  RoundResult result;
  run_round_into(result, ws);
  return result;
}

void RoundEngine::run_round_sparse_into(SparseRoundResult& result,
                                        const SparseRoundContext& ctx,
                                        SparseRoundWorkspace& ws) {
  run_sampled_round_into(network_, params_, result, ctx, ws);
}

void RoundEngine::run_round_into(RoundResult& result, RoundWorkspace& ws) {
  if (params_.committee_model == consensus::CommitteeModel::Sampled) {
    // Dense evaluation of the Sampled semantics: fresh context from the
    // ledger, sparse core, full-population expansion. The sparse entry
    // point below runs the identical core on a caller-maintained context.
    ws.sampled_context.init_from(network_);
    run_sampled_round_into(network_, params_, ws.sampled_result,
                           ws.sampled_context, ws.sampled_scratch);
    expand_sparse_into(network_, ws.sampled_result, result, ws);
    return;
  }
  Network& net = network_;
  const std::size_t n = net.node_count();
  const ledger::Round round = net.chain().next_round();
  util::Rng rng = net.round_rng(round);
  // All gossip-delay randomness hangs off this independent child stream,
  // split per (step, origin); `rng` itself only feeds the round-level
  // synchrony draw. split() derives from seed material, not stream
  // position, so the two cannot interfere.
  const util::Rng gossip_root = rng.split("gossip");

  // Departed (non-live) nodes leave the active stake pool entirely: with
  // stake 0 sortition can never elect them, and the committee expectations
  // are measured against live stake only. Node ids stay stable — every
  // per-node vector below remains indexed by the full population.
  const std::vector<std::uint8_t>& live = net.live_mask();
  net.accounts().stakes_into(ws.stakes);
  std::int64_t total_stake = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!live[v]) ws.stakes[v] = 0;
    total_stake += ws.stakes[v];
  }
  RS_REQUIRE(total_stake > 0,
             "network has no live stake — churn floor left no live nodes");

  result.round = round;
  result.live_count = net.live_count();
  result.synchrony = net.synchrony().advance_round(rng);
  result.non_empty_block = false;

  const net::GossipEngine gossip(net.topology(), net.delays(),
                                 net.synchrony().delay_factor());

  // Relay set from this round's strategies: cooperators forward, online
  // defectors receive only, offline and departed nodes are absent.
  const std::vector<Strategy>& strategies = net.strategies();
  ws.relay.relays.assign(n, 0);
  ws.relay.online.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ws.relay.online[v] = live[v] && strategies[v] != Strategy::Offline;
    ws.relay.relays[v] = live[v] && strategies[v] == Strategy::Cooperate;
  }

  const Hash256 prev_seed = net.chain().current_seed();
  const Hash256 next_seed = net.chain().next_seed();
  const Hash256 tip_hash = net.chain().tip().hash();
  const ledger::Block empty_block =
      ledger::Block::empty(round, tip_hash, next_seed);
  const Hash256 empty_hash = empty_block.hash();

  ws.observed_roles.assign(n, Role::Other);
  ws.true_roles.assign(n, Role::Other);

  // ---- Block proposal phase -------------------------------------------
  const crypto::VrfInput proposer_input{round, consensus::kProposerStep,
                                        prev_seed};
  const crypto::SortitionParams proposer_params{
      params_.expected_proposer_stake, total_stake};

  // Per-node sortition draws fan out across the executor; the winner scan
  // that builds proposals stays serial in node order (few winners).
  crypto::sortition_batch_into(net.keys(), proposer_input, ws.stakes,
                               proposer_params, ws.proposer_draws, exec_);
  ws.proposals.clear();
  for (std::size_t v = 0; v < n; ++v) {
    const crypto::SortitionResult& sres = ws.proposer_draws[v];
    if (!sres.selected()) continue;
    ws.true_roles[v] = Role::Leader;
    if (strategies[v] != Strategy::Cooperate) continue;
    ws.observed_roles[v] = Role::Leader;
    ledger::Block block =
        ledger::Block::make(round, tip_hash, next_seed,
                            net.keys()[v].public_key(), net.txpool().peek(64));
    ws.proposals.push_back(consensus::make_proposal(
        static_cast<NodeId>(v), net.keys()[v].public_key(), std::move(block),
        sres));
  }
  result.proposals = ws.proposals.size();
  const std::size_t np = ws.proposals.size();

  // Each proposal's block hash, computed once. Block::hash() walks the
  // whole transaction list; the old per-(node, proposal) recomputation in
  // the selection loop dominated the round at scale.
  ws.proposal_hashes.resize(np);
  for (std::size_t p = 0; p < np; ++p)
    ws.proposal_hashes[p] = ws.proposals[p].block_hash();

  // One gossip propagation per proposal, each on its own origin stream
  // (seeds derived chunked from the proposer-step stream).
  const util::Rng proposer_stream = gossip_root.split(consensus::kProposerStep);
  ws.proposer_labels.resize(np);
  ws.proposer_seeds.resize(np);
  for (std::size_t p = 0; p < np; ++p)
    ws.proposer_labels[p] = ws.proposals[p].proposer;
  proposer_stream.derive_seeds(ws.proposer_labels, ws.proposer_seeds);
  if (ws.proposal_arrivals.size() < np) ws.proposal_arrivals.resize(np);
  if (ws.proposal_scratch.size() < np) ws.proposal_scratch.resize(np);
  exec_.for_each_index(np, [&](std::size_t p) {
    util::Rng prng(ws.proposer_seeds[p]);
    gossip.propagate_into(ws.proposals[p].proposer, 0.0, ws.relay, prng,
                          ws.proposal_arrivals[p], ws.proposal_scratch[p]);
  });

  // Per-node proposal selection within the proposal timeout; also track
  // whether a node ever receives each block body at all (needed to
  // "extract" the block the votes certify).
  ws.best_idx.assign(n, -1);
  exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (!ws.relay.online[v]) continue;
      std::uint64_t best_priority = 0;
      Hash256 best_hash;
      for (std::size_t p = 0; p < np; ++p) {
        if (ws.proposal_arrivals[p][v] > params_.proposal_timeout_ms)
          continue;
        const Hash256& h = ws.proposal_hashes[p];
        if (ws.best_idx[v] < 0 || ws.proposals[p].priority > best_priority ||
            (ws.proposals[p].priority == best_priority && h < best_hash)) {
          ws.best_idx[v] = static_cast<int>(p);
          best_priority = ws.proposals[p].priority;
          best_hash = h;
        }
      }
    }
  });

  StepContext ctx;
  ctx.params = &params_;
  ctx.keys = &net.keys();
  ctx.stakes = &ws.stakes;
  ctx.strategies = strategies;
  ctx.online = ws.relay.online;
  ctx.total_stake = total_stake;
  ctx.n = n;
  ctx.round = round;
  ctx.prev_seed = prev_seed;
  ctx.relay_set = &ws.relay;
  ctx.gossip = &gossip;
  ctx.gossip_root = &gossip_root;
  ctx.exec = &exec_;
  ctx.observed_roles = ws.observed_roles;
  ctx.true_roles = ws.true_roles;

  // ---- Reduction phase (2 steps) --------------------------------------
  const double step_quorum = params_.step_quorum();
  run_vote_step(
      ctx, consensus::kReductionStep1, params_.expected_step_stake,
      step_quorum,
      [&](NodeId v) -> std::optional<Hash256> {
        return consensus::reduction_step1_value(
            ws.best_idx[v] >= 0
                ? std::optional<Hash256>(ws.proposal_hashes[ws.best_idx[v]])
                : std::nullopt,
            empty_hash);
      },
      ws.step, ws.step1);

  run_vote_step(
      ctx, consensus::kReductionStep2, params_.expected_step_stake,
      step_quorum,
      [&](NodeId v) -> std::optional<Hash256> {
        return ws.step1[v].winner.value_or(empty_hash);
      },
      ws.step, ws.step2);

  // ---- BinaryBA* -------------------------------------------------------
  ws.ba.clear();
  ws.ba.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    ws.ba.emplace_back(ws.step2[v].winner.value_or(empty_hash), empty_hash,
                       params_.max_binary_iterations);
  }
  // Concluded nodes keep voting their value for 3 more sub-steps to pull
  // stragglers over the line (Gilad et al., Alg. 8).
  ws.post_votes.assign(n, 0);

  const std::uint32_t last_step = consensus::kFirstBinaryStep +
                                  3 * params_.max_binary_iterations;
  for (std::uint32_t step = consensus::kFirstBinaryStep; step < last_step;
       ++step) {
    bool any_running = false;
    for (std::size_t v = 0; v < n; ++v)
      if (ws.relay.online[v] && ws.ba[v].running()) any_running = true;
    if (!any_running) break;

    run_vote_step(
        ctx, step, params_.expected_step_stake, step_quorum,
        [&](NodeId v) -> std::optional<Hash256> {
          if (ws.ba[v].running() && ws.ba[v].step_number() == step)
            return ws.ba[v].vote_value();
          if (!ws.ba[v].running() && ws.post_votes[v] > 0)
            return ws.ba[v].result();
          return std::nullopt;
        },
        ws.step, ws.ba_out);

    // Each node's BA state machine advances independently (ba[v] and
    // post_votes[v] are only touched at index v).
    exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        if (!ws.relay.online[v]) continue;
        if (ws.ba[v].running() && ws.ba[v].step_number() == step) {
          ws.ba[v].advance(ws.ba_out[v].winner, ws.ba_out[v].coin);
          if (!ws.ba[v].running() &&
              ws.ba[v].status() != consensus::BaStatus::Exhausted)
            ws.post_votes[v] = 3;
        } else if (!ws.ba[v].running() && ws.post_votes[v] > 0) {
          --ws.post_votes[v];
        }
      }
    });
  }

  // ---- FINAL vote ------------------------------------------------------
  run_vote_step(
      ctx, consensus::kFinalStep, params_.expected_final_stake,
      params_.final_quorum(),
      [&](NodeId v) -> std::optional<Hash256> {
        if (ws.ba[v].concluded_in_first_iteration() &&
            ws.ba[v].result() != empty_hash)
          return ws.ba[v].result();
        return std::nullopt;
      },
      ws.step, ws.finals);

  // ---- Outcomes --------------------------------------------------------
  auto body_received = [&](NodeId v, const Hash256& h) {
    if (h == empty_hash) return true;  // the empty block is derived locally
    for (std::size_t p = 0; p < np; ++p) {
      if (ws.proposal_hashes[p] == h)
        return ws.proposal_arrivals[p][v] < net::kNever;
    }
    return false;
  };

  result.outcomes.assign(n, NodeOutcome::NoBlock);
  exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (!ws.relay.online[v]) continue;
      const auto id = static_cast<NodeId>(v);
      if (ws.finals[v].winner.has_value()) {
        result.outcomes[v] = body_received(id, *ws.finals[v].winner)
                                 ? NodeOutcome::Final
                                 : NodeOutcome::NoBlock;
      } else if (ws.ba[v].status() == consensus::BaStatus::ConcludedBlock ||
                 ws.ba[v].status() == consensus::BaStatus::ConcludedEmpty) {
        result.outcomes[v] = body_received(id, ws.ba[v].result())
                                 ? NodeOutcome::Tentative
                                 : NodeOutcome::NoBlock;
      }
    }
  });

  // Fractions over the live population (live_count > 0 is implied by the
  // live-stake check above); without churn this is the full node count.
  std::size_t finals_count = 0, tentative_count = 0;
  for (const NodeOutcome o : result.outcomes) {
    if (o == NodeOutcome::Final) ++finals_count;
    if (o == NodeOutcome::Tentative) ++tentative_count;
  }
  const auto live_n = static_cast<double>(result.live_count);
  result.final_fraction = static_cast<double>(finals_count) / live_n;
  result.tentative_fraction = static_cast<double>(tentative_count) / live_n;
  result.none_fraction =
      1.0 - result.final_fraction - result.tentative_fraction;

  // ---- Canonical chain append -----------------------------------------
  // The chain advances with the plurality conclusion (weighting every
  // online node equally); if no node concluded a block, the round yields
  // the empty block so seeds keep evolving.
  ws.conclusion_counts.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (!ws.relay.online[v]) continue;
    if (ws.ba[v].status() != consensus::BaStatus::ConcludedBlock) continue;
    const Hash256 h = ws.ba[v].result();
    auto it = std::find_if(ws.conclusion_counts.begin(),
                           ws.conclusion_counts.end(),
                           [&](const auto& e) { return e.first == h; });
    if (it == ws.conclusion_counts.end()) {
      ws.conclusion_counts.emplace_back(h, 1);
    } else {
      ++it->second;
    }
  }
  const ledger::Block* agreed = nullptr;
  std::size_t best_count = 0;
  for (const auto& [hash, count] : ws.conclusion_counts) {
    if (count <= best_count) continue;
    for (std::size_t p = 0; p < np; ++p) {
      if (ws.proposal_hashes[p] == hash) {
        agreed = &ws.proposals[p].block;
        best_count = count;
        break;
      }
    }
  }
  if (agreed != nullptr) {
    ledger::Block block = *agreed;
    net.txpool().mark_included(block.transactions());
    const bool ok = net.chain().append(std::move(block));
    RS_ENSURE(ok, "agreed block must extend the chain");
    result.non_empty_block = !net.chain().tip().is_empty();
  } else {
    const bool ok = net.chain().append(empty_block);
    RS_ENSURE(ok, "empty block must extend the chain");
  }

  // ---- Role snapshots for the reward schemes and the strategic loop ----
  // reset() swaps the filled vectors into the (recycled) snapshots and
  // hands their previous buffers back to the workspace for the next round.
  ws.reward_stakes.assign(ws.stakes.begin(), ws.stakes.end());
  for (std::size_t v = 0; v < n; ++v)
    if (!ws.relay.online[v]) ws.reward_stakes[v] = 0;  // offline: no reward
  ws.reward_stakes_true.assign(ws.reward_stakes.begin(),
                               ws.reward_stakes.end());
  if (!result.roles_true.has_value())
    result.roles_true.emplace(std::vector<Role>{},
                              std::vector<std::int64_t>{});
  result.roles_true->reset(ws.true_roles, ws.reward_stakes_true);
  if (!result.roles.has_value())
    result.roles.emplace(std::vector<Role>{}, std::vector<std::int64_t>{});
  result.roles->reset(ws.observed_roles, ws.reward_stakes);
}

}  // namespace roleshare::sim
