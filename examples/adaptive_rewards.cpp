// Adaptive rewards: Algorithm 1 reacting to a shifting stake distribution.
// The Foundation can track the network state and pay exactly as much as
// incentive compatibility requires — more when small-stake nodes flood in,
// less when they leave or are filtered out (the paper's closing argument).
//
//   $ ./adaptive_rewards
#include <cstdio>

#include "econ/optimizer.hpp"
#include "util/distributions.hpp"

using namespace roleshare;

namespace {

// Builds Theorem-3 bound inputs for a population sampled from `dist`,
// with the paper's committee-stake accounting (S_L=26, S_M=13k).
econ::BoundInputs inputs_for(const util::StakeDistribution& dist,
                             std::size_t nodes, std::int64_t min_other,
                             util::Rng& rng) {
  econ::BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  double total = 0;
  std::int64_t min_stake = 0;
  for (std::size_t v = 0; v < nodes; ++v) {
    const std::int64_t s = dist.sample(rng);
    if (s < min_other) continue;  // filtered out of the reward set
    total += static_cast<double>(s);
    if (min_stake == 0 || s < min_stake) min_stake = s;
  }
  in.stake_others = total - in.stake_leaders - in.stake_committee;
  in.min_stake_other = static_cast<double>(min_stake > 0 ? min_stake : 1);
  return in;
}

void report(const char* scenario, const econ::OptimizerResult& r) {
  if (!r.feasible) {
    std::printf("%-46s infeasible\n", scenario);
    return;
  }
  std::printf("%-46s B_i = %8.2f Algos  (a=%.4f b=%.4f g=%.3f)\n", scenario,
              r.min_bi / 1e6, r.split.alpha, r.split.beta, r.split.gamma());
}

}  // namespace

int main() {
  util::Rng rng(31);
  const econ::RewardOptimizer optimizer;
  const econ::CostModel costs;
  const std::size_t nodes = 100'000;

  std::printf("Algorithm 1 on a %zu-node economy (Foundation per-round "
              "schedule pays 20 Algos in period 1):\n\n",
              nodes);

  // Scenario 1: launch phase, healthy mid-size stakes.
  report("launch: stakes N(100,10)",
         optimizer.optimize(
             inputs_for(util::NormalStake(100, 10), nodes, 0, rng), costs));

  // Scenario 2: an influx of dust accounts drags s*_k to 1.
  report("dust influx: stakes U(1,200)",
         optimizer.optimize(
             inputs_for(util::UniformStake(1, 200), nodes, 0, rng), costs));

  // Scenario 3: the designer filters stakes < 7 from the reward set
  // (Fig 7-c's U_7 lever) instead of paying for the dust.
  report("dust influx + reward floor w=7",
         optimizer.optimize(
             inputs_for(util::UniformStake(1, 200), nodes, 7, rng), costs));

  // Scenario 4: mature network, stakes concentrate (paper: N(2000,25),
  // >1B Algos in circulation).
  report("mature: stakes N(2000,25)",
         optimizer.optimize(
             inputs_for(util::NormalStake(2000, 25), nodes, 0, rng), costs));

  std::printf("\nReading: the required reward tracks S_K / s*_k. The\n"
              "Foundation can adapt per round instead of paying the flat\n"
              "Table-III schedule, saving Algos for future use.\n");
  return 0;
}
