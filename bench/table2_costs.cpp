// E2 — Tables I & II: the role/task/cost matrix of §III-A, regenerated from
// the cost model (who performs which task; per-role cooperation costs per
// Eq 1-2; the §V-A parameterization).
#include <cstdio>

#include "bench_util.hpp"
#include "econ/cost_model.hpp"

using namespace roleshare;

int main(int, char**) {
  bench::print_header("Table II", "Algorand tasks and costs per role");

  const econ::CostModel costs;
  const econ::TaskCosts& t = costs.tasks();

  std::printf("%-28s %10s %8s %10s %8s\n", "Task", "cost(uA)", "Leader",
              "Committee", "Others");
  struct Row {
    const char* name;
    double cost;
  };
  const Row rows[] = {
      {"transaction_verification", t.cve}, {"seed_generation", t.cse},
      {"sortition", t.cso},                {"verify_sortition_proof", t.cvs},
      {"block_proposition", t.cbl},        {"gossiping", t.cgo},
      {"block_selection", t.cbs},          {"vote", t.cvo},
      {"vote_counting", t.cvc}};
  for (const Row& row : rows) {
    std::printf("%-28s %10.2f %8s %10s %8s\n", row.name, row.cost,
                econ::CostModel::role_performs(consensus::Role::Leader,
                                               row.name)
                    ? "X"
                    : "",
                econ::CostModel::role_performs(consensus::Role::Committee,
                                               row.name)
                    ? "X"
                    : "",
                econ::CostModel::role_performs(consensus::Role::Other,
                                               row.name)
                    ? "X"
                    : "");
  }

  std::printf("\nDerived role costs (Eq 1-2), micro-Algos:\n");
  std::printf("  c_fix (every node)       = %6.2f\n", costs.fixed_cost());
  std::printf("  c_L   (leader)           = %6.2f\n", costs.leader_cost());
  std::printf("  c_M   (committee member) = %6.2f\n",
              costs.committee_cost());
  std::printf("  c_K   (other online)     = %6.2f\n", costs.other_cost());
  std::printf("  c_so  (defector pays)    = %6.2f\n",
              costs.defection_cost());
  std::printf("\nPaper check (SectionV-A): c_L=16, c_M=12, c_K=6, c_so=5.\n");
  return 0;
}
