// Per-hop message delay models.
//
// Each gossip hop samples an independent delay. The synchrony controller
// (synchrony.hpp) scales these delays when the network degrades.
#pragma once

#include <memory>
#include <string>

#include "ledger/types.hpp"
#include "net/sim_time.hpp"
#include "util/rng.hpp"

namespace roleshare::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Samples one hop's propagation + processing delay, in ms (>= 0).
  virtual TimeMs sample(util::Rng& rng, ledger::NodeId from,
                        ledger::NodeId to) const = 0;

  virtual std::string name() const = 0;
};

/// Uniform delay on [lo, hi] ms — the default used by the Fig-3 scenarios.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(TimeMs lo, TimeMs hi);
  TimeMs sample(util::Rng& rng, ledger::NodeId from,
                ledger::NodeId to) const override;
  std::string name() const override;

 private:
  TimeMs lo_;
  TimeMs hi_;
};

/// Shifted-exponential delay: base + Exp(mean_extra). Heavy-ish tail models
/// WAN links; used by robustness benches.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(TimeMs base, TimeMs mean_extra);
  TimeMs sample(util::Rng& rng, ledger::NodeId from,
                ledger::NodeId to) const override;
  std::string name() const override;

 private:
  TimeMs base_;
  TimeMs mean_extra_;
};

/// Constant delay — degenerate model for unit tests.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(TimeMs value);
  TimeMs sample(util::Rng& rng, ledger::NodeId from,
                ledger::NodeId to) const override;
  std::string name() const override;

 private:
  TimeMs value_;
};

std::unique_ptr<DelayModel> make_uniform_delay(TimeMs lo, TimeMs hi);
std::unique_ptr<DelayModel> make_exponential_delay(TimeMs base,
                                                   TimeMs mean_extra);
std::unique_ptr<DelayModel> make_constant_delay(TimeMs value);

}  // namespace roleshare::net
