// BENCH_*.json emission: numeric + string fields, escaping, and the
// always-present git_sha provenance field.
#include "bench_util.hpp"

#include <gtest/gtest.h>

#include "shard_util.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace roleshare::bench {
namespace {

std::string read_and_remove(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(BenchUtil, EmitJsonWritesNumericAndStringFields) {
  emit_json("test_mixed", {{"nodes", 100.0},
                           {"threads", std::size_t{4}},
                           {"stakes", "U(1,200)"},
                           {"wall_ms", 12.5}});
  const std::string json = read_and_remove("BENCH_test_mixed.json");
  EXPECT_NE(json.find("\"bench\": \"test_mixed\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"stakes\": \"U(1,200)\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\": 12.5"), std::string::npos);
}

TEST(BenchUtil, EmitJsonAlwaysRecordsGitSha) {
  emit_json("test_sha", {});
  const std::string json = read_and_remove("BENCH_test_sha.json");
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
  // The baked-in value itself is available programmatically too.
  EXPECT_NE(json.find(git_sha()), std::string::npos);
}

TEST(BenchUtil, EmitJsonAlwaysRecordsPeakRss) {
  // The memory-trajectory field behind the exact-vs-streaming story: a
  // positive byte count on every supported platform.
  EXPECT_GT(peak_rss_bytes(), 0.0);
  emit_json("test_rss", {});
  const std::string json = read_and_remove("BENCH_test_rss.json");
  const auto pos = json.find("\"peak_rss_bytes\": ");
  ASSERT_NE(pos, std::string::npos);
  const double value =
      std::strtod(json.c_str() + pos + std::string("\"peak_rss_bytes\": ").size(),
                  nullptr);
  EXPECT_GT(value, 1024.0);  // any real process tops 1 KiB
}

TEST(BenchUtil, TextFileRoundTripAndMissingFile) {
  const std::string path = "bench_util_roundtrip.tmp";
  write_text_file(path, "{\"a\": 1}\n");
  EXPECT_EQ(read_text_file(path), "{\"a\": 1}\n");
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file("no_such_file.tmp"), std::runtime_error);
}

TEST(BenchUtil, ArgRunShardWindowsAndRejections) {
  const auto shard_for = [](std::vector<const char*> args,
                            std::size_t runs) {
    args.insert(args.begin(), "prog");
    return arg_run_shard(static_cast<int>(args.size()),
                         const_cast<char**>(args.data()), runs);
  };
  EXPECT_TRUE(shard_for({}, 8).whole());
  const sim::RunShard window = shard_for({"--run-begin=2", "--run-end=5"}, 8);
  EXPECT_EQ(window.begin, 2u);
  EXPECT_EQ(window.end, 5u);
  const sim::RunShard tail = shard_for({"--run-begin=6"}, 8);
  EXPECT_EQ(tail.begin, 6u);
  EXPECT_EQ(tail.end, 8u);
  // An explicitly empty window must fail loudly — NOT silently become
  // the whole-range sentinel (a launcher passing --run-end=0 would
  // otherwise duplicate the entire sweep).
  EXPECT_THROW(shard_for({"--run-end=0"}, 8), std::invalid_argument);
  EXPECT_THROW(shard_for({"--run-begin=5", "--run-end=5"}, 8),
               std::invalid_argument);
}

TEST(BenchUtil, ArgStringParsesAndDefaults) {
  const char* argv_c[] = {"prog", "--agg=streaming", "--partial-out=s0.json"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(arg_string(3, argv, "agg", "exact"), "streaming");
  EXPECT_EQ(arg_string(3, argv, "partial-out", ""), "s0.json");
  EXPECT_EQ(arg_string(1, argv, "agg", "exact"), "exact");  // default
}

TEST(BenchUtil, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(BenchUtil, EmitJsonEscapesStringValues) {
  emit_json("test_escape", {{"label", "quote\"and\\slash"}});
  const std::string json = read_and_remove("BENCH_test_escape.json");
  EXPECT_NE(json.find("\"label\": \"quote\\\"and\\\\slash\""),
            std::string::npos);
}

TEST(BenchUtil, AuditResumeFormatGuardsCheckpointFormatFlips) {
  // A bin checkpoint resumed under the json default must NOT silently
  // flip the chain back to json: the audit inherits the on-disk format
  // when --format was defaulted, and refuses (naming both formats) when
  // it was explicit. Detection only sniffs leading bytes, so a minimal
  // document through the real codec is enough.
  const std::string bin_path = "audit_fmt_bin.partial";
  const std::string json_path = "audit_fmt_json.partial";
  util::json::Value doc = util::json::Value::object();
  doc.set("kind", "defection");
  write_text_file(
      bin_path, sim::partial_codec(sim::PartialFormat::Binary).encode(doc));
  write_text_file(json_path, doc.dump() + "\n");

  ShardKnobs knobs;
  knobs.partial_in = bin_path;
  knobs.partial_out = "audit_fmt_out.partial";
  knobs.format = sim::PartialFormat::Json;  // the default
  knobs.format_explicit = false;
  audit_resume_format(knobs);
  EXPECT_EQ(knobs.format, sim::PartialFormat::Binary);  // inherited

  knobs.format = sim::PartialFormat::Json;
  knobs.format_explicit = true;  // user demanded json over a bin file
  try {
    audit_resume_format(knobs);
    FAIL() << "explicit --format mismatch must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("json"), std::string::npos) << what;
    EXPECT_NE(what.find("bin"), std::string::npos) << what;
    EXPECT_NE(what.find(bin_path), std::string::npos) << what;
  }

  // Matching formats (either way) and an empty partial_in are no-ops.
  knobs.partial_in = json_path;
  knobs.format = sim::PartialFormat::Json;
  audit_resume_format(knobs);
  EXPECT_EQ(knobs.format, sim::PartialFormat::Json);
  knobs.partial_in.clear();
  knobs.format_explicit = true;
  audit_resume_format(knobs);  // nothing to resume, nothing to audit

  std::remove(bin_path.c_str());
  std::remove(json_path.c_str());
}

TEST(BenchUtil, ArgShardKnobsWiresFormatAudit) {
  // End-to-end through the argv surface the bench mains use: a json
  // checkpoint with an explicit --format=bin fails at knob-parse time,
  // before any run executes; with no --format the chain inherits json.
  const std::string path = "audit_fmt_argv.partial";
  util::json::Value doc = util::json::Value::object();
  doc.set("kind", "defection");
  write_text_file(path, doc.dump() + "\n");
  const auto knobs_for = [&](std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return arg_shard_knobs(static_cast<int>(args.size()),
                           const_cast<char**>(args.data()), 8);
  };
  const std::string in_flag = "--partial-in=" + path;
  EXPECT_THROW(
      knobs_for({in_flag.c_str(), "--partial-out=o.partial", "--format=bin"}),
      std::invalid_argument);
  const ShardKnobs inherited =
      knobs_for({in_flag.c_str(), "--partial-out=o.partial"});
  EXPECT_EQ(inherited.format, sim::PartialFormat::Json);
  EXPECT_FALSE(inherited.format_explicit);
  const ShardKnobs explicit_json =
      knobs_for({in_flag.c_str(), "--partial-out=o.partial", "--format=json"});
  EXPECT_TRUE(explicit_json.format_explicit);
  std::remove(path.c_str());
}

TEST(BenchUtil, ArgParsingReadsInnerThreads) {
  const char* argv_c[] = {"prog", "--threads=3", "--inner-threads=5"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(arg_threads(3, argv), 3u);
  EXPECT_EQ(arg_inner_threads(3, argv), 5u);
  EXPECT_EQ(arg_inner_threads(1, argv), 1u);  // default
}

}  // namespace
}  // namespace roleshare::bench
