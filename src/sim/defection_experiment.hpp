// The Fig-3 experiment: how the share of nodes extracting final /
// tentative / no blocks evolves per round as a fraction of the network
// defects. Multiple independent runs, trimmed-mean aggregation.
//
// PR 3 generalized it into the scenario engine: a ScenarioPolicyConfig
// slots a behaviour-policy layer (adaptive best-response defection,
// stake-correlated defection, churn) in front of every round, with the
// default (scripted, no churn) bit-identical to the original Fig-3
// semantics.
//
// PR 4 split execution from aggregation behind a mergeable partial; this
// partial now rides the shared sim::ExperimentPartial envelope
// (sim/partial.hpp), so the defection family shares its shard /
// checkpoint / resume machinery with the reward and strategic families:
//
//   run_defection_partial  executes the config's shard window and returns
//                          a DefectionPartial — the mergeable, JSON-
//                          serializable reduction state of those runs.
//   DefectionPartial::merge folds the next contiguous shard in run-index
//                          order (envelope-checked: kind, spec hash,
//                          backend, shape, contiguity).
//   DefectionPartial::finalize reduces to the DefectionSeries figures.
//
// run_defection_experiment is exactly partial + finalize, so a sharded
// exact-backend execution (N partials merged by the merge_partials tool)
// is bit-identical to a single-process run.
#pragma once

#include <memory>

#include "consensus/params.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/partial.hpp"
#include "sim/scenario_policy.hpp"
#include "util/json.hpp"

namespace roleshare::sim {

struct DefectionExperimentConfig {
  /// Network template; its seed is the experiment's *root* seed — run k
  /// simulates with the independent stream root.split(k).
  NetworkConfig network;
  std::size_t runs = 100;
  std::size_t rounds = 50;
  /// Worker threads for the run fan-out (0 = all hardware threads).
  /// Aggregates are bit-identical for every thread count.
  std::size_t threads = 1;
  /// Worker threads for each run's per-node round-engine loops (0 = all
  /// hardware threads). Forced serial while the run fan-out is parallel;
  /// aggregates are bit-identical for every inner thread count too.
  std::size_t inner_threads = 1;
  double trim_fraction = 0.2;
  /// When true the consensus committee expectations are re-scaled to each
  /// run's total stake (required for small simulated networks).
  bool scale_params_to_stake = true;
  consensus::ConsensusParams params{};
  /// Behaviour-policy layer applied per run (adaptive / stake-correlated
  /// defection, churn). The default — scripted, no churn — leaves every
  /// aggregate bit-identical to the pre-policy experiment.
  ScenarioPolicyConfig policy{};
  /// Reduction backend: Exact stores every sample (bit-identical
  /// baseline); Streaming keeps O(rounds) memory independent of `runs`
  /// with the documented reservoir/P² error bound.
  AggBackend agg = AggBackend::Exact;
  StreamingAggConfig streaming{};
  /// Run window THIS process executes (default: all runs) — the sharded
  /// fan-out knob. Seeding stays keyed on global run indices.
  RunShard shard{};
};

struct DefectionSeries {
  std::vector<RoundAggregate> rounds;
  /// Fraction of executed runs in which the chain gained at least one
  /// non-empty block (network-level liveness indicator).
  double runs_with_progress = 0.0;
  /// Mean live-node count per round across runs — round-varying under
  /// churn, constant node_count otherwise.
  std::vector<double> live_series;
  /// Smallest / largest live count observed in any (run, round).
  std::size_t min_live = 0;
  std::size_t max_live = 0;
  /// Mean fraction of live nodes playing Cooperate per round — the
  /// series that shows adaptive defection unraveling (or not).
  std::vector<double> cooperation_series;
  /// Bytes held by the reduction accumulators that produced this series —
  /// the exact-vs-streaming memory story (bench reporting).
  std::size_t accumulator_bytes = 0;
};

/// The experiment-specific half of a DefectionPartial: the three outcome
/// accumulators plus the live/cooperation series and progress counters.
/// Window bookkeeping and compatibility checks live in the shared
/// PartialEnvelope (sim/partial.hpp).
class DefectionPayload {
 public:
  static constexpr std::string_view kKind = "defection";

  DefectionPayload(std::size_t rounds, AggBackend backend,
                   const StreamingAggConfig& streaming);

  /// Records one run's per-round contribution (called by
  /// run_defection_partial in run-index order).
  void record_round(std::size_t round_index, double final_pct,
                    double tentative_pct, double none_pct, double live,
                    double coop_pct);
  void record_run_progress(bool progress);

  /// Folds `next` in after this payload's own samples (the envelope has
  /// already vetted kind / spec hash / backend / shape / contiguity).
  void merge(const DefectionPayload& next);

  /// Reduces to the figure series. runs_with_progress is the fraction of
  /// the runs covered by the envelope's window.
  DefectionSeries finalize(const PartialEnvelope& envelope,
                           double trim_fraction) const;

  std::size_t accumulator_bytes() const;

  util::json::Value to_json() const;
  static DefectionPayload from_json(const util::json::Value& value,
                                    const PartialEnvelope& envelope);

 private:
  DefectionPayload(OutcomeMetrics metrics,
                   std::unique_ptr<RoundAccumulator> live,
                   std::unique_ptr<RoundAccumulator> coop);

  OutcomeMetrics metrics_;
  std::unique_ptr<RoundAccumulator> live_;
  std::unique_ptr<RoundAccumulator> coop_;
  std::size_t runs_with_progress_ = 0;
  std::size_t min_live_ = 0;
  std::size_t max_live_ = 0;
  bool any_live_ = false;
};

/// The mergeable reduction state of one executed run window. Merging the
/// partials of contiguous windows in run-index order then finalizing is
/// bit-identical (exact backend) to executing the union in one process.
using DefectionPartial = ExperimentPartial<DefectionPayload>;

/// Canonical echo of every config field that affects results (never
/// thread counts or shard windows) — the input of the envelope's spec
/// hash, shared by all partials of one experiment.
util::json::Value defection_spec_echo(const DefectionExperimentConfig& config);

/// Executes config.shard's run window on the shared ExperimentRunner
/// engine and reduces it into a mergeable partial. Deterministic in
/// config.network.seed, independent of config.threads / inner_threads.
DefectionPartial run_defection_partial(const DefectionExperimentConfig& config);

/// run_defection_partial + finalize. For a whole-range shard this is the
/// historical single-process experiment, unchanged bit for bit under the
/// exact backend.
DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config);

}  // namespace roleshare::sim
