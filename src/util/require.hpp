// Contract-checking helpers used across the RoleShare library.
//
// RS_REQUIRE is for preconditions on public API entry points: violations are
// programming errors by the caller and raise std::invalid_argument.
// RS_ENSURE is for internal invariants: violations indicate a bug inside the
// library and raise std::logic_error.
#pragma once

#include <stdexcept>
#include <string>

namespace roleshare::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace roleshare::util

#define RS_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::roleshare::util::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define RS_ENSURE(expr, msg)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::roleshare::util::ensure_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
